// Documentation linter — the CI docs gate.
//
//   ./docs_check --root /path/to/repo [--flags-manifest flags.txt]
//
// Two checks over every tracked *.md file (build trees, .git, and the
// driver-owned PAPER/PAPERS/ISSUE/CHANGES/SNIPPETS files are skipped):
//
//   * dead links: every relative `[text](target)` must resolve to a file
//     or directory inside the repo (http(s)/mailto/anchor-only links and
//     paths that escape the root, e.g. GitHub badge URLs, are ignored);
//   * phantom flags: every `--flag-name` token mentioned in the docs must
//     be registered by some binary. The manifest is free-form text — CI
//     concatenates the `--help` output of every built binary — and
//     docs_check extracts the `--token`s from it. A doc token ending in
//     `-` (e.g. `--faults-*` wildcards) passes if any manifest flag starts
//     with it. A tiny built-in allowlist covers external tools (ctest).
//
// Without --flags-manifest only the link check runs (useful pre-build).
// Exits 0 when clean, 1 with one line per finding otherwise.
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/flags.h"

namespace fs = std::filesystem;

namespace {

int g_failures = 0;

void fail(const fs::path& file, int line, const std::string& message) {
  std::fprintf(stderr, "FAIL %s:%d: %s\n", file.string().c_str(), line,
               message.c_str());
  ++g_failures;
}

bool skip_dir(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name == ".git" || name == ".claude" || name == "third_party" ||
         name.rfind("build", 0) == 0;
}

bool skip_file(const fs::path& file) {
  static const std::set<std::string> driver_owned = {
      "ISSUE.md", "CHANGES.md", "PAPER.md", "PAPERS.md", "SNIPPETS.md"};
  return driver_owned.count(file.filename().string()) > 0;
}

bool flag_char(char c) {
  return (std::islower(static_cast<unsigned char>(c)) != 0) ||
         (std::isdigit(static_cast<unsigned char>(c)) != 0) || c == '-';
}

// Pulls every `--token` out of a line of text.
std::vector<std::string> extract_flag_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  for (std::size_t i = 0; i + 2 < line.size(); ++i) {
    if (line[i] != '-' || line[i + 1] != '-') continue;
    if (i > 0 && (flag_char(line[i - 1]) ||
                  std::isalpha(static_cast<unsigned char>(line[i - 1])))) {
      continue;  // mid-word or part of a longer dash run
    }
    std::size_t j = i + 2;
    std::string token;
    while (j < line.size() && flag_char(line[j])) token += line[j++];
    // Require a real name: starts with a letter, not a `---` rule or an
    // `--` em-dash.
    if (!token.empty() &&
        std::islower(static_cast<unsigned char>(token[0])) != 0) {
      tokens.push_back(token);
    }
    i = j;
  }
  return tokens;
}

void check_file(const fs::path& file, const fs::path& root,
                const std::set<std::string>& known_flags, bool check_flags) {
  // External-tool flags the docs may legitimately mention (cmake, ctest).
  static const std::set<std::string> allowlist = {"output-on-failure",
                                                  "test-dir", "help", "build"};
  std::ifstream in(file);
  if (!in) {
    fail(file, 0, "cannot open");
    return;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;

    // Link check: every `](target)` on the line.
    for (std::size_t pos = line.find("]("); pos != std::string::npos;
         pos = line.find("](", pos + 2)) {
      const std::size_t start = pos + 2;
      const std::size_t end = line.find(')', start);
      if (end == std::string::npos) break;
      std::string target = line.substr(start, end - start);
      if (const std::size_t space = target.find(' ');
          space != std::string::npos) {
        target = target.substr(0, space);  // drop a link title
      }
      if (const std::size_t anchor = target.find('#');
          anchor != std::string::npos) {
        target = target.substr(0, anchor);
      }
      if (target.empty() || target.find("://") != std::string::npos ||
          target.rfind("mailto:", 0) == 0) {
        continue;
      }
      const fs::path resolved =
          fs::weakly_canonical(file.parent_path() / target);
      // Paths that climb out of the repo (GitHub badge links like
      // ../../actions/...) only mean something on the forge — skip them.
      const auto rel = fs::relative(resolved, root);
      if (rel.empty() || rel.begin()->string() == "..") continue;
      if (!fs::exists(resolved)) {
        fail(file, line_no, "dead link: " + target);
      }
    }

    // Flag check (code fences and prose alike — a stale flag in an example
    // command is exactly the bug this hunts).
    if (!check_flags) continue;
    for (const std::string& token : extract_flag_tokens(line)) {
      if (allowlist.count(token) > 0) continue;
      if (!token.empty() && token.back() == '-') {
        // Prefix form (`--faults-*`): any registered flag may match it.
        bool matched = false;
        for (const std::string& flag : known_flags) {
          if (flag.rfind(token, 0) == 0) {
            matched = true;
            break;
          }
        }
        if (!matched) fail(file, line_no, "unknown flag prefix: --" + token);
        continue;
      }
      if (known_flags.count(token) == 0) {
        fail(file, line_no, "flag not registered by any binary: --" + token);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  fedsu::util::Flags flags;
  flags.add_string("root", ".", "repository root to scan")
      .add_string("flags-manifest", "",
                  "text containing every registered --flag (e.g. the "
                  "concatenated --help of all binaries); empty skips the "
                  "flag check");
  if (!flags.parse(argc, argv)) return 0;

  const fs::path root = fs::weakly_canonical(flags.get_string("root"));
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "FAIL: --root %s is not a directory\n",
                 root.string().c_str());
    return 1;
  }

  std::set<std::string> known_flags;
  const std::string manifest_path = flags.get_string("flags-manifest");
  const bool check_flags = !manifest_path.empty();
  if (check_flags) {
    std::ifstream manifest(manifest_path);
    if (!manifest) {
      std::fprintf(stderr, "FAIL: cannot open manifest %s\n",
                   manifest_path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(manifest, line)) {
      for (const std::string& token : extract_flag_tokens(line)) {
        known_flags.insert(token);
      }
    }
    if (known_flags.empty()) {
      std::fprintf(stderr, "FAIL: manifest %s registers no flags\n",
                   manifest_path.c_str());
      return 1;
    }
  }

  int files = 0;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    const fs::directory_entry& entry = *it;
    if (entry.is_directory() && skip_dir(entry.path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (!entry.is_regular_file() || entry.path().extension() != ".md") {
      continue;
    }
    if (skip_file(entry.path())) continue;
    ++files;
    check_file(entry.path(), root, known_flags, check_flags);
  }

  if (files == 0) {
    std::fprintf(stderr, "FAIL: no markdown files found under %s\n",
                 root.string().c_str());
    return 1;
  }
  if (g_failures > 0) {
    std::fprintf(stderr, "%d finding(s) across %d markdown files\n",
                 g_failures, files);
    return 1;
  }
  std::printf("docs_check: %d markdown files clean (%zu known flags)\n",
              files, known_flags.size());
  return 0;
}
