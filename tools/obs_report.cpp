// Offline run analyzer and cross-run regression sentinel (DESIGN.md §12).
//
// Report mode — ingest the observability artifacts of one run and render a
// human-readable report:
//
//   ./obs_report --manifest m.json [--telemetry t.jsonl] [--alerts a.jsonl]
//       [--metrics metrics.json] [--faults-trace faults.csv]
//       [--out report.md] [--format md|json]
//
// The report carries the headline table (per-cell time/bytes-to-target,
// final accuracy, alert counts), the per-phase wall breakdown summed from
// telemetry, the raised/cleared alert log, fault-event totals, and the
// health counters from the metrics snapshot. --fail-on-critical makes the
// exit code reflect run health (any critical alert => exit 1), which turns
// a report invocation into a CI gate.
//
// Diff mode — the regression gate:
//
//   ./obs_report --diff baseline.json --against current.json
//       [--tol-accuracy 0.05] [--tol-bytes-rel 0.10] [--tol-time-rel 0.25]
//       [--tol-speedup-rel 0] [--tol-mem-rel 0.30]
//
// Both files may be bench_robustness/bench_scale JSON (cells matched by
// setting+scheme), bench_comm JSON (cells matched by setting+scheme,
// gated on exact wire bytes and synchronize wall ms), bench_gemm JSON
// (shapes matched by name+variant), or run manifests (runs matched by
// setting+scheme); the kind is sniffed from the document. Every baseline entry must exist in the current file, and
// accuracy (absolute), gigabytes and simulated time (relative) must stay
// within tolerance. Entries that carry a "memory" object on both sides are
// additionally gated on peak-RSS growth (--tol-mem-rel; one-sided, so a
// memory win never fails the diff). GEMM shapes are checked structurally
// (speedup finite and positive) because shared CI runners are too noisy
// for GFLOP/s gates; --tol-speedup-rel > 0 opts into a throughput floor
// for quiet machines. Exit 0 = no regression, 1 = regression or error.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "util/flags.h"

namespace {

using fedsu::obs::JsonValue;

int g_failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  ++g_failures;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot open " + path);
    return "";
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool parse_json(const std::string& path, const std::string& text,
                JsonValue& out) {
  try {
    out = fedsu::obs::json_parse(text);
    return true;
  } catch (const std::exception& e) {
    fail(path + ": " + e.what());
    return false;
  }
}

double num_or(const JsonValue& v, const char* key, double fallback) {
  if (!v.has(key)) return fallback;
  const JsonValue& field = v.at(key);
  return field.is_null() ? fallback : field.as_number();
}

std::string fmt(double value, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

// --- diff mode -----------------------------------------------------------

struct Tolerances {
  double accuracy = 0.05;    // absolute, on final accuracy
  double bytes_rel = 0.10;   // relative, on total gigabytes
  double time_rel = 0.25;    // relative, on simulated seconds
  double speedup_rel = 0.0;  // relative GEMM speedup floor; 0 = structural
  double mem_rel = 0.30;     // relative, on peak RSS (when both report it)
};

double rel_diff(double baseline, double current) {
  if (baseline == 0.0) return current == 0.0 ? 0.0 : 1.0;
  return std::abs(current - baseline) / std::abs(baseline);
}

void diff_metric(const std::string& label, const char* metric,
                 double baseline, double current, double tolerance,
                 bool relative) {
  const double delta =
      relative ? rel_diff(baseline, current) : std::abs(current - baseline);
  if (delta > tolerance) {
    fail(label + ": " + metric + " moved " +
         (relative ? fmt(100.0 * delta, 1) + "%" : fmt(delta)) +
         " (baseline " + fmt(baseline) + ", current " + fmt(current) +
         ", tolerance " + (relative ? fmt(100.0 * tolerance, 1) + "%"
                                    : fmt(tolerance)) + ")");
  } else {
    std::printf("ok   %-40s %-18s %s -> %s\n", label.c_str(), metric,
                fmt(baseline).c_str(), fmt(current).c_str());
  }
}

// One comparable entry of either file kind.
struct DiffEntry {
  double accuracy = 0.0;
  double gigabytes = 0.0;
  double sim_time_s = 0.0;
  double speedup = 0.0;       // gemm only
  double peak_rss_bytes = 0;  // 0 = document predates memory reporting
  double bytes_up = 0.0;      // comm only: exact per-round wire traffic
  double bytes_down = 0.0;
  double wall_ms = 0.0;       // comm only: synchronize() wall ms per round
  bool is_gemm = false;
  bool is_comm = false;
};

// Optional nested {"memory": {"peak_rss_bytes": ...}} object shared by run
// manifests and bench_scale cells. Absent (older documents, platforms that
// cannot sample) leaves the field 0, which disables the memory gate below.
double load_peak_rss(const JsonValue& node) {
  if (!node.has("memory")) return 0.0;
  const JsonValue& mem = node.at("memory");
  return mem.has("peak_rss_bytes") ? mem.at("peak_rss_bytes").as_number()
                                   : 0.0;
}

std::map<std::string, DiffEntry> load_entries(const std::string& path,
                                              const JsonValue& root) {
  std::map<std::string, DiffEntry> entries;
  if (root.has("shapes")) {  // bench_gemm
    for (const JsonValue& shape : root.at("shapes").as_array()) {
      DiffEntry e;
      e.is_gemm = true;
      e.speedup = shape.at("speedup").as_number();
      entries[shape.at("name").as_string() + "/" +
              shape.at("variant").as_string()] = e;
    }
  } else if (root.has("bench") && root.at("bench").as_string() == "comm") {
    // bench_comm: no training, so no accuracy — the gated quantities are
    // the exact per-round wire bytes (deterministic, so any drift is a
    // real accounting change) and the synchronize() wall clock.
    for (const JsonValue& cell : root.at("cells").as_array()) {
      DiffEntry e;
      e.is_comm = true;
      e.bytes_up = cell.at("bytes_up_per_round").as_number();
      e.bytes_down = cell.at("bytes_down_per_round").as_number();
      e.wall_ms = cell.at("wall_ms_per_round").as_number();
      entries[cell.at("setting").as_string() + "/" +
              cell.at("scheme").as_string()] = e;
    }
  } else if (root.has("cells")) {  // bench_robustness
    for (const JsonValue& cell : root.at("cells").as_array()) {
      DiffEntry e;
      e.accuracy = cell.at("final_accuracy").as_number();
      e.gigabytes = cell.at("total_gigabytes").as_number();
      e.sim_time_s = cell.at("total_time_s").as_number();
      e.peak_rss_bytes = load_peak_rss(cell);
      entries[cell.at("setting").as_string() + "/" +
              cell.at("scheme").as_string()] = e;
    }
  } else if (root.has("runs")) {  // run manifest
    for (const JsonValue& run : root.at("runs").as_array()) {
      DiffEntry e;
      e.accuracy = run.at("final_accuracy").as_number();
      e.gigabytes = run.at("total_gigabytes").as_number();
      e.sim_time_s = run.at("sim_time_s").as_number();
      e.peak_rss_bytes = load_peak_rss(run);
      const std::string setting = run.at("setting").as_string();
      entries[(setting.empty() ? "" : setting + "/") +
              run.at("scheme").as_string()] = e;
    }
  } else {
    fail(path +
         ": not a bench_gemm / bench_comm / bench_robustness / manifest "
         "document");
  }
  return entries;
}

int run_diff(const std::string& baseline_path,
             const std::string& current_path, const Tolerances& tol) {
  JsonValue baseline, current;
  const std::string btext = read_file(baseline_path);
  const std::string ctext = read_file(current_path);
  if (g_failures || !parse_json(baseline_path, btext, baseline) ||
      !parse_json(current_path, ctext, current)) {
    return 1;
  }
  const auto base_entries = load_entries(baseline_path, baseline);
  const auto cur_entries = load_entries(current_path, current);
  if (g_failures) return 1;
  for (const auto& [key, base] : base_entries) {
    const auto it = cur_entries.find(key);
    if (it == cur_entries.end()) {
      fail(key + ": present in baseline, missing from current");
      continue;
    }
    const DiffEntry& cur = it->second;
    if (base.is_gemm) {
      // Structural check always; the throughput floor only on request
      // (shared CI runners are too noisy for GFLOP/s gates).
      if (!(cur.speedup > 0.0) || !std::isfinite(cur.speedup)) {
        fail(key + ": speedup not positive/finite (" + fmt(cur.speedup) +
             ")");
      } else if (tol.speedup_rel > 0.0 &&
                 cur.speedup < base.speedup * (1.0 - tol.speedup_rel)) {
        fail(key + ": speedup regressed below floor (baseline " +
             fmt(base.speedup) + ", current " + fmt(cur.speedup) + ")");
      } else {
        std::printf("ok   %-40s speedup %sx -> %sx\n", key.c_str(),
                    fmt(base.speedup, 2).c_str(), fmt(cur.speedup, 2).c_str());
      }
      continue;
    }
    if (base.is_comm) {
      diff_metric(key, "bytes_up_per_round", base.bytes_up, cur.bytes_up,
                  tol.bytes_rel, /*relative=*/true);
      diff_metric(key, "bytes_down_per_round", base.bytes_down,
                  cur.bytes_down, tol.bytes_rel, /*relative=*/true);
      diff_metric(key, "wall_ms_per_round", base.wall_ms, cur.wall_ms,
                  tol.time_rel, /*relative=*/true);
      continue;
    }
    diff_metric(key, "final_accuracy", base.accuracy, cur.accuracy,
                tol.accuracy, /*relative=*/false);
    diff_metric(key, "total_gigabytes", base.gigabytes, cur.gigabytes,
                tol.bytes_rel, /*relative=*/true);
    diff_metric(key, "sim_time_s", base.sim_time_s, cur.sim_time_s,
                tol.time_rel, /*relative=*/true);
    // Gated only when both documents report memory: older baselines and
    // platforms without /proc stay comparable. One-sided — peak RSS going
    // DOWN is progress, not drift.
    if (base.peak_rss_bytes > 0.0 && cur.peak_rss_bytes > 0.0 &&
        tol.mem_rel > 0.0) {
      if (cur.peak_rss_bytes > base.peak_rss_bytes * (1.0 + tol.mem_rel)) {
        fail(key + ": peak_rss_bytes grew " +
             fmt(100.0 * rel_diff(base.peak_rss_bytes, cur.peak_rss_bytes),
                 1) +
             "% (baseline " + fmt(base.peak_rss_bytes) + ", current " +
             fmt(cur.peak_rss_bytes) + ", tolerance " +
             fmt(100.0 * tol.mem_rel, 1) + "%)");
      } else {
        std::printf("ok   %-40s %-18s %s -> %s\n", key.c_str(),
                    "peak_rss_bytes", fmt(base.peak_rss_bytes).c_str(),
                    fmt(cur.peak_rss_bytes).c_str());
      }
    }
  }
  if (g_failures) {
    std::fprintf(stderr, "REGRESSION: %d check(s) failed against %s\n",
                 g_failures, baseline_path.c_str());
    return 1;
  }
  std::printf("no regression: %zu entries within tolerance of %s\n",
              base_entries.size(), baseline_path.c_str());
  return 0;
}

// --- report mode ---------------------------------------------------------

struct PhaseTotals {
  double select_s = 0, train_s = 0, sync_s = 0, timing_s = 0, eval_s = 0,
         total_s = 0;
  int rows = 0;
};

PhaseTotals sum_phases(const std::string& path) {
  PhaseTotals t;
  std::ifstream in(path);
  if (!in) {
    fail("cannot open " + path);
    return t;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue record;
    if (!parse_json(path, line, record)) return t;
    const JsonValue& wall = record.at("wall");
    t.select_s += wall.at("select_s").as_number();
    t.train_s += wall.at("train_s").as_number();
    t.sync_s += wall.at("sync_s").as_number();
    t.timing_s += wall.at("timing_s").as_number();
    t.eval_s += wall.at("eval_s").as_number();
    t.total_s += wall.at("total_s").as_number();
    ++t.rows;
  }
  return t;
}

struct AlertLine {
  std::string scheme, rule, severity, state, message;
  int round = 0;
  double value = 0, threshold = 0;
};

std::vector<AlertLine> load_alerts(const std::string& path,
                                   int* critical_raised) {
  std::vector<AlertLine> alerts;
  std::ifstream in(path);
  if (!in) {
    fail("cannot open " + path);
    return alerts;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue a;
    if (!parse_json(path, line, a)) return alerts;
    AlertLine al;
    al.scheme = a.at("scheme").as_string();
    al.rule = a.at("rule").as_string();
    al.severity = a.at("severity").as_string();
    al.state = a.at("state").as_string();
    al.message = a.at("message").as_string();
    al.round = static_cast<int>(a.at("round").as_number());
    al.value = a.at("value").as_number();
    al.threshold = a.at("threshold").as_number();
    if (al.severity == "critical" && al.state == "raised") {
      ++*critical_raised;
    }
    alerts.push_back(std::move(al));
  }
  return alerts;
}

std::map<std::string, long long> count_fault_events(const std::string& path) {
  std::map<std::string, long long> counts;
  std::ifstream in(path);
  if (!in) {
    fail("cannot open " + path);
    return counts;
  }
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {  // round,client,event,value
      header = false;
      continue;
    }
    std::size_t from = 0;
    std::string event;
    for (int field = 0; field < 3 && from != std::string::npos; ++field) {
      const std::size_t comma = line.find(',', from);
      if (field == 2) {
        event = line.substr(
            from, comma == std::string::npos ? comma : comma - from);
      }
      from = comma == std::string::npos ? comma : comma + 1;
    }
    if (!event.empty()) ++counts[event];
  }
  return counts;
}

int run_report(const fedsu::util::Flags& flags) {
  const std::string manifest_path = flags.get_string("manifest");
  const std::string text = read_file(manifest_path);
  JsonValue manifest;
  if (g_failures || !parse_json(manifest_path, text, manifest)) return 1;

  const std::string format = flags.get_string("format");
  const bool as_json = format == "json";
  if (!as_json && format != "md") {
    fail("--format must be md | json, got '" + format + "'");
    return 1;
  }

  std::ostringstream out;
  int critical_raised = 0;

  const JsonValue& env = manifest.at("environment");
  const auto& runs = manifest.at("runs").as_array();
  const double duration = manifest.at("end_unix_s").as_number() -
                          manifest.at("start_unix_s").as_number();

  if (as_json) {
    // JSON mode re-emits the manifest verbatim (it already is the machine-
    // readable report) with the derived sections appended by re-parse
    // consumers; keep it simple and just echo the manifest.
    out << text;
  } else {
    out << "# Run report: " << manifest.at("bench").as_string() << "\n\n";
    out << "- outcome: **" << manifest.at("outcome").as_string() << "**, "
        << "wall " << fmt(duration, 0) << "s\n";
    out << "- build: " << env.at("build").as_string() << ", isa: "
        << env.at("isa").as_string() << ", threads: "
        << static_cast<int>(env.at("threads").as_number()) << ", seed: "
        << static_cast<long long>(env.at("seed").as_number())
        << ", obs level: " << env.at("obs_level").as_string() << "\n\n";

    out << "## Headline aggregates\n\n";
    out << "| setting | scheme | rounds | final acc | best acc | GB total | "
           "sim s | s to target | GB to target | alerts i/w/c |\n";
    out << "|---|---|---|---|---|---|---|---|---|---|\n";
    for (const JsonValue& run : runs) {
      const JsonValue& alerts = run.at("alerts");
      const double tta = num_or(run, "time_to_target_s", -1.0);
      const double gbt = num_or(run, "gigabytes_to_target", -1.0);
      out << "| " << run.at("setting").as_string() << " | "
          << run.at("scheme").as_string() << " | "
          << static_cast<int>(run.at("rounds").as_number()) << " | "
          << fmt(run.at("final_accuracy").as_number()) << " | "
          << fmt(run.at("best_accuracy").as_number()) << " | "
          << fmt(run.at("total_gigabytes").as_number(), 4) << " | "
          << fmt(run.at("sim_time_s").as_number(), 1) << " | "
          << (tta < 0 ? std::string("—") : fmt(tta, 1)) << " | "
          << (gbt < 0 ? std::string("—") : fmt(gbt, 4)) << " | "
          << static_cast<int>(alerts.at("info").as_number()) << "/"
          << static_cast<int>(alerts.at("warning").as_number()) << "/"
          << static_cast<int>(alerts.at("critical").as_number()) << " |\n";
    }
    out << "\n";

    const std::string telemetry_path = flags.get_string("telemetry");
    if (!telemetry_path.empty()) {
      const PhaseTotals t = sum_phases(telemetry_path);
      out << "## Wall-phase breakdown (" << t.rows << " rounds)\n\n";
      out << "| phase | seconds | share |\n|---|---|---|\n";
      const double denom = t.total_s > 0 ? t.total_s : 1.0;
      const std::pair<const char*, double> phases[] = {
          {"select", t.select_s}, {"train", t.train_s}, {"sync", t.sync_s},
          {"timing", t.timing_s}, {"eval", t.eval_s}};
      for (const auto& [name, seconds] : phases) {
        out << "| " << name << " | " << fmt(seconds) << " | "
            << fmt(100.0 * seconds / denom, 1) << "% |\n";
      }
      out << "| **total** | " << fmt(t.total_s) << " | 100% |\n\n";
    }

    const std::string alerts_path = flags.get_string("alerts");
    if (!alerts_path.empty()) {
      const auto alerts = load_alerts(alerts_path, &critical_raised);
      out << "## Alerts (" << alerts.size() << " edges)\n\n";
      if (alerts.empty()) {
        out << "No alerts raised.\n\n";
      } else {
        out << "| scheme | round | rule | severity | state | value | "
               "threshold | message |\n|---|---|---|---|---|---|---|---|\n";
        for (const AlertLine& a : alerts) {
          out << "| " << a.scheme << " | " << a.round << " | " << a.rule
              << " | " << a.severity << " | " << a.state << " | "
              << fmt(a.value) << " | " << fmt(a.threshold) << " | "
              << a.message << " |\n";
        }
        out << "\n";
      }
    }

    const std::string faults_path = flags.get_string("faults-trace");
    if (!faults_path.empty()) {
      const auto counts = count_fault_events(faults_path);
      out << "## Fault events\n\n| event | count |\n|---|---|\n";
      for (const auto& [event, count] : counts) {
        out << "| " << event << " | " << count << " |\n";
      }
      out << "\n";
    }

    const std::string metrics_path = flags.get_string("metrics");
    if (!metrics_path.empty()) {
      const std::string mtext = read_file(metrics_path);
      JsonValue metrics;
      if (!g_failures && parse_json(metrics_path, mtext, metrics)) {
        out << "## Health counters\n\n| counter | value |\n|---|---|\n";
        bool any = false;
        for (const auto& [name, value] :
             metrics.at("counters").as_object()) {
          if (name.rfind("health.", 0) != 0) continue;
          out << "| " << name << " | "
              << static_cast<long long>(value.as_number()) << " |\n";
          any = true;
        }
        if (!any) out << "| (no health counters recorded) | — |\n";
        out << "\n";
      }
    }
  }

  const std::string out_path = flags.get_string("out");
  if (out_path.empty() || out_path == "-") {
    std::fputs(out.str().c_str(), stdout);
  } else {
    std::ofstream file(out_path, std::ios::trunc);
    if (!file) {
      fail("cannot open " + out_path);
      return 1;
    }
    file << out.str();
    if (!file.flush()) {
      fail("write failed for " + out_path);
      return 1;
    }
    std::printf("report written to %s\n", out_path.c_str());
  }

  if (flags.get_bool("fail-on-critical")) {
    // Manifest alert totals cover monitor-without-alert-file runs too.
    const JsonValue& totals = manifest.at("totals");
    critical_raised = std::max(
        critical_raised,
        static_cast<int>(totals.at("alerts_critical").as_number()));
    if (critical_raised > 0) {
      fail(std::to_string(critical_raised) + " critical alert(s) raised");
    }
    if (manifest.at("outcome").as_string() != "ok") {
      fail("run outcome is not ok");
    }
  }
  return g_failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  fedsu::util::Flags flags;
  flags.add_string("manifest", "", "run manifest JSON (report mode input)")
      .add_string("telemetry", "", "per-round telemetry JSONL (optional)")
      .add_string("alerts", "", "health alerts JSONL (optional)")
      .add_string("metrics", "", "metrics registry JSON (optional)")
      .add_string("faults-trace", "", "fault trace CSV (optional)")
      .add_string("out", "", "report output path (empty or '-' = stdout)")
      .add_string("format", "md", "report format: md | json")
      .add_bool("fail-on-critical", false,
                "exit 1 when the run raised any critical alert")
      .add_string("diff", "", "baseline JSON: switches to regression-diff mode")
      .add_string("against", "", "current JSON to compare to --diff baseline")
      .add_double("tol-accuracy", 0.05,
                  "max absolute final-accuracy drift in diff mode")
      .add_double("tol-bytes-rel", 0.10,
                  "max relative total-gigabytes drift in diff mode")
      .add_double("tol-time-rel", 0.25,
                  "max relative simulated-time drift in diff mode")
      .add_double("tol-speedup-rel", 0.0,
                  "GEMM speedup floor vs baseline (0 = structural only)")
      .add_double("tol-mem-rel", 0.30,
                  "max relative peak-RSS growth in diff mode (0 = off)");
  if (!flags.parse(argc, argv)) return 0;

  const std::string baseline = flags.get_string("diff");
  if (!baseline.empty()) {
    const std::string current = flags.get_string("against");
    if (current.empty()) {
      std::fprintf(stderr, "--diff needs --against <current.json>\n");
      return 1;
    }
    Tolerances tol;
    tol.accuracy = flags.get_double("tol-accuracy");
    tol.bytes_rel = flags.get_double("tol-bytes-rel");
    tol.time_rel = flags.get_double("tol-time-rel");
    tol.speedup_rel = flags.get_double("tol-speedup-rel");
    tol.mem_rel = flags.get_double("tol-mem-rel");
    return run_diff(baseline, current, tol);
  }
  if (flags.get_string("manifest").empty()) {
    std::fprintf(stderr,
                 "report mode needs --manifest (or use --diff/--against)\n");
    return 1;
  }
  return run_report(flags);
}
