// Validates the observability outputs of a run — the CI telemetry gate.
//
//   ./validate_telemetry --trace trace.json --metrics metrics.json \
//       --telemetry telemetry.jsonl [--expect-rounds N]
//
// Checks, per file (each optional; pass what the run produced):
//   * trace: well-formed chrome://tracing JSON with >= 4 distinct span
//     names across >= 2 distinct threads, every event with ts/dur >= 0;
//   * metrics: fl.round.count and fl.round.bytes_up counters present and
//     positive;
//   * telemetry: every JSONL line parses, rounds are consecutive,
//     bytes_up > 0, speculated_fraction in [0,1], and the per-phase wall
//     durations sum to at most the round's total (within 10% slack for
//     unattributed glue code).
//
// Exits 0 when every requested check passes, 1 otherwise — no Python
// needed in CI.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "util/flags.h"

namespace {

using fedsu::obs::JsonValue;

int g_failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  ++g_failures;
}

void check(bool ok, const std::string& message) {
  if (!ok) fail(message);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot open " + path);
    return "";
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void validate_trace(const std::string& path) {
  const std::string text = read_file(path);
  if (text.empty()) return;
  JsonValue root;
  try {
    root = fedsu::obs::json_parse(text);
  } catch (const std::exception& e) {
    fail(path + ": " + e.what());
    return;
  }
  if (!root.has("traceEvents") || !root.at("traceEvents").is_array()) {
    fail(path + ": no traceEvents array");
    return;
  }
  std::set<std::string> span_names;
  std::set<int> span_tids;
  for (const JsonValue& event : root.at("traceEvents").as_array()) {
    const std::string ph = event.at("ph").as_string();
    if (ph != "X") continue;  // skip metadata rows
    span_names.insert(event.at("name").as_string());
    span_tids.insert(static_cast<int>(event.at("tid").as_number()));
    check(event.at("ts").as_number() >= 0.0, path + ": negative ts");
    check(event.at("dur").as_number() >= 0.0, path + ": negative dur");
  }
  check(span_names.size() >= 4,
        path + ": expected >= 4 distinct span names, got " +
            std::to_string(span_names.size()));
  check(span_tids.size() >= 2,
        path + ": expected spans on >= 2 threads, got " +
            std::to_string(span_tids.size()));
  std::printf("%s: %zu span names across %zu threads\n", path.c_str(),
              span_names.size(), span_tids.size());
}

void validate_metrics(const std::string& path) {
  const std::string text = read_file(path);
  if (text.empty()) return;
  JsonValue root;
  try {
    root = fedsu::obs::json_parse(text);
  } catch (const std::exception& e) {
    fail(path + ": " + e.what());
    return;
  }
  if (!root.has("counters")) {
    fail(path + ": no counters object");
    return;
  }
  const JsonValue& counters = root.at("counters");
  for (const char* name : {"fl.round.count", "fl.round.bytes_up"}) {
    if (!counters.has(name)) {
      fail(path + ": missing counter " + name);
      continue;
    }
    check(counters.at(name).as_number() > 0.0,
          path + ": counter " + name + " is zero");
  }
  std::printf("%s: %zu counters, %zu gauges, %zu histograms\n", path.c_str(),
              counters.as_object().size(),
              root.has("gauges") ? root.at("gauges").as_object().size() : 0,
              root.has("histograms")
                  ? root.at("histograms").as_object().size()
                  : 0);
}

void validate_telemetry(const std::string& path, int expect_rounds) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot open " + path);
    return;
  }
  std::string line;
  int rows = 0;
  int prev_round = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue record;
    try {
      record = fedsu::obs::json_parse(line);
    } catch (const std::exception& e) {
      fail(path + " line " + std::to_string(rows + 1) + ": " + e.what());
      return;
    }
    ++rows;
    const int round = static_cast<int>(record.at("round").as_number());
    check(rows == 1 || round == prev_round + 1,
          path + ": rounds not consecutive at row " + std::to_string(rows));
    prev_round = round;
    const double participants = record.at("participants").as_number();
    const double spec = record.at("speculated_fraction").as_number();
    if (participants > 0.0) {
      check(record.at("bytes_up").as_number() > 0.0,
            path + ": bytes_up not positive in round " + std::to_string(round));
    } else {
      // Stalled round (every upload lost / quorum missed / all crashed):
      // nothing was aggregated, so nothing may claim to have speculated.
      check(record.at("bytes_up").as_number() == 0.0,
            path + ": stalled round " + std::to_string(round) +
                " reports bytes_up");
      check(spec == 0.0, path + ": stalled round " + std::to_string(round) +
                             " reports speculated_fraction != 0");
    }
    check(spec >= 0.0 && spec <= 1.0,
          path + ": speculated_fraction outside [0,1] in round " +
              std::to_string(round));
    const bool is_async = record.has("async");
    if (is_async) {
      // Buffered-async cycle object: the staleness histogram must account
      // for every aggregated upload, and the discount weights are each in
      // (0, 1], so their sum is positive and at most `consumed`.
      const JsonValue& as = record.at("async");
      const double consumed = as.at("consumed").as_number();
      check(consumed == participants,
            path + ": async.consumed != participants in round " +
                std::to_string(round));
      check(as.at("fill_time_s").as_number() >= 0.0,
            path + ": negative async.fill_time_s in round " +
                std::to_string(round));
      check(as.at("inflight").as_number() >= 0.0,
            path + ": negative async.inflight in round " +
                std::to_string(round));
      double hist_sum = 0.0;
      for (const JsonValue& bucket : as.at("staleness_hist").as_array()) {
        hist_sum += bucket.as_number();
      }
      check(hist_sum == consumed,
            path + ": async.staleness_hist does not sum to consumed in "
                   "round " + std::to_string(round));
      const double weight_sum = as.at("weight_sum").as_number();
      check(weight_sum <= consumed + 1e-9 &&
                (consumed == 0.0 || weight_sum > 0.0),
            path + ": async.weight_sum outside (0, consumed] in round " +
                std::to_string(round));
    }
    if (record.has("faults")) {
      const JsonValue& fc = record.at("faults");
      if (!is_async) {
        // Synchronous fault bookkeeping must balance per round: every
        // selected client is accounted for exactly once (aggregated, lost,
        // corrupt, late, or delivered-but-unused). Async cycles consume
        // uploads dispatched in earlier cycles, so their reconciliation is
        // cumulative and checked by bench_robustness instead.
        const double accounted = participants +
                                 record.at("uploads_lost").as_number() +
                                 fc.at("corrupt").as_number() +
                                 fc.at("deadline_missed").as_number() +
                                 fc.at("unused").as_number();
        check(fc.at("selected").as_number() == accounted,
              path + ": fault tallies do not sum to selected in round " +
                  std::to_string(round));
      }
      check(fc.at("quorum_met").as_bool() == (participants > 0.0),
            path + ": quorum_met inconsistent with participants in round " +
                std::to_string(round));
    }
    const JsonValue& wall = record.at("wall");
    const double phase_sum =
        wall.at("select_s").as_number() + wall.at("train_s").as_number() +
        wall.at("sync_s").as_number() + wall.at("timing_s").as_number() +
        wall.at("eval_s").as_number();
    const double total = wall.at("total_s").as_number();
    check(phase_sum <= total * 1.1 + 1e-6,
          path + ": wall phases exceed round total in round " +
              std::to_string(round));
  }
  check(rows > 0, path + ": no telemetry rows");
  if (expect_rounds > 0) {
    check(rows == expect_rounds,
          path + ": expected " + std::to_string(expect_rounds) +
              " rounds, got " + std::to_string(rows));
  }
  std::printf("%s: %d telemetry rows\n", path.c_str(), rows);
}

}  // namespace

int main(int argc, char** argv) {
  fedsu::util::Flags flags;
  flags.add_string("trace", "", "chrome://tracing JSON to validate")
      .add_string("metrics", "", "metrics registry JSON to validate")
      .add_string("telemetry", "", "per-round telemetry JSONL to validate")
      .add_int("expect-rounds", 0,
               "expected telemetry row count (0 = any non-zero)");
  if (!flags.parse(argc, argv)) return 0;

  const std::string trace = flags.get_string("trace");
  const std::string metrics = flags.get_string("metrics");
  const std::string telemetry = flags.get_string("telemetry");
  if (trace.empty() && metrics.empty() && telemetry.empty()) {
    std::fprintf(stderr, "nothing to validate (pass --trace / --metrics / "
                         "--telemetry)\n");
    return 1;
  }
  if (!trace.empty()) validate_trace(trace);
  if (!metrics.empty()) validate_metrics(metrics);
  if (!telemetry.empty()) {
    validate_telemetry(telemetry,
                       static_cast<int>(flags.get_int("expect-rounds")));
  }
  if (g_failures > 0) {
    std::fprintf(stderr, "%d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("all checks passed\n");
  return 0;
}
