// Validates the observability outputs of a run — the CI telemetry gate.
//
//   ./validate_telemetry --trace trace.json --metrics metrics.json \
//       --telemetry telemetry.jsonl --alerts alerts.jsonl \
//       --manifest manifest.json [--expect-rounds N]
//
// Checks, per file (each optional; pass what the run produced):
//   * trace: well-formed chrome://tracing JSON with >= 4 distinct span
//     names across >= 2 distinct threads, every event with ts/dur >= 0;
//   * metrics: fl.round.count and fl.round.bytes_up counters present and
//     positive;
//   * telemetry: every JSONL line parses, rounds are consecutive within a
//     scheme segment (a reset to 0 starts the next segment in multi-cell
//     bench files), bytes_up > 0, speculated_fraction in [0,1], and the
//     per-phase wall durations sum to at most the round's total (within
//     10% slack for unattributed glue code);
//   * alerts: every line parses against the obs::HealthMonitor schema
//     (severity enum, raised|cleared state), rounds are monotone per
//     scheme, and every "cleared" follows a "raised" of the same rule;
//   * manifest: obs::RunManifest schema (environment, config, per-cell
//     aggregates, the optional crash-recovery object), with totals equal to
//     the sums over the cells.
//
// When both the manifest and the telemetry / alerts files of the SAME run
// are given, their aggregates are cross-reconciled: manifest total rounds
// and bytes must equal the telemetry sums, and manifest alert totals must
// equal the raised edges in the alert stream.
//
// Exits 0 when every requested check passes, 1 otherwise — no Python
// needed in CI.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "util/flags.h"

namespace {

using fedsu::obs::JsonValue;

int g_failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  ++g_failures;
}

void check(bool ok, const std::string& message) {
  if (!ok) fail(message);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot open " + path);
    return "";
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void validate_trace(const std::string& path) {
  const std::string text = read_file(path);
  if (text.empty()) return;
  JsonValue root;
  try {
    root = fedsu::obs::json_parse(text);
  } catch (const std::exception& e) {
    fail(path + ": " + e.what());
    return;
  }
  if (!root.has("traceEvents") || !root.at("traceEvents").is_array()) {
    fail(path + ": no traceEvents array");
    return;
  }
  std::set<std::string> span_names;
  std::set<int> span_tids;
  for (const JsonValue& event : root.at("traceEvents").as_array()) {
    const std::string ph = event.at("ph").as_string();
    if (ph != "X") continue;  // skip metadata rows
    span_names.insert(event.at("name").as_string());
    span_tids.insert(static_cast<int>(event.at("tid").as_number()));
    check(event.at("ts").as_number() >= 0.0, path + ": negative ts");
    check(event.at("dur").as_number() >= 0.0, path + ": negative dur");
  }
  check(span_names.size() >= 4,
        path + ": expected >= 4 distinct span names, got " +
            std::to_string(span_names.size()));
  check(span_tids.size() >= 2,
        path + ": expected spans on >= 2 threads, got " +
            std::to_string(span_tids.size()));
  std::printf("%s: %zu span names across %zu threads\n", path.c_str(),
              span_names.size(), span_tids.size());
}

void validate_metrics(const std::string& path) {
  const std::string text = read_file(path);
  if (text.empty()) return;
  JsonValue root;
  try {
    root = fedsu::obs::json_parse(text);
  } catch (const std::exception& e) {
    fail(path + ": " + e.what());
    return;
  }
  if (!root.has("counters")) {
    fail(path + ": no counters object");
    return;
  }
  const JsonValue& counters = root.at("counters");
  for (const char* name : {"fl.round.count", "fl.round.bytes_up"}) {
    if (!counters.has(name)) {
      fail(path + ": missing counter " + name);
      continue;
    }
    check(counters.at(name).as_number() > 0.0,
          path + ": counter " + name + " is zero");
  }
  std::printf("%s: %zu counters, %zu gauges, %zu histograms\n", path.c_str(),
              counters.as_object().size(),
              root.has("gauges") ? root.at("gauges").as_object().size() : 0,
              root.has("histograms")
                  ? root.at("histograms").as_object().size()
                  : 0);
}

// Telemetry aggregates handed back for manifest cross-reconciliation.
struct TelemetryTotals {
  int rows = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
};

TelemetryTotals validate_telemetry(const std::string& path,
                                   int expect_rounds) {
  TelemetryTotals totals;
  std::ifstream in(path);
  if (!in) {
    fail("cannot open " + path);
    return totals;
  }
  std::string line;
  int rows = 0;
  int prev_round = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue record;
    try {
      record = fedsu::obs::json_parse(line);
    } catch (const std::exception& e) {
      fail(path + " line " + std::to_string(rows + 1) + ": " + e.what());
      return totals;
    }
    ++rows;
    const int round = static_cast<int>(record.at("round").as_number());
    // A reset to round 0 starts the next (setting, scheme) segment of a
    // multi-cell bench file; within a segment rounds are consecutive.
    check(rows == 1 || round == prev_round + 1 || round == 0,
          path + ": rounds not consecutive at row " + std::to_string(rows));
    prev_round = round;
    totals.bytes_up +=
        static_cast<std::uint64_t>(record.at("bytes_up").as_number());
    totals.bytes_down +=
        static_cast<std::uint64_t>(record.at("bytes_down").as_number());
    const double participants = record.at("participants").as_number();
    const double spec = record.at("speculated_fraction").as_number();
    if (participants > 0.0) {
      check(record.at("bytes_up").as_number() > 0.0,
            path + ": bytes_up not positive in round " + std::to_string(round));
    } else {
      // Stalled round (every upload lost / quorum missed / all crashed):
      // nothing was aggregated, so nothing may claim to have speculated.
      check(record.at("bytes_up").as_number() == 0.0,
            path + ": stalled round " + std::to_string(round) +
                " reports bytes_up");
      check(spec == 0.0, path + ": stalled round " + std::to_string(round) +
                             " reports speculated_fraction != 0");
    }
    check(spec >= 0.0 && spec <= 1.0,
          path + ": speculated_fraction outside [0,1] in round " +
              std::to_string(round));
    const bool is_async = record.has("async");
    if (is_async) {
      // Buffered-async cycle object: the staleness histogram must account
      // for every aggregated upload, and the discount weights are each in
      // (0, 1], so their sum is positive and at most `consumed`.
      const JsonValue& as = record.at("async");
      const double consumed = as.at("consumed").as_number();
      check(consumed == participants,
            path + ": async.consumed != participants in round " +
                std::to_string(round));
      check(as.at("fill_time_s").as_number() >= 0.0,
            path + ": negative async.fill_time_s in round " +
                std::to_string(round));
      check(as.at("inflight").as_number() >= 0.0,
            path + ": negative async.inflight in round " +
                std::to_string(round));
      double hist_sum = 0.0;
      for (const JsonValue& bucket : as.at("staleness_hist").as_array()) {
        hist_sum += bucket.as_number();
      }
      check(hist_sum == consumed,
            path + ": async.staleness_hist does not sum to consumed in "
                   "round " + std::to_string(round));
      const double weight_sum = as.at("weight_sum").as_number();
      check(weight_sum <= consumed + 1e-9 &&
                (consumed == 0.0 || weight_sum > 0.0),
            path + ": async.weight_sum outside (0, consumed] in round " +
                std::to_string(round));
    }
    if (record.has("faults")) {
      const JsonValue& fc = record.at("faults");
      if (!is_async) {
        // Synchronous fault bookkeeping must balance per round: every
        // selected client is accounted for exactly once (aggregated, lost,
        // corrupt, late, or delivered-but-unused). Async cycles consume
        // uploads dispatched in earlier cycles, so their reconciliation is
        // cumulative and checked by bench_robustness instead.
        const double accounted = participants +
                                 record.at("uploads_lost").as_number() +
                                 fc.at("corrupt").as_number() +
                                 fc.at("deadline_missed").as_number() +
                                 fc.at("unused").as_number();
        check(fc.at("selected").as_number() == accounted,
              path + ": fault tallies do not sum to selected in round " +
                  std::to_string(round));
      }
      check(fc.at("quorum_met").as_bool() == (participants > 0.0),
            path + ": quorum_met inconsistent with participants in round " +
                std::to_string(round));
    }
    if (record.has("checkpoint")) {
      // Periodic run-checkpoint outcome (docs/RECOVERY.md): present only on
      // rounds where the cadence fired.
      const JsonValue& cp = record.at("checkpoint");
      const bool ok = cp.at("ok").as_bool();
      check(static_cast<int>(cp.at("round").as_number()) == round,
            path + ": checkpoint.round != round in round " +
                std::to_string(round));
      if (ok) {
        check(cp.at("bytes").as_number() > 0.0,
              path + ": successful checkpoint with zero bytes in round " +
                  std::to_string(round));
        check(!cp.at("path").as_string().empty(),
              path + ": successful checkpoint with empty path in round " +
                  std::to_string(round));
      } else {
        check(!cp.at("error").as_string().empty(),
              path + ": failed checkpoint without an error in round " +
                  std::to_string(round));
      }
    }
    const JsonValue& wall = record.at("wall");
    const double phase_sum =
        wall.at("select_s").as_number() + wall.at("train_s").as_number() +
        wall.at("sync_s").as_number() + wall.at("timing_s").as_number() +
        wall.at("eval_s").as_number();
    const double total = wall.at("total_s").as_number();
    check(phase_sum <= total * 1.1 + 1e-6,
          path + ": wall phases exceed round total in round " +
              std::to_string(round));
  }
  check(rows > 0, path + ": no telemetry rows");
  if (expect_rounds > 0) {
    check(rows == expect_rounds,
          path + ": expected " + std::to_string(expect_rounds) +
              " rounds, got " + std::to_string(rows));
  }
  std::printf("%s: %d telemetry rows\n", path.c_str(), rows);
  totals.rows = rows;
  return totals;
}

// Raised-edge counts per severity, for manifest cross-reconciliation.
struct AlertTotals {
  bool validated = false;
  std::uint64_t info = 0;
  std::uint64_t warning = 0;
  std::uint64_t critical = 0;
};

AlertTotals validate_alerts(const std::string& path) {
  AlertTotals totals;
  std::ifstream in(path);
  if (!in) {
    fail("cannot open " + path);
    return totals;
  }
  std::string line;
  int rows = 0;
  // Active (raised, not yet cleared) rules and the last round seen, per
  // scheme label — edges must alternate and rounds must be monotone.
  std::map<std::string, std::set<std::string>> active;
  std::map<std::string, int> last_round;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue alert;
    try {
      alert = fedsu::obs::json_parse(line);
    } catch (const std::exception& e) {
      fail(path + " line " + std::to_string(rows + 1) + ": " + e.what());
      return totals;
    }
    ++rows;
    const std::string where = path + " line " + std::to_string(rows);
    const std::string scheme = alert.at("scheme").as_string();
    const std::string rule = alert.at("rule").as_string();
    check(!rule.empty(), where + ": empty rule");
    const int round = static_cast<int>(alert.at("round").as_number());
    check(round >= 0, where + ": negative round");
    auto [it, fresh] = last_round.emplace(scheme, round);
    check(fresh || round >= it->second,
          where + ": rounds not monotone within scheme '" + scheme + "'");
    it->second = round;
    const std::string severity = alert.at("severity").as_string();
    if (severity == "info") ++totals.info;
    else if (severity == "warning") ++totals.warning;
    else if (severity == "critical") ++totals.critical;
    else fail(where + ": unknown severity '" + severity + "'");
    const std::string state = alert.at("state").as_string();
    std::set<std::string>& raised = active[scheme];
    if (state == "raised") {
      check(raised.insert(rule).second,
            where + ": rule '" + rule + "' raised twice without clearing");
    } else if (state == "cleared") {
      check(raised.erase(rule) == 1,
            where + ": rule '" + rule + "' cleared without being raised");
      // A cleared edge is not a raised alert; count raised edges only.
      if (severity == "info") --totals.info;
      else if (severity == "warning") --totals.warning;
      else if (severity == "critical") --totals.critical;
    } else {
      fail(where + ": state must be raised | cleared, got '" + state + "'");
    }
    alert.at("message").as_string();
    check(alert.has("value") && alert.has("threshold"),
          where + ": missing value/threshold");
  }
  std::printf("%s: %d alert edges (%llu info / %llu warning / %llu critical "
              "raised)\n",
              path.c_str(), rows,
              static_cast<unsigned long long>(totals.info),
              static_cast<unsigned long long>(totals.warning),
              static_cast<unsigned long long>(totals.critical));
  totals.validated = true;
  return totals;
}

// Manifest totals handed back for cross-reconciliation.
struct ManifestTotals {
  bool validated = false;
  std::uint64_t rounds = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  std::uint64_t alerts_info = 0;
  std::uint64_t alerts_warning = 0;
  std::uint64_t alerts_critical = 0;
};

ManifestTotals validate_manifest(const std::string& path) {
  ManifestTotals totals;
  const std::string text = read_file(path);
  if (text.empty()) return totals;
  JsonValue root;
  try {
    root = fedsu::obs::json_parse(text);
  } catch (const std::exception& e) {
    fail(path + ": " + e.what());
    return totals;
  }
  try {
    check(root.at("schema").as_string() == "fedsu.run_manifest.v1",
          path + ": unexpected schema tag");
    check(!root.at("bench").as_string().empty(), path + ": empty bench name");
    const double start = root.at("start_unix_s").as_number();
    const double end = root.at("end_unix_s").as_number();
    check(start > 0 && end >= start, path + ": start/end times inconsistent");
    const std::string outcome = root.at("outcome").as_string();
    check(outcome == "ok" || outcome == "failed" || outcome == "running",
          path + ": outcome must be ok | failed | running");
    const JsonValue& env = root.at("environment");
    check(env.at("threads").as_number() >= 1, path + ": threads < 1");
    check(!env.at("isa").as_string().empty(), path + ": empty isa");
    const std::string build = env.at("build").as_string();
    check(build == "release" || build == "debug",
          path + ": build must be release | debug");
    const std::string level = env.at("obs_level").as_string();
    check(level == "off" || level == "metrics" || level == "trace",
          path + ": bad obs_level");
    root.at("config").as_object();  // present and an object
    if (root.has("recovery")) {
      // Crash-recovery summary (docs/RECOVERY.md): present only when the
      // run checkpointed and/or resumed.
      const JsonValue& rec = root.at("recovery");
      const bool resumed = rec.at("resumed").as_bool();
      if (resumed) {
        check(rec.at("resumed_from_round").as_number() >= 0,
              path + ": resumed run with negative resumed_from_round");
        check(!rec.at("resumed_path").as_string().empty(),
              path + ": resumed run with empty resumed_path");
      }
      check(rec.at("checkpoint_every").as_number() >= 0,
            path + ": negative recovery.checkpoint_every");
      const double written = rec.at("checkpoints_written").as_number();
      const double failed = rec.at("checkpoint_failures").as_number();
      check(written >= 0 && failed >= 0,
            path + ": negative recovery checkpoint counts");
      check(resumed || rec.at("checkpoint_every").as_number() > 0,
            path + ": recovery object present but neither resumed nor "
                   "checkpointing");
    }
    const auto& runs = root.at("runs").as_array();
    check(!runs.empty(), path + ": no runs recorded");
    for (const JsonValue& run : runs) {
      const std::string scheme = run.at("scheme").as_string();
      check(!scheme.empty(), path + ": run with empty scheme");
      const double rounds = run.at("rounds").as_number();
      check(rounds >= 0, path + ": negative rounds");
      for (const char* key : {"final_accuracy", "best_accuracy"}) {
        const double acc = run.at(key).as_number();
        check(acc >= 0.0 && acc <= 1.0,
              path + ": " + key + " outside [0,1] for " + scheme);
      }
      // time/gigabytes-to-target are null when the target was not reached.
      for (const char* key : {"time_to_target_s", "gigabytes_to_target"}) {
        const JsonValue& v = run.at(key);
        check(v.is_null() || v.as_number() >= 0.0,
              path + ": negative " + key + " for " + scheme);
      }
      run.at("faults").as_object();
      const JsonValue& alerts = run.at("alerts");
      totals.rounds += static_cast<std::uint64_t>(rounds);
      totals.bytes_up +=
          static_cast<std::uint64_t>(run.at("bytes_up").as_number());
      totals.bytes_down +=
          static_cast<std::uint64_t>(run.at("bytes_down").as_number());
      totals.alerts_info +=
          static_cast<std::uint64_t>(alerts.at("info").as_number());
      totals.alerts_warning +=
          static_cast<std::uint64_t>(alerts.at("warning").as_number());
      totals.alerts_critical +=
          static_cast<std::uint64_t>(alerts.at("critical").as_number());
    }
    // The embedded totals must equal the sums over the cells.
    const JsonValue& t = root.at("totals");
    check(static_cast<std::uint64_t>(t.at("rounds").as_number()) ==
              totals.rounds,
          path + ": totals.rounds does not sum over runs");
    check(static_cast<std::uint64_t>(t.at("bytes_up").as_number()) ==
              totals.bytes_up,
          path + ": totals.bytes_up does not sum over runs");
    check(static_cast<std::uint64_t>(t.at("bytes_down").as_number()) ==
              totals.bytes_down,
          path + ": totals.bytes_down does not sum over runs");
    check(static_cast<std::uint64_t>(t.at("alerts_info").as_number()) ==
                  totals.alerts_info &&
              static_cast<std::uint64_t>(
                  t.at("alerts_warning").as_number()) ==
                  totals.alerts_warning &&
              static_cast<std::uint64_t>(
                  t.at("alerts_critical").as_number()) ==
                  totals.alerts_critical,
          path + ": alert totals do not sum over runs");
    std::printf("%s: %zu runs, %llu rounds, outcome %s\n", path.c_str(),
                runs.size(), static_cast<unsigned long long>(totals.rounds),
                outcome.c_str());
    totals.validated = true;
  } catch (const std::exception& e) {
    fail(path + ": " + e.what());
  }
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  fedsu::util::Flags flags;
  flags.add_string("trace", "", "chrome://tracing JSON to validate")
      .add_string("metrics", "", "metrics registry JSON to validate")
      .add_string("telemetry", "", "per-round telemetry JSONL to validate")
      .add_string("alerts", "", "health-monitor alerts JSONL to validate")
      .add_string("manifest", "", "run manifest JSON to validate")
      .add_int("expect-rounds", 0,
               "expected telemetry row count (0 = any non-zero)");
  if (!flags.parse(argc, argv)) return 0;

  const std::string trace = flags.get_string("trace");
  const std::string metrics = flags.get_string("metrics");
  const std::string telemetry = flags.get_string("telemetry");
  const std::string alerts = flags.get_string("alerts");
  const std::string manifest = flags.get_string("manifest");
  if (trace.empty() && metrics.empty() && telemetry.empty() &&
      alerts.empty() && manifest.empty()) {
    std::fprintf(stderr, "nothing to validate (pass --trace / --metrics / "
                         "--telemetry / --alerts / --manifest)\n");
    return 1;
  }
  if (!trace.empty()) validate_trace(trace);
  if (!metrics.empty()) validate_metrics(metrics);
  TelemetryTotals telemetry_totals;
  if (!telemetry.empty()) {
    telemetry_totals = validate_telemetry(
        telemetry, static_cast<int>(flags.get_int("expect-rounds")));
  }
  AlertTotals alert_totals;
  if (!alerts.empty()) alert_totals = validate_alerts(alerts);
  if (!manifest.empty()) {
    const ManifestTotals m = validate_manifest(manifest);
    // Cross-reconciliation (same-run files only): the manifest's aggregates
    // must match what the streams actually recorded.
    if (m.validated && telemetry_totals.rows > 0) {
      check(m.rounds == static_cast<std::uint64_t>(telemetry_totals.rows),
            manifest + ": totals.rounds != telemetry row count");
      check(m.bytes_up == telemetry_totals.bytes_up,
            manifest + ": totals.bytes_up != telemetry sum");
      check(m.bytes_down == telemetry_totals.bytes_down,
            manifest + ": totals.bytes_down != telemetry sum");
    }
    if (m.validated && alert_totals.validated) {
      check(m.alerts_info == alert_totals.info &&
                m.alerts_warning == alert_totals.warning &&
                m.alerts_critical == alert_totals.critical,
            manifest + ": alert totals != raised edges in " + alerts);
    }
  }
  if (g_failures > 0) {
    std::fprintf(stderr, "%d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("all checks passed\n");
  return 0;
}
