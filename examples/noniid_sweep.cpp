// Sweep the Dirichlet concentration alpha to see how FedSU behaves as the
// clients' data distributions go from near-IID (alpha large) to heavily
// skewed (alpha small). The paper runs at alpha = 1 (§VI-A) and notes FL
// accuracy degrades at higher skew; FedSU aims to preserve — not improve —
// whatever accuracy the non-IID level allows, while still sparsifying.
#include <cstdio>

#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "metrics/convergence.h"
#include "util/flags.h"

using namespace fedsu;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("rounds", 30, "FL rounds per alpha")
      .add_int("clients", 8, "number of clients");
  if (!flags.parse(argc, argv)) return 0;

  std::printf("%-8s | %-22s | %-22s\n", "alpha", "FedAvg best acc",
              "FedSU best acc / ratio");
  for (double alpha : {0.1, 0.5, 1.0, 10.0, 100.0}) {
    float accs[2] = {0.0f, 0.0f};
    double ratio = 0.0;
    int which = 0;
    for (const char* scheme : {"fedavg", "fedsu"}) {
      fl::SimulationOptions options;
      options.model = nn::paper_spec("emnist");
      options.dataset = data::synthetic_preset("emnist");
      options.dataset.train_count = 1200;
      options.dataset.noise = 1.0f;
      options.num_clients = static_cast<int>(flags.get_int("clients"));
      options.dirichlet_alpha = alpha;
      options.local.iterations = 10;
      options.local.learning_rate = 0.03f;
      options.eval_every = 2;

      fl::ProtocolConfig protocol;
      protocol.name = scheme;
      protocol.num_clients = options.num_clients;
      fl::Simulation sim(options, fl::make_protocol(protocol));
      const auto records = sim.run(static_cast<int>(flags.get_int("rounds")));
      const metrics::RunSummary summary = metrics::summarize(records);
      accs[which++] = summary.best_accuracy;
      if (std::string(scheme) == "fedsu") {
        ratio = summary.mean_sparsification_ratio;
      }
    }
    std::printf("%-8.1f | %-22.3f | %.3f / %4.1f%%\n", alpha, accs[0], accs[1],
                100.0 * ratio);
  }
  return 0;
}
