// Quickstart: train a small CNN federated across 8 simulated clients with
// FedSU synchronization, and watch accuracy and the sparsification ratio.
//
//   ./quickstart [--rounds N] [--clients N] ...
#include <cstdio>

#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "util/flags.h"
#include "util/thread_pool.h"

using namespace fedsu;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("rounds", 20, "FL rounds to run")
      .add_int("clients", 8, "number of clients")
      .add_int("seed", 42, "random seed")
      .add_int("threads", 0,
               "worker threads (0 = hardware concurrency; results are "
               "identical for any value)");
  if (!flags.parse(argc, argv)) return 0;
  util::ThreadPool::set_global_threads(
      static_cast<int>(flags.get_int("threads")));

  // 1. Describe the workload: model + synthetic dataset + local training.
  fl::SimulationOptions options;
  options.model = nn::paper_spec("emnist");          // the paper's 2-conv CNN
  options.dataset = data::synthetic_preset("emnist");  // EMNIST stand-in
  options.dataset.train_count = 1200;
  options.dataset.noise = 1.0f;
  options.num_clients = static_cast<int>(flags.get_int("clients"));
  options.dirichlet_alpha = 1.0;  // modest non-IID, as in the paper
  options.local.iterations = 10;
  options.local.learning_rate = 0.03f;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.threads = static_cast<int>(flags.get_int("threads"));

  // 2. Pick the synchronization protocol — FedSU with default thresholds.
  fl::ProtocolConfig protocol;
  protocol.name = "fedsu";
  protocol.num_clients = options.num_clients;

  // 3. Run rounds.
  fl::Simulation sim(options, fl::make_protocol(protocol));
  std::printf("model: %s, %zu parameters, %d clients\n",
              options.model.arch.c_str(), sim.model_state_size(),
              options.num_clients);
  for (int r = 0; r < flags.get_int("rounds"); ++r) {
    const fl::RoundRecord record = sim.step();
    std::printf("round %2d: simulated %5.1fs, loss %.3f, sparsification %4.1f%%",
                record.round, record.round_time_s, record.train_loss,
                100.0 * record.sparsification_ratio);
    if (record.test_accuracy) {
      std::printf(", test accuracy %.3f", *record.test_accuracy);
    }
    std::printf("\n");
  }
  std::printf("\ntotal simulated time: %.1fs, final accuracy: %.3f\n",
              sim.elapsed_time_s(), sim.evaluate());
  return 0;
}
