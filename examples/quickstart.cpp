// Quickstart: train a small CNN federated across 8 simulated clients with
// FedSU synchronization, and watch accuracy and the sparsification ratio.
//
//   ./quickstart [--rounds N] [--clients N] ...
//
// Observability ("Inspecting a run" in README.md): pass --metrics-out /
// --trace-out / --telemetry-out to capture counters, a chrome://tracing
// timeline, and per-round JSONL telemetry. With none of them the obs
// subsystem stays off and costs nothing.
#include <cstdio>
#include <memory>

#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/thread_pool.h"

using namespace fedsu;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("rounds", 20, "FL rounds to run")
      .add_int("clients", 8, "number of clients")
      .add_int("seed", 42, "random seed")
      .add_int("threads", 0,
               "worker threads (0 = hardware concurrency; results are "
               "identical for any value)")
      .add_string("obs-level", "auto",
                  "observability level: auto | off | metrics | trace")
      .add_string("metrics-out", "", "write the metrics registry as JSON")
      .add_string("trace-out", "", "write a chrome://tracing timeline JSON")
      .add_string("telemetry-out", "", "write per-round telemetry JSONL")
      .add_bool("async", false,
                "buffered-async rounds: aggregate the first K arrivals, "
                "weight stale updates by 1/(1+s)^alpha (DESIGN.md §11)")
      .add_int("buffer-k", 0,
               "async server buffer size K (0 = half the cohort)")
      .add_double("staleness-alpha", 0.5,
                  "async staleness discount exponent (0 = unweighted)");
  if (!flags.parse(argc, argv)) return 0;
  util::ThreadPool::set_global_threads(
      static_cast<int>(flags.get_int("threads")));

  // Turn instrumentation on only when an output was requested ("auto").
  const std::string metrics_out = flags.get_string("metrics-out");
  const std::string trace_out = flags.get_string("trace-out");
  const std::string telemetry_out = flags.get_string("telemetry-out");
  const std::string obs_level = flags.get_string("obs-level");
  if (obs_level != "auto") {
    obs::set_level(obs::parse_level(obs_level));
  } else if (!trace_out.empty()) {
    obs::set_level(obs::Level::kTrace);
  } else if (!metrics_out.empty() || !telemetry_out.empty()) {
    obs::set_level(obs::Level::kMetrics);
  }

  // 1. Describe the workload: model + synthetic dataset + local training.
  fl::SimulationOptions options;
  options.model = nn::paper_spec("emnist");          // the paper's 2-conv CNN
  options.dataset = data::synthetic_preset("emnist");  // EMNIST stand-in
  options.dataset.train_count = 1200;
  options.dataset.noise = 1.0f;
  options.num_clients = static_cast<int>(flags.get_int("clients"));
  options.dirichlet_alpha = 1.0;  // modest non-IID, as in the paper
  options.local.iterations = 10;
  options.local.learning_rate = 0.03f;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.threads = static_cast<int>(flags.get_int("threads"));
  options.async.enabled = flags.get_bool("async");
  options.async.buffer_k = static_cast<int>(flags.get_int("buffer-k"));
  options.async.staleness_alpha = flags.get_double("staleness-alpha");

  // 2. Pick the synchronization protocol — FedSU with default thresholds.
  fl::ProtocolConfig protocol;
  protocol.name = "fedsu";
  protocol.num_clients = options.num_clients;

  // 3. Run rounds.
  fl::Simulation sim(options, fl::make_protocol(protocol));
  std::unique_ptr<obs::TelemetryWriter> telemetry;
  if (!telemetry_out.empty()) {
    telemetry = std::make_unique<obs::TelemetryWriter>(telemetry_out, "fedsu");
    sim.set_round_hook(telemetry->hook());
  }
  std::printf("model: %s, %zu parameters, %d clients\n",
              options.model.arch.c_str(), sim.model_state_size(),
              options.num_clients);
  for (int r = 0; r < flags.get_int("rounds"); ++r) {
    const fl::RoundRecord record = sim.step();
    std::printf("round %2d: simulated %5.1fs, loss %.3f, sparsification %4.1f%%",
                record.round, record.round_time_s, record.train_loss,
                100.0 * record.sparsification_ratio);
    if (record.test_accuracy) {
      std::printf(", test accuracy %.3f", *record.test_accuracy);
    }
    std::printf("\n");
  }
  std::printf("\ntotal simulated time: %.1fs, final accuracy: %.3f\n",
              sim.elapsed_time_s(), sim.evaluate());

  // 4. Export whatever observability outputs were requested.
  if (!metrics_out.empty()) {
    obs::MetricsRegistry::global().write_json(metrics_out);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    obs::Tracer::global().write_chrome_json(trace_out);
    std::printf("trace written to %s\n", trace_out.c_str());
  }
  return 0;
}
