// System dynamicity (paper §V): clients join and leave mid-training.
//
// A late joiner under FedSU must download the current model PLUS the
// predictability mask, no-checking periods and slopes so its local replica
// of the manager state matches everyone else's. This example shows the join
// payload and that training continues smoothly through churn.
#include <cstdio>

#include "core/fedsu_manager.h"
#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "util/flags.h"

using namespace fedsu;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("rounds", 36, "total FL rounds");
  if (!flags.parse(argc, argv)) return 0;
  const int rounds = static_cast<int>(flags.get_int("rounds"));

  fl::SimulationOptions options;
  options.model = nn::paper_spec("emnist");
  options.dataset = data::synthetic_preset("emnist");
  options.dataset.train_count = 1200;
  options.dataset.noise = 1.0f;
  options.num_clients = 6;
  options.local.iterations = 10;
  options.local.learning_rate = 0.03f;
  options.eval_every = 3;

  fl::ProtocolConfig protocol;
  protocol.name = "fedsu";
  protocol.num_clients = options.num_clients;
  fl::Simulation sim(options, fl::make_protocol(protocol));

  for (int r = 0; r < rounds; ++r) {
    if (r == rounds / 3) {
      // A new device joins with its own local data.
      data::SyntheticSpec spec = options.dataset;
      spec.seed ^= 0xD1CE;
      spec.train_count = 200;
      auto extra = data::generate_synthetic(spec);
      const auto [id, join_bytes] = sim.add_client(std::move(extra.train));
      const std::size_t model_bytes = sim.model_state_size() * sizeof(float);
      std::printf(">> round %d: client %d joined; downloaded %zu bytes "
                  "(model %zu + FedSU masks/periods/slopes %zu)\n",
                  r, id, join_bytes, model_bytes, join_bytes - model_bytes);
    }
    if (r == 2 * rounds / 3) {
      sim.drop_client(0);
      std::printf(">> round %d: client 0 dropped out\n", r);
    }
    const fl::RoundRecord record = sim.step();
    if (record.test_accuracy) {
      std::printf("round %2d: %d participants, acc %.3f, ratio %4.1f%%\n",
                  record.round, record.num_participants, *record.test_accuracy,
                  100.0 * record.sparsification_ratio);
    }
  }
  std::printf("final accuracy: %.3f\n", sim.evaluate());
  return 0;
}
