// Stop-and-resume: checkpoint an FL run (model + FedSU manager state) to a
// file, then restore it into a fresh process-equivalent simulation and keep
// training. FedSU's masks, no-checking periods, slopes and EMA statistics
// all survive the restart — without them a restarted run would have to
// re-learn every speculation decision from scratch.
#include <cstdio>

#include "core/fedsu_manager.h"
#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "io/checkpoint.h"
#include "util/flags.h"

using namespace fedsu;

namespace {

fl::SimulationOptions workload() {
  fl::SimulationOptions options;
  options.model = nn::paper_spec("emnist");
  options.dataset = data::synthetic_preset("emnist");
  options.dataset.train_count = 1200;
  options.dataset.noise = 1.0f;
  options.num_clients = 8;
  options.local.iterations = 10;
  options.local.learning_rate = 0.03f;
  options.eval_every = 4;
  return options;
}

fl::ProtocolConfig fedsu_config() {
  fl::ProtocolConfig config;
  config.name = "fedsu";
  config.num_clients = 8;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("rounds", 12, "rounds before AND after the restart")
      .add_string("path", "/tmp/fedsu_example_checkpoint.bin",
                  "checkpoint file path");
  if (!flags.parse(argc, argv)) return 0;
  const int rounds = static_cast<int>(flags.get_int("rounds"));
  const std::string path = flags.get_string("path");

  // Phase 1: train, then checkpoint.
  double mask_fraction = 0.0;
  {
    auto proto = fl::make_protocol(fedsu_config());
    auto* manager = dynamic_cast<core::FedSuManager*>(proto.get());
    fl::Simulation sim(workload(), std::move(proto));
    sim.run(rounds);
    mask_fraction = manager->predictable_fraction();
    const io::Checkpoint checkpoint = io::make_checkpoint(
        *manager, sim.global_state(), sim.rounds_completed(),
        sim.elapsed_time_s());
    io::save_checkpoint(checkpoint, path);
    std::printf("phase 1: %d rounds trained, accuracy %.3f, "
                "%.1f%% of parameters speculative\n",
                sim.rounds_completed(), sim.evaluate(),
                100.0 * mask_fraction);
    std::printf("checkpoint written to %s (%zu model scalars, %zu protocol "
                "snapshot bytes)\n",
                path.c_str(), checkpoint.model_state.size(),
                checkpoint.protocol_snapshot.size());
  }

  // Phase 2: fresh simulation, restore, continue.
  {
    const io::Checkpoint checkpoint = io::load_checkpoint(path);
    auto proto = fl::make_protocol(fedsu_config());
    auto* manager = dynamic_cast<core::FedSuManager*>(proto.get());
    fl::Simulation sim(workload(), std::move(proto));
    sim.protocol().restore(checkpoint.protocol_snapshot);
    sim.load_global_state(checkpoint.model_state);
    std::printf("\nphase 2: restored round %d, %.1f%% of parameters "
                "speculative (was %.1f%%)\n",
                checkpoint.round, 100.0 * manager->predictable_fraction(),
                100.0 * mask_fraction);
    sim.run(rounds);
    std::printf("phase 2: +%d rounds, accuracy %.3f, %.1f%% speculative\n",
                rounds, sim.evaluate(), 100.0 * manager->predictable_fraction());
  }
  std::remove(path.c_str());
  return 0;
}
