// Compare every bundled synchronization protocol on the same federated
// workload: accuracy, simulated time, and data moved.
//
// This is a light version of the paper's Table I that also covers the
// extra related-work baselines (Top-K, QSGD).
#include <cstdio>

#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "metrics/convergence.h"
#include "util/flags.h"

using namespace fedsu;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("rounds", 30, "FL rounds per scheme")
      .add_int("clients", 8, "number of clients")
      .add_string("dataset", "emnist", "emnist | fmnist | cifar")
      .add_double("bandwidth-mbps", 0.25, "client link bandwidth");
  if (!flags.parse(argc, argv)) return 0;

  std::printf("%-10s %10s %12s %14s %12s\n", "scheme", "best acc",
              "sim time (s)", "data moved (MB)", "mean ratio");
  for (const auto& name : fl::known_protocols()) {
    fl::SimulationOptions options;
    options.model = nn::paper_spec(flags.get_string("dataset"));
    options.dataset = data::synthetic_preset(flags.get_string("dataset"));
    if (options.model.arch == "resnet") {
      options.model.image_size = options.dataset.image_size = 14;
    } else if (options.model.arch == "densenet") {
      options.model.image_size = options.dataset.image_size = 16;
    }
    options.dataset.train_count = 1200;
    options.dataset.noise = 1.0f;
    options.num_clients = static_cast<int>(flags.get_int("clients"));
    options.local.iterations = 10;
    options.local.learning_rate = 0.03f;
    options.network.client_bandwidth_bps =
        flags.get_double("bandwidth-mbps") * 1e6;
    options.eval_every = 2;

    fl::ProtocolConfig protocol;
    protocol.name = name;
    protocol.num_clients = options.num_clients;

    fl::Simulation sim(options, fl::make_protocol(protocol));
    const auto records = sim.run(static_cast<int>(flags.get_int("rounds")));
    const metrics::RunSummary summary = metrics::summarize(records);
    std::printf("%-10s %10.3f %12.1f %14.2f %12.3f\n", name.c_str(),
                summary.best_accuracy, summary.total_time_s,
                summary.total_gigabytes * 1e3,
                summary.mean_sparsification_ratio);
  }
  return 0;
}
