// The paper's deployment architecture (Fig. 4): every client runs its own
// FedSU_Manager replica; the server only averages positional payloads.
// Masks, periods and slopes are never transmitted — each client derives
// them from the globally-identical post-sync state.
//
// This example wires per-client managers to real local training (unlike the
// simulator's centralized FedSuManager, which sees all states at once) and
// shows the wire bytes shrinking as speculation kicks in.
#include <cstdio>

#include "core/distributed.h"
#include "data/loader.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "nn/zoo.h"
#include "util/flags.h"

using namespace fedsu;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("rounds", 25, "FL rounds").add_int("clients", 4, "clients");
  if (!flags.parse(argc, argv)) return 0;
  const int rounds = static_cast<int>(flags.get_int("rounds"));
  const int num_clients = static_cast<int>(flags.get_int("clients"));

  // Data + per-client shards.
  data::SyntheticSpec dspec = data::synthetic_preset("emnist");
  dspec.train_count = 800;
  dspec.noise = 1.0f;
  const auto data = data::generate_synthetic(dspec);
  data::PartitionOptions part;
  part.num_clients = num_clients;
  const auto shards = data::dirichlet_partition(data.train, part);

  // One model replica + one FedSU manager + one trainer per client.
  nn::ModelSpec mspec = nn::paper_spec("emnist");
  std::vector<nn::Model> models;
  std::vector<core::FedSuClientManager> managers;
  std::vector<std::unique_ptr<fl::Client>> trainers;
  util::Rng rng(11);
  for (int i = 0; i < num_clients; ++i) {
    nn::ModelSpec spec = mspec;
    models.push_back(nn::build_model(spec, util::Rng(7)));  // identical init
    core::FedSuOptions options;
    options.t_r = 0.05;
    options.t_s = 2.0;
    options.initial_no_check = 2;
    managers.emplace_back(models.back().state_size(), options);
    managers.back().initialize(models.back().state_vector());
    trainers.push_back(std::make_unique<fl::Client>(
        i, data.train.subset(shards[static_cast<std::size_t>(i)]), 16,
        rng.fork(static_cast<std::uint64_t>(i))));
  }
  core::FedSuServer server;

  fl::LocalTrainOptions local;
  local.iterations = 10;
  local.learning_rate = 0.03f;

  const std::size_t dense_bytes =
      models[0].state_size() * sizeof(float);
  std::printf("%d clients, %zu parameters, dense payload %zu bytes\n\n",
              num_clients, models[0].state_size(), dense_bytes);

  for (int round = 0; round < rounds; ++round) {
    // Each client trains locally, then begins its sync.
    std::vector<core::FedSuUpload> uploads;
    for (int i = 0; i < num_clients; ++i) {
      trainers[static_cast<std::size_t>(i)]->train_round(
          models[static_cast<std::size_t>(i)], local);
      uploads.push_back(managers[static_cast<std::size_t>(i)].begin_sync(
          models[static_cast<std::size_t>(i)].state_vector()));
    }
    // Central server: positional averaging (Algorithm 1 lines 1-4 server
    // side). All payloads are identically shaped because masks agree.
    const core::FedSuDownload download = server.aggregate(uploads);
    // Each client finishes its sync and reloads its model.
    for (int i = 0; i < num_clients; ++i) {
      const std::vector<float> next =
          managers[static_cast<std::size_t>(i)].finish_sync(download);
      models[static_cast<std::size_t>(i)].load_state_vector(next);
    }
    if (round % 5 == 4 || round == 0) {
      std::printf("round %2d: upload %6zu bytes/client (%4.1f%% of dense), "
                  "mask %4.1f%% speculative\n",
                  round, uploads[0].wire_bytes(),
                  100.0 * uploads[0].wire_bytes() / dense_bytes,
                  100.0 * managers[0].predictable_fraction());
    }
  }
  // All replicas hold the same state — pick any for a final sanity print.
  std::printf("\nall %d client replicas identical: %s\n", num_clients,
              managers[0].state() == managers[1].state() ? "yes" : "NO");
  return 0;
}
