// Extending the library: plug a custom synchronization protocol into the
// simulator by implementing compress::SyncProtocol.
//
// The demo protocol synchronizes a random subset of coordinates each round
// ("random-k") — a strawman that shows exactly which hooks a real protocol
// (like FedSU) implements: initialize(), synchronize() with byte accounting,
// and the sparsification-ratio metric.
#include <cstdio>

#include "compress/fedavg.h"
#include "compress/protocol.h"
#include "fl/simulation.h"
#include "metrics/convergence.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace fedsu;

namespace {

class RandomK : public compress::SyncProtocol {
 public:
  explicit RandomK(double fraction, std::uint64_t seed = 99)
      : fraction_(fraction), rng_(seed) {}

  std::string name() const override { return "RandomK"; }

  void initialize(std::span<const float> global_state) override {
    global_.assign(global_state.begin(), global_state.end());
  }

  compress::SyncResult synchronize(
      const compress::RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override {
    const std::size_t p = global_.size();
    const std::size_t n = client_states.size();
    (void)ctx;
    std::vector<float> new_global = global_;
    std::size_t synced = 0;
    for (std::size_t j = 0; j < p; ++j) {
      if (!rng_.bernoulli(fraction_)) continue;  // skip this coordinate
      ++synced;
      double acc = 0.0;
      for (const auto& s : client_states) acc += s[j];
      new_global[j] = static_cast<float>(acc / static_cast<double>(n));
    }
    global_ = new_global;
    compress::SyncResult result;
    result.new_global = std::move(new_global);
    result.bytes_up.assign(n, synced * sizeof(float));
    result.bytes_down.assign(n, synced * sizeof(float));
    result.scalars_up = result.scalars_down = synced * n;
    last_ratio_ = p == 0 ? 0.0 : 1.0 - double(synced) / double(p);
    return result;
  }

  double last_sparsification_ratio() const override { return last_ratio_; }

 private:
  double fraction_;
  util::Rng rng_;
  std::vector<float> global_;
  double last_ratio_ = 0.0;
};

fl::SimulationOptions workload() {
  fl::SimulationOptions options;
  options.model = nn::paper_spec("emnist");
  options.dataset = data::synthetic_preset("emnist");
  options.dataset.train_count = 1200;
  options.dataset.noise = 1.0f;
  options.num_clients = 8;
  options.local.iterations = 10;
  options.local.learning_rate = 0.03f;
  options.eval_every = 2;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("rounds", 30, "FL rounds")
      .add_double("fraction", 0.3, "random-k synchronized fraction");
  if (!flags.parse(argc, argv)) return 0;
  const int rounds = static_cast<int>(flags.get_int("rounds"));

  // Custom protocol run...
  fl::Simulation random_sim(
      workload(), std::make_unique<RandomK>(flags.get_double("fraction")));
  const auto random_records = random_sim.run(rounds);
  // ...against full synchronization.
  fl::Simulation fedavg_sim(workload(), std::make_unique<compress::FedAvg>());
  const auto fedavg_records = fedavg_sim.run(rounds);

  const auto random_summary = metrics::summarize(random_records);
  const auto fedavg_summary = metrics::summarize(fedavg_records);
  std::printf("RandomK(%.0f%%): best acc %.3f, sim time %.1fs\n",
              100.0 * flags.get_double("fraction"),
              random_summary.best_accuracy, random_summary.total_time_s);
  std::printf("FedAvg:       best acc %.3f, sim time %.1fs\n",
              fedavg_summary.best_accuracy, fedavg_summary.total_time_s);
  std::printf("\nRandom sparsification trades accuracy for bytes blindly; "
              "FedSU (see quickstart) chooses WHICH coordinates to skip using "
              "trajectory linearity, keeping accuracy intact.\n");
  return 0;
}
