// Scaling bench: cohort size vs host memory and per-round wall phases —
// FedSU vs FedAvg vs Top-k across a client ladder (8 .. 1024 by default).
// The question it answers: does the zero-copy shard / sparse-error-slab
// design keep an N-client simulation's footprint sub-linear in N, and where
// does the round's wall time go as the cohort grows (DESIGN.md §13)?
//
// Each (cohort, scheme) cell reports:
//   * measured memory while the cohort is live — peak RSS, current RSS,
//     live heap (obs::sample_memory), plus the heap delta attributable to
//     constructing the simulation itself (`heap_sim_bytes`);
//   * the analytic footprint of the pre-scaling design for the same cell —
//     one shard copy per client (`legacy_shard_bytes`) and the dense
//     clients x params error matrix (`legacy_error_bytes`, FedSU only) —
//     the before/after comparison the acceptance bar asks for;
//   * per-round wall-phase means from the OBS_SPAN tracer (select / train /
//     sync / timing / eval), traffic, simulated time, and accuracy.
//
// Cells run in ascending client order because peak RSS is monotone over the
// process lifetime: each cell's peak is then attributable to the largest
// cohort seen so far, i.e. to itself. train-count scales with the cohort
// (>= 4 samples per client) so the Dirichlet partition never starves.
//
// Results land in BENCH_scale.json (self-reparsed through obs::json_parse
// as a schema check, same as bench_robustness). --smoke shrinks the ladder
// to {8, 32} with a tiny workload for CI; tools/obs_report --diff gates
// cells on time/bytes/accuracy and, via the "memory" object, peak RSS.
//
// Usage: bench_scale [--out BENCH_scale.json] [--clients-list 8,32,...]
//                    [--smoke] [+ the shared workload flags]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.h"
#include "obs/json.h"
#include "obs/memory.h"

namespace {

using fedsu::bench::BenchConfig;

std::vector<int> parse_ladder(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int v = std::stoi(item);
    if (v <= 0) throw std::invalid_argument("clients-list: need positive ints");
    if (!out.empty() && v <= out.back()) {
      throw std::invalid_argument(
          "clients-list: must be strictly ascending (peak RSS is monotone)");
    }
    out.push_back(v);
  }
  if (out.empty()) throw std::invalid_argument("clients-list: empty");
  return out;
}

// Mean wall milliseconds per round for one "sim.*" phase, from the tracer
// events of a single cell (the tracer is reset per cell).
double phase_ms_per_round(const std::vector<fedsu::obs::PhaseTotal>& totals,
                          const char* name, int rounds) {
  for (const auto& t : totals) {
    if (t.name == name) return rounds > 0 ? t.total_ms / rounds : 0.0;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig defaults;
  defaults.rounds = 4;
  defaults.iterations = 2;
  defaults.batch = 8;
  defaults.train_count = 1024;  // floor; raised to 4 x clients per cell
  defaults.test_count = 256;
  defaults.eval_every = 4;
  // Phase means come from the OBS_SPAN tracer, so tracing defaults on here
  // (§5b: observation never perturbs results — only the wall clock).
  defaults.obs_level = "trace";
  fedsu::util::Flags flags = fedsu::bench::make_flags(defaults);
  flags.add_string("out", "BENCH_scale.json", "output JSON path")
      .add_string("clients-list", "8,32,128,512,1024",
                  "ascending cohort ladder (comma-separated)")
      .add_bool("smoke", false, "CI mode: tiny workload, ladder {8,32}");
  if (!flags.parse(argc, argv)) return 0;

  BenchConfig config = fedsu::bench::config_from_flags(flags);
  std::vector<int> ladder = parse_ladder(flags.get_string("clients-list"));
  if (flags.get_bool("smoke")) {
    ladder = {8, 32};
    config.rounds = 3;
    config.train_count = 256;
    config.test_count = 96;
    config.iterations = 2;
    config.eval_every = 3;
  }
  const std::vector<std::string> schemes = {"fedsu", "fedavg", "topk"};

  fedsu::bench::RunObservatory observatory(config, "bench_scale", &flags);

  fedsu::bench::print_header("Scale: cohort size vs memory and wall phases");
  std::printf("%-8s %-8s %9s %9s %9s %9s %9s %7s\n", "clients", "scheme",
              "peakMB", "heapMB", "simMB", "legacyMB", "wall_s", "acc");

  std::ostringstream cells;
  int cell_count = 0;
  for (const int clients : ladder) {
    for (const std::string& scheme : schemes) {
      BenchConfig cell_config = config;
      cell_config.clients = clients;
      // >= 4 samples per client keeps every Dirichlet shard non-empty
      // enough to train on; smaller cohorts keep the configured count.
      cell_config.train_count = std::max(config.train_count, 4 * clients);
      const std::string setting = "c" + std::to_string(clients);
      const std::string label = setting + "/" + scheme;

      fedsu::obs::Tracer::global().reset();
      const fedsu::obs::MemoryStats before = fedsu::obs::sample_memory();

      fedsu::fl::Simulation sim(
          fedsu::bench::simulation_options(cell_config),
          fedsu::fl::make_protocol(
              fedsu::bench::protocol_config(cell_config, scheme)));
      const fedsu::obs::MemoryStats built = fedsu::obs::sample_memory();

      fedsu::bench::SchemeRun run;
      run.scheme = scheme;
      run.threads =
          fedsu::util::ThreadPool::resolve_threads(cell_config.threads);
      observatory.begin_scheme(sim, label);
      fedsu::util::Stopwatch wall;
      for (int r = 0; r < cell_config.rounds; ++r) {
        run.records.push_back(sim.step());
        observatory.after_round(sim, run.records.back());
      }
      run.wall_seconds = wall.elapsed_seconds();
      run.summary = fedsu::metrics::summarize(run.records);
      // Sampled while the cohort is still alive: this is the number the
      // sweep exists to measure (run_scheme would destroy the simulation
      // before we could look).
      const fedsu::obs::MemoryStats live = fedsu::obs::record_memory_gauges();
      observatory.record(run, setting);

      const std::size_t params = sim.model_state_size();
      // What the pre-scaling design would hold for this cell: one private
      // shard copy per client (the partition covers the train set exactly
      // once, so the copies sum to one extra train set) ...
      const fedsu::fl::SimulationOptions opts =
          fedsu::bench::simulation_options(cell_config);
      const std::uint64_t sample_bytes =
          static_cast<std::uint64_t>(opts.dataset.channels) *
          opts.dataset.image_size * opts.dataset.image_size * sizeof(float);
      const std::uint64_t legacy_shard_bytes =
          static_cast<std::uint64_t>(cell_config.train_count) * sample_bytes;
      // ... plus, for FedSU, the dense clients x params error matrix the
      // sparse slab store replaced.
      const std::uint64_t legacy_error_bytes =
          scheme == "fedsu"
              ? static_cast<std::uint64_t>(clients) * params * sizeof(float)
              : 0;
      const std::uint64_t heap_sim_bytes =
          built.heap_live_bytes > before.heap_live_bytes
              ? built.heap_live_bytes - before.heap_live_bytes
              : 0;

      const auto phases = fedsu::obs::Tracer::global().aggregate();
      const int rounds = run.summary.rounds;

      std::uint64_t bytes_up = 0, bytes_down = 0;
      for (const auto& r : run.records) {
        bytes_up += r.bytes_up;
        bytes_down += r.bytes_down;
      }

      std::printf("%-8d %-8s %9.1f %9.1f %9.1f %9.1f %9.2f %6.1f%%\n",
                  clients, scheme.c_str(), live.peak_rss_bytes / 1e6,
                  live.heap_live_bytes / 1e6, heap_sim_bytes / 1e6,
                  (legacy_shard_bytes + legacy_error_bytes) / 1e6,
                  run.wall_seconds, 100.0 * run.summary.final_accuracy);

      cells << (cell_count++ ? ",\n" : "\n") << "    {\"setting\": "
            << fedsu::obs::json_quote(setting) << ", \"scheme\": "
            << fedsu::obs::json_quote(scheme) << ", \"clients\": " << clients
            << ", \"params\": " << params
            << ", \"train_count\": " << cell_config.train_count
            << ", \"rounds\": " << rounds << ", \"total_time_s\": "
            << fedsu::obs::json_number(run.summary.total_time_s)
            << ", \"wall_seconds\": "
            << fedsu::obs::json_number(run.wall_seconds)
            << ", \"total_gigabytes\": "
            << fedsu::obs::json_number(run.summary.total_gigabytes)
            << ", \"final_accuracy\": "
            << fedsu::obs::json_number(run.summary.final_accuracy)
            << ", \"best_accuracy\": "
            << fedsu::obs::json_number(run.summary.best_accuracy)
            << ", \"bytes_up\": " << bytes_up
            << ", \"bytes_down\": " << bytes_down
            << ", \"memory\": {\"peak_rss_bytes\": " << live.peak_rss_bytes
            << ", \"current_rss_bytes\": " << live.current_rss_bytes
            << ", \"heap_live_bytes\": " << live.heap_live_bytes
            << ", \"heap_sim_bytes\": " << heap_sim_bytes
            << ", \"legacy_shard_bytes\": " << legacy_shard_bytes
            << ", \"legacy_error_bytes\": " << legacy_error_bytes << "}"
            << ", \"phases_ms_per_round\": {\"select\": "
            << fedsu::obs::json_number(
                   phase_ms_per_round(phases, "sim.select", rounds))
            << ", \"train\": "
            << fedsu::obs::json_number(
                   phase_ms_per_round(phases, "sim.train", rounds))
            << ", \"sync\": "
            << fedsu::obs::json_number(
                   phase_ms_per_round(phases, "sim.sync", rounds))
            << ", \"timing\": "
            << fedsu::obs::json_number(
                   phase_ms_per_round(phases, "sim.timing", rounds))
            << ", \"eval\": "
            << fedsu::obs::json_number(
                   phase_ms_per_round(phases, "sim.eval", rounds))
            << "}}";
    }
  }

  std::ostringstream doc;
  doc << "{\n  \"bench\": \"scale\",\n  \"dataset\": "
      << fedsu::obs::json_quote(config.dataset)
      << ",\n  \"rounds\": " << config.rounds
      << ",\n  \"threads\": "
      << fedsu::util::ThreadPool::resolve_threads(config.threads)
      << ",\n  \"smoke\": " << (flags.get_bool("smoke") ? "true" : "false")
      << ",\n  \"cells\": [" << cells.str() << "\n  ]\n}\n";

  // Schema self-check before touching the checked-in file (bench_gemm
  // idiom): a broken emitter must never overwrite a good artifact.
  try {
    const fedsu::obs::JsonValue parsed = fedsu::obs::json_parse(doc.str());
    const auto& parsed_cells = parsed.at("cells").as_array();
    const std::size_t expected = ladder.size() * schemes.size();
    if (parsed_cells.size() != expected) {
      throw std::runtime_error("expected " + std::to_string(expected) +
                               " cells");
    }
    for (const auto& cell : parsed_cells) {
      cell.at("setting").as_string();
      cell.at("scheme").as_string();
      cell.at("clients").as_number();
      cell.at("total_gigabytes").as_number();
      cell.at("final_accuracy").as_number();
      cell.at("memory").at("peak_rss_bytes").as_number();
      cell.at("memory").at("legacy_shard_bytes").as_number();
      cell.at("phases_ms_per_round").at("train").as_number();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL: emitted JSON failed schema check: %s\n",
                 e.what());
    return 1;
  }

  const std::string out_path = flags.get_string("out");
  std::ofstream out(out_path);
  out << doc.str();
  if (!out) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  observatory.finish(/*ok=*/true);
  fedsu::bench::export_observability(config);
  return 0;
}
