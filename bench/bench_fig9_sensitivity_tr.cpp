// Fig. 9: sensitivity to the linearity-diagnosis threshold T_R.
//
// Paper shape to reproduce: looser T_R -> larger sparsification ratio and
// larger communication speedup; accuracy is largely insensitive thanks to
// the error-feedback mechanism, with only the loosest setting showing a
// slight degradation.
#include <cstdio>
#include <sstream>

#include "common.h"
#include "util/csv.h"

using namespace fedsu;

int main(int argc, char** argv) {
  bench::BenchConfig defaults;
  defaults.rounds = 50;
  util::Flags flags = bench::make_flags(defaults);
  flags.add_string("tr-values", "0.2,0.05,0.01,0.001",
                   "comma list of T_R values to sweep");
  if (!flags.parse(argc, argv)) return 0;
  bench::BenchConfig base = bench::config_from_flags(flags);
  base.eval_every = std::max(1, base.eval_every);

  std::vector<double> values;
  std::stringstream ss(flags.get_string("tr-values"));
  for (std::string item; std::getline(ss, item, ',');) {
    values.push_back(std::stod(item));
  }

  bench::print_header("Fig. 9: FedSU sensitivity to T_R (" + base.dataset + ")");
  std::unique_ptr<util::CsvWriter> csv;
  if (!base.csv_dir.empty()) {
    csv = std::make_unique<util::CsvWriter>(base.csv_dir + "/fig9.csv");
    csv->write_row({"t_r", "best_accuracy", "mean_spars_ratio",
                    "final_spars_ratio", "total_time_s", "gigabytes"});
  }
  std::printf("%-10s %10s %12s %12s %12s %10s\n", "T_R", "best acc",
              "mean ratio", "final ratio", "total t (s)", "GB moved");
  for (double tr : values) {
    bench::BenchConfig config = base;
    config.t_r = tr;
    const bench::SchemeRun run = bench::run_scheme(config, "fedsu");
    const double final_ratio =
        run.records.empty() ? 0.0 : run.records.back().sparsification_ratio;
    std::printf("%-10.4f %10.3f %12.3f %12.3f %12.1f %10.4f\n", tr,
                run.summary.best_accuracy,
                run.summary.mean_sparsification_ratio, final_ratio,
                run.summary.total_time_s, run.summary.total_gigabytes);
    if (csv) {
      csv->write_row({util::CsvWriter::field(tr),
                      util::CsvWriter::field(run.summary.best_accuracy),
                      util::CsvWriter::field(run.summary.mean_sparsification_ratio),
                      util::CsvWriter::field(final_ratio),
                      util::CsvWriter::field(run.summary.total_time_s),
                      util::CsvWriter::field(run.summary.total_gigabytes)});
    }
  }
  return 0;
}
