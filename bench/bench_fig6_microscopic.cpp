// Fig. 6: microscopic trajectory of one parameter under FedSU vs a FedAvg
// reference run, with the speculative-phase start (green dot) / end (red
// cross) rounds marked.
//
// Paper shape to reproduce: the FedSU trajectory tracks the FedAvg one
// closely; speculation phases cover long stretches and end promptly when
// the linear pattern breaks (the correction snaps the value back).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common.h"
#include "core/fedsu_manager.h"
#include "metrics/stats.h"
#include "util/csv.h"

using namespace fedsu;

int main(int argc, char** argv) {
  bench::BenchConfig defaults;
  defaults.rounds = 45;
  util::Flags flags = bench::make_flags(defaults);
  if (!flags.parse(argc, argv)) return 0;
  bench::BenchConfig config = bench::config_from_flags(flags);
  config.eval_every = 0;

  // FedSU run with the event hook capturing speculation phases.
  auto proto = fl::make_protocol(bench::protocol_config(config, "fedsu"));
  auto* manager = dynamic_cast<core::FedSuManager*>(proto.get());
  std::map<std::size_t, std::vector<std::pair<int, bool>>> events;
  manager->set_event_hook([&](const core::SpecEvent& e) {
    events[e.param].emplace_back(e.round, e.start);
  });
  fl::Simulation fedsu_sim(bench::simulation_options(config), std::move(proto));
  std::vector<std::vector<float>> fedsu_states{fedsu_sim.global_state()};
  for (int r = 0; r < config.rounds; ++r) {
    fedsu_sim.step();
    fedsu_states.push_back(fedsu_sim.global_state());
  }

  // Pick the parameter with the most speculation activity (most paper-like).
  std::size_t best_param = 0;
  std::size_t best_events = 0;
  const auto& rounds_linear = manager->linear_rounds();
  for (const auto& [param, evs] : events) {
    const std::size_t score =
        evs.size() + static_cast<std::size_t>(rounds_linear[param]);
    if (score > best_events) {
      best_events = score;
      best_param = param;
    }
  }

  // FedAvg reference with identical seeds.
  fl::Simulation fedavg_sim(bench::simulation_options(config),
                            fl::make_protocol(bench::protocol_config(config,
                                                                     "fedavg")));
  std::vector<std::vector<float>> fedavg_states{fedavg_sim.global_state()};
  for (int r = 0; r < config.rounds; ++r) {
    fedavg_sim.step();
    fedavg_states.push_back(fedavg_sim.global_state());
  }

  bench::print_header("Fig. 6: microscopic trajectory (" + config.dataset +
                      ", state index " + std::to_string(best_param) + ")");
  const auto& param_events = events[best_param];
  double max_gap = 0.0;
  for (std::size_t r = 0; r < fedsu_states.size(); ++r) {
    const float su = fedsu_states[r][best_param];
    const float avg = fedavg_states[r][best_param];
    max_gap = std::max(max_gap, static_cast<double>(std::fabs(su - avg)));
    std::string marker;
    for (const auto& [round, start] : param_events) {
      if (round == static_cast<int>(r) - 1) {
        marker += start ? "  <- speculation starts" : "  <- speculation ends";
      }
    }
    std::printf("  round %3zu  fedsu % .6f  fedavg % .6f%s\n", r, su, avg,
                marker.c_str());
  }
  std::printf("speculation phases: %zu events, %d rounds speculative, "
              "max |fedsu - fedavg| gap %.5f\n",
              param_events.size(), rounds_linear[best_param], max_gap);

  if (!config.csv_dir.empty()) {
    util::CsvWriter csv(config.csv_dir + "/fig6.csv");
    csv.write_row({"round", "fedsu", "fedavg"});
    for (std::size_t r = 0; r < fedsu_states.size(); ++r) {
      csv.write_row({std::to_string(r),
                     util::CsvWriter::field(fedsu_states[r][best_param]),
                     util::CsvWriter::field(fedavg_states[r][best_param])});
    }
  }
  return 0;
}
