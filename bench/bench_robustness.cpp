// Robustness bench: time-to-accuracy and traffic under fault injection
// (fl/faults, docs/FAULT_MODEL.md) — FedSU vs FedAvg vs Top-k across a
// ladder of churn / straggler / loss settings. The question it answers:
// does speculation's saved traffic survive a hostile network, and how much
// simulated time do crashes, retries, and quorum stalls cost each scheme?
//
// Each (setting, scheme) cell reports the accuracy target crossing (time
// and rounds), total traffic, final accuracy, and the run's aggregate fault
// tallies. Results land in BENCH_robustness.json (self-reparsed through
// obs::json_parse as a schema check, same as bench_gemm).
//
// With --async the same ladder runs under buffered-async execution
// (DESIGN.md §11): cells gain an "async-" prefix and the bench additionally
// checks the cumulative dispatch reconciliation (dispatched == consumed +
// lost + corrupt + deadline-missed + unused + in-flight at end) plus the
// per-cycle staleness-histogram invariant.
//
// Usage: bench_robustness [--out BENCH_robustness.json] [--target 0.55]
//                         [--smoke] [--async] [--buffer-k K]
//                         [+ the shared workload flags]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.h"
#include "obs/json.h"

namespace {

using fedsu::bench::BenchConfig;
using fedsu::fl::FaultOptions;

struct Setting {
  std::string name;
  FaultOptions faults;
};

// The ladder: a clean baseline, then each fault family alone, then all of
// them at once. Rates are per-(round, client); the acceptance bar of >= 3
// churn/straggler settings is met by churn / stragglers / combined.
std::vector<Setting> settings(const FaultOptions& base) {
  std::vector<Setting> out;
  out.push_back({"baseline", {}});

  FaultOptions churn = base;
  churn.crash_probability = 0.08;
  churn.crash_rounds_max = 3;
  out.push_back({"churn", churn});

  FaultOptions stragglers = base;
  stragglers.straggler_probability = 0.25;
  stragglers.straggler_compute_factor = 4.0;
  stragglers.straggler_comm_factor = 4.0;
  out.push_back({"stragglers", stragglers});

  FaultOptions lossy = base;
  lossy.upload_loss_probability = 0.25;
  lossy.max_retries = 2;
  lossy.retry_backoff_s = 0.5;
  lossy.corruption_probability = 0.05;
  out.push_back({"lossy", lossy});

  FaultOptions combined = base;
  combined.crash_probability = 0.05;
  combined.crash_rounds_max = 2;
  combined.straggler_probability = 0.15;
  combined.straggler_compute_factor = 3.0;
  combined.straggler_comm_factor = 3.0;
  combined.upload_loss_probability = 0.15;
  combined.max_retries = 1;
  combined.corruption_probability = 0.03;
  combined.over_select_fraction = 0.2;
  out.push_back({"combined", combined});
  return out;
}

struct FaultTotals {
  long long crashes = 0, rejoins = 0, resyncs = 0, stragglers = 0;
  long long retries = 0, lost = 0, corrupt = 0, stalls = 0;
  long long selected = 0, deadline = 0, unused = 0;
};

// Aggregates folded from the per-cycle async objects of one cell.
struct AsyncTotals {
  long long consumed = 0;
  long long final_inflight = 0;
  int max_staleness = 0;
  double staleness_sum = 0.0;
  int cycles = 0;
};

}  // namespace

int main(int argc, char** argv) {
  BenchConfig defaults;
  defaults.rounds = 40;
  defaults.eval_every = 2;
  fedsu::util::Flags flags = fedsu::bench::make_flags(defaults);
  flags.add_string("out", "BENCH_robustness.json", "output JSON path")
      .add_double("target", 0.55, "accuracy target for time-to-accuracy")
      .add_bool("smoke", false, "CI mode: tiny workload, schema check only");
  if (!flags.parse(argc, argv)) return 0;

  BenchConfig config = fedsu::bench::config_from_flags(flags);
  if (flags.get_bool("smoke")) {
    config.rounds = 6;
    config.train_count = 240;
    config.test_count = 120;
    config.iterations = 4;
    config.eval_every = 2;
  }
  const auto target = static_cast<float>(flags.get_double("target"));
  const std::vector<std::string> schemes = {"fedsu", "fedavg", "topk"};

  // Run-level observability: one manifest / alert stream / telemetry file
  // spanning every (setting, scheme) cell, fed from run_scheme's loop.
  fedsu::bench::RunObservatory observatory(config, "bench_robustness", &flags);

  // --async switches the whole ladder to buffered-async execution
  // (DESIGN.md §11): same fault settings, but the server aggregates the
  // first K uploads instead of waiting out the barrier. Setting names gain
  // an "async-" prefix so artifacts from both modes can accumulate
  // side by side.
  const bool async_mode = config.async_mode;

  fedsu::bench::print_header(async_mode
                                 ? "Robustness (buffered-async): faults vs "
                                   "time-to-accuracy"
                                 : "Robustness: faults vs time-to-accuracy");
  std::printf("%-16s %-8s %9s %9s %7s %6s %6s %6s %6s\n", "setting",
              "scheme", "tta_s", "MB", "acc", "crash", "lost", "retry",
              "stall");

  std::ostringstream cells;
  int cell_count = 0;
  for (const Setting& setting : settings(config.faults)) {
    for (const std::string& scheme : schemes) {
      BenchConfig cell_config = config;
      cell_config.faults = setting.faults;
      const std::string cell_name =
          async_mode ? "async-" + setting.name : setting.name;
      FaultTotals totals;
      AsyncTotals async_totals;
      // run_scheme builds the simulation from cell_config, so the fault
      // plan (and the async engine) rides in via simulation_options();
      // tallies are folded from the per-round records afterwards.
      fedsu::bench::SchemeRun run = fedsu::bench::run_scheme(
          cell_config, scheme, target, &observatory, cell_name);
      for (const fedsu::fl::RoundRecord& r : run.records) {
        totals.lost += r.uploads_lost;
        if (r.async) {
          async_totals.consumed += r.async->consumed;
          async_totals.final_inflight = r.async->inflight;
          async_totals.max_staleness =
              std::max(async_totals.max_staleness, r.async->max_staleness);
          async_totals.staleness_sum +=
              r.async->mean_staleness * r.async->consumed;
          ++async_totals.cycles;
          // Per-cycle self-consistency: the staleness histogram accounts
          // for every aggregated upload.
          long long hist_sum = 0;
          for (int h : r.async->staleness_hist) hist_sum += h;
          if (hist_sum != r.async->consumed ||
              r.async->consumed != r.num_participants) {
            std::fprintf(stderr,
                         "FAIL: async stats inconsistent (%s/%s round %d)\n",
                         cell_name.c_str(), scheme.c_str(), r.round);
            return 1;
          }
        }
        if (!r.faults) continue;
        totals.selected += r.faults->selected;
        totals.crashes += r.faults->crashed;
        totals.rejoins += r.faults->rejoined;
        totals.resyncs += r.faults->resyncs;
        totals.stragglers += r.faults->stragglers;
        totals.retries += r.faults->retries;
        totals.corrupt += r.faults->corrupt;
        totals.deadline += r.faults->deadline_missed;
        totals.unused += r.faults->unused;
        if (!r.faults->quorum_met) ++totals.stalls;
      }
      if (async_mode) {
        // Every cycle of an async cell must carry the async object...
        if (async_totals.cycles != static_cast<int>(run.records.size())) {
          std::fprintf(stderr, "FAIL: async object missing (%s/%s)\n",
                       cell_name.c_str(), scheme.c_str());
          return 1;
        }
        // ...and with faults on, dispatches reconcile cumulatively: every
        // dispatched upload was aggregated, lost, corrupted, past its
        // deadline, or is still in flight when the run ends (the per-round
        // barrier invariant has no meaning without a barrier).
        const bool cell_faulty = !run.records.empty() &&
                                 run.records.front().faults.has_value();
        if (cell_faulty &&
            totals.selected != async_totals.consumed + totals.lost +
                                   totals.corrupt + totals.deadline +
                                   totals.unused +
                                   async_totals.final_inflight) {
          std::fprintf(stderr,
                       "FAIL: async dispatch reconciliation broke (%s/%s): "
                       "%lld dispatched vs %lld accounted\n",
                       cell_name.c_str(), scheme.c_str(), totals.selected,
                       async_totals.consumed + totals.lost + totals.corrupt +
                           totals.deadline + totals.unused +
                           async_totals.final_inflight);
          return 1;
        }
      }

      const double tta =
          run.time_to_target_s ? *run.time_to_target_s : -1.0;
      const double mb = run.summary.total_gigabytes * 1024.0;
      std::printf("%-16s %-8s %9.1f %9.2f %6.1f%% %6lld %6lld %6lld %6lld\n",
                  cell_name.c_str(), scheme.c_str(), tta, mb,
                  100.0 * run.summary.final_accuracy, totals.crashes,
                  totals.lost, totals.retries, totals.stalls);

      cells << (cell_count++ ? ",\n" : "\n") << "    {\"setting\": "
            << fedsu::obs::json_quote(cell_name) << ", \"scheme\": "
            << fedsu::obs::json_quote(scheme)
            << ", \"rounds\": " << run.summary.rounds
            << ", \"time_to_target_s\": "
            << (run.time_to_target_s
                    ? fedsu::obs::json_number(*run.time_to_target_s)
                    : std::string("null"))
            << ", \"rounds_to_target\": "
            << (run.rounds_to_target ? std::to_string(*run.rounds_to_target)
                                     : std::string("null"))
            << ", \"total_time_s\": "
            << fedsu::obs::json_number(run.summary.total_time_s)
            << ", \"total_gigabytes\": "
            << fedsu::obs::json_number(run.summary.total_gigabytes)
            << ", \"final_accuracy\": "
            << fedsu::obs::json_number(run.summary.final_accuracy)
            << ", \"best_accuracy\": "
            << fedsu::obs::json_number(run.summary.best_accuracy)
            << ", \"mean_sparsification\": "
            << fedsu::obs::json_number(run.summary.mean_sparsification_ratio)
            << ", \"crashes\": " << totals.crashes
            << ", \"rejoins\": " << totals.rejoins
            << ", \"resyncs\": " << totals.resyncs
            << ", \"stragglers\": " << totals.stragglers
            << ", \"retries\": " << totals.retries
            << ", \"uploads_lost\": " << totals.lost
            << ", \"corrupt\": " << totals.corrupt
            << ", \"quorum_stalls\": " << totals.stalls
            << ", \"async\": " << (async_mode ? "true" : "false")
            << ", \"max_staleness\": " << async_totals.max_staleness
            << ", \"mean_staleness\": "
            << fedsu::obs::json_number(
                   async_totals.consumed > 0
                       ? async_totals.staleness_sum /
                             static_cast<double>(async_totals.consumed)
                       : 0.0)
            << "}";
    }
  }

  std::ostringstream doc;
  doc << "{\n  \"bench\": \"robustness\",\n  \"dataset\": "
      << fedsu::obs::json_quote(config.dataset)
      << ",\n  \"rounds\": " << config.rounds
      << ",\n  \"clients\": " << config.clients
      << ",\n  \"target_accuracy\": " << fedsu::obs::json_number(target)
      << ",\n  \"smoke\": " << (flags.get_bool("smoke") ? "true" : "false")
      << ",\n  \"cells\": [" << cells.str() << "\n  ]\n}\n";

  // Schema self-check before touching the checked-in file (bench_gemm
  // idiom): a broken emitter must never overwrite a good artifact.
  try {
    const fedsu::obs::JsonValue parsed = fedsu::obs::json_parse(doc.str());
    const auto& parsed_cells = parsed.at("cells").as_array();
    if (parsed_cells.size() < 9) {
      throw std::runtime_error("expected >= 9 cells (3 settings x 3 schemes)");
    }
    for (const auto& cell : parsed_cells) {
      cell.at("setting").as_string();
      cell.at("scheme").as_string();
      cell.at("total_gigabytes").as_number();
      cell.at("final_accuracy").as_number();
      cell.at("quorum_stalls").as_number();
      cell.at("async").as_bool();
      cell.at("max_staleness").as_number();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL: emitted JSON failed schema check: %s\n",
                 e.what());
    return 1;
  }

  const std::string out_path = flags.get_string("out");
  std::ofstream out(out_path);
  out << doc.str();
  if (!out) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  observatory.finish(/*ok=*/true);
  fedsu::bench::export_observability(config);
  return 0;
}
