// Extension bench (DESIGN.md §7): §III-A argues per-round updates are MORE
// similar than per-iteration ones because mini-batch noise accumulated over
// a round's iterations partially cancels. Sweep the local iteration count
// and measure (a) the median normalized difference of consecutive round
// updates and (b) FedSU's achieved sparsification — both should improve
// with more iterations per round, which is why the paper (50 iters) sees
// higher ratios than this repo's fast defaults (10 iters).
#include <cstdio>
#include <sstream>

#include "common.h"
#include "metrics/stats.h"
#include "util/csv.h"

using namespace fedsu;

int main(int argc, char** argv) {
  bench::BenchConfig defaults;
  defaults.rounds = 20;
  util::Flags flags = bench::make_flags(defaults);
  flags.add_string("iteration-counts", "2,5,15",
                   "comma list of local-iteration counts to sweep");
  if (!flags.parse(argc, argv)) return 0;
  bench::BenchConfig base = bench::config_from_flags(flags);
  base.eval_every = 0;

  std::vector<int> counts;
  std::stringstream ss(flags.get_string("iteration-counts"));
  for (std::string item; std::getline(ss, item, ',');) {
    counts.push_back(std::stoi(item));
  }

  bench::print_header(
      "Iterations ablation: round-update smoothness vs local iterations (" +
      base.dataset + ")");
  std::printf("%-12s %22s %18s %14s\n", "iters/round", "median norm-diff",
              "FedSU mean ratio", "FedSU best acc");
  std::unique_ptr<util::CsvWriter> csv;
  if (!base.csv_dir.empty()) {
    csv = std::make_unique<util::CsvWriter>(base.csv_dir +
                                            "/iterations_ablation.csv");
    csv->write_row({"iterations", "median_norm_diff", "fedsu_mean_ratio",
                    "fedsu_best_acc"});
  }

  for (int iters : counts) {
    bench::BenchConfig config = base;
    config.iterations = iters;

    // (a) update similarity under FedAvg.
    fl::Simulation fedavg_sim(
        bench::simulation_options(config),
        fl::make_protocol(bench::protocol_config(config, "fedavg")));
    metrics::NormalizedDifference nd;
    std::vector<float> prev = fedavg_sim.global_state();
    for (int r = 0; r < config.rounds; ++r) {
      fedavg_sim.step();
      const auto& state = fedavg_sim.global_state();
      std::vector<float> update(state.size());
      for (std::size_t j = 0; j < state.size(); ++j) {
        update[j] = state[j] - prev[j];
      }
      prev = state;
      nd.observe(update);
    }
    metrics::Cdf cdf;
    for (double v : nd.history()) cdf.add(v);
    const double median_nd = cdf.quantile(0.5);

    // (b) FedSU behaviour at this smoothness level.
    bench::BenchConfig fedsu_config = config;
    fedsu_config.eval_every = 3;
    const bench::SchemeRun fedsu = bench::run_scheme(fedsu_config, "fedsu");

    std::printf("%-12d %22.4f %18.3f %14.3f\n", iters, median_nd,
                fedsu.summary.mean_sparsification_ratio,
                fedsu.summary.best_accuracy);
    if (csv) {
      csv->write_row({std::to_string(iters), util::CsvWriter::field(median_nd),
                      util::CsvWriter::field(
                          fedsu.summary.mean_sparsification_ratio),
                      util::CsvWriter::field(fedsu.summary.best_accuracy)});
    }
  }
  return 0;
}
