// GEMM micro-benchmark: naive scalar triple-loop (the pre-blocking kernel)
// vs the cache-blocked, register-tiled kernel in tensor/gemm.h, across the
// im2col / fully-connected layer shapes of the model zoo (CNN, ResNet-style,
// DenseNet-style — DESIGN.md §4) plus square reference shapes. Single
// thread, so the numbers isolate kernel quality from pool fan-out.
//
// Every shape is correctness-checked (blocked vs naive, tolerance scaled by
// k) before it is timed; a mismatch exits non-zero, which is what the CI
// smoke step keys on. Results land in a JSON file (default BENCH_gemm.json,
// self-reparsed through obs::json_parse as a schema check) so the kernel
// perf trajectory is tracked across PRs.
//
// Usage: bench_gemm [--out BENCH_gemm.json] [--min-time-ms 200] [--smoke]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.h"
#include "tensor/gemm.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using fedsu::tensor::gemm::Accumulate;
using fedsu::tensor::gemm::Variant;

struct Shape {
  std::string name;  // model.layer the shape comes from
  Variant variant;
  int m, n, k;
};

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kNN: return "nn";
    case Variant::kTN: return "tn";
    case Variant::kNT: return "nt";
  }
  return "?";
}

// The im2col GEMM of a conv layer is [outC, inC*k*k] x [inC*k*k, oh*ow];
// shapes below instantiate that for the zoo's layers at the paper's image
// sizes (28 EMNIST/FMNIST, 32 CIFAR — nn/zoo.cpp), plus the FC layers'
// batch-16 x-W^T products and square peak-rate references.
std::vector<Shape> benchmark_shapes() {
  return {
      // CNN (EMNIST 28x28): conv5x5 stack + FC head.
      {"cnn.conv1", Variant::kNN, 8, 576, 25},
      {"cnn.conv2", Variant::kNN, 16, 64, 200},
      {"cnn.fc1", Variant::kNT, 16, 64, 400},
      // ResNet-style (FMNIST 28x28, base width 8): stem + three stages.
      {"resnet.stem", Variant::kNN, 8, 784, 9},
      {"resnet.stage1", Variant::kNN, 8, 784, 72},
      {"resnet.stage2a", Variant::kNN, 16, 196, 72},
      {"resnet.stage2b", Variant::kNN, 16, 196, 144},
      {"resnet.stage3a", Variant::kNN, 32, 49, 144},
      {"resnet.stage3b", Variant::kNN, 32, 49, 288},
      // DenseNet-style (CIFAR 32x32, growth 6): dense layer + transition.
      {"densenet.dense1", Variant::kNN, 6, 1024, 72},
      {"densenet.trans1", Variant::kNN, 13, 1024, 26},
      {"densenet.dense2", Variant::kNN, 6, 256, 117},
      // Gradient-shaped GEMMs (Linear backward dW is TN).
      {"cnn.fc1.dgrad", Variant::kTN, 64, 400, 16},
      // Square references: where the kernel's peak rate shows.
      {"square.128", Variant::kNN, 128, 128, 128},
      {"square.256", Variant::kNN, 256, 256, 256},
  };
}

// The pre-PR kernel: scalar i/l/j loops, accumulator row in C. (The old
// `if (av == 0) continue;` guard is omitted — on the random dense operands
// benchmarked here it never fired, and it is gone from the tree.)
void naive_gemm(Variant v, int m, int n, int k, const float* a,
                const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * n;
    if (v == Variant::kNT) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * k;
        float acc = 0.0f;
        for (int l = 0; l < k; ++l) acc += arow[l] * brow[l];
        crow[j] = acc;
      }
      continue;
    }
    for (int j = 0; j < n; ++j) crow[j] = 0.0f;
    for (int l = 0; l < k; ++l) {
      const float av = (v == Variant::kTN)
                           ? a[static_cast<std::size_t>(l) * m + i]
                           : a[static_cast<std::size_t>(i) * k + l];
      const float* brow = b + static_cast<std::size_t>(l) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

std::vector<float> random_buffer(std::size_t n, fedsu::util::Rng& rng) {
  std::vector<float> out(n);
  for (float& v : out) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return out;
}

// Repeats fn until it has run for at least min_ms, returns GFLOP/s.
template <typename Fn>
double time_gflops(double flops_per_call, double min_ms, const Fn& fn) {
  // Warm-up (page in buffers, settle turbo).
  fn();
  int reps = 1;
  for (;;) {
    fedsu::util::Stopwatch sw;
    for (int r = 0; r < reps; ++r) fn();
    const double ms = sw.elapsed_ms();
    if (ms >= min_ms) {
      return flops_per_call * reps / (ms * 1e-3) * 1e-9;
    }
    reps = (ms <= 0.01) ? reps * 16 : static_cast<int>(reps * (min_ms / ms) + 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  fedsu::util::Flags flags;
  flags.add_string("out", "BENCH_gemm.json", "output JSON path")
      .add_double("min-time-ms", 200.0, "minimum measured time per kernel")
      .add_bool("smoke", false,
                "CI mode: tiny timing budget, correctness + schema only");
  if (!flags.parse(argc, argv)) return 0;
  const double min_ms =
      flags.get_bool("smoke") ? 5.0 : flags.get_double("min-time-ms");

  fedsu::util::Rng rng(42);
  std::ostringstream shapes_json;
  bool all_ok = true;
  double speedup_log_sum = 0.0;
  int speedup_count = 0;

  std::printf("%-18s %-3s %5s %5s %5s  %10s %10s %8s\n", "shape", "op", "m",
              "n", "k", "naive", "blocked", "speedup");
  for (const Shape& s : benchmark_shapes()) {
    const std::size_t c_size = static_cast<std::size_t>(s.m) * s.n;
    const std::vector<float> a =
        random_buffer(static_cast<std::size_t>(s.m) * s.k, rng);
    const std::vector<float> b =
        random_buffer(static_cast<std::size_t>(s.n) * s.k, rng);
    std::vector<float> c_naive(c_size), c_blocked(c_size);

    naive_gemm(s.variant, s.m, s.n, s.k, a.data(), b.data(), c_naive.data());
    fedsu::tensor::gemm::sgemm_rows(s.variant, 0, s.m, s.m, s.n, s.k,
                                    a.data(), b.data(), c_blocked.data(),
                                    Accumulate::kOverwrite);
    // The two kernels accumulate in different orders; tolerance scales
    // with the reduction length.
    const double tol = 1e-6 * s.k + 1e-5;
    for (std::size_t i = 0; i < c_size; ++i) {
      if (std::fabs(static_cast<double>(c_naive[i]) - c_blocked[i]) > tol) {
        std::fprintf(stderr,
                     "FAIL %s: blocked[%zu]=%g vs naive=%g (tol %g)\n",
                     s.name.c_str(), i, c_blocked[i], c_naive[i], tol);
        all_ok = false;
        break;
      }
    }

    const double flops = 2.0 * s.m * s.n * s.k;
    const double gflops_naive = time_gflops(flops, min_ms, [&] {
      naive_gemm(s.variant, s.m, s.n, s.k, a.data(), b.data(),
                 c_naive.data());
    });
    const double gflops_blocked = time_gflops(flops, min_ms, [&] {
      fedsu::tensor::gemm::sgemm_rows(s.variant, 0, s.m, s.m, s.n, s.k,
                                      a.data(), b.data(), c_blocked.data(),
                                      Accumulate::kOverwrite);
    });
    const double speedup = gflops_blocked / gflops_naive;
    speedup_log_sum += std::log(speedup);
    ++speedup_count;
    std::printf("%-18s %-3s %5d %5d %5d  %10.2f %10.2f %7.2fx\n",
                s.name.c_str(), variant_name(s.variant), s.m, s.n, s.k,
                gflops_naive, gflops_blocked, speedup);

    shapes_json << (speedup_count > 1 ? ",\n" : "\n")
                << "    {\"name\": " << fedsu::obs::json_quote(s.name)
                << ", \"variant\": \""
                << variant_name(s.variant) << "\", \"m\": " << s.m
                << ", \"n\": " << s.n << ", \"k\": " << s.k
                << ", \"gflops_naive\": "
                << fedsu::obs::json_number(gflops_naive)
                << ", \"gflops_blocked\": "
                << fedsu::obs::json_number(gflops_blocked)
                << ", \"speedup\": " << fedsu::obs::json_number(speedup)
                << "}";
  }

  const double geomean =
      speedup_count > 0 ? std::exp(speedup_log_sum / speedup_count) : 0.0;
  std::printf("%-18s %45s %7.2fx\n", "geomean", "", geomean);

  std::ostringstream doc;
  doc << "{\n  \"bench\": \"gemm\",\n  \"threads\": 1,\n"
      << "  \"flops_model\": \"2*m*n*k\",\n  \"smoke\": "
      << (flags.get_bool("smoke") ? "true" : "false") << ",\n"
      << "  \"shapes\": [" << shapes_json.str() << "\n  ],\n"
      << "  \"geomean_speedup\": " << fedsu::obs::json_number(geomean)
      << "\n}\n";

  // Schema self-check: the emitted document must parse and carry the keys
  // downstream tooling reads. Run before writing so a broken emitter never
  // overwrites a good checked-in file.
  try {
    const fedsu::obs::JsonValue parsed = fedsu::obs::json_parse(doc.str());
    const auto& shapes = parsed.at("shapes").as_array();
    if (shapes.empty()) throw std::runtime_error("no shapes");
    for (const auto& sh : shapes) {
      sh.at("name").as_string();
      sh.at("gflops_naive").as_number();
      sh.at("gflops_blocked").as_number();
      sh.at("speedup").as_number();
    }
    parsed.at("geomean_speedup").as_number();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL: emitted JSON failed schema check: %s\n",
                 e.what());
    return 1;
  }

  const std::string out_path = flags.get_string("out");
  std::ofstream out(out_path);
  out << doc.str();
  if (!out) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_ok) {
    std::fprintf(stderr, "FAIL: blocked kernel diverged from naive\n");
    return 1;
  }
  return 0;
}
