// Extension bench (DESIGN.md §7): the regression-free second-order
// oscillation ratio (§IV-A) versus the window least-squares diagnoser the
// paper argues against. Compares (a) diagnosis quality on labeled synthetic
// trajectories, (b) per-parameter state size, (c) refresh throughput.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/oscillation.h"
#include "core/regression.h"
#include "util/rng.h"

using namespace fedsu;

namespace {

// Labeled trajectory generator: linear (slope + small noise) vs non-linear
// (quadratic, exponential decay, or regime switches).
struct Trajectory {
  std::vector<float> values;
  bool linear;
};

std::vector<Trajectory> make_trajectories(int count, int length,
                                          util::Rng& rng) {
  std::vector<Trajectory> out;
  for (int i = 0; i < count; ++i) {
    Trajectory t;
    t.linear = (i % 2 == 0);
    double v = rng.normal();
    const double slope = rng.uniform(-0.5, 0.5);
    for (int k = 0; k < length; ++k) {
      if (t.linear) {
        v += slope + 0.02 * slope * rng.normal();
      } else {
        switch (i % 6) {
          case 1:
            v += 0.01 * k;  // accelerating
            break;
          case 3:
            v = 3.0 * std::exp(-0.15 * k);  // exponential decay
            break;
          default:
            v += ((k / 6) % 2 == 0 ? slope : -slope);  // recurring regime switches
            break;
        }
      }
      t.values.push_back(static_cast<float>(v));
    }
    out.push_back(std::move(t));
  }
  return out;
}

void BM_OscillationRefresh(benchmark::State& state) {
  const std::size_t p = 100000;
  core::OscillationTracker tracker(p);
  util::Rng rng(3);
  std::vector<float> g(p);
  for (auto& x : g) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    for (std::size_t j = 0; j < p; ++j) {
      benchmark::DoNotOptimize(tracker.observe(j, g[j]));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(p));
}
BENCHMARK(BM_OscillationRefresh);

void BM_RegressionRefresh(benchmark::State& state) {
  const std::size_t p = 100000;
  core::RegressionOptions options;
  options.window = 8;
  core::RegressionDiagnoser diag(p, options);
  util::Rng rng(3);
  std::vector<float> v(p);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    for (std::size_t j = 0; j < p; ++j) {
      diag.observe(j, v[j]);
      benchmark::DoNotOptimize(diag.ready(j) ? diag.normalized_residual(j)
                                             : 1.0);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(p));
}
BENCHMARK(BM_RegressionRefresh);

void print_quality_table() {
  util::Rng rng(11);
  const int count = 2000, length = 40;
  const auto trajectories = make_trajectories(count, length, rng);

  int osc_correct = 0, reg_correct = 0;
  for (const auto& t : trajectories) {
    core::OscillationTracker osc(1);
    core::RegressionOptions roptions;
    roptions.window = 8;
    roptions.residual_threshold = 0.5;
    core::RegressionDiagnoser reg(1, roptions);
    for (std::size_t k = 1; k < t.values.size(); ++k) {
      osc.observe(0, t.values[k] - t.values[k - 1]);
      reg.observe(0, t.values[k]);
    }
    const bool osc_verdict = osc.ready(0) && osc.ratio(0) < 0.1;
    if (osc_verdict == t.linear) ++osc_correct;
    if (reg.is_linear(0) == t.linear) ++reg_correct;
  }
  core::OscillationTracker osc_state(100000);
  core::RegressionOptions roptions;
  roptions.window = 8;
  core::RegressionDiagnoser reg_state(100000, roptions);

  std::printf("\n=== Diagnosis ablation: oscillation ratio vs window "
              "regression ===\n");
  std::printf("%-24s %14s %20s\n", "Method", "Accuracy", "State (bytes/param)");
  std::printf("%-24s %13.1f%% %20.1f\n", "oscillation ratio (R)",
              100.0 * osc_correct / count, osc_state.state_bytes() / 1e5);
  std::printf("%-24s %13.1f%% %20.1f\n", "window regression (K=8)",
              100.0 * reg_correct / count, reg_state.state_bytes() / 1e5);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_quality_table();
  return 0;
}
