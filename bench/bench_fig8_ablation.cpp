// Fig. 8: ablation — FedSU vs FedSU-v1 (linearity diagnosis, no error
// feedback; fixed speculation period) vs FedSU-v2 (neither; random entry
// with a preset probability).
//
// Paper shape to reproduce: v1 sparsifies remarkably less than full FedSU
// and converges slower; v2's accuracy fluctuates and is clearly the worst.
// The fixed period and entry probability for v1/v2 are profiled from the
// standard FedSU run, mirroring the paper's methodology.
#include <cstdio>

#include "common.h"
#include "core/fedsu_manager.h"
#include "util/csv.h"

using namespace fedsu;

int main(int argc, char** argv) {
  bench::BenchConfig defaults;
  defaults.rounds = 50;
  util::Flags flags = bench::make_flags(defaults);
  flags.add_int("fixed-period", 0,
                "override the profiled v1/v2 speculation period (0 = use the "
                "period profiled from the FedSU run; the paper profiles 43/58 "
                "on its long-round workloads)");
  if (!flags.parse(argc, argv)) return 0;
  bench::BenchConfig config = bench::config_from_flags(flags);
  config.eval_every = std::max(1, config.eval_every);

  // Pass 1: standard FedSU, also profiling speculation statistics.
  auto proto = fl::make_protocol(bench::protocol_config(config, "fedsu"));
  auto* manager = dynamic_cast<core::FedSuManager*>(proto.get());
  std::size_t starts = 0;
  manager->set_event_hook([&](const core::SpecEvent& e) {
    if (e.start) ++starts;
  });
  fl::Simulation fedsu_sim(bench::simulation_options(config), std::move(proto));
  std::vector<fl::RoundRecord> fedsu_records;
  for (int r = 0; r < config.rounds; ++r) {
    fedsu_records.push_back(fedsu_sim.step());
  }
  long long linear_round_total = 0;
  for (auto v : manager->linear_rounds()) linear_round_total += v;
  int fixed_period =
      starts > 0 ? std::max<int>(1, static_cast<int>(linear_round_total /
                                                     static_cast<long long>(starts)))
                 : 5;
  if (flags.get_int("fixed-period") > 0) {
    fixed_period = static_cast<int>(flags.get_int("fixed-period"));
  }
  const double enter_probability =
      static_cast<double>(starts) /
      (static_cast<double>(manager->predictable_mask().size()) * config.rounds);

  std::printf("profiled from FedSU run: mean speculation period = %d rounds, "
              "entry probability = %.4f%% per parameter-round\n",
              fixed_period, enter_probability * 100.0);

  // Pass 2 and 3: the ablation variants with profiled settings.
  fl::ProtocolConfig v1_config = bench::protocol_config(config, "fedsu-v1");
  v1_config.fedsu_v1.fixed_period = fixed_period;
  fl::Simulation v1_sim(bench::simulation_options(config),
                        fl::make_protocol(v1_config));
  std::vector<fl::RoundRecord> v1_records;
  for (int r = 0; r < config.rounds; ++r) v1_records.push_back(v1_sim.step());

  fl::ProtocolConfig v2_config = bench::protocol_config(config, "fedsu-v2");
  v2_config.fedsu_v2.fixed_period = fixed_period;
  v2_config.fedsu_v2.enter_probability = enter_probability;
  fl::Simulation v2_sim(bench::simulation_options(config),
                        fl::make_protocol(v2_config));
  std::vector<fl::RoundRecord> v2_records;
  for (int r = 0; r < config.rounds; ++r) v2_records.push_back(v2_sim.step());

  bench::print_header("Fig. 8: ablation study (" + config.dataset + ")");
  std::unique_ptr<util::CsvWriter> csv;
  if (!config.csv_dir.empty()) {
    csv = std::make_unique<util::CsvWriter>(config.csv_dir + "/fig8.csv");
    csv->write_row({"variant", "round", "time_s", "accuracy", "spars_ratio"});
  }
  const std::vector<std::pair<std::string, const std::vector<fl::RoundRecord>*>>
      variants{{"FedSU", &fedsu_records},
               {"FedSU-v1", &v1_records},
               {"FedSU-v2", &v2_records}};
  for (const auto& [name, records] : variants) {
    std::printf("--- %s ---\n", name.c_str());
    for (const auto& rec : *records) {
      if (!rec.test_accuracy) continue;
      std::printf("  round=%3d  t=%8.1fs  acc=%.3f  ratio=%.3f\n", rec.round,
                  rec.elapsed_time_s, *rec.test_accuracy,
                  rec.sparsification_ratio);
      if (csv) {
        csv->write_row({name, std::to_string(rec.round),
                        util::CsvWriter::field(rec.elapsed_time_s),
                        util::CsvWriter::field(*rec.test_accuracy),
                        util::CsvWriter::field(rec.sparsification_ratio)});
      }
    }
    const auto summary = metrics::summarize(*records);
    std::printf("  summary: best_acc=%.3f mean_ratio=%.3f\n",
                summary.best_accuracy, summary.mean_sparsification_ratio);
  }
  return 0;
}
