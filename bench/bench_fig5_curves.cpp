// Fig. 5: time-to-accuracy curves under FedAvg / CMFL / APF / FedSU, with
// the instantaneous sparsification ratio for APF and FedSU.
//
// Paper shape to reproduce: FedSU's accuracy curve climbs fastest in wall
// (simulated) time, and its sparsification-ratio curve sits far above APF's.
#include <cstdio>

#include "common.h"
#include "util/csv.h"

using namespace fedsu;

int main(int argc, char** argv) {
  bench::BenchConfig defaults;
  defaults.rounds = 50;
  util::Flags flags = bench::make_flags(defaults);
  flags.add_string("schemes", "fedsu,apf,cmfl,fedavg", "schemes to run");
  if (!flags.parse(argc, argv)) return 0;
  bench::BenchConfig config = bench::config_from_flags(flags);
  config.eval_every = std::max(1, config.eval_every);

  std::unique_ptr<util::CsvWriter> csv;
  if (!config.csv_dir.empty()) {
    csv = std::make_unique<util::CsvWriter>(config.csv_dir + "/fig5_" +
                                            config.dataset + ".csv");
    csv->write_row({"scheme", "round", "time_s", "accuracy", "spars_ratio"});
  }

  bench::print_header("Fig. 5: time-to-accuracy + sparsification ratio (" +
                      config.dataset + ")");
  const std::string schemes = flags.get_string("schemes");
  for (const std::string scheme : {std::string("fedsu"), std::string("apf"),
                                   std::string("cmfl"), std::string("fedavg")}) {
    if (schemes.find(scheme) == std::string::npos) continue;
    const bench::SchemeRun run = bench::run_scheme(config, scheme);
    std::printf("--- %s ---\n", scheme.c_str());
    for (const auto& rec : run.records) {
      if (!rec.test_accuracy) continue;
      std::printf("  t=%8.1fs  round=%3d  acc=%.3f  ratio=%.3f\n",
                  rec.elapsed_time_s, rec.round, *rec.test_accuracy,
                  rec.sparsification_ratio);
      if (csv) {
        csv->write_row({scheme, std::to_string(rec.round),
                        util::CsvWriter::field(rec.elapsed_time_s),
                        util::CsvWriter::field(*rec.test_accuracy),
                        util::CsvWriter::field(rec.sparsification_ratio)});
      }
    }
    std::printf("  summary: total=%.1fs best_acc=%.3f mean_ratio=%.3f "
                "GB_moved=%.4f\n",
                run.summary.total_time_s, run.summary.best_accuracy,
                run.summary.mean_sparsification_ratio,
                run.summary.total_gigabytes);
  }
  return 0;
}
