// Fig. 10: sensitivity to the error-feedback threshold T_S.
//
// Paper shape to reproduce: looser T_S -> larger sparsification; but unlike
// T_R, an over-loose T_S (e.g. 100) costs real accuracy, because T_S
// directly bounds the accumulated speculation error.
#include <cstdio>
#include <sstream>

#include "common.h"
#include "util/csv.h"

using namespace fedsu;

int main(int argc, char** argv) {
  bench::BenchConfig defaults;
  defaults.rounds = 50;
  util::Flags flags = bench::make_flags(defaults);
  flags.add_string("ts-values", "0.1,1,10,100",
                   "comma list of T_S values to sweep (paper's set)");
  if (!flags.parse(argc, argv)) return 0;
  bench::BenchConfig base = bench::config_from_flags(flags);
  base.eval_every = std::max(1, base.eval_every);

  std::vector<double> values;
  std::stringstream ss(flags.get_string("ts-values"));
  for (std::string item; std::getline(ss, item, ',');) {
    values.push_back(std::stod(item));
  }

  bench::print_header("Fig. 10: FedSU sensitivity to T_S (" + base.dataset + ")");
  std::unique_ptr<util::CsvWriter> csv;
  if (!base.csv_dir.empty()) {
    csv = std::make_unique<util::CsvWriter>(base.csv_dir + "/fig10.csv");
    csv->write_row({"t_s", "best_accuracy", "final_accuracy", "mean_spars_ratio",
                    "total_time_s"});
  }
  std::printf("%-10s %10s %10s %12s %12s\n", "T_S", "best acc", "final acc",
              "mean ratio", "total t (s)");
  for (double ts : values) {
    bench::BenchConfig config = base;
    config.t_s = ts;
    const bench::SchemeRun run = bench::run_scheme(config, "fedsu");
    std::printf("%-10.2f %10.3f %10.3f %12.3f %12.1f\n", ts,
                run.summary.best_accuracy, run.summary.final_accuracy,
                run.summary.mean_sparsification_ratio,
                run.summary.total_time_s);
    if (csv) {
      csv->write_row({util::CsvWriter::field(ts),
                      util::CsvWriter::field(run.summary.best_accuracy),
                      util::CsvWriter::field(run.summary.final_accuracy),
                      util::CsvWriter::field(run.summary.mean_sparsification_ratio),
                      util::CsvWriter::field(run.summary.total_time_s)});
    }
  }
  return 0;
}
