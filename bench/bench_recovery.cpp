// Crash-recovery driver: server crashes, periodic checkpoints, byte-exact
// resume (docs/RECOVERY.md).
//
// Two modes:
//
//  * Run mode (default): one FL run that honors --checkpoint-every /
//    --checkpoint-dir / --resume / --faults-server-crash-at. A scheduled
//    server crash aborts the round loop and the process exits 42 — a
//    sentinel distinct from ordinary failures — exactly like the process
//    death it simulates; the checkpoints on disk are the only survivors.
//    The final global model's CRC-32 is printed (and written to
//    --model-crc-out when set) so shell scripts can compare an
//    interrupted-then-resumed run against an uninterrupted one:
//
//      ./bench_recovery --rounds 12 --model-crc-out a.crc
//      ./bench_recovery --rounds 12 --checkpoint-every 2 --checkpoint-dir d \
//          --faults-server-crash-at 7; test $? -eq 42
//      ./bench_recovery --rounds 12 --checkpoint-every 2 --checkpoint-dir d \
//          --resume --model-crc-out b.crc
//      cmp a.crc b.crc   # identical: §5b extended across the crash
//
//    (--resume clears the server-crash knobs: the crash plan described the
//    life of the process that died — docs/FAULT_MODEL.md §7.)
//
//  * --smoke: the same kill/snapshot/restore/compare ladder in-process,
//    sync and async, for a single-command sanity check with no shell
//    plumbing. Exits nonzero if any resumed model diverges bitwise.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "compress/wire.h"
#include "io/checkpoint.h"

namespace {

using fedsu::bench::BenchConfig;

namespace bench = fedsu::bench;
namespace fl = fedsu::fl;
namespace io = fedsu::io;

std::uint32_t model_crc(const fl::Simulation& sim) {
  const std::vector<float>& state = sim.global_state();
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(state.data());
  return fedsu::compress::wire::crc32({bytes, state.size() * sizeof(float)});
}

fl::Simulation make_simulation(const BenchConfig& config,
                               const std::string& scheme) {
  return fl::Simulation(bench::simulation_options(config),
                        fl::make_protocol(bench::protocol_config(config,
                                                                 scheme)));
}

int run_mode(const BenchConfig& config, const fedsu::util::Flags& flags,
             const std::string& scheme, const std::string& crc_out) {
  fl::Simulation sim = make_simulation(config, scheme);
  bench::RunObservatory observatory(config, "bench_recovery", &flags);
  int start_round = 0;
  if (config.resume) {
    const std::string latest =
        io::find_latest_run_checkpoint(config.checkpoint_dir);
    if (latest.empty()) {
      std::printf("no checkpoint under '%s'; starting from round 0\n",
                  config.checkpoint_dir.c_str());
    } else {
      sim.restore_state(io::load_run_checkpoint(latest));
      start_round = sim.rounds_completed();
      observatory.note_resumed(start_round, latest);
      std::printf("resumed from %s (%d rounds already complete)\n",
                  latest.c_str(), start_round);
    }
  }
  observatory.begin_scheme(sim, scheme);
  bench::SchemeRun run;
  run.scheme = scheme;
  run.threads = fedsu::util::ThreadPool::resolve_threads(config.threads);
  fedsu::util::Stopwatch wall;
  try {
    for (int r = start_round; r < config.rounds; ++r) {
      run.records.push_back(sim.step());
      observatory.after_round(sim, run.records.back());
    }
  } catch (const fl::ServerCrashed& crash) {
    std::printf("%s -- exiting 42\n", crash.what());
    observatory.finish(false);
    return 42;
  }
  run.wall_seconds = wall.elapsed_seconds();
  run.summary = fedsu::metrics::summarize(run.records);
  observatory.record(run, "");
  const std::uint32_t crc = model_crc(sim);
  std::printf("rounds %d..%d complete; final model crc32 %08x\n", start_round,
              config.rounds, crc);
  if (!crc_out.empty()) {
    std::ofstream out(crc_out, std::ios::trunc);
    char line[16];
    std::snprintf(line, sizeof(line), "%08x\n", crc);
    out << line;
    if (!out.flush()) {
      std::fprintf(stderr, "cannot write %s\n", crc_out.c_str());
      return 1;
    }
  }
  observatory.finish(true);
  bench::export_observability(config);
  return 0;
}

int smoke_mode(const BenchConfig& base, const std::string& scheme) {
  int failures = 0;
  for (const bool async_mode : {false, true}) {
    BenchConfig config = base;
    config.async_mode = async_mode;
    config.checkpoint_every = 0;  // in-memory snapshots; no files needed
    config.resume = false;
    config.faults.server_crash_at = -1;
    config.faults.server_crash_probability = 0.0;
    const char* label = async_mode ? "async" : "sync";
    const int kill_at = std::max(1, config.rounds / 2);

    // Reference: the uninterrupted run.
    fl::Simulation reference = make_simulation(config, scheme);
    for (int r = 0; r < config.rounds; ++r) reference.step();

    // Interrupted: run to the kill round, snapshot, destroy the simulation,
    // restore into a fresh one, and finish the remaining rounds.
    std::vector<std::uint8_t> snapshot;
    {
      fl::Simulation first = make_simulation(config, scheme);
      for (int r = 0; r < kill_at; ++r) first.step();
      snapshot = first.snapshot_state();
    }
    fl::Simulation resumed = make_simulation(config, scheme);
    resumed.restore_state(snapshot);
    for (int r = kill_at; r < config.rounds; ++r) resumed.step();

    const std::vector<float>& a = reference.global_state();
    const std::vector<float>& b = resumed.global_state();
    const bool equal =
        a.size() == b.size() &&
        std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
    std::printf("[%s] killed at round %d of %d: resumed model %s "
                "(crc %08x vs %08x)\n",
                label, kill_at, config.rounds,
                equal ? "byte-exact" : "DIVERGED", model_crc(reference),
                model_crc(resumed));
    if (!equal) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig defaults;
  defaults.rounds = 12;
  fedsu::util::Flags flags = fedsu::bench::make_flags(defaults);
  flags.add_string("scheme", "fedsu", "protocol to run (fedavg | fedsu | ...)")
      .add_string("model-crc-out", "",
                  "write the final model CRC-32 (hex) to this file")
      .add_bool("smoke", false,
                "in-process kill/restore/bitwise-compare ladder, sync + async");
  if (!flags.parse(argc, argv)) return 0;
  const BenchConfig config = fedsu::bench::config_from_flags(flags);
  const std::string scheme = flags.get_string("scheme");
  fedsu::bench::print_header("Crash recovery (docs/RECOVERY.md)");
  if (flags.get_bool("smoke")) return smoke_mode(config, scheme);
  return run_mode(config, flags, scheme, flags.get_string("model-crc-out"));
}
