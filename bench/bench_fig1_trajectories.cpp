// Fig. 1: evolution trajectories of randomly-selected scalar parameters when
// training the CNN and the DenseNet-style model under plain FedAvg.
//
// Paper shape to reproduce: after an early fast-moving phase, sampled
// parameter-value curves contain long stretches that a straight line fits
// well (strong trajectory linearity). We print the per-round values plus a
// per-window linearity verdict from the second-order oscillation ratio.
#include <cstdio>

#include "common.h"
#include "core/oscillation.h"
#include "metrics/stats.h"
#include "util/csv.h"

using namespace fedsu;

int main(int argc, char** argv) {
  bench::BenchConfig defaults;
  defaults.rounds = 40;
  util::Flags flags = bench::make_flags(defaults);
  flags.add_int("params", 2, "number of randomly-sampled parameters to trace");
  flags.add_string("datasets", "emnist,cifar", "datasets to trace");
  if (!flags.parse(argc, argv)) return 0;
  bench::BenchConfig base = bench::config_from_flags(flags);
  const int num_params = static_cast<int>(flags.get_int("params"));

  for (const std::string dataset : {std::string("emnist"), std::string("cifar")}) {
    if (flags.get_string("datasets").find(dataset) == std::string::npos) continue;
    bench::BenchConfig config = base;
    config.dataset = dataset;
    config.eval_every = 0;
    if (dataset == "cifar") config.rounds = std::min(config.rounds, 25);

    fl::Simulation sim(bench::simulation_options(config),
                       fl::make_protocol(bench::protocol_config(config, "fedavg")));
    util::Rng pick(config.seed ^ 0x777);
    std::vector<std::size_t> indices;
    for (int i = 0; i < num_params; ++i) {
      indices.push_back(pick.uniform_index(sim.model_state_size()));
    }
    metrics::TrajectoryRecorder recorder(indices);
    recorder.record(sim.global_state());
    for (int r = 0; r < config.rounds; ++r) {
      sim.step();
      recorder.record(sim.global_state());
    }

    bench::print_header("Fig. 1 trajectories: " + dataset + " (" +
                        nn::paper_spec(dataset).arch + "), FedAvg");
    for (std::size_t p = 0; p < indices.size(); ++p) {
      const auto& series = recorder.series()[p];
      std::printf("param[%zu] (state index %zu):\n", p, indices[p]);
      for (std::size_t r = 0; r < series.size(); ++r) {
        std::printf("  round %3zu  value % .6f\n", r, series[r]);
      }
      // Quantify trajectory linearity: fraction of rounds the oscillation
      // ratio marks as linear.
      core::OscillationTracker osc(1);
      int linear = 0, total = 0;
      for (std::size_t r = 1; r < series.size(); ++r) {
        const double ratio = osc.observe(0, series[r] - series[r - 1]);
        if (osc.ready(0)) {
          ++total;
          if (ratio < 0.1) ++linear;
        }
      }
      std::printf("  -> rounds diagnosed linear (R < 0.1): %d / %d\n", linear,
                  total);
    }
    if (!config.csv_dir.empty()) {
      util::CsvWriter csv(config.csv_dir + "/fig1_" + dataset + ".csv");
      std::vector<std::string> header{"round"};
      for (std::size_t p = 0; p < indices.size(); ++p) {
        header.push_back("param" + std::to_string(p));
      }
      csv.write_row(header);
      for (std::size_t r = 0; r < recorder.series()[0].size(); ++r) {
        std::vector<std::string> row{std::to_string(r)};
        for (const auto& series : recorder.series()) {
          row.push_back(util::CsvWriter::field(series[r]));
        }
        csv.write_row(row);
      }
    }
  }
  return 0;
}
