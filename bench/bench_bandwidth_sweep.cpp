// Extension bench (DESIGN.md §7): where does FedSU's advantage come from?
//
// Sweeps the client link bandwidth and reports the FedSU / FedAvg total-time
// ratio for a fixed round budget. As bandwidth grows, rounds become
// compute-bound and sparsification buys nothing (ratio -> 1); as it shrinks,
// communication dominates and FedSU's saving approaches its sparsification
// ratio. This locates the crossover the paper's motivation (§II-A: FL links
// are tens of Mbps against multi-MB models) places FL on the comm-bound
// side of.
#include <cstdio>
#include <sstream>

#include "common.h"
#include "util/csv.h"

using namespace fedsu;

int main(int argc, char** argv) {
  bench::BenchConfig defaults;
  defaults.rounds = 25;
  util::Flags flags = bench::make_flags(defaults);
  flags.add_string("bandwidths-mbps", "0.05,0.1,0.5,5",
                   "comma list of client bandwidths to sweep");
  if (!flags.parse(argc, argv)) return 0;
  bench::BenchConfig base = bench::config_from_flags(flags);
  base.eval_every = 0;

  std::vector<double> bandwidths;
  std::stringstream ss(flags.get_string("bandwidths-mbps"));
  for (std::string item; std::getline(ss, item, ',');) {
    bandwidths.push_back(std::stod(item));
  }

  bench::print_header("Bandwidth sweep: FedSU vs FedAvg total time (" +
                      base.dataset + ", " + std::to_string(base.rounds) +
                      " rounds)");
  std::printf("%-14s %14s %14s %10s %12s\n", "bw (Mbps)", "FedAvg t (s)",
              "FedSU t (s)", "speedup", "FedSU ratio");
  std::unique_ptr<util::CsvWriter> csv;
  if (!base.csv_dir.empty()) {
    csv = std::make_unique<util::CsvWriter>(base.csv_dir + "/bandwidth_sweep.csv");
    csv->write_row({"bandwidth_mbps", "fedavg_time_s", "fedsu_time_s",
                    "speedup", "fedsu_mean_ratio"});
  }
  for (double bw : bandwidths) {
    bench::BenchConfig config = base;
    config.bandwidth_mbps = bw;
    const bench::SchemeRun fedavg = bench::run_scheme(config, "fedavg");
    const bench::SchemeRun fedsu = bench::run_scheme(config, "fedsu");
    const double speedup =
        fedsu.summary.total_time_s > 0.0
            ? fedavg.summary.total_time_s / fedsu.summary.total_time_s
            : 0.0;
    std::printf("%-14.2f %14.1f %14.1f %9.2fx %11.3f\n", bw,
                fedavg.summary.total_time_s, fedsu.summary.total_time_s,
                speedup, fedsu.summary.mean_sparsification_ratio);
    if (csv) {
      csv->write_row({util::CsvWriter::field(bw),
                      util::CsvWriter::field(fedavg.summary.total_time_s),
                      util::CsvWriter::field(fedsu.summary.total_time_s),
                      util::CsvWriter::field(speedup),
                      util::CsvWriter::field(
                          fedsu.summary.mean_sparsification_ratio)});
    }
  }
  return 0;
}
