// Table I: time to reach the target accuracy per model, with per-round time
// and number of rounds, for FedAvg / CMFL / APF / FedSU.
//
// Paper shape to reproduce: FedSU has the lowest per-round time and total
// time for every model; its round count stays close to FedAvg's (no
// statistical penalty from sparsification); APF/CMFL land in between.
#include <cstdio>
#include <vector>

#include "common.h"
#include "util/csv.h"

using namespace fedsu;

namespace {

struct ModelTask {
  std::string dataset;
  float target;
  int rounds;
  double lr;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig defaults;
  util::Flags flags = bench::make_flags(defaults);
  flags.add_string("models", "cnn,resnet,densenet",
                   "comma list of models to run (cnn,resnet,densenet)");
  flags.add_double("target-cnn", 0.92, "accuracy target for the CNN");
  flags.add_double("target-resnet", 0.75, "accuracy target for the ResNet");
  flags.add_double("target-densenet", 0.85, "accuracy target for the DenseNet");
  flags.add_bool("speedup-vs-serial", false,
                 "rerun each task's fedavg at --threads 1 and report the "
                 "wall-clock speedup of the configured thread count");
  if (!flags.parse(argc, argv)) return 0;
  bench::BenchConfig base = bench::config_from_flags(flags);
  const bool speedup_vs_serial = flags.get_bool("speedup-vs-serial");
  bench::RunObservatory observatory(base, "bench_table1_time_to_accuracy",
                                    &flags);

  const std::string models = flags.get_string("models");
  std::vector<ModelTask> tasks;
  if (models.find("cnn") != std::string::npos) {
    tasks.push_back({"emnist", static_cast<float>(flags.get_double("target-cnn")),
                     55, 0.03});
  }
  if (models.find("resnet") != std::string::npos) {
    tasks.push_back({"fmnist",
                     static_cast<float>(flags.get_double("target-resnet")), 45,
                     0.03});
  }
  if (models.find("densenet") != std::string::npos) {
    tasks.push_back({"cifar",
                     static_cast<float>(flags.get_double("target-densenet")),
                     30, 0.03});
  }

  const std::vector<std::string> schemes{"fedsu", "apf", "cmfl", "fedavg"};
  bench::print_header(
      "Table I: time to target accuracy (simulated seconds)");
  std::printf("threads=%d (results are bitwise identical for any count)\n",
              util::ThreadPool::resolve_threads(base.threads));
  std::printf("%-22s %-8s %14s %12s %14s %10s %10s\n", "Model (target)",
              "Scheme", "Per-round (s)", "# of Rounds", "Total time (s)",
              "Best acc", "Wall (s)");

  std::unique_ptr<util::CsvWriter> csv;
  if (!base.csv_dir.empty()) {
    csv = std::make_unique<util::CsvWriter>(base.csv_dir + "/table1.csv");
    csv->write_row({"model", "scheme", "per_round_s", "rounds_to_target",
                    "total_time_s", "best_accuracy", "reached"});
  }

  for (const auto& task : tasks) {
    bench::BenchConfig config = base;
    config.dataset = task.dataset;
    config.rounds = task.rounds;
    config.lr = task.lr;
    double fedavg_wall_seconds = 0.0;
    for (const auto& scheme : schemes) {
      const bench::SchemeRun run = bench::run_scheme(
          config, scheme, task.target, &observatory, task.dataset);
      if (scheme == "fedavg") fedavg_wall_seconds = run.wall_seconds;
      const std::string label =
          task.dataset + "/" +
          nn::paper_spec(task.dataset).arch + " (" +
          std::to_string(task.target).substr(0, 4) + ")";
      if (run.rounds_to_target) {
        const double per_round =
            *run.time_to_target_s / *run.rounds_to_target;
        std::printf("%-22s %-8s %14.2f %12d %14.1f %10.3f %10.2f\n",
                    label.c_str(), run.scheme.c_str(), per_round,
                    *run.rounds_to_target, *run.time_to_target_s,
                    run.summary.best_accuracy, run.wall_seconds);
        if (csv) {
          csv->write_row({task.dataset, scheme, util::CsvWriter::field(per_round),
                          util::CsvWriter::field(
                              static_cast<long long>(*run.rounds_to_target)),
                          util::CsvWriter::field(*run.time_to_target_s),
                          util::CsvWriter::field(run.summary.best_accuracy),
                          "1"});
        }
      } else {
        std::printf("%-22s %-8s %14.2f %12s %14s %10.3f %10.2f\n",
                    label.c_str(), run.scheme.c_str(),
                    run.summary.mean_round_time_s, "not reached", "-",
                    run.summary.best_accuracy, run.wall_seconds);
        if (csv) {
          csv->write_row({task.dataset, scheme,
                          util::CsvWriter::field(run.summary.mean_round_time_s),
                          "-1", "-1",
                          util::CsvWriter::field(run.summary.best_accuracy),
                          "0"});
        }
      }
    }
    const int threads = util::ThreadPool::resolve_threads(base.threads);
    if (speedup_vs_serial && threads > 1 && fedavg_wall_seconds > 0.0) {
      // Serial reference: same workload, one thread everywhere (kernel pool
      // included), so the ratio isolates what parallelism buys.
      util::ThreadPool::set_global_threads(1);
      bench::BenchConfig serial = config;
      serial.threads = 1;
      const bench::SchemeRun ref =
          bench::run_scheme(serial, "fedavg", task.target);
      util::ThreadPool::set_global_threads(base.threads);
      std::printf("%-22s fedavg wall: %.2fs at %d threads vs %.2fs serial "
                  "-> %.2fx speedup\n",
                  task.dataset.c_str(), fedavg_wall_seconds, threads,
                  ref.wall_seconds, ref.wall_seconds / fedavg_wall_seconds);
    }
    std::printf("\n");
  }
  observatory.finish(/*ok=*/true);
  bench::export_observability(base);
  return 0;
}
