// Shared configuration and helpers for the bench binaries (one per paper
// table/figure — see DESIGN.md §4).
//
// Every bench accepts the same workload flags with single-core-friendly
// defaults; EXPERIMENTS.md records the shapes these defaults reproduce.
// The network default (0.1 Mbps) keeps the paper's regime — communication
// is the majority of FedAvg round time — after scaling model size down from
// ResNet-18/DenseNet-121 to the 1-vCPU zoo (DESIGN.md §2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "metrics/convergence.h"
#include "obs/health.h"
#include "obs/manifest.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/gemm.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace fedsu::bench {

struct BenchConfig {
  std::string dataset = "emnist";  // emnist | fmnist | cifar
  int clients = 8;
  int rounds = 50;
  int iterations = 10;
  int batch = 16;
  double lr = 0.03;
  double noise = 1.0;
  double alpha = 1.0;
  int train_count = 1200;
  int test_count = 400;
  int eval_every = 2;
  double bandwidth_mbps = 0.1;
  std::uint64_t seed = 42;
  std::string csv_dir;  // empty: no CSV dump
  // Worker threads for client training and the large tensor kernels.
  // 0 = hardware concurrency; 1 = the historical sequential path. Results
  // are bitwise identical either way (DESIGN.md §"Determinism under
  // parallelism"); only the wall clock changes.
  int threads = 0;
  // FedSU thresholds; defaults are the lossless operating point calibrated
  // for 10-iteration rounds (EXPERIMENTS.md "Threshold scaling").
  double t_r = 0.05;
  double t_s = 2.0;
  int no_check = 2;
  // CMFL sign-relevance threshold; 0.8 in the paper, 0.7 at this repo's
  // noisier 10-iteration rounds (EXPERIMENTS.md "Threshold scaling").
  double cmfl_relevance = 0.7;
  // Observability (DESIGN.md §8). "auto" derives the level from the
  // requested outputs: trace if --trace-out is set, metrics if any other
  // output is, off otherwise — so plain runs pay zero instrumentation cost.
  std::string obs_level = "auto";  // auto | off | metrics | trace
  std::string metrics_out;         // metrics registry snapshot file
  std::string metrics_format = "auto";  // auto | json | csv | prom
  // Crash durability for the metrics snapshot (DESIGN.md §12): rewrite
  // --metrics-out every N rounds inside the round loop, not just at
  // teardown. 0 keeps the historical end-of-run-only write.
  int metrics_flush_every = 0;
  std::string trace_out;           // chrome://tracing timeline JSON
  std::string telemetry_out;       // per-round telemetry JSONL
  // Run-level observability (DESIGN.md §12): one manifest JSON per run and
  // one JSONL alert stream from the health monitor. Setting either engages
  // obs::HealthMonitor on the round loop.
  std::string manifest_out;
  std::string alerts_out;
  // Health-rule thresholds (obs::HealthOptions; <= 0 windows disable rules).
  obs::HealthOptions health;
  // Fault injection & churn (fl/faults, docs/FAULT_MODEL.md). All zero by
  // default: the fault layer stays off and results are bitwise identical to
  // a faultless build.
  fl::FaultOptions faults;
  // Buffered-async execution (DESIGN.md §11). Off by default: the round
  // loop stays the synchronous barrier. buffer_k = 0 means half the cohort;
  // buffer_k >= the cohort with zero fault rates is the synchronous path.
  bool async_mode = false;
  int buffer_k = 0;
  double staleness_alpha = 0.5;
  // Crash recovery (docs/RECOVERY.md). checkpoint_every > 0 writes a run
  // checkpoint into checkpoint_dir every N rounds; --resume asks the bench
  // to restore the latest checkpoint there before the round loop (honored
  // by bench_recovery; ignored by benches that never crash mid-run).
  int checkpoint_every = 0;
  std::string checkpoint_dir;
  // Retention: keep at most N checkpoints in checkpoint_dir, pruning the
  // oldest after each write (0 = keep all).
  int checkpoint_keep = 0;
  bool resume = false;
};

inline util::Flags make_flags(const BenchConfig& defaults) {
  util::Flags flags;
  flags.add_string("dataset", defaults.dataset, "emnist | fmnist | cifar")
      .add_int("clients", defaults.clients, "number of FL clients")
      .add_int("rounds", defaults.rounds, "FL rounds to run")
      .add_int("iterations", defaults.iterations, "local iterations per round")
      .add_int("batch", defaults.batch, "local batch size")
      .add_double("lr", defaults.lr, "SGD learning rate")
      .add_double("noise", defaults.noise, "synthetic dataset noise stddev")
      .add_double("alpha", defaults.alpha, "Dirichlet non-IID concentration")
      .add_int("train-count", defaults.train_count, "training samples")
      .add_int("test-count", defaults.test_count, "test samples")
      .add_int("eval-every", defaults.eval_every, "rounds between evaluations")
      .add_double("bandwidth-mbps", defaults.bandwidth_mbps,
                  "client link bandwidth (model-scaled; see DESIGN.md)")
      .add_int("seed", static_cast<long long>(defaults.seed), "random seed")
      .add_string("csv", defaults.csv_dir, "directory for CSV dumps (optional)")
      .add_int("threads", defaults.threads,
               "worker threads for training/kernels (0 = hardware concurrency)")
      .add_double("t-r", defaults.t_r, "FedSU predictability threshold T_R")
      .add_double("t-s", defaults.t_s, "FedSU error-feedback threshold T_S")
      .add_int("no-check", defaults.no_check, "FedSU initial no-check period")
      .add_double("cmfl-relevance", defaults.cmfl_relevance,
                  "CMFL sign-relevance threshold")
      .add_string("obs-level", defaults.obs_level,
                  "observability level: auto | off | metrics | trace")
      .add_string("metrics-out", defaults.metrics_out,
                  "write the metrics registry snapshot (see --metrics-format)")
      .add_string("metrics-format", defaults.metrics_format,
                  "metrics snapshot format: auto | json | csv | prom")
      .add_int("metrics-flush-every", defaults.metrics_flush_every,
               "rewrite --metrics-out every N rounds (0 = teardown only)")
      .add_string("trace-out", defaults.trace_out,
                  "write a chrome://tracing span timeline JSON")
      .add_string("telemetry-out", defaults.telemetry_out,
                  "write per-round telemetry JSONL")
      .add_string("manifest-out", defaults.manifest_out,
                  "write a run manifest JSON (config, environment, aggregates)")
      .add_string("alerts-out", defaults.alerts_out,
                  "write health-monitor alerts JSONL")
      .add_int("health-plateau-window", defaults.health.plateau_window,
               "rounds without loss improvement before a plateau alert")
      .add_double("health-plateau-epsilon", defaults.health.plateau_epsilon,
                  "minimum loss improvement that resets the plateau window")
      .add_double("health-divergence-factor",
                  defaults.health.divergence_factor,
                  "loss multiple over best-so-far that counts as diverging")
      .add_int("health-divergence-window", defaults.health.divergence_window,
               "consecutive diverging rounds before a divergence alert")
      .add_double("health-fallback-fraction",
                  defaults.health.fallback_storm_fraction,
                  "fallback syncs per round, as a model fraction, that storm")
      .add_int("health-fallback-window", defaults.health.fallback_storm_window,
               "consecutive storming rounds before a fallback-storm alert")
      .add_double("health-osc-delta", defaults.health.osc_min_delta,
                  "speculated-fraction step that counts toward oscillation")
      .add_int("health-osc-window", defaults.health.osc_window,
               "trailing rounds inspected for speculation oscillation")
      .add_int("health-osc-flips", defaults.health.osc_flips,
               "direction reversals in the window that raise the alert")
      .add_double("health-straggler-fraction",
                  defaults.health.straggler_fraction,
                  "windowed straggler/selected ratio that counts as drift")
      .add_int("health-straggler-window", defaults.health.straggler_window,
               "trailing rounds for the straggler-drift ratio")
      .add_int("health-staleness-max", defaults.health.staleness_max,
               "async staleness (aggregations) above which to alert")
      .add_int("health-byte-budget",
               static_cast<long long>(defaults.health.byte_budget_per_round),
               "per-round byte budget, up+down (0 = no budget)")
      .add_double("faults-churn", defaults.faults.crash_probability,
                  "per-round crash probability per client")
      .add_int("faults-crash-rounds", defaults.faults.crash_rounds_max,
               "max rounds a crashed client stays away")
      .add_double("faults-straggler", defaults.faults.straggler_probability,
                  "per-round straggler probability per client")
      .add_double("faults-straggler-factor",
                  defaults.faults.straggler_compute_factor,
                  "compute & comm slowdown multiplier for stragglers")
      .add_double("faults-loss", defaults.faults.upload_loss_probability,
                  "per-attempt upload loss probability")
      .add_int("faults-retries", defaults.faults.max_retries,
               "upload retries after a lost attempt")
      .add_double("faults-backoff-s", defaults.faults.retry_backoff_s,
                  "simulated seconds between upload attempts")
      .add_double("faults-corrupt", defaults.faults.corruption_probability,
                  "per-upload payload corruption probability")
      .add_double("faults-deadline-s", defaults.faults.deadline_s,
                  "server round deadline in simulated seconds (0 = none)")
      .add_double("faults-over-select", defaults.faults.over_select_fraction,
                  "extra participation fraction started as fault headroom")
      .add_int("faults-min-quorum", defaults.faults.min_quorum,
               "minimum aggregated uploads; below it the round stalls")
      .add_int("faults-seed", static_cast<long long>(defaults.faults.seed),
               "fault schedule seed (mixed with --seed)")
      .add_string("faults-trace", defaults.faults.trace_csv,
                  "CSV fault trace (round,client,event,value)")
      .add_int("faults-server-crash-at", defaults.faults.server_crash_at,
               "crash the server at the start of this round (-1 = never)")
      .add_double("faults-server-crash",
                  defaults.faults.server_crash_probability,
                  "per-round server-crash probability")
      .add_int("checkpoint-every", defaults.checkpoint_every,
               "write a run checkpoint every N rounds (0 = off)")
      .add_string("checkpoint-dir", defaults.checkpoint_dir,
                  "directory for run checkpoints (ckpt-NNNNNNNN.fedsu)")
      .add_int("checkpoint-keep", defaults.checkpoint_keep,
               "keep at most N checkpoints, pruning oldest (0 = keep all)")
      .add_bool("resume", defaults.resume,
                "resume from the latest checkpoint in --checkpoint-dir")
      .add_bool("async", defaults.async_mode,
                "buffered-async rounds: aggregate the first K uploads")
      .add_int("buffer-k", defaults.buffer_k,
               "async aggregation buffer size K (0 = half the cohort)")
      .add_double("staleness-alpha", defaults.staleness_alpha,
                  "async staleness discount exponent in 1/(1+s)^alpha");
  return flags;
}

// Resolves BenchConfig's observability selection into a process level.
inline obs::Level resolve_obs_level(const BenchConfig& config) {
  if (config.obs_level != "auto") return obs::parse_level(config.obs_level);
  if (!config.trace_out.empty()) return obs::Level::kTrace;
  if (!config.metrics_out.empty() || !config.telemetry_out.empty() ||
      !config.manifest_out.empty() || !config.alerts_out.empty()) {
    return obs::Level::kMetrics;
  }
  return obs::Level::kOff;
}

// Writes the outputs BenchConfig requested; call once, after the run loop.
// (--telemetry-out / --alerts-out / --manifest-out are wired per round via
// RunObservatory below.)
inline void export_observability(const BenchConfig& config) {
  if (!config.metrics_out.empty()) {
    obs::MetricsRegistry::global().write(config.metrics_out,
                                         config.metrics_format);
    std::printf("metrics written to %s\n", config.metrics_out.c_str());
  }
  if (!config.trace_out.empty()) {
    obs::Tracer::global().write_chrome_json(config.trace_out);
    std::printf("trace written to %s\n", config.trace_out.c_str());
  }
}

inline BenchConfig config_from_flags(const util::Flags& flags) {
  BenchConfig config;
  config.dataset = flags.get_string("dataset");
  config.clients = static_cast<int>(flags.get_int("clients"));
  config.rounds = static_cast<int>(flags.get_int("rounds"));
  config.iterations = static_cast<int>(flags.get_int("iterations"));
  config.batch = static_cast<int>(flags.get_int("batch"));
  config.lr = flags.get_double("lr");
  config.noise = flags.get_double("noise");
  config.alpha = flags.get_double("alpha");
  config.train_count = static_cast<int>(flags.get_int("train-count"));
  config.test_count = static_cast<int>(flags.get_int("test-count"));
  config.eval_every = static_cast<int>(flags.get_int("eval-every"));
  config.bandwidth_mbps = flags.get_double("bandwidth-mbps");
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.csv_dir = flags.get_string("csv");
  config.threads = static_cast<int>(flags.get_int("threads"));
  // Benches funnel through here once, right after parse: size the shared
  // kernel pool to the same flag that sizes per-simulation pools.
  util::ThreadPool::set_global_threads(config.threads);
  config.t_r = flags.get_double("t-r");
  config.t_s = flags.get_double("t-s");
  config.no_check = static_cast<int>(flags.get_int("no-check"));
  config.cmfl_relevance = flags.get_double("cmfl-relevance");
  config.obs_level = flags.get_string("obs-level");
  config.metrics_out = flags.get_string("metrics-out");
  config.metrics_format = flags.get_string("metrics-format");
  config.metrics_flush_every =
      static_cast<int>(flags.get_int("metrics-flush-every"));
  config.trace_out = flags.get_string("trace-out");
  config.telemetry_out = flags.get_string("telemetry-out");
  config.manifest_out = flags.get_string("manifest-out");
  config.alerts_out = flags.get_string("alerts-out");
  config.health.plateau_window =
      static_cast<int>(flags.get_int("health-plateau-window"));
  config.health.plateau_epsilon = flags.get_double("health-plateau-epsilon");
  config.health.divergence_factor =
      flags.get_double("health-divergence-factor");
  config.health.divergence_window =
      static_cast<int>(flags.get_int("health-divergence-window"));
  config.health.fallback_storm_fraction =
      flags.get_double("health-fallback-fraction");
  config.health.fallback_storm_window =
      static_cast<int>(flags.get_int("health-fallback-window"));
  config.health.osc_min_delta = flags.get_double("health-osc-delta");
  config.health.osc_window = static_cast<int>(flags.get_int("health-osc-window"));
  config.health.osc_flips = static_cast<int>(flags.get_int("health-osc-flips"));
  config.health.straggler_fraction =
      flags.get_double("health-straggler-fraction");
  config.health.straggler_window =
      static_cast<int>(flags.get_int("health-straggler-window"));
  config.health.staleness_max =
      static_cast<int>(flags.get_int("health-staleness-max"));
  config.health.byte_budget_per_round =
      static_cast<std::size_t>(flags.get_int("health-byte-budget"));
  config.faults.crash_probability = flags.get_double("faults-churn");
  config.faults.crash_rounds_max =
      static_cast<int>(flags.get_int("faults-crash-rounds"));
  config.faults.straggler_probability = flags.get_double("faults-straggler");
  config.faults.straggler_compute_factor =
      flags.get_double("faults-straggler-factor");
  config.faults.straggler_comm_factor =
      flags.get_double("faults-straggler-factor");
  config.faults.upload_loss_probability = flags.get_double("faults-loss");
  config.faults.max_retries = static_cast<int>(flags.get_int("faults-retries"));
  config.faults.retry_backoff_s = flags.get_double("faults-backoff-s");
  config.faults.corruption_probability = flags.get_double("faults-corrupt");
  config.faults.deadline_s = flags.get_double("faults-deadline-s");
  config.faults.over_select_fraction = flags.get_double("faults-over-select");
  config.faults.min_quorum =
      static_cast<int>(flags.get_int("faults-min-quorum"));
  config.faults.seed = static_cast<std::uint64_t>(flags.get_int("faults-seed"));
  config.faults.trace_csv = flags.get_string("faults-trace");
  config.faults.server_crash_at =
      static_cast<int>(flags.get_int("faults-server-crash-at"));
  config.faults.server_crash_probability =
      flags.get_double("faults-server-crash");
  config.checkpoint_every = static_cast<int>(flags.get_int("checkpoint-every"));
  config.checkpoint_dir = flags.get_string("checkpoint-dir");
  config.checkpoint_keep = static_cast<int>(flags.get_int("checkpoint-keep"));
  config.resume = flags.get_bool("resume");
  if (config.resume) {
    // A resumed process is a new server: the crash plan described the life
    // of the one that died (docs/FAULT_MODEL.md §7). server_crash(round) is
    // a pure function of (seed, round), so without this the resumed run
    // would re-crash at the same scheduled round forever.
    config.faults.server_crash_at = -1;
    config.faults.server_crash_probability = 0.0;
  }
  config.async_mode = flags.get_bool("async");
  config.buffer_k = static_cast<int>(flags.get_int("buffer-k"));
  config.staleness_alpha = flags.get_double("staleness-alpha");
  obs::set_level(resolve_obs_level(config));
  return config;
}

// Scales the conv workloads to 1-vCPU sizes: the CNN keeps the paper's
// 28x28 input; the ResNet/DenseNet stand-ins run on 14x14 / 16x16 images.
inline fl::SimulationOptions simulation_options(const BenchConfig& config) {
  fl::SimulationOptions options;
  options.model = nn::paper_spec(config.dataset);
  options.dataset = data::synthetic_preset(config.dataset);
  if (options.model.arch == "resnet") {
    options.model.image_size = 14;
    options.dataset.image_size = 14;
  } else if (options.model.arch == "densenet") {
    options.model.image_size = 16;
    options.dataset.image_size = 16;
  }
  options.dataset.train_count = config.train_count;
  options.dataset.test_count = config.test_count;
  options.dataset.noise = static_cast<float>(config.noise);
  options.dataset.label_noise = 0.05f;
  options.dataset.seed = config.seed ^ 0x51ed;
  options.num_clients = config.clients;
  options.dirichlet_alpha = config.alpha;
  options.local.iterations = config.iterations;
  options.local.batch_size = config.batch;
  options.local.learning_rate = static_cast<float>(config.lr);
  options.local.weight_decay = 1e-3f;
  options.participation_fraction = 0.7;
  options.network.client_bandwidth_bps = config.bandwidth_mbps * 1e6;
  options.network.seed = config.seed ^ 0xbeef;
  options.eval_every = config.eval_every;
  options.seed = config.seed;
  options.threads = config.threads;
  options.faults = config.faults;
  options.async.enabled = config.async_mode;
  options.async.buffer_k = config.buffer_k;
  options.async.staleness_alpha = config.staleness_alpha;
  options.checkpoint.every = config.checkpoint_every;
  options.checkpoint.dir = config.checkpoint_dir;
  options.checkpoint.keep = config.checkpoint_keep;
  return options;
}

inline fl::ProtocolConfig protocol_config(const BenchConfig& config,
                                          const std::string& name) {
  fl::ProtocolConfig pc;
  pc.name = name;
  pc.num_clients = config.clients;
  pc.fedsu.t_r = config.t_r;
  pc.fedsu.t_s = config.t_s;
  pc.fedsu.initial_no_check = config.no_check;
  pc.fedsu_v1.t_r = config.t_r;
  pc.cmfl_relevance = config.cmfl_relevance;
  return pc;
}

struct SchemeRun {
  std::string scheme;
  std::vector<fl::RoundRecord> records;
  metrics::RunSummary summary;
  std::optional<double> time_to_target_s;
  std::optional<int> rounds_to_target;
  double wall_seconds = 0.0;  // real time spent in the round loop
  int threads = 1;            // resolved worker-thread count of the run
};

// Run-level observability for a bench process (DESIGN.md §12): owns the
// telemetry writer, the health monitor, and the run manifest that
// --telemetry-out / --alerts-out / --manifest-out requested, and feeds them
// from run_scheme's round loop. One observatory spans every (setting,
// scheme) cell a bench runs; per-cell state is reset by begin_scheme so
// alert edges never leak across cells.
//
// §5b contract: the observatory only reads records and the global state —
// it never touches the simulated clock, RNG streams, or model — so a run
// with an observatory attached is bitwise identical to one without
// (tests/test_obs.cpp: MonitoredRunIsBitwiseIdenticalToUnmonitored).
class RunObservatory {
 public:
  RunObservatory(const BenchConfig& config, const std::string& bench_name,
                 const util::Flags* flags = nullptr)
      : config_(config) {
    if (!config_.manifest_out.empty()) {
      manifest_.emplace(bench_name);
      obs::RunEnvironment env;
      env.seed = config_.seed;
      env.threads = util::ThreadPool::resolve_threads(config_.threads);
      env.isa = tensor::gemm::isa_name();
#ifdef NDEBUG
      env.build = "release";
#else
      env.build = "debug";
#endif
      env.obs_level = obs::level_name(obs::level());
      manifest_->set_environment(env);
      if (flags) manifest_->set_config(flags->resolved());
    }
    // The monitor runs whenever anything consumes its output: an alert
    // stream, or a manifest (which records per-cell alert totals).
    if (!config_.alerts_out.empty() || manifest_) {
      monitor_.emplace(config_.health);
      if (!config_.alerts_out.empty()) {
        monitor_->open_alerts_file(config_.alerts_out);
      }
    }
    if (!config_.telemetry_out.empty()) {
      telemetry_.emplace(config_.telemetry_out, bench_name);
    }
  }

  bool active() const {
    return monitor_ || telemetry_ || manifest_ ||
           config_.metrics_flush_every > 0;
  }
  obs::HealthMonitor* monitor() { return monitor_ ? &*monitor_ : nullptr; }

  // Installs the round feed on `sim` and resets per-cell monitor state.
  // `label` tags telemetry rows and alerts; convention: "setting/scheme"
  // for multi-cell benches, plain scheme name otherwise.
  void begin_scheme(fl::Simulation& sim, const std::string& label) {
    if (monitor_) {
      monitor_->begin_run(label, sim.model_state_size());
      for (int s = 0; s < 3; ++s) {
        alert_base_[s] =
            monitor_->raised_count(static_cast<obs::AlertSeverity>(s));
      }
    }
    if (telemetry_) telemetry_->set_protocol(label);
    if (telemetry_ || monitor_) {
      sim.set_round_hook([this](const fl::RoundRecord& record) {
        if (telemetry_) telemetry_->append(record);
        if (monitor_) monitor_->observe_round(record);
      });
    }
  }

  // Post-round work the hook cannot do: the model-state probe (needs the
  // simulation, not just the record) and the periodic metrics flush.
  void after_round(const fl::Simulation& sim, const fl::RoundRecord& record) {
    if (monitor_) monitor_->observe_model(record.round, sim.global_state());
    if (record.checkpoint) {
      if (record.checkpoint->ok) ++checkpoints_written_;
      else ++checkpoint_failures_;
    }
    // Keep the obs.mem.* gauges fresh round to round so a periodic metrics
    // flush (and any scraper of the snapshot) sees live memory, not just
    // the teardown value. Reads /proc only — never perturbs the run (§5b).
    if (obs::metrics_enabled()) obs::record_memory_gauges();
    ++rounds_seen_;
    if (config_.metrics_flush_every > 0 && !config_.metrics_out.empty() &&
        obs::metrics_enabled() &&
        rounds_seen_ % config_.metrics_flush_every == 0) {
      obs::MetricsRegistry::global().write(config_.metrics_out,
                                           config_.metrics_format);
    }
  }

  // Folds a finished cell into the manifest.
  void record(const SchemeRun& run, const std::string& setting) {
    if (!manifest_) return;
    obs::RunAggregates agg;
    agg.scheme = run.scheme;
    agg.setting = setting;
    agg.rounds = run.summary.rounds;
    agg.sim_time_s = run.summary.total_time_s;
    agg.wall_seconds = run.wall_seconds;
    agg.total_gigabytes = run.summary.total_gigabytes;
    agg.final_accuracy = run.summary.final_accuracy;
    agg.best_accuracy = run.summary.best_accuracy;
    agg.time_to_target_s = run.time_to_target_s.value_or(-1.0);
    // Sampled at cell completion: the peak is process-wide (monotone across
    // cells), heap_live is what this cell still holds at its end.
    const obs::MemoryStats mem = obs::record_memory_gauges();
    agg.peak_rss_bytes = mem.peak_rss_bytes;
    agg.heap_live_bytes = mem.heap_live_bytes;
    for (const auto& rec : run.records) {
      agg.bytes_up += rec.bytes_up;
      agg.bytes_down += rec.bytes_down;
      if (rec.faults) {
        auto& f = agg.fault_totals;
        f["selected"] += static_cast<std::uint64_t>(rec.faults->selected);
        f["crashed"] += static_cast<std::uint64_t>(rec.faults->crashed);
        f["rejoined"] += static_cast<std::uint64_t>(rec.faults->rejoined);
        f["resyncs"] += static_cast<std::uint64_t>(rec.faults->resyncs);
        f["stragglers"] += static_cast<std::uint64_t>(rec.faults->stragglers);
        f["retries"] += static_cast<std::uint64_t>(rec.faults->retries);
        f["corrupt"] += static_cast<std::uint64_t>(rec.faults->corrupt);
        f["deadline_missed"] +=
            static_cast<std::uint64_t>(rec.faults->deadline_missed);
        f["unused"] += static_cast<std::uint64_t>(rec.faults->unused);
        if (!rec.faults->quorum_met) f["stalled_rounds"] += 1;
      }
    }
    if (run.rounds_to_target) {
      std::uint64_t bytes = 0;
      const std::size_t upto =
          std::min(run.records.size(),
                   static_cast<std::size_t>(*run.rounds_to_target));
      for (std::size_t i = 0; i < upto; ++i) {
        bytes += run.records[i].bytes_up + run.records[i].bytes_down;
      }
      agg.gigabytes_to_target = static_cast<double>(bytes) / 1e9;
    }
    if (monitor_) {
      agg.alerts_info =
          monitor_->raised_count(obs::AlertSeverity::kInfo) - alert_base_[0];
      agg.alerts_warning =
          monitor_->raised_count(obs::AlertSeverity::kWarning) -
          alert_base_[1];
      agg.alerts_critical =
          monitor_->raised_count(obs::AlertSeverity::kCritical) -
          alert_base_[2];
    }
    manifest_->add_run(std::move(agg));
  }

  // Records that this process restored a checkpoint (bench_recovery) so the
  // manifest's recovery object carries the resume provenance.
  void note_resumed(int from_round, const std::string& path) {
    resumed_ = true;
    resumed_from_round_ = from_round;
    resumed_path_ = path;
  }

  // Stamps the outcome and writes the manifest; call once, after the last
  // cell (export_observability still writes metrics/trace).
  void finish(bool ok) {
    if (!manifest_) return;
    if (resumed_ || config_.checkpoint_every > 0) {
      obs::RunRecovery recovery;
      recovery.resumed = resumed_;
      recovery.resumed_from_round = resumed_from_round_;
      recovery.resumed_path = resumed_path_;
      recovery.checkpoint_every = config_.checkpoint_every;
      recovery.checkpoint_dir = config_.checkpoint_dir;
      recovery.checkpoints_written = checkpoints_written_;
      recovery.checkpoint_failures = checkpoint_failures_;
      manifest_->set_recovery(std::move(recovery));
    }
    manifest_->set_outcome(ok ? "ok" : "failed");
    manifest_->write(config_.manifest_out);
    std::printf("manifest written to %s\n", config_.manifest_out.c_str());
  }

 private:
  BenchConfig config_;
  std::optional<obs::TelemetryWriter> telemetry_;
  std::optional<obs::HealthMonitor> monitor_;
  std::optional<obs::RunManifest> manifest_;
  int alert_base_[3] = {0, 0, 0};
  long long rounds_seen_ = 0;
  int checkpoints_written_ = 0;
  int checkpoint_failures_ = 0;
  bool resumed_ = false;
  int resumed_from_round_ = -1;
  std::string resumed_path_;
};

// Runs one scheme end-to-end. When `target` is set, the run still completes
// all rounds (curves need the tail) but the crossing is recorded. When an
// observatory is given, the round loop feeds it (telemetry, health rules,
// model probe, periodic metrics flush) and the finished cell is folded into
// its manifest under `setting`.
inline SchemeRun run_scheme(const BenchConfig& config, const std::string& name,
                            std::optional<float> target = {},
                            RunObservatory* observatory = nullptr,
                            const std::string& setting = {}) {
  fl::Simulation sim(simulation_options(config),
                     fl::make_protocol(protocol_config(config, name)));
  SchemeRun run;
  run.scheme = name;
  run.threads = util::ThreadPool::resolve_threads(config.threads);
  if (observatory) {
    observatory->begin_scheme(
        sim, setting.empty() ? name : setting + "/" + name);
  }
  metrics::ConvergenceTracker tracker(target.value_or(0.999f));
  util::Stopwatch wall;
  for (int r = 0; r < config.rounds; ++r) {
    run.records.push_back(sim.step());
    tracker.observe(run.records.back());
    if (observatory) observatory->after_round(sim, run.records.back());
  }
  run.wall_seconds = wall.elapsed_seconds();
  run.summary = metrics::summarize(run.records);
  if (target && tracker.reached()) {
    run.time_to_target_s = tracker.time_to_target_s();
    run.rounds_to_target = tracker.rounds_to_target();
  }
  if (observatory) observatory->record(run, setting);
  return run;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace fedsu::bench
