// Shared configuration and helpers for the bench binaries (one per paper
// table/figure — see DESIGN.md §4).
//
// Every bench accepts the same workload flags with single-core-friendly
// defaults; EXPERIMENTS.md records the shapes these defaults reproduce.
// The network default (0.1 Mbps) keeps the paper's regime — communication
// is the majority of FedAvg round time — after scaling model size down from
// ResNet-18/DenseNet-121 to the 1-vCPU zoo (DESIGN.md §2).
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "metrics/convergence.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace fedsu::bench {

struct BenchConfig {
  std::string dataset = "emnist";  // emnist | fmnist | cifar
  int clients = 8;
  int rounds = 50;
  int iterations = 10;
  int batch = 16;
  double lr = 0.03;
  double noise = 1.0;
  double alpha = 1.0;
  int train_count = 1200;
  int test_count = 400;
  int eval_every = 2;
  double bandwidth_mbps = 0.1;
  std::uint64_t seed = 42;
  std::string csv_dir;  // empty: no CSV dump
  // Worker threads for client training and the large tensor kernels.
  // 0 = hardware concurrency; 1 = the historical sequential path. Results
  // are bitwise identical either way (DESIGN.md §"Determinism under
  // parallelism"); only the wall clock changes.
  int threads = 0;
  // FedSU thresholds; defaults are the lossless operating point calibrated
  // for 10-iteration rounds (EXPERIMENTS.md "Threshold scaling").
  double t_r = 0.05;
  double t_s = 2.0;
  int no_check = 2;
  // CMFL sign-relevance threshold; 0.8 in the paper, 0.7 at this repo's
  // noisier 10-iteration rounds (EXPERIMENTS.md "Threshold scaling").
  double cmfl_relevance = 0.7;
  // Observability (DESIGN.md §8). "auto" derives the level from the
  // requested outputs: trace if --trace-out is set, metrics if any other
  // output is, off otherwise — so plain runs pay zero instrumentation cost.
  std::string obs_level = "auto";  // auto | off | metrics | trace
  std::string metrics_out;         // metrics registry JSON (or .csv)
  std::string trace_out;           // chrome://tracing timeline JSON
  std::string telemetry_out;       // per-round telemetry JSONL
  // Fault injection & churn (fl/faults, docs/FAULT_MODEL.md). All zero by
  // default: the fault layer stays off and results are bitwise identical to
  // a faultless build.
  fl::FaultOptions faults;
  // Buffered-async execution (DESIGN.md §11). Off by default: the round
  // loop stays the synchronous barrier. buffer_k = 0 means half the cohort;
  // buffer_k >= the cohort with zero fault rates is the synchronous path.
  bool async_mode = false;
  int buffer_k = 0;
  double staleness_alpha = 0.5;
};

inline util::Flags make_flags(const BenchConfig& defaults) {
  util::Flags flags;
  flags.add_string("dataset", defaults.dataset, "emnist | fmnist | cifar")
      .add_int("clients", defaults.clients, "number of FL clients")
      .add_int("rounds", defaults.rounds, "FL rounds to run")
      .add_int("iterations", defaults.iterations, "local iterations per round")
      .add_int("batch", defaults.batch, "local batch size")
      .add_double("lr", defaults.lr, "SGD learning rate")
      .add_double("noise", defaults.noise, "synthetic dataset noise stddev")
      .add_double("alpha", defaults.alpha, "Dirichlet non-IID concentration")
      .add_int("train-count", defaults.train_count, "training samples")
      .add_int("test-count", defaults.test_count, "test samples")
      .add_int("eval-every", defaults.eval_every, "rounds between evaluations")
      .add_double("bandwidth-mbps", defaults.bandwidth_mbps,
                  "client link bandwidth (model-scaled; see DESIGN.md)")
      .add_int("seed", static_cast<long long>(defaults.seed), "random seed")
      .add_string("csv", defaults.csv_dir, "directory for CSV dumps (optional)")
      .add_int("threads", defaults.threads,
               "worker threads for training/kernels (0 = hardware concurrency)")
      .add_double("t-r", defaults.t_r, "FedSU predictability threshold T_R")
      .add_double("t-s", defaults.t_s, "FedSU error-feedback threshold T_S")
      .add_int("no-check", defaults.no_check, "FedSU initial no-check period")
      .add_double("cmfl-relevance", defaults.cmfl_relevance,
                  "CMFL sign-relevance threshold")
      .add_string("obs-level", defaults.obs_level,
                  "observability level: auto | off | metrics | trace")
      .add_string("metrics-out", defaults.metrics_out,
                  "write the metrics registry as JSON (.csv for CSV)")
      .add_string("trace-out", defaults.trace_out,
                  "write a chrome://tracing span timeline JSON")
      .add_string("telemetry-out", defaults.telemetry_out,
                  "write per-round telemetry JSONL")
      .add_double("faults-churn", defaults.faults.crash_probability,
                  "per-round crash probability per client")
      .add_int("faults-crash-rounds", defaults.faults.crash_rounds_max,
               "max rounds a crashed client stays away")
      .add_double("faults-straggler", defaults.faults.straggler_probability,
                  "per-round straggler probability per client")
      .add_double("faults-straggler-factor",
                  defaults.faults.straggler_compute_factor,
                  "compute & comm slowdown multiplier for stragglers")
      .add_double("faults-loss", defaults.faults.upload_loss_probability,
                  "per-attempt upload loss probability")
      .add_int("faults-retries", defaults.faults.max_retries,
               "upload retries after a lost attempt")
      .add_double("faults-backoff-s", defaults.faults.retry_backoff_s,
                  "simulated seconds between upload attempts")
      .add_double("faults-corrupt", defaults.faults.corruption_probability,
                  "per-upload payload corruption probability")
      .add_double("faults-deadline-s", defaults.faults.deadline_s,
                  "server round deadline in simulated seconds (0 = none)")
      .add_double("faults-over-select", defaults.faults.over_select_fraction,
                  "extra participation fraction started as fault headroom")
      .add_int("faults-min-quorum", defaults.faults.min_quorum,
               "minimum aggregated uploads; below it the round stalls")
      .add_int("faults-seed", static_cast<long long>(defaults.faults.seed),
               "fault schedule seed (mixed with --seed)")
      .add_string("faults-trace", defaults.faults.trace_csv,
                  "CSV fault trace (round,client,event,value)")
      .add_bool("async", defaults.async_mode,
                "buffered-async rounds: aggregate the first K uploads")
      .add_int("buffer-k", defaults.buffer_k,
               "async aggregation buffer size K (0 = half the cohort)")
      .add_double("staleness-alpha", defaults.staleness_alpha,
                  "async staleness discount exponent in 1/(1+s)^alpha");
  return flags;
}

// Resolves BenchConfig's observability selection into a process level.
inline obs::Level resolve_obs_level(const BenchConfig& config) {
  if (config.obs_level != "auto") return obs::parse_level(config.obs_level);
  if (!config.trace_out.empty()) return obs::Level::kTrace;
  if (!config.metrics_out.empty() || !config.telemetry_out.empty()) {
    return obs::Level::kMetrics;
  }
  return obs::Level::kOff;
}

// Writes the outputs BenchConfig requested; call once, after the run loop.
// (--telemetry-out is wired per simulation via obs::TelemetryWriter::hook.)
inline void export_observability(const BenchConfig& config) {
  if (!config.metrics_out.empty()) {
    const auto& path = config.metrics_out;
    if (path.size() > 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
      obs::MetricsRegistry::global().write_csv(path);
    } else {
      obs::MetricsRegistry::global().write_json(path);
    }
    std::printf("metrics written to %s\n", path.c_str());
  }
  if (!config.trace_out.empty()) {
    obs::Tracer::global().write_chrome_json(config.trace_out);
    std::printf("trace written to %s\n", config.trace_out.c_str());
  }
}

inline BenchConfig config_from_flags(const util::Flags& flags) {
  BenchConfig config;
  config.dataset = flags.get_string("dataset");
  config.clients = static_cast<int>(flags.get_int("clients"));
  config.rounds = static_cast<int>(flags.get_int("rounds"));
  config.iterations = static_cast<int>(flags.get_int("iterations"));
  config.batch = static_cast<int>(flags.get_int("batch"));
  config.lr = flags.get_double("lr");
  config.noise = flags.get_double("noise");
  config.alpha = flags.get_double("alpha");
  config.train_count = static_cast<int>(flags.get_int("train-count"));
  config.test_count = static_cast<int>(flags.get_int("test-count"));
  config.eval_every = static_cast<int>(flags.get_int("eval-every"));
  config.bandwidth_mbps = flags.get_double("bandwidth-mbps");
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.csv_dir = flags.get_string("csv");
  config.threads = static_cast<int>(flags.get_int("threads"));
  // Benches funnel through here once, right after parse: size the shared
  // kernel pool to the same flag that sizes per-simulation pools.
  util::ThreadPool::set_global_threads(config.threads);
  config.t_r = flags.get_double("t-r");
  config.t_s = flags.get_double("t-s");
  config.no_check = static_cast<int>(flags.get_int("no-check"));
  config.cmfl_relevance = flags.get_double("cmfl-relevance");
  config.obs_level = flags.get_string("obs-level");
  config.metrics_out = flags.get_string("metrics-out");
  config.trace_out = flags.get_string("trace-out");
  config.telemetry_out = flags.get_string("telemetry-out");
  config.faults.crash_probability = flags.get_double("faults-churn");
  config.faults.crash_rounds_max =
      static_cast<int>(flags.get_int("faults-crash-rounds"));
  config.faults.straggler_probability = flags.get_double("faults-straggler");
  config.faults.straggler_compute_factor =
      flags.get_double("faults-straggler-factor");
  config.faults.straggler_comm_factor =
      flags.get_double("faults-straggler-factor");
  config.faults.upload_loss_probability = flags.get_double("faults-loss");
  config.faults.max_retries = static_cast<int>(flags.get_int("faults-retries"));
  config.faults.retry_backoff_s = flags.get_double("faults-backoff-s");
  config.faults.corruption_probability = flags.get_double("faults-corrupt");
  config.faults.deadline_s = flags.get_double("faults-deadline-s");
  config.faults.over_select_fraction = flags.get_double("faults-over-select");
  config.faults.min_quorum =
      static_cast<int>(flags.get_int("faults-min-quorum"));
  config.faults.seed = static_cast<std::uint64_t>(flags.get_int("faults-seed"));
  config.faults.trace_csv = flags.get_string("faults-trace");
  config.async_mode = flags.get_bool("async");
  config.buffer_k = static_cast<int>(flags.get_int("buffer-k"));
  config.staleness_alpha = flags.get_double("staleness-alpha");
  obs::set_level(resolve_obs_level(config));
  return config;
}

// Scales the conv workloads to 1-vCPU sizes: the CNN keeps the paper's
// 28x28 input; the ResNet/DenseNet stand-ins run on 14x14 / 16x16 images.
inline fl::SimulationOptions simulation_options(const BenchConfig& config) {
  fl::SimulationOptions options;
  options.model = nn::paper_spec(config.dataset);
  options.dataset = data::synthetic_preset(config.dataset);
  if (options.model.arch == "resnet") {
    options.model.image_size = 14;
    options.dataset.image_size = 14;
  } else if (options.model.arch == "densenet") {
    options.model.image_size = 16;
    options.dataset.image_size = 16;
  }
  options.dataset.train_count = config.train_count;
  options.dataset.test_count = config.test_count;
  options.dataset.noise = static_cast<float>(config.noise);
  options.dataset.label_noise = 0.05f;
  options.dataset.seed = config.seed ^ 0x51ed;
  options.num_clients = config.clients;
  options.dirichlet_alpha = config.alpha;
  options.local.iterations = config.iterations;
  options.local.batch_size = config.batch;
  options.local.learning_rate = static_cast<float>(config.lr);
  options.local.weight_decay = 1e-3f;
  options.participation_fraction = 0.7;
  options.network.client_bandwidth_bps = config.bandwidth_mbps * 1e6;
  options.network.seed = config.seed ^ 0xbeef;
  options.eval_every = config.eval_every;
  options.seed = config.seed;
  options.threads = config.threads;
  options.faults = config.faults;
  options.async.enabled = config.async_mode;
  options.async.buffer_k = config.buffer_k;
  options.async.staleness_alpha = config.staleness_alpha;
  return options;
}

inline fl::ProtocolConfig protocol_config(const BenchConfig& config,
                                          const std::string& name) {
  fl::ProtocolConfig pc;
  pc.name = name;
  pc.num_clients = config.clients;
  pc.fedsu.t_r = config.t_r;
  pc.fedsu.t_s = config.t_s;
  pc.fedsu.initial_no_check = config.no_check;
  pc.fedsu_v1.t_r = config.t_r;
  pc.cmfl_relevance = config.cmfl_relevance;
  return pc;
}

struct SchemeRun {
  std::string scheme;
  std::vector<fl::RoundRecord> records;
  metrics::RunSummary summary;
  std::optional<double> time_to_target_s;
  std::optional<int> rounds_to_target;
  double wall_seconds = 0.0;  // real time spent in the round loop
  int threads = 1;            // resolved worker-thread count of the run
};

// Runs one scheme end-to-end. When `target` is set, the run still completes
// all rounds (curves need the tail) but the crossing is recorded.
inline SchemeRun run_scheme(const BenchConfig& config, const std::string& name,
                            std::optional<float> target = {}) {
  fl::Simulation sim(simulation_options(config),
                     fl::make_protocol(protocol_config(config, name)));
  SchemeRun run;
  run.scheme = name;
  run.threads = util::ThreadPool::resolve_threads(config.threads);
  metrics::ConvergenceTracker tracker(target.value_or(0.999f));
  util::Stopwatch wall;
  for (int r = 0; r < config.rounds; ++r) {
    run.records.push_back(sim.step());
    tracker.observe(run.records.back());
  }
  run.wall_seconds = wall.elapsed_seconds();
  run.summary = metrics::summarize(run.records);
  if (target && tracker.reached()) {
    run.time_to_target_s = tracker.time_to_target_s();
    run.rounds_to_target = tracker.rounds_to_target();
  }
  return run;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace fedsu::bench
