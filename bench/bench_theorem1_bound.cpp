// Theorem 1 (paper §IV-D) evaluated numerically — the analytical mirror of
// Fig. 10: the speculation term of the convergence bound grows with T_S^2,
// while an Eq.-13 schedule drives the whole bound to 0 as T grows.
#include <cstdio>

#include "core/theory.h"
#include "nn/schedule.h"
#include "util/flags.h"

using namespace fedsu;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_double("beta", 1.0, "smoothness constant (Assumption 1)")
      .add_double("sigma2", 1.0, "gradient bound sigma^2 (Assumption 2)")
      .add_double("gap", 1.0, "initial optimality gap F(x0) - F*")
      .add_double("lr", 0.1, "base learning rate");
  if (!flags.parse(argc, argv)) return 0;

  core::TheoryParams params;
  params.beta = flags.get_double("beta");
  params.sigma2 = flags.get_double("sigma2");
  params.initial_gap = flags.get_double("gap");
  const float lr = static_cast<float>(flags.get_double("lr"));

  std::printf("\n=== Theorem 1 bound vs T_S (inverse-sqrt schedule, T=1000) "
              "===\n");
  std::printf("%-8s %14s %16s %14s %12s\n", "T_S", "optimality", "speculation",
              "variance", "total");
  nn::InverseSqrtLr schedule(lr);
  for (double t_s : {0.1, 1.0, 10.0, 100.0}) {
    params.t_s = t_s;
    const auto bound = core::theorem1_bound(params, schedule, 1000);
    std::printf("%-8.1f %14.5f %16.5f %14.5f %12.5f\n", t_s,
                bound.optimality_term, bound.speculation_term,
                bound.variance_term, bound.total());
  }

  std::printf("\n=== Bound vs horizon T (T_S = 1, Eq. 13 schedules vanish; "
              "constant lr plateaus) ===\n");
  params.t_s = 1.0;
  std::printf("%-10s %18s %18s\n", "T", "inverse-sqrt total",
              "constant-lr total");
  nn::ConstantLr constant(lr);
  for (int horizon : {100, 1000, 10000, 100000}) {
    const auto decaying = core::theorem1_bound(params, schedule, horizon);
    const auto flat = core::theorem1_bound(params, constant, horizon);
    std::printf("%-10d %18.5f %18.5f\n", horizon, decaying.total(),
                flat.total());
  }
  std::printf("\n(The speculation term scales with T_S^2 — the analytical "
              "reason Fig. 10's accuracy collapses at T_S = 100 — and the "
              "inverse-sqrt schedule drives every term to 0, Theorem 1's "
              "convergence condition Eq. 13.)\n");
  return 0;
}
