// Table II: computation and memory overheads of FedSU.
//
// Computation inflation: wall time of FedSU's synchronize() bookkeeping
// (linearity diagnosis + error feedback) compared against plain FedAvg
// aggregation over the same state, and against the round's local-training
// compute. Memory inflation: FedSuManager state vs model size.
//
// Timing comes from the obs scoped-span tracer: the protocols' own
// "core.fedsu.sync" / "compress.fedavg.sync" spans (plus FedSU's per-pass
// sub-spans for the breakdown), so the bench measures exactly what a traced
// production run would report instead of keeping bespoke stopwatch code.
//
// Paper shape to reproduce: both inflations are small — computation time
// inflation in the low single-digit percents of a round, memory inflation
// bounded by a few copies of the model (the paper reports <= 2.15% compute
// and <= 8.27% memory on its workloads).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "compress/fedavg.h"
#include "core/fedsu_manager.h"
#include "nn/loss.h"
#include "nn/sgd.h"
#include "nn/zoo.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/rng.h"

using namespace fedsu;

namespace {

struct ModelCase {
  const char* name;
  const char* dataset;
  int scaled_image;
};

constexpr ModelCase kCases[] = {
    {"cnn", "emnist", 28},
    {"resnet", "fmnist", 14},
    {"densenet", "cifar", 16},
};

std::size_t state_size_of(const ModelCase& c) {
  nn::ModelSpec spec = nn::paper_spec(c.dataset);
  spec.image_size = c.scaled_image;
  nn::Model model = nn::build_model(spec, util::Rng(1));
  return model.state_size();
}

// Total wall time the tracer recorded under `name` since the last reset.
double span_total_ms(const char* name) {
  for (const obs::PhaseTotal& t : obs::Tracer::global().aggregate()) {
    if (t.name == name) return t.total_ms;
  }
  return 0.0;
}

// Drives `proto` through synthetic rounds of the given state size.
template <typename Proto>
void run_sync_rounds(benchmark::State& state, Proto& proto, std::size_t p,
                     int clients) {
  std::vector<float> global(p, 0.0f);
  proto.initialize(global);
  util::Rng rng(7);
  std::vector<std::vector<float>> states(
      static_cast<std::size_t>(clients), std::vector<float>(p));
  compress::RoundContext ctx;
  for (int i = 0; i < clients; ++i) ctx.participants.push_back(i);
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& s : states) {
      for (std::size_t j = 0; j < p; ++j) {
        s[j] = global[j] + 0.01f + 0.001f * static_cast<float>(rng.normal());
      }
    }
    std::vector<std::span<const float>> views(states.begin(), states.end());
    ctx.round = round++;
    state.ResumeTiming();
    auto result = proto.synchronize(ctx, views);
    benchmark::DoNotOptimize(result.new_global.data());
    state.PauseTiming();
    global = std::move(result.new_global);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(p));
}

void BM_FedAvgSync(benchmark::State& state) {
  const ModelCase& c = kCases[state.range(0)];
  const std::size_t p = state_size_of(c);
  compress::FedAvg proto;
  run_sync_rounds(state, proto, p, 8);
  state.SetLabel(c.name);
}
BENCHMARK(BM_FedAvgSync)->Arg(0)->Arg(1)->Arg(2);

void BM_FedSuSync(benchmark::State& state) {
  const ModelCase& c = kCases[state.range(0)];
  const std::size_t p = state_size_of(c);
  core::FedSuManager proto(8);
  run_sync_rounds(state, proto, p, 8);
  state.SetLabel(c.name);
}
BENCHMARK(BM_FedSuSync)->Arg(0)->Arg(1)->Arg(2);

void print_overhead_table() {
  // The table reads every duration from the span tracer.
  obs::set_level(obs::Level::kTrace);
  std::printf("\n=== Table II: FedSU computation & memory overheads ===\n");
  std::printf("%-10s %16s %16s %14s %16s %14s\n", "Model", "FedAvg sync (ms)",
              "FedSU sync (ms)", "Inflation (ms)", "vs round compute",
              "Memory infl.");
  for (const auto& c : kCases) {
    const std::size_t p = state_size_of(c);
    const int clients = 8;
    // Best-of-7 span totals; each rep resets the tracer so its aggregate
    // holds exactly one synchronize() call.
    auto time_proto = [&](compress::SyncProtocol& proto,
                          const char* span_name) {
      std::vector<float> global(p, 0.0f);
      proto.initialize(global);
      util::Rng rng(7);
      std::vector<std::vector<float>> states(
          static_cast<std::size_t>(clients), std::vector<float>(p));
      compress::RoundContext ctx;
      for (int i = 0; i < clients; ++i) ctx.participants.push_back(i);
      double best = 1e18;
      for (int rep = 0; rep < 7; ++rep) {
        for (auto& s : states) {
          for (std::size_t j = 0; j < p; ++j) {
            s[j] = global[j] + 0.01f +
                   0.001f * static_cast<float>(rng.normal());
          }
        }
        std::vector<std::span<const float>> views(states.begin(), states.end());
        ctx.round = rep;
        obs::Tracer::global().reset();
        auto result = proto.synchronize(ctx, views);
        best = std::min(best, span_total_ms(span_name));
        global = std::move(result.new_global);
      }
      return best;
    };
    compress::FedAvg fedavg;
    core::FedSuManager fedsu(clients);
    const double fedavg_ms = time_proto(fedavg, "compress.fedavg.sync");
    const double fedsu_ms = time_proto(fedsu, "core.fedsu.sync");
    // The last FedSU rep's sub-spans are still in the tracer: the per-pass
    // split of one synchronize() call.
    const double speculate_ms = span_total_ms("core.fedsu.speculate");
    const double feedback_ms = span_total_ms("core.fedsu.feedback");
    const double diagnosis_ms = span_total_ms("core.fedsu.diagnosis");
    const double inflation_ms = std::max(0.0, fedsu_ms - fedavg_ms);

    // Round compute reference: host wall time of one client's local round
    // (10 iterations x batch 16) — the same tracer clock the sync inflation
    // was measured on, so the ratio is apples-to-apples.
    nn::ModelSpec spec = nn::paper_spec(c.dataset);
    spec.image_size = c.scaled_image;
    nn::Model model = nn::build_model(spec, util::Rng(1));
    nn::Sgd sgd(model.parameters(), {.learning_rate = 0.01f});
    nn::SoftmaxCrossEntropy loss;
    util::Rng data_rng(5);
    tensor::Tensor batch({16, spec.in_channels, spec.image_size,
                          spec.image_size});
    for (std::size_t j = 0; j < batch.size(); ++j) {
      batch[j] = static_cast<float>(data_rng.normal());
    }
    std::vector<int> labels(16);
    for (auto& y : labels) {
      y = static_cast<int>(data_rng.uniform_index(10));
    }
    obs::Tracer::global().reset();
    {
      OBS_SPAN("bench.local_train");
      for (int it = 0; it < 10; ++it) {
        model.zero_grads();
        loss.forward(model.forward(batch, true), labels);
        model.backward(loss.backward());
        sgd.step();
      }
    }
    const double round_compute_ms = span_total_ms("bench.local_train");
    const double compute_inflation = inflation_ms / round_compute_ms * 100.0;

    std::vector<float> global(p, 0.0f);
    core::FedSuManager fresh(clients);
    fresh.initialize(global);
    const double model_bytes = static_cast<double>(p) * sizeof(float);
    const double memory_inflation =
        static_cast<double>(fresh.state_bytes()) / model_bytes;

    std::printf("%-10s %16.3f %16.3f %14.3f %15.2f%% %13.2fx\n", c.name,
                fedavg_ms, fedsu_ms, inflation_ms, compute_inflation,
                memory_inflation);
    std::printf("%-10s   per-pass split: speculate %.3f ms, feedback %.3f ms, "
                "diagnosis %.3f ms\n", "", speculate_ms, feedback_ms,
                diagnosis_ms);
  }
  std::printf("(memory inflation is FedSU manager state relative to one model "
              "copy; the model itself is a small share of device memory)\n");
  obs::set_level(obs::Level::kOff);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_overhead_table();
  return 0;
}
