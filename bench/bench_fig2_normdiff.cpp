// Fig. 2: the normalized difference ||d_{k} - d_{k-1}|| / ||d_{k-1}|| of
// consecutive per-round global updates — (a) instantaneous values for the
// CNN, (b) CDF for CNN and DenseNet.
//
// Paper shape to reproduce: per-round normalized differences are small (the
// paper reports almost always < 0.01 at round granularity, >90% of updates
// below 0.005 on their testbed). At our scaled workload the absolute values
// are larger (10 local iterations instead of 50 smooth less noise), but the
// distribution must still concentrate at small values, endorsing cross-round
// update similarity.
#include <cstdio>

#include "common.h"
#include "metrics/stats.h"
#include "util/csv.h"

using namespace fedsu;

namespace {

std::vector<double> normdiff_series(const bench::BenchConfig& config) {
  fl::Simulation sim(bench::simulation_options(config),
                     fl::make_protocol(bench::protocol_config(config, "fedavg")));
  metrics::NormalizedDifference nd;
  std::vector<float> prev = sim.global_state();
  for (int r = 0; r < config.rounds; ++r) {
    sim.step();
    const auto& state = sim.global_state();
    std::vector<float> update(state.size());
    for (std::size_t j = 0; j < state.size(); ++j) update[j] = state[j] - prev[j];
    prev = state;
    nd.observe(update);
  }
  return nd.history();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig defaults;
  defaults.rounds = 40;
  util::Flags flags = bench::make_flags(defaults);
  if (!flags.parse(argc, argv)) return 0;
  bench::BenchConfig base = bench::config_from_flags(flags);
  base.eval_every = 0;

  // (a) instantaneous values, CNN.
  bench::BenchConfig cnn = base;
  cnn.dataset = "emnist";
  const auto cnn_series = normdiff_series(cnn);
  bench::print_header("Fig. 2a: instantaneous normalized difference (CNN)");
  for (std::size_t r = 0; r < cnn_series.size(); ++r) {
    std::printf("  round %3zu  norm-diff %.5f\n", r + 1, cnn_series[r]);
  }

  // (b) CDFs for CNN and DenseNet.
  bench::BenchConfig dense = base;
  dense.dataset = "cifar";
  dense.rounds = std::min(base.rounds, 25);
  const auto dense_series = normdiff_series(dense);

  bench::print_header("Fig. 2b: CDF of normalized difference");
  for (const auto& [name, series] :
       {std::pair<std::string, const std::vector<double>&>{"cnn", cnn_series},
        {"densenet", dense_series}}) {
    metrics::Cdf cdf;
    for (double v : series) cdf.add(v);
    std::printf("%s: p50=%.4f p90=%.4f p99=%.4f | frac<0.05=%.2f frac<0.2=%.2f\n",
                name.c_str(), cdf.quantile(0.5), cdf.quantile(0.9),
                cdf.quantile(0.99), cdf.fraction_below(0.05),
                cdf.fraction_below(0.2));
    for (const auto& [value, fraction] : cdf.curve(11)) {
      std::printf("  cdf %-10s value %.5f  fraction %.2f\n", name.c_str(), value,
                  fraction);
    }
  }

  if (!base.csv_dir.empty()) {
    util::CsvWriter csv(base.csv_dir + "/fig2.csv");
    csv.write_row({"model", "round", "norm_diff"});
    for (std::size_t r = 0; r < cnn_series.size(); ++r) {
      csv.write_row({"cnn", std::to_string(r + 1),
                     util::CsvWriter::field(cnn_series[r])});
    }
    for (std::size_t r = 0; r < dense_series.size(); ++r) {
      csv.write_row({"densenet", std::to_string(r + 1),
                     util::CsvWriter::field(dense_series[r])});
    }
  }
  return 0;
}
