// Communication-path microbench: per-protocol server-side synchronize cost
// and exact wire traffic across model-zoo sizes x cohort ladders, with no
// training in the loop (DESIGN.md §15).
//
// Each (arch, cohort, scheme) cell drives the protocol's synchronize() with
// synthetic client states — a per-parameter linear drift plus per-(round,
// client) uniform noise from counter-derived Rng streams, so every cell is
// a pure function of the seed, independent of the GEMM ISA dispatch and of
// the thread count (§5b). State generation happens outside the timed
// region; the cell reports:
//   * wall ms per round of the synchronize() call itself;
//   * tracer sub-phases (compress.<p>.select/quantize/vote/relevance/
//     aggregate, core.fedsu.speculate/feedback/diagnosis) in ms per round;
//   * exact per-round bytes and scalars in each direction from the
//     wire::measure_* accounting — deterministic, so the regression gate
//     (tools/obs_report --diff) holds them to tolerance bytes_rel and the
//     wall phases to time_rel.
//
// Results land in BENCH_comm.json (self-reparsed through obs::json_parse as
// a schema check). --smoke shrinks to {logistic} x {8, 32} for CI.
//
// Usage: bench_comm [--out BENCH_comm.json] [--clients-list 8,64,256,1024]
//                   [--archs logistic,cnn,mlp] [--smoke]
//                   [+ shared flags: --rounds, --threads, --seed, ...]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.h"
#include "nn/zoo.h"
#include "obs/json.h"

namespace {

using fedsu::bench::BenchConfig;

std::vector<int> parse_ladder(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int v = std::stoi(item);
    if (v <= 0) throw std::invalid_argument("clients-list: need positive ints");
    out.push_back(v);
  }
  if (out.empty()) throw std::invalid_argument("clients-list: empty");
  return out;
}

std::vector<std::string> parse_names(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  if (out.empty()) throw std::invalid_argument("archs: empty");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig defaults;
  defaults.rounds = 4;
  // Sub-phases come from the OBS_SPAN tracer (observation never perturbs
  // results, §5b — only the wall clock).
  defaults.obs_level = "trace";
  fedsu::util::Flags flags = fedsu::bench::make_flags(defaults);
  flags.add_string("out", "BENCH_comm.json", "output JSON path")
      .add_string("clients-list", "8,64,256,1024",
                  "cohort ladder (comma-separated)")
      .add_string("archs", "logistic,cnn,mlp",
                  "model-zoo architectures sizing the synthetic state")
      .add_bool("smoke", false, "CI mode: logistic x {8,32}, 3 rounds");
  if (!flags.parse(argc, argv)) return 0;

  BenchConfig config = fedsu::bench::config_from_flags(flags);
  std::vector<int> ladder = parse_ladder(flags.get_string("clients-list"));
  std::vector<std::string> archs = parse_names(flags.get_string("archs"));
  if (flags.get_bool("smoke")) {
    ladder = {8, 32};
    archs = {"logistic"};
    config.rounds = 3;
  }
  const std::vector<std::string> schemes = {
      "fedavg", "cmfl", "apf", "topk", "qsgd", "signsgd", "fedsu"};

  fedsu::bench::print_header(
      "Comm: per-protocol synchronize cost and exact wire traffic");
  std::printf("%-9s %8s %-8s %-8s %10s %10s %10s\n", "arch", "params",
              "clients", "scheme", "sync_ms/r", "up_KB/r", "down_KB/r");

  std::ostringstream cells;
  int cell_count = 0;
  const fedsu::util::Rng base(config.seed);
  for (std::size_t a = 0; a < archs.size(); ++a) {
    // The zoo model provides the parameter count and the initial state;
    // everything after round 0 is synthetic.
    fedsu::nn::ModelSpec spec;
    spec.arch = archs[a];
    fedsu::nn::Model model =
        fedsu::nn::build_model(spec, fedsu::util::Rng(config.seed));
    const std::vector<float> init = model.state_vector();
    const std::size_t p = init.size();

    for (const int clients : ladder) {
      const std::size_t n = static_cast<std::size_t>(clients);
      // Per-parameter drift: a linear trajectory the speculative protocols
      // can lock onto, fixed for the cell.
      const fedsu::util::Rng cell_rng = base.fork(a + 1).fork(n);
      std::vector<float> drift(p);
      {
        fedsu::util::Rng r = cell_rng.fork(0);
        for (std::size_t j = 0; j < p; ++j) {
          drift[j] = static_cast<float>(0.01 * (r.uniform() * 2.0 - 1.0));
        }
      }
      std::vector<float> states(n * p);
      std::vector<std::span<const float>> views(n);
      for (std::size_t i = 0; i < n; ++i) {
        views[i] = std::span<const float>(states.data() + i * p, p);
      }
      fedsu::compress::RoundContext ctx;
      ctx.participants.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        ctx.participants[i] = static_cast<int>(i);
      }

      for (const std::string& scheme : schemes) {
        BenchConfig cell_config = config;
        cell_config.clients = clients;
        auto protocol = fedsu::fl::make_protocol(
            fedsu::bench::protocol_config(cell_config, scheme));
        protocol->initialize(init);
        std::vector<float> global = init;

        fedsu::obs::Tracer::global().reset();
        double sync_ms = 0.0;
        double bytes_up = 0.0, bytes_down = 0.0;
        double scalars_up = 0.0, scalars_down = 0.0;
        for (int round = 0; round < config.rounds; ++round) {
          // Untimed: synthesize this round's cohort. Per-(round, client)
          // streams keep generation order-free (and parallelizable).
          const fedsu::util::Rng round_rng = cell_rng.fork(round + 1);
          auto gen = [&](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) {
              fedsu::util::Rng r = round_rng.fork(i + 1);
              float* row = states.data() + i * p;
              for (std::size_t j = 0; j < p; ++j) {
                row[j] = global[j] + drift[j] +
                         static_cast<float>(0.002 * (r.uniform() * 2.0 - 1.0));
              }
            }
          };
          fedsu::util::ThreadPool& pool = fedsu::util::ThreadPool::global();
          if (pool.worth_parallelizing() && n > 1) {
            pool.parallel_for(0, n, gen);
          } else {
            gen(0, n);
          }

          ctx.round = round;
          fedsu::util::Stopwatch timer;
          fedsu::compress::SyncResult result =
              protocol->synchronize(ctx, views);
          sync_ms += timer.elapsed_seconds() * 1e3;
          for (std::size_t i = 0; i < n; ++i) {
            bytes_up += static_cast<double>(result.bytes_up[i]);
            bytes_down += static_cast<double>(result.bytes_down[i]);
          }
          scalars_up += static_cast<double>(result.scalars_up);
          scalars_down += static_cast<double>(result.scalars_down);
          global = std::move(result.new_global);
        }
        const double inv_rounds = 1.0 / config.rounds;
        const auto phases = fedsu::obs::Tracer::global().aggregate();

        const std::string setting =
            archs[a] + "/c" + std::to_string(clients);
        std::printf("%-9s %8zu %-8d %-8s %10.3f %10.1f %10.1f\n",
                    archs[a].c_str(), p, clients, scheme.c_str(),
                    sync_ms * inv_rounds, bytes_up * inv_rounds / 1e3,
                    bytes_down * inv_rounds / 1e3);

        cells << (cell_count++ ? ",\n" : "\n") << "    {\"setting\": "
              << fedsu::obs::json_quote(setting) << ", \"scheme\": "
              << fedsu::obs::json_quote(scheme) << ", \"arch\": "
              << fedsu::obs::json_quote(archs[a]) << ", \"params\": " << p
              << ", \"clients\": " << clients
              << ", \"rounds\": " << config.rounds
              << ", \"wall_ms_per_round\": "
              << fedsu::obs::json_number(sync_ms * inv_rounds)
              << ", \"bytes_up_per_round\": "
              << fedsu::obs::json_number(bytes_up * inv_rounds)
              << ", \"bytes_down_per_round\": "
              << fedsu::obs::json_number(bytes_down * inv_rounds)
              << ", \"scalars_up_per_round\": "
              << fedsu::obs::json_number(scalars_up * inv_rounds)
              << ", \"scalars_down_per_round\": "
              << fedsu::obs::json_number(scalars_down * inv_rounds)
              << ", \"sparsification_ratio\": "
              << fedsu::obs::json_number(
                     protocol->last_sparsification_ratio())
              << ", \"phases_ms_per_round\": {";
        bool first_phase = true;
        for (const auto& phase : phases) {
          const bool compress = phase.name.rfind("compress.", 0) == 0;
          const bool fedsu_core = phase.name.rfind("core.fedsu.", 0) == 0;
          if (!compress && !fedsu_core) continue;
          cells << (first_phase ? "" : ", ")
                << fedsu::obs::json_quote(phase.name) << ": "
                << fedsu::obs::json_number(phase.total_ms * inv_rounds);
          first_phase = false;
        }
        cells << "}}";
      }
    }
  }

  std::ostringstream doc;
  doc << "{\n  \"bench\": \"comm\",\n  \"rounds\": " << config.rounds
      << ",\n  \"threads\": "
      << fedsu::util::ThreadPool::resolve_threads(config.threads)
      << ",\n  \"seed\": " << config.seed
      << ",\n  \"smoke\": " << (flags.get_bool("smoke") ? "true" : "false")
      << ",\n  \"cells\": [" << cells.str() << "\n  ]\n}\n";

  // Schema self-check before touching the checked-in file (bench_gemm
  // idiom): a broken emitter must never overwrite a good artifact.
  try {
    const fedsu::obs::JsonValue parsed = fedsu::obs::json_parse(doc.str());
    if (parsed.at("bench").as_string() != "comm") {
      throw std::runtime_error("bench key mismatch");
    }
    const auto& parsed_cells = parsed.at("cells").as_array();
    const std::size_t expected = archs.size() * ladder.size() * schemes.size();
    if (parsed_cells.size() != expected) {
      throw std::runtime_error("expected " + std::to_string(expected) +
                               " cells");
    }
    for (const auto& cell : parsed_cells) {
      cell.at("setting").as_string();
      cell.at("scheme").as_string();
      cell.at("params").as_number();
      cell.at("wall_ms_per_round").as_number();
      cell.at("bytes_up_per_round").as_number();
      cell.at("bytes_down_per_round").as_number();
      cell.at("phases_ms_per_round");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL: emitted JSON failed schema check: %s\n",
                 e.what());
    return 1;
  }

  const std::string out_path = flags.get_string("out");
  std::ofstream out(out_path);
  out << doc.str();
  if (!out) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
