// Fig. 7: CDF over parameters of the fraction of training time each spent
// diagnosed-as-linear (speculative) under FedSU.
//
// Paper shape to reproduce: a heavy upper tail — a large share of the
// parameters spends a substantial share of the run in speculative mode
// (the paper reports >80% of parameters linear for >50% of the time over
// hundreds of rounds; shorter scaled runs shift the curve left but keep the
// heavy-tailed shape).
#include <cstdio>

#include "common.h"
#include "core/fedsu_manager.h"
#include "metrics/stats.h"
#include "util/csv.h"

using namespace fedsu;

int main(int argc, char** argv) {
  bench::BenchConfig defaults;
  defaults.rounds = 60;
  util::Flags flags = bench::make_flags(defaults);
  flags.add_string("datasets", "emnist", "datasets to run (comma list)");
  if (!flags.parse(argc, argv)) return 0;
  bench::BenchConfig base = bench::config_from_flags(flags);
  base.eval_every = 0;

  for (const std::string dataset : {std::string("emnist"), std::string("fmnist"),
                                    std::string("cifar")}) {
    if (flags.get_string("datasets").find(dataset) == std::string::npos) continue;
    bench::BenchConfig config = base;
    config.dataset = dataset;
    if (dataset != "emnist") config.rounds = std::min(config.rounds, 40);

    auto proto = fl::make_protocol(bench::protocol_config(config, "fedsu"));
    auto* manager = dynamic_cast<core::FedSuManager*>(proto.get());
    fl::Simulation sim(bench::simulation_options(config), std::move(proto));
    for (int r = 0; r < config.rounds; ++r) sim.step();

    metrics::Cdf cdf;
    const auto& linear_rounds = manager->linear_rounds();
    for (auto rounds : linear_rounds) {
      cdf.add(static_cast<double>(rounds) / manager->rounds_seen());
    }

    bench::print_header("Fig. 7: CDF of predictable-time fraction (" + dataset +
                        ", " + std::to_string(config.rounds) + " rounds)");
    std::printf("median=%.3f p75=%.3f p90=%.3f | frac of params linear >25%% "
                "of time: %.3f, >50%%: %.3f\n",
                cdf.quantile(0.5), cdf.quantile(0.75), cdf.quantile(0.9),
                1.0 - cdf.fraction_below(0.25), 1.0 - cdf.fraction_below(0.5));
    for (const auto& [value, fraction] : cdf.curve(11)) {
      std::printf("  linear-fraction %.3f  cdf %.2f\n", value, fraction);
    }

    if (!config.csv_dir.empty()) {
      util::CsvWriter csv(config.csv_dir + "/fig7_" + dataset + ".csv");
      csv.write_row({"linear_fraction", "cdf"});
      for (const auto& [value, fraction] : cdf.curve(51)) {
        csv.write_row({util::CsvWriter::field(value),
                       util::CsvWriter::field(fraction)});
      }
    }
  }
  return 0;
}
