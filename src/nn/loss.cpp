#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace fedsu::nn {

float SoftmaxCrossEntropy::forward(const tensor::Tensor& logits,
                                   const std::vector<int>& labels) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("SoftmaxCrossEntropy: logits must be [N, C]");
  }
  const int n = logits.dim(0);
  const int c = logits.dim(1);
  if (static_cast<std::size_t>(n) != labels.size()) {
    throw std::invalid_argument("SoftmaxCrossEntropy: label count mismatch");
  }
  probs_ = tensor::Tensor({n, c});
  labels_ = labels;
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    if (labels[static_cast<std::size_t>(i)] < 0 ||
        labels[static_cast<std::size_t>(i)] >= c) {
      throw std::invalid_argument("SoftmaxCrossEntropy: label out of range");
    }
    const float* row = logits.data() + static_cast<std::size_t>(i) * c;
    float maxv = row[0];
    for (int j = 1; j < c; ++j) maxv = std::max(maxv, row[j]);
    double denom = 0.0;
    for (int j = 0; j < c; ++j) denom += std::exp(static_cast<double>(row[j] - maxv));
    const double log_denom = std::log(denom);
    float* prow = probs_.data() + static_cast<std::size_t>(i) * c;
    for (int j = 0; j < c; ++j) {
      prow[j] = static_cast<float>(
          std::exp(static_cast<double>(row[j] - maxv) - log_denom));
    }
    const int y = labels[static_cast<std::size_t>(i)];
    total += -(static_cast<double>(row[y] - maxv) - log_denom);
  }
  return static_cast<float>(total / n);
}

tensor::Tensor SoftmaxCrossEntropy::backward() const {
  if (probs_.empty()) {
    throw std::logic_error("SoftmaxCrossEntropy::backward before forward");
  }
  const int n = probs_.dim(0);
  const int c = probs_.dim(1);
  tensor::Tensor grad = probs_;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int i = 0; i < n; ++i) {
    float* row = grad.data() + static_cast<std::size_t>(i) * c;
    row[labels_[static_cast<std::size_t>(i)]] -= 1.0f;
    for (int j = 0; j < c; ++j) row[j] *= inv_n;
  }
  return grad;
}

float accuracy(const tensor::Tensor& logits, const std::vector<int>& labels) {
  if (logits.rank() != 2 ||
      static_cast<std::size_t>(logits.dim(0)) != labels.size()) {
    throw std::invalid_argument("accuracy: shape mismatch");
  }
  const int n = logits.dim(0);
  const int c = logits.dim(1);
  if (n == 0) return 0.0f;
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    const std::size_t pred =
        tensor::argmax(logits.data() + static_cast<std::size_t>(i) * c,
                       static_cast<std::size_t>(c));
    if (static_cast<int>(pred) == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(n);
}

}  // namespace fedsu::nn
