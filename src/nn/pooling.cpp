#include "nn/pooling.h"

#include <limits>
#include <stdexcept>

namespace fedsu::nn {

namespace {
void check_nchw(const tensor::Tensor& t, const char* who) {
  if (t.rank() != 4) {
    throw std::invalid_argument(std::string(who) + ": expected NCHW, got " +
                                t.shape_string());
  }
}
}  // namespace

MaxPool2d::MaxPool2d(int kernel, int stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel_ <= 0 || stride_ <= 0) {
    throw std::invalid_argument("MaxPool2d: non-positive kernel/stride");
  }
}

tensor::Tensor MaxPool2d::forward(const tensor::Tensor& input, bool /*train*/) {
  check_nchw(input, "MaxPool2d::forward");
  cached_shape_ = input.shape();
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  const int oh = (h - kernel_) / stride_ + 1;
  const int ow = (w - kernel_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("MaxPool2d: kernel larger than input");
  }
  tensor::Tensor out({n, c, oh, ow});
  argmax_.assign(out.size(), 0);
  const float* x = input.data();
  float* y = out.data();
  std::size_t oi = 0;
  for (int in = 0; in < n; ++in) {
    for (int ic = 0; ic < c; ++ic) {
      const std::size_t plane =
          (static_cast<std::size_t>(in) * c + ic) * h * w;
      for (int orow = 0; orow < oh; ++orow) {
        for (int ocol = 0; ocol < ow; ++ocol, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::uint32_t best_idx = 0;
          for (int kr = 0; kr < kernel_; ++kr) {
            const int r = orow * stride_ + kr;
            for (int kc = 0; kc < kernel_; ++kc) {
              const int col = ocol * stride_ + kc;
              const std::size_t idx = plane + static_cast<std::size_t>(r) * w + col;
              if (x[idx] > best) {
                best = x[idx];
                best_idx = static_cast<std::uint32_t>(idx);
              }
            }
          }
          y[oi] = best;
          argmax_[oi] = best_idx;
        }
      }
    }
  }
  return out;
}

tensor::Tensor MaxPool2d::backward(const tensor::Tensor& grad_output) {
  if (grad_output.size() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2d::backward: shape mismatch");
  }
  tensor::Tensor dx(cached_shape_);
  float* p = dx.data();
  const float* g = grad_output.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) p[argmax_[i]] += g[i];
  return dx;
}

AvgPool2d::AvgPool2d(int kernel, int stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel_ <= 0 || stride_ <= 0) {
    throw std::invalid_argument("AvgPool2d: non-positive kernel/stride");
  }
}

tensor::Tensor AvgPool2d::forward(const tensor::Tensor& input, bool /*train*/) {
  check_nchw(input, "AvgPool2d::forward");
  cached_shape_ = input.shape();
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  const int oh = (h - kernel_) / stride_ + 1;
  const int ow = (w - kernel_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("AvgPool2d: kernel larger than input");
  }
  tensor::Tensor out({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (int in = 0; in < n; ++in) {
    for (int ic = 0; ic < c; ++ic) {
      for (int orow = 0; orow < oh; ++orow) {
        for (int ocol = 0; ocol < ow; ++ocol) {
          float acc = 0.0f;
          for (int kr = 0; kr < kernel_; ++kr) {
            for (int kc = 0; kc < kernel_; ++kc) {
              acc += input.at(in, ic, orow * stride_ + kr, ocol * stride_ + kc);
            }
          }
          out.at(in, ic, orow, ocol) = acc * inv;
        }
      }
    }
  }
  return out;
}

tensor::Tensor AvgPool2d::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor dx(cached_shape_);
  const int n = cached_shape_[0], c = cached_shape_[1];
  const int oh = grad_output.dim(2), ow = grad_output.dim(3);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (int in = 0; in < n; ++in) {
    for (int ic = 0; ic < c; ++ic) {
      for (int orow = 0; orow < oh; ++orow) {
        for (int ocol = 0; ocol < ow; ++ocol) {
          const float g = grad_output.at(in, ic, orow, ocol) * inv;
          for (int kr = 0; kr < kernel_; ++kr) {
            for (int kc = 0; kc < kernel_; ++kc) {
              dx.at(in, ic, orow * stride_ + kr, ocol * stride_ + kc) += g;
            }
          }
        }
      }
    }
  }
  return dx;
}

tensor::Tensor GlobalAvgPool::forward(const tensor::Tensor& input,
                                      bool /*train*/) {
  check_nchw(input, "GlobalAvgPool::forward");
  cached_shape_ = input.shape();
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  tensor::Tensor out({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int in = 0; in < n; ++in) {
    for (int ic = 0; ic < c; ++ic) {
      float acc = 0.0f;
      for (int r = 0; r < h; ++r) {
        for (int col = 0; col < w; ++col) acc += input.at(in, ic, r, col);
      }
      out.at(in, ic) = acc * inv;
    }
  }
  return out;
}

tensor::Tensor GlobalAvgPool::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor dx(cached_shape_);
  const int n = cached_shape_[0], c = cached_shape_[1], h = cached_shape_[2],
            w = cached_shape_[3];
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int in = 0; in < n; ++in) {
    for (int ic = 0; ic < c; ++ic) {
      const float g = grad_output.at(in, ic) * inv;
      for (int r = 0; r < h; ++r) {
        for (int col = 0; col < w; ++col) dx.at(in, ic, r, col) = g;
      }
    }
  }
  return dx;
}

}  // namespace fedsu::nn
