#include "nn/sgd.h"

namespace fedsu::nn {

Sgd::Sgd(std::vector<Param*> params, SgdOptions options)
    : params_(std::move(params)), options_(options) {
  if (options_.momentum != 0.0f) {
    velocity_.resize(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) {
      velocity_[i].assign(params_[i]->value.size(), 0.0f);
    }
  }
}

void Sgd::step() {
  const float lr = options_.learning_rate;
  const float wd = options_.weight_decay;
  const float mu = options_.momentum;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    if (!p.trainable) continue;
    float* v = p.value.data();
    const float* g = p.grad.data();
    if (mu == 0.0f) {
      for (std::size_t j = 0; j < p.value.size(); ++j) {
        v[j] -= lr * (g[j] + wd * v[j]);
      }
    } else {
      float* vel = velocity_[i].data();
      for (std::size_t j = 0; j < p.value.size(); ++j) {
        vel[j] = mu * vel[j] + g[j] + wd * v[j];
        v[j] -= lr * vel[j];
      }
    }
  }
}

}  // namespace fedsu::nn
