// 2-D convolution over NCHW tensors, implemented with im2col + matmul.
#pragma once

#include "nn/module.h"
#include "util/rng.h"

namespace fedsu::nn {

class Conv2d : public Module {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, util::Rng& rng,
         int stride = 1, int padding = 0, bool bias = true);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "Conv2d"; }

  int out_height(int h) const { return (h + 2 * padding_ - kernel_) / stride_ + 1; }
  int out_width(int w) const { return (w + 2 * padding_ - kernel_) / stride_ + 1; }

 private:
  // Unpacks one sample [C,H,W] into columns [C*k*k, oh*ow].
  void im2col(const float* image, int h, int w, float* cols) const;
  // Scatter-adds columns back into a [C,H,W] image buffer.
  void col2im(const float* cols, int h, int w, float* image) const;

  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int padding_;
  bool has_bias_;
  Param weight_;  // [outC, inC*k*k]
  Param bias_;    // [outC]
  tensor::Tensor cached_input_;
  // [N, inC*k*k, oh*ow] flattened; resize()d per forward so the buffer's
  // capacity is reused across batches instead of reallocated.
  tensor::Tensor cached_cols_;
  int cached_oh_ = 0;
  int cached_ow_ = 0;
};

}  // namespace fedsu::nn
