#include "nn/module.h"

namespace fedsu::nn {

void zero_grads(const std::vector<Param*>& params) {
  for (Param* p : params) p->grad.zero();
}

}  // namespace fedsu::nn
