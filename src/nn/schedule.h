// Learning-rate schedules.
//
// Theorem 1 (paper §IV-D) guarantees FedSU convergence when the schedule
// satisfies Eq. 13: sum(lr) -> inf and sum(lr^2)/sum(lr) -> 0; the paper
// suggests lr_k = O(1/sqrt(T)). All schedules here expose lr(round).
#pragma once

#include <memory>
#include <string>

namespace fedsu::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  // Learning rate to use in (0-based) round k.
  virtual float lr(int round) const = 0;
  virtual std::string name() const = 0;
};

// lr_k = base (the paper's evaluation setup uses constant rates).
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float base);
  float lr(int round) const override;
  std::string name() const override { return "constant"; }

 private:
  float base_;
};

// lr_k = base / sqrt(k + 1): satisfies Eq. 13.
class InverseSqrtLr : public LrSchedule {
 public:
  // `warmup` rounds ramp linearly from 0 to base first (0 = no warmup).
  explicit InverseSqrtLr(float base, int warmup = 0);
  float lr(int round) const override;
  std::string name() const override { return "inverse-sqrt"; }

 private:
  float base_;
  int warmup_;
};

// lr_k = base * gamma^(k / step): classic step decay.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float base, int step, float gamma);
  float lr(int round) const override;
  std::string name() const override { return "step-decay"; }

 private:
  float base_;
  int step_;
  float gamma_;
};

// Factory: "constant" | "inverse-sqrt" | "step-decay".
std::unique_ptr<LrSchedule> make_schedule(const std::string& kind, float base);

// Checks Eq. 13 numerically over `horizon` rounds: returns
// sum(lr^2)/sum(lr), which must shrink as the horizon grows for a
// convergent schedule.
double eq13_ratio(const LrSchedule& schedule, int horizon);

}  // namespace fedsu::nn
