// Fully-connected layer: y = x W^T + b, x:[N,in], W:[out,in], b:[out].
#pragma once

#include "nn/module.h"
#include "util/rng.h"

namespace fedsu::nn {

class Linear : public Module {
 public:
  Linear(int in_features, int out_features, util::Rng& rng,
         bool bias = true);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "Linear"; }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  bool has_bias_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  tensor::Tensor cached_input_;
};

}  // namespace fedsu::nn
