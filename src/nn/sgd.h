// SGD optimizer with optional momentum and decoupled weight decay,
// matching the paper's training setup (plain SGD + weight decay 1e-3).
#pragma once

#include <vector>

#include "nn/module.h"

namespace fedsu::nn {

struct SgdOptions {
  float learning_rate = 0.01f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
};

class Sgd {
 public:
  // `params` must outlive the optimizer; the order defines velocity slots.
  Sgd(std::vector<Param*> params, SgdOptions options);

  // Applies one update using the accumulated grads (does not zero them).
  void step();

  void set_learning_rate(float lr) { options_.learning_rate = lr; }
  float learning_rate() const { return options_.learning_rate; }

 private:
  std::vector<Param*> params_;
  SgdOptions options_;
  std::vector<std::vector<float>> velocity_;  // lazily sized, empty if no momentum
};

}  // namespace fedsu::nn
