#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

namespace fedsu::nn {

BatchNorm2d::BatchNorm2d(int channels, float momentum, float epsilon)
    : channels_(channels), momentum_(momentum), epsilon_(epsilon) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm2d: channels <= 0");
  gamma_.value = tensor::Tensor::full({channels}, 1.0f);
  gamma_.grad = tensor::Tensor({channels});
  gamma_.name = "bn.gamma";
  beta_.value = tensor::Tensor({channels});
  beta_.grad = tensor::Tensor({channels});
  beta_.name = "bn.beta";
  running_mean_.value = tensor::Tensor({channels});
  running_mean_.grad = tensor::Tensor({channels});
  running_mean_.name = "bn.running_mean";
  running_mean_.trainable = false;
  running_var_.value = tensor::Tensor::full({channels}, 1.0f);
  running_var_.grad = tensor::Tensor({channels});
  running_var_.name = "bn.running_var";
  running_var_.trainable = false;
}

tensor::Tensor BatchNorm2d::forward(const tensor::Tensor& input, bool train) {
  if (input.rank() != 4 || input.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d::forward: bad input " +
                                input.shape_string());
  }
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const std::size_t per_channel = static_cast<std::size_t>(n) * plane;
  last_forward_train_ = train;
  tensor::Tensor out(input.shape());

  if (train) {
    cached_input_ = input;
    batch_mean_.assign(channels_, 0.0f);
    batch_inv_std_.assign(channels_, 0.0f);
    cached_xhat_.assign(input.size(), 0.0f);
    for (int c = 0; c < channels_; ++c) {
      double sum = 0.0, sq = 0.0;
      for (int in = 0; in < n; ++in) {
        const float* p = input.data() +
                         (static_cast<std::size_t>(in) * channels_ + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          sum += p[i];
          sq += static_cast<double>(p[i]) * p[i];
        }
      }
      const double mean = sum / static_cast<double>(per_channel);
      const double var = sq / static_cast<double>(per_channel) - mean * mean;
      const double clamped_var = var < 0.0 ? 0.0 : var;
      batch_mean_[c] = static_cast<float>(mean);
      batch_inv_std_[c] =
          static_cast<float>(1.0 / std::sqrt(clamped_var + epsilon_));
      running_mean_.value[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) * running_mean_.value[static_cast<std::size_t>(c)] +
          momentum_ * static_cast<float>(mean);
      running_var_.value[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) * running_var_.value[static_cast<std::size_t>(c)] +
          momentum_ * static_cast<float>(clamped_var);
      const float g = gamma_.value[static_cast<std::size_t>(c)];
      const float b = beta_.value[static_cast<std::size_t>(c)];
      for (int in = 0; in < n; ++in) {
        const std::size_t base =
            (static_cast<std::size_t>(in) * channels_ + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          const float xhat =
              (input.data()[base + i] - batch_mean_[c]) * batch_inv_std_[c];
          cached_xhat_[base + i] = xhat;
          out.data()[base + i] = g * xhat + b;
        }
      }
    }
  } else {
    for (int c = 0; c < channels_; ++c) {
      const float mean = running_mean_.value[static_cast<std::size_t>(c)];
      const float inv_std = 1.0f /
          std::sqrt(running_var_.value[static_cast<std::size_t>(c)] + epsilon_);
      const float g = gamma_.value[static_cast<std::size_t>(c)];
      const float b = beta_.value[static_cast<std::size_t>(c)];
      for (int in = 0; in < n; ++in) {
        const std::size_t base =
            (static_cast<std::size_t>(in) * channels_ + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          out.data()[base + i] =
              g * ((input.data()[base + i] - mean) * inv_std) + b;
        }
      }
    }
  }
  return out;
}

tensor::Tensor BatchNorm2d::backward(const tensor::Tensor& grad_output) {
  if (!last_forward_train_) {
    throw std::logic_error("BatchNorm2d::backward: last forward was eval-mode");
  }
  if (!grad_output.same_shape(cached_input_)) {
    throw std::invalid_argument("BatchNorm2d::backward: shape mismatch");
  }
  const int n = cached_input_.dim(0), h = cached_input_.dim(2),
            w = cached_input_.dim(3);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const double m = static_cast<double>(n) * plane;
  tensor::Tensor dx(cached_input_.shape());

  for (int c = 0; c < channels_; ++c) {
    // Accumulate sum(dy) and sum(dy * xhat) for this channel.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int in = 0; in < n; ++in) {
      const std::size_t base =
          (static_cast<std::size_t>(in) * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float dy = grad_output.data()[base + i];
        sum_dy += dy;
        sum_dy_xhat += static_cast<double>(dy) * cached_xhat_[base + i];
      }
    }
    gamma_.grad[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy_xhat);
    beta_.grad[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy);
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float inv_std = batch_inv_std_[c];
    // dx = (g * inv_std / m) * (m * dy - sum_dy - xhat * sum_dy_xhat)
    const float k = g * inv_std / static_cast<float>(m);
    for (int in = 0; in < n; ++in) {
      const std::size_t base =
          (static_cast<std::size_t>(in) * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float dy = grad_output.data()[base + i];
        dx.data()[base + i] =
            k * (static_cast<float>(m) * dy - static_cast<float>(sum_dy) -
                 cached_xhat_[base + i] * static_cast<float>(sum_dy_xhat));
      }
    }
  }
  return dx;
}

void BatchNorm2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
  out.push_back(&running_mean_);
  out.push_back(&running_var_);
}

}  // namespace fedsu::nn
