// Model zoo: the paper's three workloads (scaled to 1 vCPU) plus MLP and
// logistic models for fast tests.
//
// Architectures:
//   "cnn"      — the paper's EMNIST CNN verbatim: 2 conv (5x5) + 2 FC.
//   "resnet"   — ResNet-style with 3 residual stages (stands in for the
//                paper's ResNet-18 on FMNIST).
//   "densenet" — DenseNet-style with 3 dense blocks, growth 6 (stands in
//                for DenseNet-121 on CIFAR-10).
//   "mlp"      — flatten + 2 FC, for unit/integration tests.
//   "logistic" — flatten + 1 FC, convex-ish, for protocol tests.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "nn/model.h"
#include "util/rng.h"

namespace fedsu::nn {

struct ModelSpec {
  std::string arch;
  int in_channels = 1;
  int image_size = 28;
  int num_classes = 10;
  // Hidden size for "mlp"; ignored elsewhere.
  int hidden = 64;

  // Approximate multiply-accumulate count of one forward pass per sample,
  // used by the simulated compute-time model. Filled in by build_model.
  double flops_per_sample = 0.0;
};

// Builds a model for the spec. `rng` drives weight init; two models built
// from the same spec+seed are bit-identical replicas.
// Updates spec.flops_per_sample as a side effect of construction.
Model build_model(ModelSpec& spec, util::Rng rng);

// Convenience: returns the spec the paper pairs with each dataset keyword
// ("emnist" -> cnn/28x28x1, "fmnist" -> resnet/28x28x1,
//  "cifar" -> densenet/32x32x3).
ModelSpec paper_spec(const std::string& dataset, int num_classes = 10);

// All architecture names build_model accepts.
std::vector<std::string> known_architectures();

}  // namespace fedsu::nn
