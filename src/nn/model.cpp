#include "nn/model.h"

#include <cstring>
#include <stdexcept>

namespace fedsu::nn {

Model::Model(ModulePtr root) : root_(std::move(root)) {
  if (!root_) throw std::invalid_argument("Model: null root module");
  root_->collect_params(params_);
  for (const Param* p : params_) {
    state_size_ += p->value.size();
    if (p->trainable) trainable_size_ += p->value.size();
  }
}

std::vector<float> Model::state_vector() const {
  std::vector<float> out(state_size_);
  write_state(out);
  return out;
}

void Model::write_state(std::span<float> out) const {
  if (out.size() != state_size_) {
    throw std::invalid_argument("Model::write_state: size mismatch");
  }
  std::size_t offset = 0;
  for (const Param* p : params_) {
    std::memcpy(out.data() + offset, p->value.data(),
                sizeof(float) * p->value.size());
    offset += p->value.size();
  }
}

void Model::load_state_vector(std::span<const float> state) {
  if (state.size() != state_size_) {
    throw std::invalid_argument("Model::load_state_vector: size mismatch");
  }
  std::size_t offset = 0;
  for (Param* p : params_) {
    std::memcpy(p->value.data(), state.data() + offset,
                sizeof(float) * p->value.size());
    offset += p->value.size();
  }
}

std::vector<float> Model::grad_vector() const {
  std::vector<float> out(state_size_);
  std::size_t offset = 0;
  for (const Param* p : params_) {
    std::memcpy(out.data() + offset, p->grad.data(),
                sizeof(float) * p->grad.size());
    offset += p->grad.size();
  }
  return out;
}

}  // namespace fedsu::nn
