// Model: a root module plus flat-state-vector plumbing for the FL layer.
//
// FL protocols operate on one contiguous float vector per client (the
// "model state"): all parameters, trainable weights and BN buffers alike,
// concatenated in collect_params() order. That order is deterministic for
// replicas built from the same factory, which is what lets FedSU keep
// bit-identical masks on every client without exchanging them.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/module.h"

namespace fedsu::nn {

class Model {
 public:
  explicit Model(ModulePtr root);

  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  tensor::Tensor forward(const tensor::Tensor& input, bool train) {
    return root_->forward(input, train);
  }
  tensor::Tensor backward(const tensor::Tensor& grad_output) {
    return root_->backward(grad_output);
  }

  const std::vector<Param*>& parameters() const { return params_; }
  void zero_grads() const { nn::zero_grads(params_); }

  // Total scalar count of the synchronized state (weights + buffers).
  std::size_t state_size() const { return state_size_; }
  // Scalar count of trainable weights only.
  std::size_t trainable_size() const { return trainable_size_; }

  // Flattens all parameter values into one vector (collect order).
  std::vector<float> state_vector() const;
  void write_state(std::span<float> out) const;
  // Loads a flat vector back into the parameters.
  void load_state_vector(std::span<const float> state);

  // Flattens all parameter grads (same layout as state_vector).
  std::vector<float> grad_vector() const;

 private:
  ModulePtr root_;
  std::vector<Param*> params_;
  std::size_t state_size_ = 0;
  std::size_t trainable_size_ = 0;
};

}  // namespace fedsu::nn
