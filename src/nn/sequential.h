// Linear chain of modules.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.h"

namespace fedsu::nn {

class Sequential : public Module {
 public:
  Sequential() = default;

  // Builder-style append; returns *this for chaining.
  Sequential& add(ModulePtr module);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return modules_.size(); }
  Module& at(std::size_t i) { return *modules_.at(i); }

 private:
  std::vector<ModulePtr> modules_;
};

}  // namespace fedsu::nn
