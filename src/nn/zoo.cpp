#include "nn/zoo.h"

#include <memory>
#include <stdexcept>

#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/blocks.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace fedsu::nn {

namespace {

double conv_flops(int in_c, int out_c, int k, int out_hw) {
  return 2.0 * in_c * out_c * k * k * out_hw * out_hw;
}

double linear_flops(int in_f, int out_f) { return 2.0 * in_f * out_f; }

Model build_cnn(ModelSpec& spec, util::Rng& rng) {
  // Paper §VI-A: two conv layers with kernel 5x5 and two fully-connected
  // layers (the classic LeNet-style EMNIST CNN).
  const int s = spec.image_size;
  const int c1 = 8, c2 = 16, fc = 64;
  const int s1 = s - 4;        // conv 5x5, no padding
  const int s1p = s1 / 2;      // maxpool 2
  const int s2 = s1p - 4;      // conv 5x5
  const int s2p = s2 / 2;      // maxpool 2
  if (s2p <= 0) throw std::invalid_argument("cnn: image too small");
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<Conv2d>(spec.in_channels, c1, 5, rng));
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<MaxPool2d>(2));
  seq->add(std::make_unique<Conv2d>(c1, c2, 5, rng));
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<MaxPool2d>(2));
  seq->add(std::make_unique<Flatten>());
  seq->add(std::make_unique<Linear>(c2 * s2p * s2p, fc, rng));
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<Linear>(fc, spec.num_classes, rng));
  spec.flops_per_sample = conv_flops(spec.in_channels, c1, 5, s1) +
                          conv_flops(c1, c2, 5, s2) +
                          linear_flops(c2 * s2p * s2p, fc) +
                          linear_flops(fc, spec.num_classes);
  return Model(std::move(seq));
}

Model build_resnet(ModelSpec& spec, util::Rng& rng) {
  const int s = spec.image_size;
  const int base = 8;
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<Conv2d>(spec.in_channels, base, 3, rng, 1, 1,
                                    /*bias=*/false));
  seq->add(std::make_unique<BatchNorm2d>(base));
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<ResidualBlock>(base, base, 1, rng));
  seq->add(std::make_unique<ResidualBlock>(base, 2 * base, 2, rng));
  seq->add(std::make_unique<ResidualBlock>(2 * base, 4 * base, 2, rng));
  seq->add(std::make_unique<GlobalAvgPool>());
  seq->add(std::make_unique<Linear>(4 * base, spec.num_classes, rng));
  const int s2 = (s + 1) / 2;
  const int s4 = (s2 + 1) / 2;
  spec.flops_per_sample =
      conv_flops(spec.in_channels, base, 3, s) +
      2 * conv_flops(base, base, 3, s) +               // stage 1
      conv_flops(base, 2 * base, 3, s2) +              // stage 2
      conv_flops(2 * base, 2 * base, 3, s2) +
      conv_flops(2 * base, 4 * base, 3, s4) +          // stage 3
      conv_flops(4 * base, 4 * base, 3, s4) +
      linear_flops(4 * base, spec.num_classes);
  return Model(std::move(seq));
}

Model build_densenet(ModelSpec& spec, util::Rng& rng) {
  const int s = spec.image_size;
  const int stem = 8, growth = 6;
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<Conv2d>(spec.in_channels, stem, 3, rng, 1, 1,
                                    /*bias=*/false));
  int ch = stem;
  double flops = conv_flops(spec.in_channels, stem, 3, s);
  // Block 1 (3 layers) + transition halving channels and resolution.
  for (int i = 0; i < 3; ++i) {
    seq->add(std::make_unique<DenseLayer>(ch, growth, rng));
    flops += conv_flops(ch, growth, 3, s);
    ch += growth;
  }
  int ch_t = ch / 2;
  seq->add(std::make_unique<TransitionLayer>(ch, ch_t, rng));
  flops += conv_flops(ch, ch_t, 1, s);
  ch = ch_t;
  const int s2 = s / 2;
  // Block 2 (3 layers) + transition.
  for (int i = 0; i < 3; ++i) {
    seq->add(std::make_unique<DenseLayer>(ch, growth, rng));
    flops += conv_flops(ch, growth, 3, s2);
    ch += growth;
  }
  ch_t = ch / 2;
  seq->add(std::make_unique<TransitionLayer>(ch, ch_t, rng));
  flops += conv_flops(ch, ch_t, 1, s2);
  ch = ch_t;
  const int s4 = s2 / 2;
  // Block 3 (2 layers) + head.
  for (int i = 0; i < 2; ++i) {
    seq->add(std::make_unique<DenseLayer>(ch, growth, rng));
    flops += conv_flops(ch, growth, 3, s4);
    ch += growth;
  }
  seq->add(std::make_unique<BatchNorm2d>(ch));
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<GlobalAvgPool>());
  seq->add(std::make_unique<Linear>(ch, spec.num_classes, rng));
  flops += linear_flops(ch, spec.num_classes);
  spec.flops_per_sample = flops;
  return Model(std::move(seq));
}

Model build_mlp(ModelSpec& spec, util::Rng& rng) {
  const int in = spec.in_channels * spec.image_size * spec.image_size;
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<Flatten>());
  seq->add(std::make_unique<Linear>(in, spec.hidden, rng));
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<Linear>(spec.hidden, spec.num_classes, rng));
  spec.flops_per_sample =
      linear_flops(in, spec.hidden) + linear_flops(spec.hidden, spec.num_classes);
  return Model(std::move(seq));
}

Model build_logistic(ModelSpec& spec, util::Rng& rng) {
  const int in = spec.in_channels * spec.image_size * spec.image_size;
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<Flatten>());
  seq->add(std::make_unique<Linear>(in, spec.num_classes, rng));
  spec.flops_per_sample = linear_flops(in, spec.num_classes);
  return Model(std::move(seq));
}

}  // namespace

Model build_model(ModelSpec& spec, util::Rng rng) {
  if (spec.arch == "cnn") return build_cnn(spec, rng);
  if (spec.arch == "resnet") return build_resnet(spec, rng);
  if (spec.arch == "densenet") return build_densenet(spec, rng);
  if (spec.arch == "mlp") return build_mlp(spec, rng);
  if (spec.arch == "logistic") return build_logistic(spec, rng);
  throw std::invalid_argument("build_model: unknown architecture '" +
                              spec.arch + "'");
}

ModelSpec paper_spec(const std::string& dataset, int num_classes) {
  ModelSpec spec;
  spec.num_classes = num_classes;
  if (dataset == "emnist") {
    spec.arch = "cnn";
    spec.in_channels = 1;
    spec.image_size = 28;
  } else if (dataset == "fmnist") {
    spec.arch = "resnet";
    spec.in_channels = 1;
    spec.image_size = 28;
  } else if (dataset == "cifar") {
    spec.arch = "densenet";
    spec.in_channels = 3;
    spec.image_size = 32;
  } else {
    throw std::invalid_argument("paper_spec: unknown dataset '" + dataset + "'");
  }
  return spec;
}

std::vector<std::string> known_architectures() {
  return {"cnn", "resnet", "densenet", "mlp", "logistic"};
}

}  // namespace fedsu::nn
