// Softmax cross-entropy loss with integrated backward.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace fedsu::nn {

class SoftmaxCrossEntropy {
 public:
  // logits: [N, C]; labels: N class indices in [0, C). Returns mean loss.
  float forward(const tensor::Tensor& logits, const std::vector<int>& labels);

  // dL/dlogits for the last forward() (mean reduction).
  tensor::Tensor backward() const;

  // Class probabilities from the last forward (softmax output), [N, C].
  const tensor::Tensor& probabilities() const { return probs_; }

 private:
  tensor::Tensor probs_;
  std::vector<int> labels_;
};

// Fraction of rows whose argmax matches the label.
float accuracy(const tensor::Tensor& logits, const std::vector<int>& labels);

}  // namespace fedsu::nn
