#include "nn/sequential.h"

#include <stdexcept>

namespace fedsu::nn {

Sequential& Sequential::add(ModulePtr module) {
  if (!module) throw std::invalid_argument("Sequential::add: null module");
  modules_.push_back(std::move(module));
  return *this;
}

tensor::Tensor Sequential::forward(const tensor::Tensor& input, bool train) {
  tensor::Tensor x = input;
  for (auto& m : modules_) x = m->forward(x, train);
  return x;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor g = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect_params(std::vector<Param*>& out) {
  for (auto& m : modules_) m->collect_params(out);
}

}  // namespace fedsu::nn
