// Layer abstraction with hand-written backward passes.
//
// Every Module owns its parameters (value + grad pairs) and caches whatever
// it needs from the last forward() to run backward(). This is a deliberate
// "tape-free" design: the FL simulator trains many small model replicas and
// a full autograd graph would add allocation churn without buying anything
// for these fixed feed-forward topologies.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fedsu::nn {

// A learnable (or buffered) tensor. `trainable == false` marks state that is
// synchronized between FL clients but not updated by the optimizer
// (e.g. BatchNorm running statistics).
struct Param {
  tensor::Tensor value;
  tensor::Tensor grad;
  std::string name;
  bool trainable = true;
};

class Module {
 public:
  virtual ~Module() = default;

  // Runs the layer; `train` selects training-time behaviour (batch stats,
  // dropout). Implementations may cache activations for backward().
  virtual tensor::Tensor forward(const tensor::Tensor& input, bool train) = 0;

  // Propagates `grad_output` (dL/d output) backwards, accumulating into the
  // layer's parameter grads and returning dL/d input. Must be called after
  // a matching forward().
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  // Appends pointers to all parameters (trainable and buffers) in a stable,
  // deterministic order. The FL protocols rely on this order being identical
  // across model replicas built from the same factory.
  virtual void collect_params(std::vector<Param*>& out) { (void)out; }

  virtual std::string name() const = 0;
};

using ModulePtr = std::unique_ptr<Module>;

// Zeroes the grads of every param in the list.
void zero_grads(const std::vector<Param*>& params);

}  // namespace fedsu::nn
