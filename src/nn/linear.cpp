#include "nn/linear.h"

#include <stdexcept>

#include "tensor/gemm.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/vectorized.h"

namespace fedsu::nn {

Linear::Linear(int in_features, int out_features, util::Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features), has_bias_(bias) {
  weight_.value = tensor::Tensor({out_features, in_features});
  weight_.grad = tensor::Tensor({out_features, in_features});
  weight_.name = "linear.weight";
  tensor::kaiming_normal(weight_.value, in_features, rng);
  if (has_bias_) {
    bias_.value = tensor::Tensor({out_features});
    bias_.grad = tensor::Tensor({out_features});
    bias_.name = "linear.bias";
  }
}

tensor::Tensor Linear::forward(const tensor::Tensor& input, bool /*train*/) {
  if (input.rank() != 2 || input.dim(1) != in_features_) {
    throw std::invalid_argument("Linear::forward: expected [N, " +
                                std::to_string(in_features_) + "], got " +
                                input.shape_string());
  }
  cached_input_ = input;
  // y[N,out] = x[N,in] * W[out,in]^T
  tensor::Tensor out = tensor::matmul_nt(input, weight_.value);
  if (has_bias_) {
    const int n = out.dim(0);
    for (int i = 0; i < n; ++i) {
      tensor::vec::add(out.data() + static_cast<std::size_t>(i) * out_features_,
                       bias_.value.data(),
                       static_cast<std::size_t>(out_features_));
    }
  }
  return out;
}

tensor::Tensor Linear::backward(const tensor::Tensor& grad_output) {
  const int n = grad_output.dim(0);
  if (grad_output.rank() != 2 || grad_output.dim(1) != out_features_ ||
      n != cached_input_.dim(0)) {
    throw std::invalid_argument("Linear::backward: bad grad shape " +
                                grad_output.shape_string());
  }
  // dW[out,in] += dy[N,out]^T * x[N,in] — accumulated straight into the
  // grad buffer (no temporary) via the GEMM's beta=1 mode.
  tensor::gemm::sgemm(tensor::gemm::Variant::kTN, out_features_, in_features_,
                      n, grad_output.data(), cached_input_.data(),
                      weight_.grad.data(), tensor::gemm::Accumulate::kAdd);
  if (has_bias_) {
    for (int i = 0; i < n; ++i) {
      tensor::vec::add(bias_.grad.data(),
                       grad_output.data() + static_cast<std::size_t>(i) * out_features_,
                       static_cast<std::size_t>(out_features_));
    }
  }
  // dx[N,in] = dy[N,out] * W[out,in]
  return tensor::matmul(grad_output, weight_.value);
}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

}  // namespace fedsu::nn
