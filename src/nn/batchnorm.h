// Batch normalization over NCHW channel planes.
//
// Running mean/variance are registered as non-trainable Params so they ride
// along in the synchronized FL state vector exactly like in real FedAvg
// deployments (where BN buffers are averaged with the weights).
#pragma once

#include "nn/module.h"

namespace fedsu::nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int channels, float momentum = 0.1f,
                       float epsilon = 1e-5f);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "BatchNorm2d"; }

 private:
  int channels_;
  float momentum_;
  float epsilon_;
  Param gamma_;         // scale, trainable
  Param beta_;          // shift, trainable
  Param running_mean_;  // buffer
  Param running_var_;   // buffer
  // Cached statistics of the last training forward, needed in backward.
  tensor::Tensor cached_input_;
  std::vector<float> batch_mean_;
  std::vector<float> batch_inv_std_;
  std::vector<float> cached_xhat_;  // normalized activations
  bool last_forward_train_ = false;
};

}  // namespace fedsu::nn
