#include "nn/activation.h"

#include <cmath>
#include <stdexcept>

namespace fedsu::nn {

tensor::Tensor ReLU::forward(const tensor::Tensor& input, bool /*train*/) {
  cached_input_ = input;
  tensor::Tensor out = input;
  float* p = out.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (p[i] < 0.0f) p[i] = 0.0f;
  }
  return out;
}

tensor::Tensor ReLU::backward(const tensor::Tensor& grad_output) {
  if (!grad_output.same_shape(cached_input_)) {
    throw std::invalid_argument("ReLU::backward: shape mismatch");
  }
  tensor::Tensor dx = grad_output;
  float* p = dx.data();
  const float* x = cached_input_.data();
  for (std::size_t i = 0; i < dx.size(); ++i) {
    if (x[i] <= 0.0f) p[i] = 0.0f;
  }
  return dx;
}

tensor::Tensor Tanh::forward(const tensor::Tensor& input, bool /*train*/) {
  tensor::Tensor out = input;
  float* p = out.data();
  for (std::size_t i = 0; i < out.size(); ++i) p[i] = std::tanh(p[i]);
  cached_output_ = out;
  return out;
}

tensor::Tensor Tanh::backward(const tensor::Tensor& grad_output) {
  if (!grad_output.same_shape(cached_output_)) {
    throw std::invalid_argument("Tanh::backward: shape mismatch");
  }
  tensor::Tensor dx = grad_output;
  float* p = dx.data();
  const float* y = cached_output_.data();
  for (std::size_t i = 0; i < dx.size(); ++i) p[i] *= (1.0f - y[i] * y[i]);
  return dx;
}

tensor::Tensor Flatten::forward(const tensor::Tensor& input, bool /*train*/) {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten::forward: rank < 2");
  }
  cached_shape_ = input.shape();
  const int n = input.dim(0);
  const int rest = static_cast<int>(input.size()) / n;
  return input.reshaped({n, rest});
}

tensor::Tensor Flatten::backward(const tensor::Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

}  // namespace fedsu::nn
