#include "nn/blocks.h"

#include <cstring>
#include <stdexcept>

#include "nn/activation.h"
#include "nn/pooling.h"
#include "tensor/ops.h"

namespace fedsu::nn {

ResidualBlock::ResidualBlock(int in_channels, int out_channels, int stride,
                             util::Rng& rng)
    : conv1_(in_channels, out_channels, 3, rng, stride, 1, /*bias=*/false),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, 3, rng, 1, 1, /*bias=*/false),
      bn2_(out_channels) {
  if (stride != 1 || in_channels != out_channels) {
    projection_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, rng,
                                           stride, 0, /*bias=*/false);
    projection_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

tensor::Tensor ResidualBlock::forward(const tensor::Tensor& input, bool train) {
  tensor::Tensor main = bn1_.forward(conv1_.forward(input, train), train);
  // In-place ReLU on the main path; cache where it was clipped via sign of
  // the stored pre-activation (we re-run the standard module-free ReLU here
  // and reconstruct the gate in backward from cached_sum_ instead).
  for (std::size_t i = 0; i < main.size(); ++i) {
    if (main[i] < 0.0f) main[i] = 0.0f;
  }
  relu1_gate_ = main;  // post-ReLU activations double as the gate (0 => clipped)
  main = bn2_.forward(conv2_.forward(main, train), train);

  tensor::Tensor shortcut =
      projection_ ? projection_bn_->forward(projection_->forward(input, train),
                                            train)
                  : input;
  tensor::add_inplace(main, shortcut);
  cached_sum_ = main;
  for (std::size_t i = 0; i < main.size(); ++i) {
    if (main[i] < 0.0f) main[i] = 0.0f;
  }
  return main;
}

tensor::Tensor ResidualBlock::backward(const tensor::Tensor& grad_output) {
  if (!grad_output.same_shape(cached_sum_)) {
    throw std::invalid_argument("ResidualBlock::backward: shape mismatch");
  }
  // Final ReLU gate.
  tensor::Tensor g = grad_output;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (cached_sum_[i] <= 0.0f) g[i] = 0.0f;
  }
  // Main path.
  tensor::Tensor gm = conv2_.backward(bn2_.backward(g));
  // Mid ReLU gate: relu1_gate_ holds post-ReLU values (0 where clipped).
  for (std::size_t i = 0; i < gm.size(); ++i) {
    if (relu1_gate_[i] <= 0.0f) gm[i] = 0.0f;
  }
  tensor::Tensor dx = conv1_.backward(bn1_.backward(gm));
  // Shortcut path.
  if (projection_) {
    tensor::Tensor gs = projection_->backward(projection_bn_->backward(g));
    tensor::add_inplace(dx, gs);
  } else {
    tensor::add_inplace(dx, g);
  }
  return dx;
}

void ResidualBlock::collect_params(std::vector<Param*>& out) {
  conv1_.collect_params(out);
  bn1_.collect_params(out);
  conv2_.collect_params(out);
  bn2_.collect_params(out);
  if (projection_) {
    projection_->collect_params(out);
    projection_bn_->collect_params(out);
  }
}

DenseLayer::DenseLayer(int in_channels, int growth, util::Rng& rng)
    : in_channels_(in_channels),
      growth_(growth),
      bn_(in_channels),
      relu_(std::make_unique<ReLU>()),
      conv_(in_channels, growth, 3, rng, 1, 1, /*bias=*/false) {}

tensor::Tensor DenseLayer::forward(const tensor::Tensor& input, bool train) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("DenseLayer::forward: bad input " +
                                input.shape_string());
  }
  cached_input_shape_ = input.shape();
  tensor::Tensor fresh =
      conv_.forward(relu_->forward(bn_.forward(input, train), train), train);
  // Concatenate [input, fresh] along channels.
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  tensor::Tensor out({n, in_channels_ + growth_, h, w});
  for (int in = 0; in < n; ++in) {
    std::memcpy(out.data() +
                    static_cast<std::size_t>(in) * (in_channels_ + growth_) * plane,
                input.data() + static_cast<std::size_t>(in) * in_channels_ * plane,
                sizeof(float) * in_channels_ * plane);
    std::memcpy(out.data() +
                    (static_cast<std::size_t>(in) * (in_channels_ + growth_) +
                     in_channels_) *
                        plane,
                fresh.data() + static_cast<std::size_t>(in) * growth_ * plane,
                sizeof(float) * growth_ * plane);
  }
  return out;
}

tensor::Tensor DenseLayer::backward(const tensor::Tensor& grad_output) {
  const int n = cached_input_shape_[0], h = cached_input_shape_[2],
            w = cached_input_shape_[3];
  if (grad_output.rank() != 4 ||
      grad_output.dim(1) != in_channels_ + growth_) {
    throw std::invalid_argument("DenseLayer::backward: bad grad " +
                                grad_output.shape_string());
  }
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  // Split the concat gradient back into the passthrough and fresh slices.
  tensor::Tensor g_pass({n, in_channels_, h, w});
  tensor::Tensor g_fresh({n, growth_, h, w});
  for (int in = 0; in < n; ++in) {
    std::memcpy(g_pass.data() + static_cast<std::size_t>(in) * in_channels_ * plane,
                grad_output.data() +
                    static_cast<std::size_t>(in) * (in_channels_ + growth_) * plane,
                sizeof(float) * in_channels_ * plane);
    std::memcpy(g_fresh.data() + static_cast<std::size_t>(in) * growth_ * plane,
                grad_output.data() +
                    (static_cast<std::size_t>(in) * (in_channels_ + growth_) +
                     in_channels_) *
                        plane,
                sizeof(float) * growth_ * plane);
  }
  tensor::Tensor dx = bn_.backward(relu_->backward(conv_.backward(g_fresh)));
  tensor::add_inplace(dx, g_pass);
  return dx;
}

void DenseLayer::collect_params(std::vector<Param*>& out) {
  bn_.collect_params(out);
  conv_.collect_params(out);
}

TransitionLayer::TransitionLayer(int in_channels, int out_channels,
                                 util::Rng& rng) {
  body_.add(std::make_unique<BatchNorm2d>(in_channels));
  body_.add(std::make_unique<ReLU>());
  body_.add(std::make_unique<Conv2d>(in_channels, out_channels, 1, rng, 1, 0,
                                     /*bias=*/false));
  body_.add(std::make_unique<AvgPool2d>(2));
}

tensor::Tensor TransitionLayer::forward(const tensor::Tensor& input,
                                        bool train) {
  return body_.forward(input, train);
}

tensor::Tensor TransitionLayer::backward(const tensor::Tensor& grad_output) {
  return body_.backward(grad_output);
}

void TransitionLayer::collect_params(std::vector<Param*>& out) {
  body_.collect_params(out);
}

}  // namespace fedsu::nn
