#include "nn/conv2d.h"

#include <cstring>
#include <stdexcept>

#include "tensor/init.h"

namespace fedsu::nn {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, util::Rng& rng,
               int stride, int padding, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 ||
      padding < 0) {
    throw std::invalid_argument("Conv2d: bad constructor arguments");
  }
  const int fan_in = in_channels * kernel * kernel;
  weight_.value = tensor::Tensor({out_channels, fan_in});
  weight_.grad = tensor::Tensor({out_channels, fan_in});
  weight_.name = "conv.weight";
  tensor::kaiming_normal(weight_.value, fan_in, rng);
  if (has_bias_) {
    bias_.value = tensor::Tensor({out_channels});
    bias_.grad = tensor::Tensor({out_channels});
    bias_.name = "conv.bias";
  }
}

void Conv2d::im2col(const float* image, int h, int w, float* cols) const {
  const int oh = out_height(h);
  const int ow = out_width(w);
  const int patch = oh * ow;
  // cols layout: row = (c, kr, kc), col = (orow, ocol)
  for (int c = 0; c < in_channels_; ++c) {
    const float* plane = image + static_cast<std::size_t>(c) * h * w;
    for (int kr = 0; kr < kernel_; ++kr) {
      for (int kc = 0; kc < kernel_; ++kc) {
        float* row = cols +
                     (static_cast<std::size_t>(c) * kernel_ * kernel_ +
                      static_cast<std::size_t>(kr) * kernel_ + kc) *
                         patch;
        for (int orow = 0; orow < oh; ++orow) {
          const int r = orow * stride_ + kr - padding_;
          if (r < 0 || r >= h) {
            std::memset(row + static_cast<std::size_t>(orow) * ow, 0,
                        sizeof(float) * ow);
            continue;
          }
          for (int ocol = 0; ocol < ow; ++ocol) {
            const int col = ocol * stride_ + kc - padding_;
            row[static_cast<std::size_t>(orow) * ow + ocol] =
                (col >= 0 && col < w)
                    ? plane[static_cast<std::size_t>(r) * w + col]
                    : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* cols, int h, int w, float* image) const {
  const int oh = out_height(h);
  const int ow = out_width(w);
  const int patch = oh * ow;
  for (int c = 0; c < in_channels_; ++c) {
    float* plane = image + static_cast<std::size_t>(c) * h * w;
    for (int kr = 0; kr < kernel_; ++kr) {
      for (int kc = 0; kc < kernel_; ++kc) {
        const float* row = cols +
                           (static_cast<std::size_t>(c) * kernel_ * kernel_ +
                            static_cast<std::size_t>(kr) * kernel_ + kc) *
                               patch;
        for (int orow = 0; orow < oh; ++orow) {
          const int r = orow * stride_ + kr - padding_;
          if (r < 0 || r >= h) continue;
          for (int ocol = 0; ocol < ow; ++ocol) {
            const int col = ocol * stride_ + kc - padding_;
            if (col < 0 || col >= w) continue;
            plane[static_cast<std::size_t>(r) * w + col] +=
                row[static_cast<std::size_t>(orow) * ow + ocol];
          }
        }
      }
    }
  }
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& input, bool /*train*/) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d::forward: bad input " +
                                input.shape_string());
  }
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int oh = out_height(h);
  const int ow = out_width(w);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("Conv2d::forward: output would be empty");
  }
  cached_input_ = input;
  cached_oh_ = oh;
  cached_ow_ = ow;
  const int fan_in = in_channels_ * kernel_ * kernel_;
  const int patch = oh * ow;
  cached_cols_ = tensor::Tensor({n, fan_in, patch});
  tensor::Tensor out({n, out_channels_, oh, ow});

  const float* wmat = weight_.value.data();
  for (int in = 0; in < n; ++in) {
    float* cols = cached_cols_.data() +
                  static_cast<std::size_t>(in) * fan_in * patch;
    im2col(input.data() + static_cast<std::size_t>(in) * in_channels_ * h * w,
           h, w, cols);
    // out[in] = W[outC, fan_in] * cols[fan_in, patch]
    float* y = out.data() + static_cast<std::size_t>(in) * out_channels_ * patch;
    for (int oc = 0; oc < out_channels_; ++oc) {
      float* yrow = y + static_cast<std::size_t>(oc) * patch;
      const float* wrow = wmat + static_cast<std::size_t>(oc) * fan_in;
      if (has_bias_) {
        const float b = bias_.value[static_cast<std::size_t>(oc)];
        for (int p = 0; p < patch; ++p) yrow[p] = b;
      }
      for (int l = 0; l < fan_in; ++l) {
        const float wv = wrow[l];
        if (wv == 0.0f) continue;
        const float* crow = cols + static_cast<std::size_t>(l) * patch;
        for (int p = 0; p < patch; ++p) yrow[p] += wv * crow[p];
      }
    }
  }
  return out;
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_output) {
  const int n = cached_input_.dim(0), h = cached_input_.dim(2),
            w = cached_input_.dim(3);
  const int oh = cached_oh_, ow = cached_ow_;
  if (grad_output.rank() != 4 || grad_output.dim(0) != n ||
      grad_output.dim(1) != out_channels_ || grad_output.dim(2) != oh ||
      grad_output.dim(3) != ow) {
    throw std::invalid_argument("Conv2d::backward: bad grad " +
                                grad_output.shape_string());
  }
  const int fan_in = in_channels_ * kernel_ * kernel_;
  const int patch = oh * ow;
  tensor::Tensor dx(cached_input_.shape());
  std::vector<float> dcols(static_cast<std::size_t>(fan_in) * patch);

  float* dwmat = weight_.grad.data();
  const float* wmat = weight_.value.data();
  for (int in = 0; in < n; ++in) {
    const float* g = grad_output.data() +
                     static_cast<std::size_t>(in) * out_channels_ * patch;
    const float* cols = cached_cols_.data() +
                        static_cast<std::size_t>(in) * fan_in * patch;
    // dW += g[outC, patch] * cols[fan_in, patch]^T
    for (int oc = 0; oc < out_channels_; ++oc) {
      const float* grow = g + static_cast<std::size_t>(oc) * patch;
      float* dwrow = dwmat + static_cast<std::size_t>(oc) * fan_in;
      for (int l = 0; l < fan_in; ++l) {
        const float* crow = cols + static_cast<std::size_t>(l) * patch;
        float acc = 0.0f;
        for (int p = 0; p < patch; ++p) acc += grow[p] * crow[p];
        dwrow[l] += acc;
      }
      if (has_bias_) {
        float acc = 0.0f;
        for (int p = 0; p < patch; ++p) acc += grow[p];
        bias_.grad[static_cast<std::size_t>(oc)] += acc;
      }
    }
    // dcols = W^T[fan_in, outC] * g[outC, patch]
    std::fill(dcols.begin(), dcols.end(), 0.0f);
    for (int oc = 0; oc < out_channels_; ++oc) {
      const float* grow = g + static_cast<std::size_t>(oc) * patch;
      const float* wrow = wmat + static_cast<std::size_t>(oc) * fan_in;
      for (int l = 0; l < fan_in; ++l) {
        const float wv = wrow[l];
        if (wv == 0.0f) continue;
        float* drow = dcols.data() + static_cast<std::size_t>(l) * patch;
        for (int p = 0; p < patch; ++p) drow[p] += wv * grow[p];
      }
    }
    col2im(dcols.data(), h, w,
           dx.data() + static_cast<std::size_t>(in) * in_channels_ * h * w);
  }
  return dx;
}

void Conv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

}  // namespace fedsu::nn
