#include "nn/conv2d.h"

#include <cstring>
#include <stdexcept>

#include "tensor/gemm.h"
#include "tensor/init.h"
#include "tensor/vectorized.h"
#include "util/scratch_arena.h"
#include "util/thread_pool.h"

namespace fedsu::nn {

namespace {
// Same dispatch rule as the matmuls in tensor/gemm.cpp: fan out on the
// global pool only when the im2col GEMM is big enough to amortize dispatch.
// Each sample of the batch is computed exactly as in the sequential loop,
// so outputs are bitwise identical for any thread count.
constexpr std::size_t kParallelMacThreshold = std::size_t{1} << 20;

bool should_parallelize(std::size_t batch, std::size_t macs) {
  return batch > 1 && macs >= kParallelMacThreshold &&
         fedsu::util::ThreadPool::global().worth_parallelizing();
}
}  // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, util::Rng& rng,
               int stride, int padding, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 ||
      padding < 0) {
    throw std::invalid_argument("Conv2d: bad constructor arguments");
  }
  const int fan_in = in_channels * kernel * kernel;
  weight_.value = tensor::Tensor({out_channels, fan_in});
  weight_.grad = tensor::Tensor({out_channels, fan_in});
  weight_.name = "conv.weight";
  tensor::kaiming_normal(weight_.value, fan_in, rng);
  if (has_bias_) {
    bias_.value = tensor::Tensor({out_channels});
    bias_.grad = tensor::Tensor({out_channels});
    bias_.name = "conv.bias";
  }
}

void Conv2d::im2col(const float* image, int h, int w, float* cols) const {
  const int oh = out_height(h);
  const int ow = out_width(w);
  const int patch = oh * ow;
  // cols layout: row = (c, kr, kc), col = (orow, ocol)
  for (int c = 0; c < in_channels_; ++c) {
    const float* plane = image + static_cast<std::size_t>(c) * h * w;
    for (int kr = 0; kr < kernel_; ++kr) {
      for (int kc = 0; kc < kernel_; ++kc) {
        float* row = cols +
                     (static_cast<std::size_t>(c) * kernel_ * kernel_ +
                      static_cast<std::size_t>(kr) * kernel_ + kc) *
                         patch;
        for (int orow = 0; orow < oh; ++orow) {
          const int r = orow * stride_ + kr - padding_;
          if (r < 0 || r >= h) {
            std::memset(row + static_cast<std::size_t>(orow) * ow, 0,
                        sizeof(float) * ow);
            continue;
          }
          for (int ocol = 0; ocol < ow; ++ocol) {
            const int col = ocol * stride_ + kc - padding_;
            row[static_cast<std::size_t>(orow) * ow + ocol] =
                (col >= 0 && col < w)
                    ? plane[static_cast<std::size_t>(r) * w + col]
                    : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* cols, int h, int w, float* image) const {
  const int oh = out_height(h);
  const int ow = out_width(w);
  const int patch = oh * ow;
  for (int c = 0; c < in_channels_; ++c) {
    float* plane = image + static_cast<std::size_t>(c) * h * w;
    for (int kr = 0; kr < kernel_; ++kr) {
      for (int kc = 0; kc < kernel_; ++kc) {
        const float* row = cols +
                           (static_cast<std::size_t>(c) * kernel_ * kernel_ +
                            static_cast<std::size_t>(kr) * kernel_ + kc) *
                               patch;
        for (int orow = 0; orow < oh; ++orow) {
          const int r = orow * stride_ + kr - padding_;
          if (r < 0 || r >= h) continue;
          for (int ocol = 0; ocol < ow; ++ocol) {
            const int col = ocol * stride_ + kc - padding_;
            if (col < 0 || col >= w) continue;
            plane[static_cast<std::size_t>(r) * w + col] +=
                row[static_cast<std::size_t>(orow) * ow + ocol];
          }
        }
      }
    }
  }
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& input, bool /*train*/) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d::forward: bad input " +
                                input.shape_string());
  }
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int oh = out_height(h);
  const int ow = out_width(w);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("Conv2d::forward: output would be empty");
  }
  cached_input_ = input;
  cached_oh_ = oh;
  cached_ow_ = ow;
  const int fan_in = in_channels_ * kernel_ * kernel_;
  const int patch = oh * ow;
  // resize() reuses the previous batch's buffer; im2col overwrites every
  // element, so no clearing is needed. The shape check keeps steady-state
  // batches from even building the temporary shape vector (one heap
  // allocation the zero-alloc training-step test would see).
  const auto& cshape = cached_cols_.shape();
  if (cshape.size() != 3 || cshape[0] != n || cshape[1] != fan_in ||
      cshape[2] != patch) {
    cached_cols_.resize({n, fan_in, patch});
  }
  tensor::Tensor out({n, out_channels_, oh, ow});

  const float* wmat = weight_.value.data();
  // Each sample touches only its own cols/out slices, so samples fan out
  // across workers without changing any result bit.
  auto forward_sample = [&](int in) {
    float* cols = cached_cols_.data() +
                  static_cast<std::size_t>(in) * fan_in * patch;
    im2col(input.data() + static_cast<std::size_t>(in) * in_channels_ * h * w,
           h, w, cols);
    // out[in] = W[outC, fan_in] * cols[fan_in, patch] (+ bias)
    float* y = out.data() + static_cast<std::size_t>(in) * out_channels_ * patch;
    if (has_bias_) {
      for (int oc = 0; oc < out_channels_; ++oc) {
        tensor::vec::fill(y + static_cast<std::size_t>(oc) * patch,
                          bias_.value[static_cast<std::size_t>(oc)], patch);
      }
    }
    tensor::gemm::sgemm(tensor::gemm::Variant::kNN, out_channels_, patch,
                        fan_in, wmat, cols, y,
                        has_bias_ ? tensor::gemm::Accumulate::kAdd
                                  : tensor::gemm::Accumulate::kOverwrite);
  };
  const std::size_t macs = static_cast<std::size_t>(n) * out_channels_ *
                           fan_in * patch;
  if (should_parallelize(static_cast<std::size_t>(n), macs)) {
    util::ThreadPool::global().parallel_for(
        0, static_cast<std::size_t>(n), [&](std::size_t b, std::size_t e) {
          for (std::size_t in = b; in < e; ++in) {
            forward_sample(static_cast<int>(in));
          }
        });
  } else {
    for (int in = 0; in < n; ++in) forward_sample(in);
  }
  return out;
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_output) {
  const int n = cached_input_.dim(0), h = cached_input_.dim(2),
            w = cached_input_.dim(3);
  const int oh = cached_oh_, ow = cached_ow_;
  if (grad_output.rank() != 4 || grad_output.dim(0) != n ||
      grad_output.dim(1) != out_channels_ || grad_output.dim(2) != oh ||
      grad_output.dim(3) != ow) {
    throw std::invalid_argument("Conv2d::backward: bad grad " +
                                grad_output.shape_string());
  }
  const int fan_in = in_channels_ * kernel_ * kernel_;
  const int patch = oh * ow;
  tensor::Tensor dx(cached_input_.shape());

  float* dwmat = weight_.grad.data();
  const float* wmat = weight_.value.data();
  const std::size_t wsize = static_cast<std::size_t>(out_channels_) * fan_in;

  // Computes sample `in`'s weight/bias gradient contribution into
  // dw_out/db_out (not into the shared grads) and its dx slice. dcols is
  // caller-provided scratch of fan_in * patch floats.
  auto backward_sample = [&](int in, float* dw_out, float* db_out,
                             float* dcols) {
    const float* g = grad_output.data() +
                     static_cast<std::size_t>(in) * out_channels_ * patch;
    const float* cols = cached_cols_.data() +
                        static_cast<std::size_t>(in) * fan_in * patch;
    // dW_contrib = g[outC, patch] * cols[fan_in, patch]^T
    tensor::gemm::sgemm(tensor::gemm::Variant::kNT, out_channels_, fan_in,
                        patch, g, cols, dw_out,
                        tensor::gemm::Accumulate::kOverwrite);
    if (has_bias_) {
      for (int oc = 0; oc < out_channels_; ++oc) {
        const float* grow = g + static_cast<std::size_t>(oc) * patch;
        float acc = 0.0f;
        for (int p = 0; p < patch; ++p) acc += grow[p];
        db_out[oc] = acc;
      }
    }
    // dcols = W^T[fan_in, outC] * g[outC, patch]
    tensor::gemm::sgemm(tensor::gemm::Variant::kTN, fan_in, patch,
                        out_channels_, wmat, g, dcols,
                        tensor::gemm::Accumulate::kOverwrite);
    col2im(dcols, h, w,
           dx.data() + static_cast<std::size_t>(in) * in_channels_ * h * w);
  };

  // All scratch below comes from per-thread arenas: after the first batch
  // of a given shape, backward makes no heap allocations (test_gemm.cpp).
  const std::size_t macs = 2 * static_cast<std::size_t>(n) * out_channels_ *
                           fan_in * patch;
  if (should_parallelize(static_cast<std::size_t>(n), macs)) {
    // Per-sample contributions are computed in parallel (disjoint buffers),
    // then folded into the shared grads in ascending sample order — the very
    // order the sequential loop uses, so grads stay bitwise identical.
    util::ScratchArena& arena = util::ScratchArena::local();
    util::ScratchArena::Frame frame(arena);
    float* dw_contrib = arena.floats(static_cast<std::size_t>(n) * wsize);
    float* db_contrib =
        has_bias_ ? arena.floats(static_cast<std::size_t>(n) * out_channels_)
                  : nullptr;
    util::ThreadPool::global().parallel_for(
        0, static_cast<std::size_t>(n), [&](std::size_t b, std::size_t e) {
          util::ScratchArena& worker_arena = util::ScratchArena::local();
          util::ScratchArena::Frame worker_frame(worker_arena);
          float* dcols =
              worker_arena.floats(static_cast<std::size_t>(fan_in) * patch);
          for (std::size_t in = b; in < e; ++in) {
            backward_sample(static_cast<int>(in), dw_contrib + in * wsize,
                            has_bias_ ? db_contrib + in * out_channels_
                                      : nullptr,
                            dcols);
          }
        });
    for (int in = 0; in < n; ++in) {
      tensor::vec::add(dwmat,
                       dw_contrib + static_cast<std::size_t>(in) * wsize,
                       wsize);
      if (has_bias_) {
        tensor::vec::add(bias_.grad.data(),
                         db_contrib + static_cast<std::size_t>(in) * out_channels_,
                         static_cast<std::size_t>(out_channels_));
      }
    }
  } else {
    util::ScratchArena& arena = util::ScratchArena::local();
    util::ScratchArena::Frame frame(arena);
    float* dcols = arena.floats(static_cast<std::size_t>(fan_in) * patch);
    float* dw_sample = arena.floats(wsize);
    float* db_sample =
        has_bias_ ? arena.floats(static_cast<std::size_t>(out_channels_))
                  : nullptr;
    for (int in = 0; in < n; ++in) {
      backward_sample(in, dw_sample, db_sample, dcols);
      tensor::vec::add(dwmat, dw_sample, wsize);
      if (has_bias_) {
        tensor::vec::add(bias_.grad.data(), db_sample,
                         static_cast<std::size_t>(out_channels_));
      }
    }
  }
  return dx;
}

void Conv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

}  // namespace fedsu::nn
