#include "nn/schedule.h"

#include <cmath>
#include <stdexcept>

namespace fedsu::nn {

ConstantLr::ConstantLr(float base) : base_(base) {
  if (base <= 0.0f) throw std::invalid_argument("ConstantLr: base <= 0");
}

float ConstantLr::lr(int round) const {
  if (round < 0) throw std::invalid_argument("ConstantLr: negative round");
  return base_;
}

InverseSqrtLr::InverseSqrtLr(float base, int warmup)
    : base_(base), warmup_(warmup) {
  if (base <= 0.0f || warmup < 0) {
    throw std::invalid_argument("InverseSqrtLr: bad arguments");
  }
}

float InverseSqrtLr::lr(int round) const {
  if (round < 0) throw std::invalid_argument("InverseSqrtLr: negative round");
  if (round < warmup_) {
    return base_ * static_cast<float>(round + 1) / static_cast<float>(warmup_);
  }
  return base_ / std::sqrt(static_cast<float>(round - warmup_ + 1));
}

StepDecayLr::StepDecayLr(float base, int step, float gamma)
    : base_(base), step_(step), gamma_(gamma) {
  if (base <= 0.0f || step <= 0 || gamma <= 0.0f || gamma > 1.0f) {
    throw std::invalid_argument("StepDecayLr: bad arguments");
  }
}

float StepDecayLr::lr(int round) const {
  if (round < 0) throw std::invalid_argument("StepDecayLr: negative round");
  return base_ * std::pow(gamma_, static_cast<float>(round / step_));
}

std::unique_ptr<LrSchedule> make_schedule(const std::string& kind, float base) {
  if (kind == "constant") return std::make_unique<ConstantLr>(base);
  if (kind == "inverse-sqrt") return std::make_unique<InverseSqrtLr>(base);
  if (kind == "step-decay") {
    return std::make_unique<StepDecayLr>(base, 20, 0.5f);
  }
  throw std::invalid_argument("make_schedule: unknown kind '" + kind + "'");
}

double eq13_ratio(const LrSchedule& schedule, int horizon) {
  if (horizon <= 0) throw std::invalid_argument("eq13_ratio: horizon <= 0");
  double sum = 0.0, sum_sq = 0.0;
  for (int k = 0; k < horizon; ++k) {
    const double lr = schedule.lr(k);
    sum += lr;
    sum_sq += lr * lr;
  }
  return sum > 0.0 ? sum_sq / sum : 0.0;
}

}  // namespace fedsu::nn
