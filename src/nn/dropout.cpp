#include "nn/dropout.h"

#include <stdexcept>

namespace fedsu::nn {

Dropout::Dropout(float rate, util::Rng rng) : rate_(rate), rng_(rng) {
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("Dropout: rate out of [0, 1)");
  }
}

tensor::Tensor Dropout::forward(const tensor::Tensor& input, bool train) {
  last_forward_train_ = train;
  if (!train || rate_ == 0.0f) return input;
  tensor::Tensor out = input;
  kept_.assign(input.size(), 1);
  const float scale = 1.0f / (1.0f - rate_);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (rng_.bernoulli(rate_)) {
      out[i] = 0.0f;
      kept_[i] = 0;
    } else {
      out[i] *= scale;
    }
  }
  return out;
}

tensor::Tensor Dropout::backward(const tensor::Tensor& grad_output) {
  if (!last_forward_train_ || rate_ == 0.0f) return grad_output;
  if (grad_output.size() != kept_.size()) {
    throw std::invalid_argument("Dropout::backward: shape mismatch");
  }
  tensor::Tensor dx = grad_output;
  const float scale = 1.0f / (1.0f - rate_);
  for (std::size_t i = 0; i < dx.size(); ++i) {
    dx[i] = kept_[i] ? dx[i] * scale : 0.0f;
  }
  return dx;
}

}  // namespace fedsu::nn
