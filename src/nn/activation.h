// Pointwise activations.
#pragma once

#include "nn/module.h"

namespace fedsu::nn {

class ReLU : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  tensor::Tensor cached_input_;
};

class Tanh : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  tensor::Tensor cached_output_;
};

// Reshapes [N, C, H, W] (or any rank >= 2) to [N, rest].
class Flatten : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<int> cached_shape_;
};

}  // namespace fedsu::nn
