// Inverted dropout: active in training mode, identity in eval mode.
#pragma once

#include "nn/module.h"
#include "util/rng.h"

namespace fedsu::nn {

class Dropout : public Module {
 public:
  Dropout(float rate, util::Rng rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

 private:
  float rate_;
  util::Rng rng_;
  std::vector<std::uint8_t> kept_;  // per-element keep mask of last forward
  bool last_forward_train_ = false;
};

}  // namespace fedsu::nn
