// Spatial pooling layers over NCHW tensors.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.h"

namespace fedsu::nn {

class MaxPool2d : public Module {
 public:
  // Non-overlapping by default (stride = kernel).
  explicit MaxPool2d(int kernel, int stride = 0);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  int kernel_;
  int stride_;
  std::vector<int> cached_shape_;
  std::vector<std::uint32_t> argmax_;  // flat input index per output element
};

class AvgPool2d : public Module {
 public:
  explicit AvgPool2d(int kernel, int stride = 0);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "AvgPool2d"; }

 private:
  int kernel_;
  int stride_;
  std::vector<int> cached_shape_;
};

// Pools each channel plane to a single value: [N,C,H,W] -> [N,C].
class GlobalAvgPool : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<int> cached_shape_;
};

}  // namespace fedsu::nn
