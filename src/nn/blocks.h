// Composite blocks for the ResNet-style and DenseNet-style model zoo.
#pragma once

#include <memory>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/module.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace fedsu::nn {

// Basic residual block: conv-bn-relu-conv-bn + identity (or 1x1 projection
// when the channel count or stride changes), followed by ReLU.
class ResidualBlock : public Module {
 public:
  ResidualBlock(int in_channels, int out_channels, int stride, util::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "ResidualBlock"; }

 private:
  Conv2d conv1_;
  BatchNorm2d bn1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  std::unique_ptr<Conv2d> projection_;  // nullptr when identity shortcut
  std::unique_ptr<BatchNorm2d> projection_bn_;
  tensor::Tensor cached_sum_;   // pre-activation sum, for final ReLU backward
  tensor::Tensor relu1_gate_;   // post-ReLU mid activations (0 where clipped)
};

// DenseNet-style layer: bn-relu-conv(growth) whose output is concatenated
// with the input along channels.
class DenseLayer : public Module {
 public:
  DenseLayer(int in_channels, int growth, util::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "DenseLayer"; }

  int out_channels() const { return in_channels_ + growth_; }

 private:
  int in_channels_;
  int growth_;
  BatchNorm2d bn_;
  std::unique_ptr<Module> relu_;
  Conv2d conv_;
  std::vector<int> cached_input_shape_;
};

// DenseNet transition: bn-relu-1x1 conv (channel compression) + 2x2 avg pool.
class TransitionLayer : public Module {
 public:
  TransitionLayer(int in_channels, int out_channels, util::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "TransitionLayer"; }

 private:
  Sequential body_;
};

}  // namespace fedsu::nn
