// Cache-blocked, register-tiled single-precision GEMM.
//
// One kernel serves the whole training hot path: tensor::matmul /
// matmul_tn / matmul_nt, nn::Linear, and both Conv2d im2col GEMMs route
// here. Design (DESIGN.md §9):
//
//   * Three-level blocking: NC panels of B columns (outer), KC slices of
//     the reduction dimension, MC panels of C rows — each (KC x NC) B
//     panel and (MC x KC) A panel is packed once into contiguous
//     micro-panels and reused across the whole macro-kernel.
//   * 8x8 register micro-tile: the micro-kernel holds eight 8-float
//     vector-typed accumulators (GNU vector_size extension — compiler
//     codegen, no platform intrinsics) in registers across the whole KC
//     slice; each k step is eight fused multiply-adds against one streamed
//     B vector.
//   * Runtime ISA dispatch: the same micro-kernel body is compiled under
//     baseline, AVX2+FMA, and AVX-512VL target attributes, and
//     __builtin_cpu_supports picks the widest clone once per process. The
//     library binary itself stays baseline x86-64 (FEDSU_NATIVE=ON instead
//     retunes the whole build for the host).
//   * Packing absorbs all transposes: the kTN / kNT variants differ only
//     in how panels are gathered, never in the micro-kernel. When op(B)'s
//     j-run is contiguous in memory (kNN/kTN) and m is small enough that a
//     packed panel would see little reuse, the kernel reads B in place —
//     same operands, same accumulation order, none of the pack traffic.
//   * Pack buffers come from the calling thread's util::ScratchArena —
//     zero heap allocations after the first call on a thread.
//
// Determinism (DESIGN.md §5b): every C element accumulates its k products
// in an order fixed by the KC blocking alone — ascending KC block, then
// ascending k within the block — and threading only splits C rows across
// workers. A row's result does not depend on which worker computes it or
// where micro-tile boundaries land, so output bits are identical for any
// thread count. Results may legitimately differ from the pre-blocked
// scalar kernel (a different but equally valid accumulation order) within
// normal float tolerance, and across CPU generations (the dispatched clone
// determines whether multiplies and adds are fused) — determinism is per
// binary per machine, not across kernel generations or ISAs.
#pragma once

namespace fedsu::tensor::gemm {

// Operand layout. A and B are dense row-major with no padding:
//   kNN: C[m,n] = A[m,k] * B[k,n]
//   kTN: C[m,n] = A[k,m]^T * B[k,n]   (A stored k-major, e.g. dW = dY^T X)
//   kNT: C[m,n] = A[m,k] * B[n,k]^T   (e.g. Linear forward: X W^T)
enum class Variant { kNN, kTN, kNT };

// kOverwrite: C = A*B (C need not be initialized).
// kAdd:       C += A*B (accumulate into existing C, e.g. gradient sums).
enum class Accumulate { kOverwrite, kAdd };

// Computes C (see Variant) with the blocked kernel. Fans the M dimension
// out on util::ThreadPool::global() when the product is large enough and
// the caller is not already a pool worker; bitwise identical results
// either way.
void sgemm(Variant variant, int m, int n, int k, const float* a,
           const float* b, float* c, Accumulate accumulate);

// Computes rows [m_begin, m_end) of C on the calling thread only. `m` is
// still the full logical row count (the stored stride of A in the kTN
// layout). This is the per-worker body of sgemm and the single-threaded
// reference entry point used by tests and bench_gemm.
void sgemm_rows(Variant variant, int m_begin, int m_end, int m, int n, int k,
                const float* a, const float* b, float* c,
                Accumulate accumulate);

// The micro-kernel clone the process-wide dispatch resolved to:
// "avx512vl" | "avx2-fma" | "baseline". Recorded in run manifests so a
// result file names the kernel generation that produced it (§5b scopes
// determinism per ISA).
const char* isa_name();

}  // namespace fedsu::tensor::gemm
