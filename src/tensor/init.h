// Weight initializers. All take an explicit Rng so experiments are
// reproducible bit-for-bit.
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

namespace fedsu::tensor {

// Kaiming/He normal initialization: stddev = sqrt(2 / fan_in).
// `fan_in` must be > 0.
void kaiming_normal(Tensor& t, int fan_in, util::Rng& rng);

// Xavier/Glorot uniform: U(-b, b) with b = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& t, int fan_in, int fan_out, util::Rng& rng);

// N(mean, stddev).
void normal_init(Tensor& t, float mean, float stddev, util::Rng& rng);

}  // namespace fedsu::tensor
