// Free-function tensor operations. All shape errors throw
// std::invalid_argument. Elementwise paths route through the inline SIMD
// helpers in tensor/vectorized.h; the matmuls route through the blocked
// packed kernels in tensor/gemm.h.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace fedsu::tensor {

// --- elementwise (out-of-place) ---
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);

// --- elementwise (in-place on `a`) ---
void add_inplace(Tensor& a, const Tensor& b);
void sub_inplace(Tensor& a, const Tensor& b);
void axpy(Tensor& y, float alpha, const Tensor& x);  // y += alpha * x

// --- matmul ---
// C[m,n] = A[m,k] * B[k,n] via the cache-blocked, register-tiled kernel in
// tensor/gemm.h. Large products split their output rows across
// util::ThreadPool::global(); each element's accumulation order is fixed
// by the KC tiling alone, so results are bitwise identical for any thread
// count (DESIGN.md §5b).
Tensor matmul(const Tensor& a, const Tensor& b);
// C[m,n] = A[k,m]^T * B[k,n]
Tensor matmul_tn(const Tensor& a, const Tensor& b);
// C[m,n] = A[m,k] * B[n,k]^T
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// --- reductions ---
float sum(const Tensor& a);
float mean(const Tensor& a);
float max_value(const Tensor& a);
float min_value(const Tensor& a);
std::size_t argmax(const float* begin, std::size_t n);
// L2 norm of the flat buffer.
float l2_norm(const Tensor& a);
float l2_norm(const std::vector<float>& a);

// --- vector helpers used by the FL protocols (flat float vectors) ---
float dot(const std::vector<float>& a, const std::vector<float>& b);
void vec_axpy(std::vector<float>& y, float alpha, const std::vector<float>& x);
std::vector<float> vec_sub(const std::vector<float>& a,
                           const std::vector<float>& b);
float vec_l2_diff(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace fedsu::tensor
