#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/gemm.h"
#include "tensor/vectorized.h"

namespace fedsu::tensor {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape_string() + " vs " + b.shape_string());
  }
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  sub_inplace(out, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a;
  vec::mul(out.data(), b.data(), out.size());
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  vec::scale(out.data(), s, out.size());
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  vec::add(a.data(), b.data(), a.size());
}

void sub_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub_inplace");
  vec::sub(a.data(), b.data(), a.size());
}

void axpy(Tensor& y, float alpha, const Tensor& x) {
  check_same_shape(y, x, "axpy");
  vec::axpy(y.data(), alpha, x.data(), y.size());
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                a.shape_string() + " x " + b.shape_string());
  }
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  gemm::sgemm(gemm::Variant::kNN, m, n, k, a.data(), b.data(), c.data(),
              gemm::Accumulate::kOverwrite);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("matmul_tn: incompatible shapes " +
                                a.shape_string() + " x " + b.shape_string());
  }
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  gemm::sgemm(gemm::Variant::kTN, m, n, k, a.data(), b.data(), c.data(),
              gemm::Accumulate::kOverwrite);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw std::invalid_argument("matmul_nt: incompatible shapes " +
                                a.shape_string() + " x " + b.shape_string());
  }
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  gemm::sgemm(gemm::Variant::kNT, m, n, k, a.data(), b.data(), c.data(),
              gemm::Accumulate::kOverwrite);
  return c;
}

float sum(const Tensor& a) {
  return static_cast<float>(vec::sum(a.data(), a.size()));
}

float mean(const Tensor& a) {
  if (a.empty()) return 0.0f;
  return sum(a) / static_cast<float>(a.size());
}

float max_value(const Tensor& a) {
  if (a.empty()) throw std::invalid_argument("max_value: empty tensor");
  return *std::max_element(a.data(), a.data() + a.size());
}

float min_value(const Tensor& a) {
  if (a.empty()) throw std::invalid_argument("min_value: empty tensor");
  return *std::min_element(a.data(), a.data() + a.size());
}

std::size_t argmax(const float* begin, std::size_t n) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (begin[i] > begin[best]) best = i;
  }
  return best;
}

float l2_norm(const Tensor& a) {
  return static_cast<float>(std::sqrt(vec::l2_sq(a.data(), a.size())));
}

float l2_norm(const std::vector<float>& a) {
  return static_cast<float>(std::sqrt(vec::l2_sq(a.data(), a.size())));
}

float dot(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  return static_cast<float>(vec::dot(a.data(), b.data(), a.size()));
}

void vec_axpy(std::vector<float>& y, float alpha, const std::vector<float>& x) {
  if (y.size() != x.size()) throw std::invalid_argument("vec_axpy: size mismatch");
  vec::axpy(y.data(), alpha, x.data(), y.size());
}

std::vector<float> vec_sub(const std::vector<float>& a,
                           const std::vector<float>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("vec_sub: size mismatch");
  std::vector<float> out(a.size());
  vec::diff(out.data(), a.data(), b.data(), a.size());
  return out;
}

float vec_l2_diff(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("vec_l2_diff: size mismatch");
  }
  return static_cast<float>(std::sqrt(vec::l2_diff_sq(a.data(), b.data(), a.size())));
}

}  // namespace fedsu::tensor
