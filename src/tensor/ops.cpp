#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "util/thread_pool.h"

namespace fedsu::tensor {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape_string() + " vs " + b.shape_string());
  }
}

// Minimum multiply-accumulate count before a matmul fans out on the global
// pool; below it, dispatch overhead beats the parallel win (and small unit
// tests never even construct the pool). Each output row is produced by
// exactly one chunk with the same inner-loop order as the sequential code,
// so results are bitwise identical for every thread count (DESIGN.md
// §"Determinism under parallelism").
constexpr std::size_t kParallelMacThreshold = std::size_t{1} << 20;

// Runs body(row_begin, row_end) over [0, rows), parallel only when the MAC
// count clears the threshold and the calling thread is not already a worker.
void for_each_row_block(std::size_t rows, std::size_t macs,
                        const std::function<void(std::size_t, std::size_t)>& body) {
  if (rows > 1 && macs >= kParallelMacThreshold) {
    util::ThreadPool& pool = util::ThreadPool::global();
    if (pool.worth_parallelizing()) {
      pool.parallel_for(0, rows, body);
      return;
    }
  }
  body(0, rows);
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  sub_inplace(out, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a;
  float* o = out.data();
  const float* q = b.data();
  for (std::size_t i = 0; i < out.size(); ++i) o[i] *= q[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  float* o = out.data();
  for (std::size_t i = 0; i < out.size(); ++i) o[i] *= s;
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  float* p = a.data();
  const float* q = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) p[i] += q[i];
}

void sub_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub_inplace");
  float* p = a.data();
  const float* q = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) p[i] -= q[i];
}

void axpy(Tensor& y, float alpha, const Tensor& x) {
  check_same_shape(y, x, "axpy");
  float* p = y.data();
  const float* q = x.data();
  for (std::size_t i = 0; i < y.size(); ++i) p[i] += alpha * q[i];
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                a.shape_string() + " x " + b.shape_string());
  }
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for_each_row_block(
      static_cast<std::size_t>(m),
      static_cast<std::size_t>(m) * k * n,
      [=](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t i = row_begin; i < row_end; ++i) {
          float* crow = pc + i * n;
          for (int l = 0; l < k; ++l) {
            const float av = pa[i * k + l];
            if (av == 0.0f) continue;
            const float* brow = pb + static_cast<std::size_t>(l) * n;
            for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      });
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("matmul_tn: incompatible shapes " +
                                a.shape_string() + " x " + b.shape_string());
  }
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Output-row-major loop order (i outer) so rows can split across workers;
  // each element still accumulates over l in ascending order, exactly as the
  // l-outer sequential form did.
  for_each_row_block(
      static_cast<std::size_t>(m),
      static_cast<std::size_t>(m) * k * n,
      [=](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t i = row_begin; i < row_end; ++i) {
          float* crow = pc + i * n;
          for (int l = 0; l < k; ++l) {
            const float av = pa[static_cast<std::size_t>(l) * m + i];
            if (av == 0.0f) continue;
            const float* brow = pb + static_cast<std::size_t>(l) * n;
            for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw std::invalid_argument("matmul_nt: incompatible shapes " +
                                a.shape_string() + " x " + b.shape_string());
  }
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for_each_row_block(
      static_cast<std::size_t>(m),
      static_cast<std::size_t>(m) * k * n,
      [=](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t i = row_begin; i < row_end; ++i) {
          const float* arow = pa + i * k;
          float* crow = pc + i * n;
          for (int j = 0; j < n; ++j) {
            const float* brow = pb + static_cast<std::size_t>(j) * k;
            float acc = 0.0f;
            for (int l = 0; l < k; ++l) acc += arow[l] * brow[l];
            crow[j] = acc;
          }
        }
      });
  return c;
}

float sum(const Tensor& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i];
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  if (a.empty()) return 0.0f;
  return sum(a) / static_cast<float>(a.size());
}

float max_value(const Tensor& a) {
  if (a.empty()) throw std::invalid_argument("max_value: empty tensor");
  return *std::max_element(a.data(), a.data() + a.size());
}

float min_value(const Tensor& a) {
  if (a.empty()) throw std::invalid_argument("min_value: empty tensor");
  return *std::min_element(a.data(), a.data() + a.size());
}

std::size_t argmax(const float* begin, std::size_t n) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (begin[i] > begin[best]) best = i;
  }
  return best;
}

float l2_norm(const Tensor& a) { return l2_norm(a.vec()); }

float l2_norm(const std::vector<float>& a) {
  double acc = 0.0;
  for (float v : a) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float dot(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

void vec_axpy(std::vector<float>& y, float alpha, const std::vector<float>& x) {
  if (y.size() != x.size()) throw std::invalid_argument("vec_axpy: size mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

std::vector<float> vec_sub(const std::vector<float>& a,
                           const std::vector<float>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("vec_sub: size mismatch");
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

float vec_l2_diff(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("vec_l2_diff: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

}  // namespace fedsu::tensor
