#include "tensor/init.h"

#include <cmath>
#include <stdexcept>

namespace fedsu::tensor {

void kaiming_normal(Tensor& t, int fan_in, util::Rng& rng) {
  if (fan_in <= 0) throw std::invalid_argument("kaiming_normal: fan_in <= 0");
  const double stddev = std::sqrt(2.0 / fan_in);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
}

void xavier_uniform(Tensor& t, int fan_in, int fan_out, util::Rng& rng) {
  if (fan_in <= 0 || fan_out <= 0) {
    throw std::invalid_argument("xavier_uniform: non-positive fan");
  }
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
}

void normal_init(Tensor& t, float mean, float stddev, util::Rng& rng) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.normal(mean, stddev));
  }
}

}  // namespace fedsu::tensor
