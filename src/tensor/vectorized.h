// Auto-vectorization-friendly elementwise kernels over raw float spans.
//
// These are the hot helpers behind tensor::add_inplace / axpy / vec_axpy /
// vec_l2_diff — run every round by client training, FedAvg aggregation, and
// FedSU's speculation / error-feedback path. They live in a header as
// inline functions over restrict-qualified unit-stride pointers so every
// translation unit gets a vectorized copy: no aliasing checks, no runtime
// versioning, a single contiguous FMA/add loop the compiler turns into
// packed SIMD at the target ISA's width.
//
// Reductions (dot / l2 / sums) deliberately keep a single scalar double
// accumulator instead of a vectorized multi-lane sum: the extra precision
// is what the FL protocols were written against, and a fixed left-to-right
// order keeps results independent of ISA and build flags (DESIGN.md §5b —
// reduction order is part of the determinism contract; elementwise maps
// have no order to preserve).
#pragma once

#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define FEDSU_RESTRICT __restrict__
#else
#define FEDSU_RESTRICT
#endif

namespace fedsu::tensor::vec {

// y[i] += x[i]
inline void add(float* FEDSU_RESTRICT y, const float* FEDSU_RESTRICT x,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

// y[i] -= x[i]
inline void sub(float* FEDSU_RESTRICT y, const float* FEDSU_RESTRICT x,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i];
}

// y[i] *= x[i]
inline void mul(float* FEDSU_RESTRICT y, const float* FEDSU_RESTRICT x,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= x[i];
}

// y[i] *= s
inline void scale(float* FEDSU_RESTRICT y, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= s;
}

// y[i] += alpha * x[i]
inline void axpy(float* FEDSU_RESTRICT y, float alpha,
                 const float* FEDSU_RESTRICT x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

// out[i] = a[i] - b[i]
inline void diff(float* FEDSU_RESTRICT out, const float* FEDSU_RESTRICT a,
                 const float* FEDSU_RESTRICT b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

// y[i] = value
inline void fill(float* FEDSU_RESTRICT y, float value, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = value;
}

// --- reductions (double accumulator, fixed left-to-right order) ---

inline double sum(const float* a, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i];
  return acc;
}

inline double dot(const float* FEDSU_RESTRICT a,
                  const float* FEDSU_RESTRICT b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return acc;
}

inline double l2_sq(const float* a, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * a[i];
  }
  return acc;
}

inline double l2_diff_sq(const float* FEDSU_RESTRICT a,
                         const float* FEDSU_RESTRICT b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace fedsu::tensor::vec
