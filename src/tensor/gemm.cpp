#include "tensor/gemm.h"

#include <algorithm>
#include <cstddef>

#include "tensor/vectorized.h"
#include "util/scratch_arena.h"
#include "util/thread_pool.h"

namespace fedsu::tensor::gemm {

namespace {

// Register micro-tile: MR x NR accumulators live in registers across the
// whole KC slice — eight 8-float vector locals, i.e. 8 YMM registers under
// AVX2/AVX-512VL and 16 XMM pairs under baseline SSE2; neither spills.
constexpr int MR = 8;
constexpr int NR = 8;
// Cache tiles: the packed (MC x KC) A panel (64 KiB) sits in L2, the packed
// (KC x NC) B panel (256 KiB) in L2/L3, and one KC x NR B micro-panel (8 KiB)
// streams through L1 per micro-tile column.
constexpr int MC = 64;
constexpr int KC = 256;
constexpr int NC = 256;

// Same fan-out threshold as the pre-blocked kernels (tensor/ops.cpp): below
// ~1M multiply-accumulates, pool dispatch costs more than it buys.
constexpr std::size_t kParallelMacThreshold = std::size_t{1} << 20;

constexpr int round_up(int v, int unit) { return (v + unit - 1) / unit * unit; }

// Packs rows [ic, ic+mc) x k-slice [pc, pc+kc) of op(A) into MR-tall
// micro-panels: panel `ir` holds kc groups of MR consecutive floats, one
// group per k step, rows beyond mc zero-padded. The packing absorbs the
// kTN transpose so the micro-kernel never sees a stride.
void pack_a(Variant v, const float* a, int m, int k, int ic, int mc, int pc,
            int kc, float* FEDSU_RESTRICT ap) {
  for (int ir = 0; ir < mc; ir += MR) {
    const int mr = std::min(MR, mc - ir);
    float* panel = ap + static_cast<std::size_t>(ir) * kc;
    for (int p = 0; p < kc; ++p) {
      float* dst = panel + static_cast<std::size_t>(p) * MR;
      if (v == Variant::kTN) {
        // A stored [k, m]: column ic+ir+i of op(A) is contiguous in memory.
        const float* src =
            a + static_cast<std::size_t>(pc + p) * m + (ic + ir);
        for (int i = 0; i < mr; ++i) dst[i] = src[i];
      } else {
        // kNN / kNT: A stored [m, k].
        const float* src =
            a + static_cast<std::size_t>(ic + ir) * k + (pc + p);
        for (int i = 0; i < mr; ++i) dst[i] = src[static_cast<std::size_t>(i) * k];
      }
      for (int i = mr; i < MR; ++i) dst[i] = 0.0f;
    }
  }
}

// Packs columns [jc, jc+nc) x k-slice [pc, pc+kc) of op(B) into NR-wide
// micro-panels (layout mirror of pack_a), absorbing the kNT transpose.
void pack_b(Variant v, const float* b, int n, int k, int jc, int nc, int pc,
            int kc, float* FEDSU_RESTRICT bp) {
  for (int jr = 0; jr < nc; jr += NR) {
    const int nr = std::min(NR, nc - jr);
    float* panel = bp + static_cast<std::size_t>(jr) * kc;
    for (int p = 0; p < kc; ++p) {
      float* dst = panel + static_cast<std::size_t>(p) * NR;
      if (v == Variant::kNT) {
        // B stored [n, k]: row jc+jr+j supplies element (p, j).
        const float* src =
            b + static_cast<std::size_t>(jc + jr) * k + (pc + p);
        for (int j = 0; j < nr; ++j) dst[j] = src[static_cast<std::size_t>(j) * k];
      } else {
        // kNN / kTN: B stored [k, n].
        const float* src =
            b + static_cast<std::size_t>(pc + p) * n + (jc + jr);
        for (int j = 0; j < nr; ++j) dst[j] = src[j];
      }
      for (int j = nr; j < NR; ++j) dst[j] = 0.0f;
    }
  }
}

// The innermost loop of everything: C[mr][nr] (+)= ap[kc][MR] x bp[kc][NR].
//
// The accumulators are eight vector-typed locals (GNU `vector_size`
// extension — portable across GCC and Clang, still compiler-generated code,
// no platform intrinsics). Plain `float acc[MR][NR]` arrays do NOT work
// here: both GCC and Clang leave the array on the stack and turn every
// update into load+op+store, which caps the kernel at ~5 GFLOP/s. Vector
// locals make the register allocation explicit — one 8-float accumulator
// per row lives in a register across the whole KC slice, and each k step is
// MR fused multiply-adds against one streamed B vector.
//
// The body is compiled several times under different target attributes
// (baseline, AVX2+FMA, AVX-512VL) and selected once per process by
// `__builtin_cpu_supports` — the library itself stays a baseline x86-64
// binary. Lane-for-lane the summation order over k is identical in every
// clone, so results are bitwise reproducible for a given binary on a given
// machine at any --threads; across CPU generations the FMA contraction
// differs, which §5b (DESIGN.md) explicitly scopes out.
typedef float v8sf __attribute__((vector_size(4 * NR), may_alias,
                                  aligned(alignof(float))));

// A macro rather than an inline function: returning a 256-bit vector from a
// function compiled for baseline x86-64 trips -Wpsabi (the call never
// materializes — everything inlines — but the warning fires at the
// definition).
#define FEDSU_SPLAT8(x) \
  v8sf { (x), (x), (x), (x), (x), (x), (x), (x) }

template <bool kOverwrite>
__attribute__((always_inline)) inline void micro_kernel_body(
    int kc, const float* FEDSU_RESTRICT ap, const float* FEDSU_RESTRICT bp,
    float* FEDSU_RESTRICT c, int ldc, int mr, int nr) {
  v8sf acc0{}, acc1{}, acc2{}, acc3{}, acc4{}, acc5{}, acc6{}, acc7{};
  for (int p = 0; p < kc; ++p) {
    const float* FEDSU_RESTRICT av = ap + static_cast<std::size_t>(p) * MR;
    const v8sf bv =
        *reinterpret_cast<const v8sf*>(bp + static_cast<std::size_t>(p) * NR);
    acc0 += FEDSU_SPLAT8(av[0]) * bv;
    acc1 += FEDSU_SPLAT8(av[1]) * bv;
    acc2 += FEDSU_SPLAT8(av[2]) * bv;
    acc3 += FEDSU_SPLAT8(av[3]) * bv;
    acc4 += FEDSU_SPLAT8(av[4]) * bv;
    acc5 += FEDSU_SPLAT8(av[5]) * bv;
    acc6 += FEDSU_SPLAT8(av[6]) * bv;
    acc7 += FEDSU_SPLAT8(av[7]) * bv;
  }
  const v8sf accs[MR] = {acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7};
  if (nr == NR) {
    for (int i = 0; i < mr; ++i) {
      v8sf* crow = reinterpret_cast<v8sf*>(c + static_cast<std::size_t>(i) * ldc);
      if (kOverwrite) *crow = accs[i];
      else *crow += accs[i];
    }
  } else {
    for (int i = 0; i < mr; ++i) {
      float* FEDSU_RESTRICT crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < nr; ++j) {
        if (kOverwrite) crow[j] = accs[i][j];
        else crow[j] += accs[i][j];
      }
    }
  }
}

// Direct-B variant: identical FMA sequence, but B is read in place with a
// row stride instead of from a packed panel. For kNN/kTN the j-run of op(B)
// is contiguous in memory, so packing B buys nothing when the panel is
// reused by only a few row-blocks — and the per-sample conv GEMMs have
// m = out_channels of 6..32, where the pack traffic (~2*n*kc floats) costs
// more than half the kernel time. Operand values and per-lane accumulation
// order match the packed path exactly; the choice between the two paths
// depends only on (variant, m), never on the thread chunk, so §5b holds.
template <bool kOverwrite>
__attribute__((always_inline)) inline void micro_kernel_direct_body(
    int kc, const float* FEDSU_RESTRICT ap, const float* FEDSU_RESTRICT bs,
    int ldb, float* FEDSU_RESTRICT c, int ldc, int mr, int nr) {
  if (nr == NR) {
    v8sf acc0{}, acc1{}, acc2{}, acc3{}, acc4{}, acc5{}, acc6{}, acc7{};
    for (int p = 0; p < kc; ++p) {
      const float* FEDSU_RESTRICT av = ap + static_cast<std::size_t>(p) * MR;
      const v8sf bv = *reinterpret_cast<const v8sf*>(
          bs + static_cast<std::size_t>(p) * ldb);
      acc0 += FEDSU_SPLAT8(av[0]) * bv;
      acc1 += FEDSU_SPLAT8(av[1]) * bv;
      acc2 += FEDSU_SPLAT8(av[2]) * bv;
      acc3 += FEDSU_SPLAT8(av[3]) * bv;
      acc4 += FEDSU_SPLAT8(av[4]) * bv;
      acc5 += FEDSU_SPLAT8(av[5]) * bv;
      acc6 += FEDSU_SPLAT8(av[6]) * bv;
      acc7 += FEDSU_SPLAT8(av[7]) * bv;
    }
    const v8sf accs[MR] = {acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7};
    for (int i = 0; i < mr; ++i) {
      v8sf* crow =
          reinterpret_cast<v8sf*>(c + static_cast<std::size_t>(i) * ldc);
      if (kOverwrite) *crow = accs[i];
      else *crow += accs[i];
    }
  } else {
    // Ragged right edge: one scalar accumulator column per live lane. Each
    // lane's p-order matches the vector path, so the edge is seam-free.
    for (int j = 0; j < nr; ++j) {
      float acc[MR] = {};
      const float* FEDSU_RESTRICT bcol = bs + j;
      for (int p = 0; p < kc; ++p) {
        const float bvj = bcol[static_cast<std::size_t>(p) * ldb];
        const float* FEDSU_RESTRICT av =
            ap + static_cast<std::size_t>(p) * MR;
        for (int i = 0; i < MR; ++i) acc[i] += av[i] * bvj;
      }
      for (int i = 0; i < mr; ++i) {
        float* cij = c + static_cast<std::size_t>(i) * ldc + j;
        if (kOverwrite) *cij = acc[i];
        else *cij += acc[i];
      }
    }
  }
}

using MicroKernelFn = void (*)(int kc, const float* ap, const float* bp,
                               float* c, int ldc, int mr, int nr);
using MicroKernelDirectFn = void (*)(int kc, const float* ap,
                                     const float* bs, int ldb, float* c,
                                     int ldc, int mr, int nr);

void micro_kernel_generic_ov(int kc, const float* ap, const float* bp,
                             float* c, int ldc, int mr, int nr) {
  micro_kernel_body<true>(kc, ap, bp, c, ldc, mr, nr);
}
void micro_kernel_generic_add(int kc, const float* ap, const float* bp,
                              float* c, int ldc, int mr, int nr) {
  micro_kernel_body<false>(kc, ap, bp, c, ldc, mr, nr);
}
void micro_kernel_direct_generic_ov(int kc, const float* ap, const float* bs,
                                    int ldb, float* c, int ldc, int mr,
                                    int nr) {
  micro_kernel_direct_body<true>(kc, ap, bs, ldb, c, ldc, mr, nr);
}
void micro_kernel_direct_generic_add(int kc, const float* ap,
                                     const float* bs, int ldb, float* c,
                                     int ldc, int mr, int nr) {
  micro_kernel_direct_body<false>(kc, ap, bs, ldb, c, ldc, mr, nr);
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FEDSU_GEMM_X86_DISPATCH 1
__attribute__((target("avx2,fma"))) void micro_kernel_avx2_ov(
    int kc, const float* ap, const float* bp, float* c, int ldc, int mr,
    int nr) {
  micro_kernel_body<true>(kc, ap, bp, c, ldc, mr, nr);
}
__attribute__((target("avx2,fma"))) void micro_kernel_avx2_add(
    int kc, const float* ap, const float* bp, float* c, int ldc, int mr,
    int nr) {
  micro_kernel_body<false>(kc, ap, bp, c, ldc, mr, nr);
}
__attribute__((target("avx512f,avx512vl,avx2,fma"))) void
micro_kernel_avx512_ov(int kc, const float* ap, const float* bp, float* c,
                       int ldc, int mr, int nr) {
  micro_kernel_body<true>(kc, ap, bp, c, ldc, mr, nr);
}
__attribute__((target("avx512f,avx512vl,avx2,fma"))) void
micro_kernel_avx512_add(int kc, const float* ap, const float* bp, float* c,
                        int ldc, int mr, int nr) {
  micro_kernel_body<false>(kc, ap, bp, c, ldc, mr, nr);
}
__attribute__((target("avx2,fma"))) void micro_kernel_direct_avx2_ov(
    int kc, const float* ap, const float* bs, int ldb, float* c, int ldc,
    int mr, int nr) {
  micro_kernel_direct_body<true>(kc, ap, bs, ldb, c, ldc, mr, nr);
}
__attribute__((target("avx2,fma"))) void micro_kernel_direct_avx2_add(
    int kc, const float* ap, const float* bs, int ldb, float* c, int ldc,
    int mr, int nr) {
  micro_kernel_direct_body<false>(kc, ap, bs, ldb, c, ldc, mr, nr);
}
__attribute__((target("avx512f,avx512vl,avx2,fma"))) void
micro_kernel_direct_avx512_ov(int kc, const float* ap, const float* bs,
                              int ldb, float* c, int ldc, int mr, int nr) {
  micro_kernel_direct_body<true>(kc, ap, bs, ldb, c, ldc, mr, nr);
}
__attribute__((target("avx512f,avx512vl,avx2,fma"))) void
micro_kernel_direct_avx512_add(int kc, const float* ap, const float* bs,
                               int ldb, float* c, int ldc, int mr, int nr) {
  micro_kernel_direct_body<false>(kc, ap, bs, ldb, c, ldc, mr, nr);
}
#endif

struct MicroKernels {
  MicroKernelFn overwrite;
  MicroKernelFn add;
  MicroKernelDirectFn direct_overwrite;
  MicroKernelDirectFn direct_add;
  const char* isa;
};

MicroKernels select_micro_kernels() {
#ifdef FEDSU_GEMM_X86_DISPATCH
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vl")) {
    return {micro_kernel_avx512_ov, micro_kernel_avx512_add,
            micro_kernel_direct_avx512_ov, micro_kernel_direct_avx512_add,
            "avx512vl"};
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {micro_kernel_avx2_ov, micro_kernel_avx2_add,
            micro_kernel_direct_avx2_ov, micro_kernel_direct_avx2_add,
            "avx2-fma"};
  }
#endif
  return {micro_kernel_generic_ov, micro_kernel_generic_add,
          micro_kernel_direct_generic_ov, micro_kernel_direct_generic_add,
          "baseline"};
}

// Resolved once before main(); every thread reads the same two pointers.
const MicroKernels kMicroKernels = select_micro_kernels();

// Degenerate-shape path (m or n too small for the micro-tile to pay for
// packing): straight loops with the same per-element accumulation order as
// a single-KC-block run. Selected from the full (m, n) only — never from
// the thread-chunk size — so the kernel choice, and therefore every output
// bit, is thread-count independent.
void small_gemm_rows(Variant v, int m_begin, int m_end, int m, int n, int k,
                     const float* a, const float* b, float* c,
                     Accumulate accumulate) {
  for (int i = m_begin; i < m_end; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * n;
    if (v == Variant::kNT) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * k;
        float acc = 0.0f;
        for (int l = 0; l < k; ++l) acc += arow[l] * brow[l];
        if (accumulate == Accumulate::kAdd) crow[j] += acc;
        else crow[j] = acc;
      }
    } else {
      if (accumulate == Accumulate::kOverwrite) vec::fill(crow, 0.0f, n);
      for (int l = 0; l < k; ++l) {
        const float av = (v == Variant::kTN)
                             ? a[static_cast<std::size_t>(l) * m + i]
                             : a[static_cast<std::size_t>(i) * k + l];
        vec::axpy(crow, av, b + static_cast<std::size_t>(l) * n, n);
      }
    }
  }
}

}  // namespace

void sgemm_rows(Variant variant, int m_begin, int m_end, int m, int n, int k,
                const float* a, const float* b, float* c,
                Accumulate accumulate) {
  if (m_begin >= m_end || n <= 0) return;
  if (k <= 0) {
    if (accumulate == Accumulate::kOverwrite) {
      vec::fill(c + static_cast<std::size_t>(m_begin) * n, 0.0f,
                static_cast<std::size_t>(m_end - m_begin) * n);
    }
    return;
  }
  if (m < 4 || n < 4) {
    small_gemm_rows(variant, m_begin, m_end, m, n, k, a, b, c, accumulate);
    return;
  }

  // For kNN/kTN, op(B)'s j-run is contiguous in memory, so when few row
  // blocks would reuse a packed panel the kernel reads B in place instead
  // (same operand values, same per-lane accumulation order). Decided from
  // the full m, not this thread's chunk, so the path — and the bits — are
  // thread-count invariant.
  const bool direct_b = (variant != Variant::kNT) && m < MC;

  util::ScratchArena& arena = util::ScratchArena::local();
  util::ScratchArena::Frame frame(arena);
  const int kc_max = std::min(KC, k);
  float* bpack = direct_b
                     ? nullptr
                     : arena.floats(static_cast<std::size_t>(round_up(
                           std::min(NC, n), NR)) * kc_max);
  float* apack = arena.floats(static_cast<std::size_t>(
      round_up(std::min(MC, m_end - m_begin), MR)) * kc_max);

  for (int jc = 0; jc < n; jc += NC) {
    const int nc = std::min(NC, n - jc);
    for (int pc = 0; pc < k; pc += KC) {
      const int kc = std::min(KC, k - pc);
      if (!direct_b) pack_b(variant, b, n, k, jc, nc, pc, kc, bpack);
      // The first KC block honors the caller's accumulate mode; later
      // blocks always add. Per element this is a fixed ascending-KC-block
      // order regardless of how rows were split across threads.
      const bool first_block =
          pc == 0 && accumulate == Accumulate::kOverwrite;
      const MicroKernelFn kernel =
          first_block ? kMicroKernels.overwrite : kMicroKernels.add;
      const MicroKernelDirectFn direct_kernel =
          first_block ? kMicroKernels.direct_overwrite
                      : kMicroKernels.direct_add;
      for (int ic = m_begin; ic < m_end; ic += MC) {
        const int mc = std::min(MC, m_end - ic);
        pack_a(variant, a, m, k, ic, mc, pc, kc, apack);
        for (int jr = 0; jr < nc; jr += NR) {
          const int nr = std::min(NR, nc - jr);
          for (int ir = 0; ir < mc; ir += MR) {
            const int mr = std::min(MR, mc - ir);
            const float* apanel = apack + static_cast<std::size_t>(ir) * kc;
            float* ctile =
                c + static_cast<std::size_t>(ic + ir) * n + (jc + jr);
            if (direct_b) {
              // op(B) is [k, n] for both kNN and kTN.
              direct_kernel(kc, apanel,
                            b + static_cast<std::size_t>(pc) * n + (jc + jr),
                            n, ctile, n, mr, nr);
            } else {
              kernel(kc, apanel, bpack + static_cast<std::size_t>(jr) * kc,
                     ctile, n, mr, nr);
            }
          }
        }
      }
    }
  }
}

void sgemm(Variant variant, int m, int n, int k, const float* a,
           const float* b, float* c, Accumulate accumulate) {
  if (m <= 0 || n <= 0) return;
  const std::size_t macs = static_cast<std::size_t>(m) * n * (k > 0 ? k : 1);
  if (m > 1 && macs >= kParallelMacThreshold) {
    util::ThreadPool& pool = util::ThreadPool::global();
    if (pool.worth_parallelizing()) {
      pool.parallel_for(
          0, static_cast<std::size_t>(m),
          [=](std::size_t row_begin, std::size_t row_end) {
            sgemm_rows(variant, static_cast<int>(row_begin),
                       static_cast<int>(row_end), m, n, k, a, b, c,
                       accumulate);
          },
          /*grain=*/MR);
      return;
    }
  }
  sgemm_rows(variant, 0, m, m, n, k, a, b, c, accumulate);
}

const char* isa_name() { return kMicroKernels.isa; }

}  // namespace fedsu::tensor::gemm
