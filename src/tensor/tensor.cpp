#include "tensor/tensor.h"

#include <sstream>
#include <stdexcept>

namespace fedsu::tensor {

std::size_t shape_size(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor::Tensor(std::vector<int> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (shape_size(shape_) != data_.size()) {
    throw std::invalid_argument("Tensor: shape/data size mismatch");
  }
}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  if (shape_size(new_shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshaped: element count mismatch");
  }
  return Tensor(std::move(new_shape), data_);
}

void Tensor::resize(std::vector<int> new_shape) {
  const std::size_t n = shape_size(new_shape);
  shape_ = std::move(new_shape);
  data_.resize(n);
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace fedsu::tensor
