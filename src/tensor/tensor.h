// Dense, contiguous, row-major float32 tensor.
//
// This is deliberately a concrete value type (no views, no broadcasting
// lattice): the neural-network layers in src/nn do their own indexing, and
// a simple flat buffer keeps the FL payload accounting (bytes on the wire)
// trivially exact.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace fedsu::tensor {

class Tensor {
 public:
  Tensor() = default;

  // Constructs a zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int> shape);
  Tensor(std::initializer_list<int> shape)
      : Tensor(std::vector<int>(shape)) {}

  // Constructs from shape + data (sizes must match).
  Tensor(std::vector<int> shape, std::vector<float> data);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float value);
  static Tensor from_scalar(float value) { return Tensor({1}, {value}); }

  const std::vector<int>& shape() const { return shape_; }
  int dim(std::size_t axis) const {
    assert(axis < shape_.size());
    return shape_[axis];
  }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  // 2-D access (row-major).
  float& at(int r, int c) {
    assert(rank() == 2);
    return data_[static_cast<std::size_t>(r) * shape_[1] + c];
  }
  float at(int r, int c) const {
    assert(rank() == 2);
    return data_[static_cast<std::size_t>(r) * shape_[1] + c];
  }

  // 4-D access (NCHW).
  float& at(int n, int c, int h, int w) {
    assert(rank() == 4);
    return data_[offset4(n, c, h, w)];
  }
  float at(int n, int c, int h, int w) const {
    assert(rank() == 4);
    return data_[offset4(n, c, h, w)];
  }

  // Returns a reshaped copy-free tensor (element count must match).
  Tensor reshaped(std::vector<int> new_shape) const;

  // Re-shapes in place, reusing the existing heap buffer whenever its
  // capacity suffices (the per-batch scratch tensors in the training loop
  // rely on this to stop reallocating). Surviving elements keep their old
  // values and grown elements are zero — callers that need a clean buffer
  // must overwrite or zero() it.
  void resize(std::vector<int> new_shape);

  void fill(float value);
  void zero() { fill(0.0f); }

  // Human-readable "[2, 3, 4]" for diagnostics.
  std::string shape_string() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::size_t offset4(int n, int c, int h, int w) const {
    const std::size_t C = shape_[1];
    const std::size_t H = shape_[2];
    const std::size_t W = shape_[3];
    return ((static_cast<std::size_t>(n) * C + c) * H + h) * W + w;
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

// Number of elements implied by a shape (asserts non-negative dims).
std::size_t shape_size(const std::vector<int>& shape);

}  // namespace fedsu::tensor
