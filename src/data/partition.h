// Non-IID data partitioning across FL clients.
//
// Implements the Dirichlet label-skew scheme of Hsu et al. (arXiv:1909.06335)
// used by the paper (§VI-A, alpha = 1): each client draws a class-mixture
// vector from Dir(alpha); every sample of class c is assigned to a client
// with probability proportional to the clients' weight on c.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace fedsu::data {

struct PartitionOptions {
  int num_clients = 8;
  double alpha = 1.0;        // Dirichlet concentration; large => IID
  int min_samples = 2;       // re-deal clients that end up starved
  std::uint64_t seed = 11;
};

// Returns per-client index lists into `dataset`. Every index appears exactly
// once; each client receives at least `min_samples` samples (the sampler
// retries with fresh mixtures a bounded number of times, then tops up
// starved clients by stealing from the largest ones).
std::vector<std::vector<std::size_t>> dirichlet_partition(
    const Dataset& dataset, const PartitionOptions& options);

// IID split (random equal shares); used as the alpha -> infinity reference.
std::vector<std::vector<std::size_t>> iid_partition(const Dataset& dataset,
                                                    int num_clients,
                                                    std::uint64_t seed);

}  // namespace fedsu::data
