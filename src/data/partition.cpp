#include "data/partition.h"

#include <algorithm>
#include <stdexcept>

namespace fedsu::data {

namespace {

std::vector<std::vector<std::size_t>> try_dirichlet(
    const Dataset& dataset, const PartitionOptions& options, util::Rng& rng) {
  const int k = dataset.num_classes();
  const int n = options.num_clients;
  // Client mixtures over classes.
  std::vector<std::vector<double>> mixture(static_cast<std::size_t>(n));
  for (auto& m : mixture) m = rng.dirichlet(options.alpha, k);

  std::vector<std::vector<std::size_t>> shards(static_cast<std::size_t>(n));
  // Per class, the categorical over clients is proportional to their weight
  // on that class.
  std::vector<double> class_weight(static_cast<std::size_t>(n));
  for (int c = 0; c < k; ++c) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      class_weight[static_cast<std::size_t>(i)] =
          mixture[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)];
      total += class_weight[static_cast<std::size_t>(i)];
    }
    if (total <= 0.0) total = 1.0;
    for (std::size_t s = 0; s < dataset.size(); ++s) {
      if (dataset.labels()[s] != c) continue;
      double u = rng.uniform() * total;
      int chosen = n - 1;
      for (int i = 0; i < n; ++i) {
        u -= class_weight[static_cast<std::size_t>(i)];
        if (u <= 0.0) {
          chosen = i;
          break;
        }
      }
      shards[static_cast<std::size_t>(chosen)].push_back(s);
    }
  }
  return shards;
}

}  // namespace

std::vector<std::vector<std::size_t>> dirichlet_partition(
    const Dataset& dataset, const PartitionOptions& options) {
  if (options.num_clients <= 0) {
    throw std::invalid_argument("dirichlet_partition: num_clients <= 0");
  }
  if (dataset.size() <
      static_cast<std::size_t>(options.num_clients * options.min_samples)) {
    throw std::invalid_argument(
        "dirichlet_partition: dataset too small for client count");
  }
  util::Rng rng(options.seed);
  std::vector<std::vector<std::size_t>> shards;
  constexpr int kMaxAttempts = 20;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    shards = try_dirichlet(dataset, options, rng);
    const bool ok = std::all_of(shards.begin(), shards.end(), [&](const auto& s) {
      return s.size() >= static_cast<std::size_t>(options.min_samples);
    });
    if (ok) return shards;
  }
  // Top up starved clients from the largest shards so the invariant holds
  // even for extreme (tiny-alpha) draws.
  for (auto& shard : shards) {
    while (shard.size() < static_cast<std::size_t>(options.min_samples)) {
      auto donor = std::max_element(
          shards.begin(), shards.end(),
          [](const auto& a, const auto& b) { return a.size() < b.size(); });
      if (donor->size() <= static_cast<std::size_t>(options.min_samples)) break;
      shard.push_back(donor->back());
      donor->pop_back();
    }
  }
  return shards;
}

std::vector<std::vector<std::size_t>> iid_partition(const Dataset& dataset,
                                                    int num_clients,
                                                    std::uint64_t seed) {
  if (num_clients <= 0) {
    throw std::invalid_argument("iid_partition: num_clients <= 0");
  }
  util::Rng rng(seed);
  const auto perm = rng.permutation(dataset.size());
  std::vector<std::vector<std::size_t>> shards(
      static_cast<std::size_t>(num_clients));
  for (std::size_t i = 0; i < perm.size(); ++i) {
    shards[i % static_cast<std::size_t>(num_clients)].push_back(perm[i]);
  }
  return shards;
}

}  // namespace fedsu::data
