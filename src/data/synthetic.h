// Synthetic stand-ins for EMNIST / FMNIST / CIFAR-10 (see DESIGN.md §3).
//
// Each class gets a smooth random prototype image (a mixture of low-frequency
// cosine fields and Gaussian blobs); samples are the prototype plus jitter
// (shift, contrast, additive noise) with optional label noise. The task is
// non-trivially learnable — a linear model reaches moderate accuracy, conv
// nets do better — and the SGD trajectories reproduce the early-rapid /
// late-linear phases FedSU exploits. No external data is required.
#pragma once

#include <string>

#include "data/dataset.h"
#include "util/rng.h"

namespace fedsu::data {

struct SyntheticSpec {
  std::string name = "emnist";  // emnist | fmnist | cifar (presets) or custom
  int num_classes = 10;
  int channels = 1;
  int image_size = 28;
  int train_count = 2000;
  int test_count = 500;
  float noise = 0.45f;          // additive Gaussian noise stddev
  float shift_fraction = 0.1f;  // max translation as a fraction of image size
  float label_noise = 0.01f;    // probability a label is resampled uniformly
  std::uint64_t seed = 7;
};

// Preset matching the paper's dataset keyword; counts stay caller-tunable.
SyntheticSpec synthetic_preset(const std::string& dataset);

// Generated train/test pair drawn from the same class prototypes.
struct TrainTest {
  Dataset train;
  Dataset test;
};

TrainTest generate_synthetic(const SyntheticSpec& spec);

}  // namespace fedsu::data
