#include "data/synthetic.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace fedsu::data {

SyntheticSpec synthetic_preset(const std::string& dataset) {
  SyntheticSpec spec;
  spec.name = dataset;
  if (dataset == "emnist" || dataset == "fmnist") {
    spec.channels = 1;
    spec.image_size = 28;
  } else if (dataset == "cifar") {
    spec.channels = 3;
    spec.image_size = 32;
    spec.noise = 0.55f;
  } else {
    throw std::invalid_argument("synthetic_preset: unknown dataset '" +
                                dataset + "'");
  }
  return spec;
}

namespace {

// A class prototype: per channel, a sum of low-frequency cosine waves plus a
// few Gaussian blobs. Smoothness matters: it makes small translations a
// "benign" augmentation rather than label-destroying noise.
std::vector<float> make_prototype(const SyntheticSpec& spec, util::Rng& rng) {
  const int s = spec.image_size;
  const int c = spec.channels;
  std::vector<float> proto(static_cast<std::size_t>(c) * s * s, 0.0f);
  for (int ch = 0; ch < c; ++ch) {
    float* plane = proto.data() + static_cast<std::size_t>(ch) * s * s;
    // Low-frequency cosine mixture.
    const int waves = 3;
    for (int wv = 0; wv < waves; ++wv) {
      const double fx = rng.uniform(0.5, 2.5) * 2.0 * std::numbers::pi / s;
      const double fy = rng.uniform(0.5, 2.5) * 2.0 * std::numbers::pi / s;
      const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double amp = rng.uniform(0.4, 1.0);
      for (int r = 0; r < s; ++r) {
        for (int col = 0; col < s; ++col) {
          plane[static_cast<std::size_t>(r) * s + col] +=
              static_cast<float>(amp * std::cos(fx * col + fy * r + phase));
        }
      }
    }
    // Gaussian blobs.
    const int blobs = 2;
    for (int b = 0; b < blobs; ++b) {
      const double cx = rng.uniform(0.2, 0.8) * s;
      const double cy = rng.uniform(0.2, 0.8) * s;
      const double sigma = rng.uniform(0.1, 0.25) * s;
      const double amp = rng.uniform(-1.5, 1.5);
      for (int r = 0; r < s; ++r) {
        for (int col = 0; col < s; ++col) {
          const double d2 = (col - cx) * (col - cx) + (r - cy) * (r - cy);
          plane[static_cast<std::size_t>(r) * s + col] +=
              static_cast<float>(amp * std::exp(-d2 / (2.0 * sigma * sigma)));
        }
      }
    }
  }
  return proto;
}

// Bilinear sample of the prototype with sub-pixel translation.
float sample_shifted(const float* plane, int s, double r, double c) {
  const int r0 = static_cast<int>(std::floor(r));
  const int c0 = static_cast<int>(std::floor(c));
  const double fr = r - r0;
  const double fc = c - c0;
  auto at = [&](int rr, int cc) -> double {
    if (rr < 0) rr = 0;
    if (rr >= s) rr = s - 1;
    if (cc < 0) cc = 0;
    if (cc >= s) cc = s - 1;
    return plane[static_cast<std::size_t>(rr) * s + cc];
  };
  return static_cast<float>((1 - fr) * ((1 - fc) * at(r0, c0) + fc * at(r0, c0 + 1)) +
                            fr * ((1 - fc) * at(r0 + 1, c0) + fc * at(r0 + 1, c0 + 1)));
}

Dataset generate_split(const SyntheticSpec& spec,
                       const std::vector<std::vector<float>>& prototypes,
                       int count, util::Rng& rng) {
  const int s = spec.image_size;
  const int c = spec.channels;
  tensor::Tensor images({count, c, s, s});
  std::vector<int> labels(static_cast<std::size_t>(count));
  const double max_shift = spec.shift_fraction * s;
  for (int i = 0; i < count; ++i) {
    const int cls = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(spec.num_classes)));
    int label = cls;
    if (spec.label_noise > 0.0f && rng.bernoulli(spec.label_noise)) {
      label = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(spec.num_classes)));
    }
    labels[static_cast<std::size_t>(i)] = label;
    const double dr = rng.uniform(-max_shift, max_shift);
    const double dc = rng.uniform(-max_shift, max_shift);
    const double contrast = rng.uniform(0.85, 1.15);
    const double brightness = rng.uniform(-0.1, 0.1);
    const std::vector<float>& proto = prototypes[static_cast<std::size_t>(cls)];
    for (int ch = 0; ch < c; ++ch) {
      const float* plane = proto.data() + static_cast<std::size_t>(ch) * s * s;
      for (int r = 0; r < s; ++r) {
        for (int col = 0; col < s; ++col) {
          const float base = sample_shifted(plane, s, r + dr, col + dc);
          images.at(i, ch, r, col) = static_cast<float>(
              contrast * base + brightness + spec.noise * rng.normal());
        }
      }
    }
  }
  return Dataset(std::move(images), std::move(labels));
}

}  // namespace

TrainTest generate_synthetic(const SyntheticSpec& spec) {
  if (spec.num_classes <= 1 || spec.image_size <= 0 || spec.channels <= 0 ||
      spec.train_count <= 0 || spec.test_count <= 0) {
    throw std::invalid_argument("generate_synthetic: bad spec");
  }
  util::Rng proto_rng(spec.seed);
  std::vector<std::vector<float>> prototypes;
  prototypes.reserve(static_cast<std::size_t>(spec.num_classes));
  for (int i = 0; i < spec.num_classes; ++i) {
    prototypes.push_back(make_prototype(spec, proto_rng));
  }
  util::Rng train_rng = proto_rng.fork(1);
  util::Rng test_rng = proto_rng.fork(2);
  TrainTest out{generate_split(spec, prototypes, spec.train_count, train_rng),
                generate_split(spec, prototypes, spec.test_count, test_rng)};
  return out;
}

}  // namespace fedsu::data
