#include "data/loader.h"

#include <algorithm>
#include <stdexcept>

namespace fedsu::data {

BatchLoader::BatchLoader(const Dataset& dataset, int batch_size, util::Rng rng)
    : dataset_(dataset), batch_size_(batch_size), rng_(rng) {
  if (batch_size <= 0) throw std::invalid_argument("BatchLoader: batch <= 0");
  if (dataset.empty()) throw std::invalid_argument("BatchLoader: empty dataset");
  reshuffle();
}

void BatchLoader::reshuffle() {
  order_ = rng_.permutation(dataset_.size());
  cursor_ = 0;
}

void BatchLoader::next(tensor::Tensor& batch, std::vector<int>& labels) {
  if (cursor_ >= order_.size()) {
    ++epochs_;
    reshuffle();
  }
  const std::size_t take =
      std::min(static_cast<std::size_t>(batch_size_), order_.size() - cursor_);
  std::vector<std::size_t> indices(order_.begin() + cursor_,
                                   order_.begin() + cursor_ + take);
  cursor_ += take;
  dataset_.gather(indices, batch, labels);
}

}  // namespace fedsu::data
