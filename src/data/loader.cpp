#include "data/loader.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace fedsu::data {

BatchLoader::BatchLoader(const DatasetView& view, int batch_size, util::Rng rng)
    : view_(view), batch_size_(batch_size), rng_(rng) {
  if (batch_size <= 0) throw std::invalid_argument("BatchLoader: batch <= 0");
  if (view.empty()) throw std::invalid_argument("BatchLoader: empty dataset");
  reshuffle();
}

void BatchLoader::reshuffle() {
  order_ = rng_.permutation(view_.size());
  cursor_ = 0;
}

void BatchLoader::serialize(io::BinaryWriter& writer) const {
  const auto words = rng_.state_words();
  for (const std::uint64_t w : words) writer.write_u64(w);
  writer.write_vector(order_);
  writer.write_u64(cursor_);
  writer.write_u64(epochs_);
}

void BatchLoader::deserialize(io::BinaryReader& reader) {
  std::array<std::uint64_t, util::Rng::kStateWords> words{};
  for (auto& w : words) w = reader.read_u64();
  auto order = reader.read_vector<std::size_t>();
  const std::uint64_t cursor = reader.read_u64();
  const std::uint64_t epochs = reader.read_u64();
  if (order.size() != view_.size() || cursor > order.size()) {
    throw std::runtime_error(
        "BatchLoader: snapshot does not match this shard");
  }
  rng_.restore_state_words(words);
  order_ = std::move(order);
  cursor_ = static_cast<std::size_t>(cursor);
  epochs_ = static_cast<std::size_t>(epochs);
}

void BatchLoader::next(tensor::Tensor& batch, std::vector<int>& labels) {
  if (cursor_ >= order_.size()) {
    ++epochs_;
    reshuffle();
  }
  const std::size_t take =
      std::min(static_cast<std::size_t>(batch_size_), order_.size() - cursor_);
  scratch_indices_.assign(order_.begin() + cursor_,
                          order_.begin() + cursor_ + take);
  cursor_ += take;
  view_.gather(scratch_indices_, batch, labels);
}

}  // namespace fedsu::data
