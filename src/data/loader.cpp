#include "data/loader.h"

#include <algorithm>
#include <stdexcept>

namespace fedsu::data {

BatchLoader::BatchLoader(const DatasetView& view, int batch_size, util::Rng rng)
    : view_(view), batch_size_(batch_size), rng_(rng) {
  if (batch_size <= 0) throw std::invalid_argument("BatchLoader: batch <= 0");
  if (view.empty()) throw std::invalid_argument("BatchLoader: empty dataset");
  reshuffle();
}

void BatchLoader::reshuffle() {
  order_ = rng_.permutation(view_.size());
  cursor_ = 0;
}

void BatchLoader::next(tensor::Tensor& batch, std::vector<int>& labels) {
  if (cursor_ >= order_.size()) {
    ++epochs_;
    reshuffle();
  }
  const std::size_t take =
      std::min(static_cast<std::size_t>(batch_size_), order_.size() - cursor_);
  scratch_indices_.assign(order_.begin() + cursor_,
                          order_.begin() + cursor_ + take);
  cursor_ += take;
  view_.gather(scratch_indices_, batch, labels);
}

}  // namespace fedsu::data
