// Shuffling mini-batch loader over a DatasetView.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "io/serialize.h"
#include "util/rng.h"

namespace fedsu::data {

class BatchLoader {
 public:
  // `view` must outlive the loader (it is held by reference; the view's own
  // shared_ptr keeps the parent dataset alive). Batches wrap around epoch
  // boundaries (reshuffling each epoch) so callers can just ask for the
  // next batch.
  BatchLoader(const DatasetView& view, int batch_size, util::Rng rng);

  // Fills `batch`/`labels` with the next mini-batch, reusing their
  // capacity. The final batch of an epoch may be smaller when the dataset
  // size is not divisible.
  void next(tensor::Tensor& batch, std::vector<int>& labels);

  int batch_size() const { return batch_size_; }
  std::size_t epochs_completed() const { return epochs_; }

  // Checkpoint support. The epoch permutation cannot be re-derived from the
  // seed alone — the constructor shuffles immediately and every epoch
  // boundary consumes RNG draws mid-stream — so serialize() captures the
  // RNG words, the current `order_`, the cursor, and the epoch count.
  // deserialize() restores them; the view itself is rebuilt by the caller
  // (the shard partition is seed-deterministic).
  void serialize(io::BinaryWriter& writer) const;
  void deserialize(io::BinaryReader& reader);

 private:
  void reshuffle();

  const DatasetView& view_;
  int batch_size_;
  util::Rng rng_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> scratch_indices_;  // reused across next() calls
  std::size_t cursor_ = 0;
  std::size_t epochs_ = 0;
};

}  // namespace fedsu::data
