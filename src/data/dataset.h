// In-memory labeled image dataset (NCHW) and zero-copy views over it.
#pragma once

#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace fedsu::data {

class Dataset {
 public:
  Dataset() = default;
  // images: [N, C, H, W]; labels: N entries.
  Dataset(tensor::Tensor images, std::vector<int> labels);

  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  int channels() const { return images_.empty() ? 0 : images_.dim(1); }
  int height() const { return images_.empty() ? 0 : images_.dim(2); }
  int width() const { return images_.empty() ? 0 : images_.dim(3); }
  int num_classes() const { return num_classes_; }

  const tensor::Tensor& images() const { return images_; }
  const std::vector<int>& labels() const { return labels_; }

  // Copies the selected samples into a batch tensor + label vector.
  void gather(const std::vector<std::size_t>& indices, tensor::Tensor& batch,
              std::vector<int>& labels) const;

  // New dataset containing only the given samples.
  Dataset subset(const std::vector<std::size_t>& indices) const;

  // Per-class sample counts (length num_classes()).
  std::vector<int> class_histogram() const;

 private:
  tensor::Tensor images_;
  std::vector<int> labels_;
  int num_classes_ = 0;
};

// Zero-copy shard view: a shared immutable parent dataset plus the row
// indices this shard covers (DESIGN.md §13). An N-client simulation builds
// one DatasetView per client over the single training dataset, so the
// images exist exactly once in memory regardless of N; per-shard cost is
// the index list (8 bytes/sample) instead of a full sample copy.
//
// Views never mutate the parent, and the shared_ptr keeps it alive for as
// long as any view (and any BatchLoader over one) exists. gather() copies
// the exact bytes Dataset::gather would copy from an equivalent subset()
// dataset, so view-backed training is bit-identical to the legacy
// copy-per-client path (tests/test_scale.cpp).
class DatasetView {
 public:
  DatasetView() = default;
  // A view of `rows` (parent row indices, any order, duplicates allowed).
  DatasetView(std::shared_ptr<const Dataset> parent,
              std::vector<std::size_t> rows);
  // The whole parent in row order.
  static DatasetView all_of(std::shared_ptr<const Dataset> parent);
  // Adopts a standalone dataset (the legacy copy path): the view owns the
  // data and covers every row. Used by add_client()-style entry points that
  // hand over a materialized shard.
  static DatasetView own(Dataset dataset);

  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  int channels() const { return parent_ ? parent_->channels() : 0; }
  int height() const { return parent_ ? parent_->height() : 0; }
  int width() const { return parent_ ? parent_->width() : 0; }
  // The PARENT's class count: shards of one federation share the task's
  // label space even when a skewed shard is missing classes.
  int num_classes() const { return parent_ ? parent_->num_classes() : 0; }

  const Dataset& parent() const { return *parent_; }
  const std::vector<std::size_t>& rows() const { return rows_; }
  int label(std::size_t i) const { return parent_->labels()[rows_[i]]; }

  // Copies the selected view samples into a batch tensor + label vector,
  // reusing the destination buffers' capacity (see Dataset::gather).
  void gather(const std::vector<std::size_t>& indices, tensor::Tensor& batch,
              std::vector<int>& labels) const;

  // Materializes the view as a standalone Dataset (tests, add_client).
  Dataset materialize() const;

 private:
  std::shared_ptr<const Dataset> parent_;
  std::vector<std::size_t> rows_;
};

}  // namespace fedsu::data
