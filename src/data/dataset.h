// In-memory labeled image dataset (NCHW).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace fedsu::data {

class Dataset {
 public:
  Dataset() = default;
  // images: [N, C, H, W]; labels: N entries.
  Dataset(tensor::Tensor images, std::vector<int> labels);

  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  int channels() const { return images_.empty() ? 0 : images_.dim(1); }
  int height() const { return images_.empty() ? 0 : images_.dim(2); }
  int width() const { return images_.empty() ? 0 : images_.dim(3); }
  int num_classes() const { return num_classes_; }

  const tensor::Tensor& images() const { return images_; }
  const std::vector<int>& labels() const { return labels_; }

  // Copies the selected samples into a batch tensor + label vector.
  void gather(const std::vector<std::size_t>& indices, tensor::Tensor& batch,
              std::vector<int>& labels) const;

  // New dataset containing only the given samples.
  Dataset subset(const std::vector<std::size_t>& indices) const;

  // Per-class sample counts (length num_classes()).
  std::vector<int> class_histogram() const;

 private:
  tensor::Tensor images_;
  std::vector<int> labels_;
  int num_classes_ = 0;
};

}  // namespace fedsu::data
