#include "data/dataset.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace fedsu::data {

Dataset::Dataset(tensor::Tensor images, std::vector<int> labels)
    : images_(std::move(images)), labels_(std::move(labels)) {
  if (images_.rank() != 4) {
    throw std::invalid_argument("Dataset: images must be [N, C, H, W]");
  }
  if (static_cast<std::size_t>(images_.dim(0)) != labels_.size()) {
    throw std::invalid_argument("Dataset: image/label count mismatch");
  }
  for (int y : labels_) {
    if (y < 0) throw std::invalid_argument("Dataset: negative label");
    num_classes_ = std::max(num_classes_, y + 1);
  }
}

void Dataset::gather(const std::vector<std::size_t>& indices,
                     tensor::Tensor& batch, std::vector<int>& labels) const {
  const std::size_t sample =
      static_cast<std::size_t>(channels()) * height() * width();
  // resize() keeps the heap buffer when capacity suffices, so the training
  // loop's per-iteration gather stops reallocating after the first batch;
  // every element is overwritten below, so stale survivors cannot leak.
  batch.resize(
      {static_cast<int>(indices.size()), channels(), height(), width()});
  labels.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= size()) throw std::out_of_range("Dataset::gather: bad index");
    std::memcpy(batch.data() + i * sample, images_.data() + src * sample,
                sizeof(float) * sample);
    labels[i] = labels_[src];
  }
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  tensor::Tensor batch;
  std::vector<int> labels;
  gather(indices, batch, labels);
  return Dataset(std::move(batch), std::move(labels));
}

std::vector<int> Dataset::class_histogram() const {
  std::vector<int> hist(static_cast<std::size_t>(num_classes_), 0);
  for (int y : labels_) ++hist[static_cast<std::size_t>(y)];
  return hist;
}

DatasetView::DatasetView(std::shared_ptr<const Dataset> parent,
                         std::vector<std::size_t> rows)
    : parent_(std::move(parent)), rows_(std::move(rows)) {
  if (!parent_) throw std::invalid_argument("DatasetView: null parent");
  for (std::size_t row : rows_) {
    if (row >= parent_->size()) {
      throw std::out_of_range("DatasetView: row index out of range");
    }
  }
}

DatasetView DatasetView::all_of(std::shared_ptr<const Dataset> parent) {
  if (!parent) throw std::invalid_argument("DatasetView: null parent");
  std::vector<std::size_t> rows(parent->size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return DatasetView(std::move(parent), std::move(rows));
}

DatasetView DatasetView::own(Dataset dataset) {
  return all_of(std::make_shared<const Dataset>(std::move(dataset)));
}

void DatasetView::gather(const std::vector<std::size_t>& indices,
                         tensor::Tensor& batch,
                         std::vector<int>& labels) const {
  const std::size_t sample =
      static_cast<std::size_t>(channels()) * height() * width();
  const tensor::Tensor& images = parent_->images();
  const std::vector<int>& parent_labels = parent_->labels();
  batch.resize(
      {static_cast<int>(indices.size()), channels(), height(), width()});
  labels.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_.size()) {
      throw std::out_of_range("DatasetView::gather: bad index");
    }
    const std::size_t src = rows_[indices[i]];
    std::memcpy(batch.data() + i * sample, images.data() + src * sample,
                sizeof(float) * sample);
    labels[i] = parent_labels[src];
  }
}

Dataset DatasetView::materialize() const {
  tensor::Tensor batch;
  std::vector<int> labels;
  std::vector<std::size_t> all(rows_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  gather(all, batch, labels);
  return Dataset(std::move(batch), std::move(labels));
}

}  // namespace fedsu::data
