#include "data/dataset.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace fedsu::data {

Dataset::Dataset(tensor::Tensor images, std::vector<int> labels)
    : images_(std::move(images)), labels_(std::move(labels)) {
  if (images_.rank() != 4) {
    throw std::invalid_argument("Dataset: images must be [N, C, H, W]");
  }
  if (static_cast<std::size_t>(images_.dim(0)) != labels_.size()) {
    throw std::invalid_argument("Dataset: image/label count mismatch");
  }
  for (int y : labels_) {
    if (y < 0) throw std::invalid_argument("Dataset: negative label");
    num_classes_ = std::max(num_classes_, y + 1);
  }
}

void Dataset::gather(const std::vector<std::size_t>& indices,
                     tensor::Tensor& batch, std::vector<int>& labels) const {
  const std::size_t sample =
      static_cast<std::size_t>(channels()) * height() * width();
  batch = tensor::Tensor(
      {static_cast<int>(indices.size()), channels(), height(), width()});
  labels.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= size()) throw std::out_of_range("Dataset::gather: bad index");
    std::memcpy(batch.data() + i * sample, images_.data() + src * sample,
                sizeof(float) * sample);
    labels[i] = labels_[src];
  }
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  tensor::Tensor batch;
  std::vector<int> labels;
  gather(indices, batch, labels);
  return Dataset(std::move(batch), std::move(labels));
}

std::vector<int> Dataset::class_histogram() const {
  std::vector<int> hist(static_cast<std::size_t>(num_classes_), 0);
  for (int y : labels_) ++hist[static_cast<std::size_t>(y)];
  return hist;
}

}  // namespace fedsu::data
