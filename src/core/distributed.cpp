#include "core/distributed.h"

#include <cmath>
#include <stdexcept>

#include "util/reduce.h"
#include "util/thread_pool.h"

namespace fedsu::core {

FedSuDownload FedSuServer::aggregate(
    const std::vector<FedSuUpload>& uploads) const {
  if (uploads.empty()) {
    throw std::invalid_argument("FedSuServer::aggregate: no uploads");
  }
  const std::size_t values = uploads.front().unpredictable_values.size();
  const std::size_t errors = uploads.front().expiring_errors.size();
  for (const auto& upload : uploads) {
    if (upload.unpredictable_values.size() != values ||
        upload.expiring_errors.size() != errors) {
      throw std::invalid_argument(
          "FedSuServer::aggregate: payload shape mismatch (client masks "
          "diverged)");
    }
  }
  // Positional means in the fixed block shape (util/reduce.h): thread-count
  // invariant, and bit-identical to the centralized FedSuManager passes —
  // both fold the same N rows through the same tree.
  FedSuDownload download;
  download.aggregated_values.resize(values);
  download.aggregated_errors.resize(errors);
  util::ThreadPool* pool = &util::ThreadPool::global();
  std::vector<std::span<const float>> rows;
  rows.reserve(uploads.size());
  for (const auto& upload : uploads) {
    rows.emplace_back(upload.unpredictable_values);
  }
  util::column_means(rows, download.aggregated_values, pool);
  rows.clear();
  for (const auto& upload : uploads) rows.emplace_back(upload.expiring_errors);
  util::column_means(rows, download.aggregated_errors, pool);
  return download;
}

FedSuClientManager::FedSuClientManager(std::size_t state_size,
                                       FedSuOptions options)
    : options_(options) {
  if (options_.t_r <= 0.0 || options_.t_s <= 0.0 ||
      options_.initial_no_check < 1) {
    throw std::invalid_argument("FedSuClientManager: bad options");
  }
  global_.assign(state_size, 0.0f);
  OscillationOptions osc_options;
  osc_options.ema_decay = options_.ema_decay;
  osc_options.warmup = options_.warmup;
  osc_ = OscillationTracker(state_size, osc_options);
  predictable_.assign(state_size, 0);
  slope_.assign(state_size, 0.0f);
  no_check_period_.assign(state_size, 0);
  no_check_remaining_.assign(state_size, 0);
  local_err_.assign(state_size, 0.0f);
}

void FedSuClientManager::initialize(std::span<const float> global_state) {
  if (global_state.size() != global_.size()) {
    throw std::invalid_argument("FedSuClientManager::initialize: bad size");
  }
  global_.assign(global_state.begin(), global_state.end());
}

FedSuUpload FedSuClientManager::begin_sync(std::span<const float> local_state) {
  if (sync_in_flight_) {
    throw std::logic_error("FedSuClientManager: begin_sync called twice");
  }
  if (local_state.size() != global_.size()) {
    throw std::invalid_argument("FedSuClientManager::begin_sync: bad size");
  }
  FedSuUpload upload;
  pending_expiring_.clear();
  for (std::size_t j = 0; j < global_.size(); ++j) {
    if (!predictable_[j]) {
      // Algorithm 1 line 2: masked-select the non-linear parameters.
      upload.unpredictable_values.push_back(local_state[j]);
      continue;
    }
    // Accumulate the local prediction error e += x - x_spec (line 5).
    const float x_spec = global_[j] + slope_[j];
    local_err_[j] += local_state[j] - x_spec;
    if (--no_check_remaining_[j] <= 0) {
      pending_expiring_.push_back(j);
      upload.expiring_errors.push_back(local_err_[j]);
    }
  }
  sync_in_flight_ = true;
  return upload;
}

std::vector<float> FedSuClientManager::finish_sync(
    const FedSuDownload& download) {
  if (!sync_in_flight_) {
    throw std::logic_error("FedSuClientManager: finish_sync without begin");
  }
  sync_in_flight_ = false;
  if (download.aggregated_errors.size() != pending_expiring_.size()) {
    throw std::invalid_argument(
        "FedSuClientManager::finish_sync: error payload mismatch");
  }

  std::vector<float> new_global = global_;
  // Restore the aggregated unpredictable values (line 4) and apply the
  // speculative update to the predictable ones (line 8).
  std::size_t cursor = 0;
  for (std::size_t j = 0; j < global_.size(); ++j) {
    if (!predictable_[j]) {
      if (cursor >= download.aggregated_values.size()) {
        throw std::invalid_argument(
            "FedSuClientManager::finish_sync: value payload mismatch");
      }
      new_global[j] = download.aggregated_values[cursor++];
    } else {
      new_global[j] = global_[j] + slope_[j];
    }
  }
  if (cursor != download.aggregated_values.size()) {
    throw std::invalid_argument(
        "FedSuClientManager::finish_sync: value payload mismatch");
  }

  // Error feedback (line 9): extend or terminate the expiring speculations.
  for (std::size_t k = 0; k < pending_expiring_.size(); ++k) {
    const std::size_t j = pending_expiring_[k];
    const float mean_err = download.aggregated_errors[k];
    const double denom = std::fabs(static_cast<double>(slope_[j])) + 1e-8;
    const double s = std::fabs(static_cast<double>(mean_err)) / denom;
    if (s < options_.t_s) {
      no_check_period_[j] += 1;
      no_check_remaining_[j] = no_check_period_[j];
    } else {
      predictable_[j] = 0;
      no_check_period_[j] = 0;
      no_check_remaining_[j] = 0;
      new_global[j] = static_cast<float>(new_global[j] + mean_err);
      local_err_[j] = 0.0f;
      if (options_.reset_on_demote) osc_.reset(j);
    }
  }

  // Linearity diagnosis for the normally-synchronized parameters (line 10).
  for (std::size_t j = 0; j < global_.size(); ++j) {
    if (predictable_[j]) continue;
    const float g_new = new_global[j] - global_[j];
    const double r = osc_.observe(j, g_new);
    if (osc_.ready(j) && r < options_.t_r) {
      predictable_[j] = 1;
      slope_[j] = g_new;
      no_check_period_[j] = options_.initial_no_check;
      no_check_remaining_[j] = options_.initial_no_check;
      local_err_[j] = 0.0f;
    }
  }
  global_ = new_global;
  return new_global;
}

double FedSuClientManager::predictable_fraction() const {
  if (predictable_.empty()) return 0.0;
  std::size_t count = 0;
  for (auto m : predictable_) count += m;
  return static_cast<double>(count) / static_cast<double>(predictable_.size());
}

}  // namespace fedsu::core
