// The paper's actual deployment decomposition of Algorithm 1: one
// FedSU_Manager instance per client plus a dumb averaging server.
//
// FedSuManager (core/fedsu_manager.h) is the centralized-simulation view:
// one object sees every client's state. This header provides the faithful
// distributed view the paper implements (§V, Fig. 4):
//
//   * FedSuClientManager — lives on a client. begin_sync() masked-selects
//     the unpredictable parameters (plus the expiring error accumulators)
//     into an upload payload; finish_sync() consumes the server's
//     aggregates, applies speculative updates, runs the error-feedback
//     checks and refreshes the predictability mask — all from
//     globally-identical quantities, so every client's masks stay
//     bit-identical with NO mask traffic.
//   * FedSuServer — Central_Server of Algorithm 1: positional averaging of
//     the clients' payloads (AGGREGATE_MODEL / AGGREGATE_ERROR).
//
// Equivalence with the centralized FedSuManager under full participation is
// exact (bit-for-bit) and covered by tests/test_distributed.cpp.
#pragma once

#include <span>
#include <vector>

#include "core/fedsu_manager.h"
#include "core/oscillation.h"

namespace fedsu::core {

// Upload payload of one client for one round (Algorithm 1, lines 2 & 5).
struct FedSuUpload {
  // Values of the unpredictable parameters, in ascending parameter order
  // (the mask is shared state, so positions need no indices on the wire).
  std::vector<float> unpredictable_values;
  // Accumulated local errors of the parameters whose no-checking period
  // expires this round, in ascending parameter order.
  std::vector<float> expiring_errors;

  std::size_t wire_bytes() const {
    return (unpredictable_values.size() + expiring_errors.size()) *
           sizeof(float);
  }
};

// Server response: positional aggregates matching the upload layout.
struct FedSuDownload {
  std::vector<float> aggregated_values;
  std::vector<float> aggregated_errors;

  std::size_t wire_bytes() const {
    return (aggregated_values.size() + aggregated_errors.size()) *
           sizeof(float);
  }
};

class FedSuServer {
 public:
  // Positional mean of equally-shaped uploads (Algorithm 1,
  // AGGREGATE_MODEL + AGGREGATE_ERROR). Throws if shapes disagree — that
  // would mean client masks diverged, which the protocol forbids.
  FedSuDownload aggregate(const std::vector<FedSuUpload>& uploads) const;
};

class FedSuClientManager {
 public:
  FedSuClientManager(std::size_t state_size, FedSuOptions options = {});

  // Registers the initial global state (all clients start identical).
  void initialize(std::span<const float> global_state);

  // Step 1 of SYNC(x): consumes the locally-trained state, accumulates this
  // round's prediction errors, and produces the upload payload. Must be
  // followed by exactly one finish_sync().
  FedSuUpload begin_sync(std::span<const float> local_state);

  // Step 2: consumes the server aggregates; returns the client's new state
  // (identical on every client). Updates masks/periods/slopes locally.
  std::vector<float> finish_sync(const FedSuDownload& download);

  const std::vector<std::uint8_t>& predictable_mask() const {
    return predictable_;
  }
  double predictable_fraction() const;
  const std::vector<float>& state() const { return global_; }
  std::size_t state_size() const { return global_.size(); }

 private:
  FedSuOptions options_;
  std::vector<float> global_;
  OscillationTracker osc_{0};
  std::vector<std::uint8_t> predictable_;
  std::vector<float> slope_;
  std::vector<std::int32_t> no_check_period_;
  std::vector<std::int32_t> no_check_remaining_;
  std::vector<float> local_err_;
  // Between begin_sync and finish_sync:
  bool sync_in_flight_ = false;
  std::vector<std::size_t> pending_expiring_;  // parameter indices
};

}  // namespace fedsu::core
