#include "core/oscillation.h"

#include <cmath>
#include <stdexcept>

namespace fedsu::core {

OscillationTracker::OscillationTracker(std::size_t num_params,
                                       OscillationOptions options)
    : options_(options),
      ema_g2_(num_params, 0.0f),
      ema_abs_g2_(num_params, 0.0f),
      g_prev_(num_params, 0.0f),
      observations_(num_params, -1) {
  if (options_.ema_decay <= 0.0 || options_.ema_decay >= 1.0) {
    throw std::invalid_argument("OscillationTracker: decay must be in (0, 1)");
  }
  if (options_.warmup < 1) {
    throw std::invalid_argument("OscillationTracker: warmup must be >= 1");
  }
}

double OscillationTracker::observe(std::size_t j, float g_new) {
  if (j >= size()) throw std::out_of_range("OscillationTracker::observe");
  if (observations_[j] < 0) {
    // First g value: no second difference yet.
    g_prev_[j] = g_new;
    observations_[j] = 0;
    return 1.0;
  }
  const float g2 = g_new - g_prev_[j];
  g_prev_[j] = g_new;
  const float theta = static_cast<float>(options_.ema_decay);
  ema_g2_[j] = theta * ema_g2_[j] + (1.0f - theta) * g2;
  ema_abs_g2_[j] = theta * ema_abs_g2_[j] + (1.0f - theta) * std::fabs(g2);
  ++observations_[j];
  return ratio(j);
}

double OscillationTracker::ratio(std::size_t j) const {
  if (j >= size()) throw std::out_of_range("OscillationTracker::ratio");
  if (observations_[j] < 1) return 1.0;
  const float denom = ema_abs_g2_[j];
  if (denom <= 0.0f) {
    // Second differences are exactly zero: perfectly linear.
    return 0.0;
  }
  return std::fabs(ema_g2_[j]) / denom;
}

bool OscillationTracker::ready(std::size_t j) const {
  if (j >= size()) throw std::out_of_range("OscillationTracker::ready");
  return observations_[j] >= options_.warmup;
}

void OscillationTracker::reset(std::size_t j) {
  if (j >= size()) throw std::out_of_range("OscillationTracker::reset");
  ema_g2_[j] = 0.0f;
  ema_abs_g2_[j] = 0.0f;
  g_prev_[j] = 0.0f;
  observations_[j] = -1;
}

void OscillationTracker::serialize(io::BinaryWriter& writer) const {
  writer.write_f64(options_.ema_decay);
  writer.write_i32(options_.warmup);
  writer.write_vector(ema_g2_);
  writer.write_vector(ema_abs_g2_);
  writer.write_vector(g_prev_);
  writer.write_vector(observations_);
}

void OscillationTracker::deserialize(io::BinaryReader& reader) {
  options_.ema_decay = reader.read_f64();
  options_.warmup = reader.read_i32();
  ema_g2_ = reader.read_vector<float>();
  ema_abs_g2_ = reader.read_vector<float>();
  g_prev_ = reader.read_vector<float>();
  observations_ = reader.read_vector<std::int32_t>();
  if (ema_abs_g2_.size() != ema_g2_.size() || g_prev_.size() != ema_g2_.size() ||
      observations_.size() != ema_g2_.size()) {
    throw std::runtime_error("OscillationTracker: inconsistent snapshot");
  }
}

std::size_t OscillationTracker::state_bytes() const {
  return ema_g2_.size() * sizeof(float) + ema_abs_g2_.size() * sizeof(float) +
         g_prev_.size() * sizeof(float) +
         observations_.size() * sizeof(std::int32_t);
}

}  // namespace fedsu::core
