#include "core/regression.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace fedsu::core {

RegressionDiagnoser::RegressionDiagnoser(std::size_t num_params,
                                         RegressionOptions options)
    : options_(options), num_params_(num_params) {
  if (options_.window < 3) {
    throw std::invalid_argument("RegressionDiagnoser: window must be >= 3");
  }
  history_.assign(num_params_ * static_cast<std::size_t>(options_.window),
                  0.0f);
  count_.assign(num_params_, 0);
  head_.assign(num_params_, 0);
}

void RegressionDiagnoser::observe(std::size_t j, float value) {
  if (j >= num_params_) throw std::out_of_range("RegressionDiagnoser::observe");
  const int k = options_.window;
  history_[j * static_cast<std::size_t>(k) +
           static_cast<std::size_t>(head_[j])] = value;
  head_[j] = (head_[j] + 1) % k;
  if (count_[j] < k) ++count_[j];
}

bool RegressionDiagnoser::ready(std::size_t j) const {
  if (j >= num_params_) throw std::out_of_range("RegressionDiagnoser::ready");
  return count_[j] >= options_.window;
}

double RegressionDiagnoser::normalized_residual(std::size_t j) const {
  if (!ready(j)) return std::numeric_limits<double>::max();
  const int k = options_.window;
  // Reconstruct chronological order from the ring buffer and fit
  // y = a + b * t with ordinary least squares.
  double sum_t = 0.0, sum_y = 0.0, sum_tt = 0.0, sum_ty = 0.0;
  for (int t = 0; t < k; ++t) {
    const int idx = (head_[j] + t) % k;  // oldest first
    const double y =
        history_[j * static_cast<std::size_t>(k) + static_cast<std::size_t>(idx)];
    sum_t += t;
    sum_y += y;
    sum_tt += static_cast<double>(t) * t;
    sum_ty += t * y;
  }
  const double n = k;
  const double denom = n * sum_tt - sum_t * sum_t;
  const double b = denom != 0.0 ? (n * sum_ty - sum_t * sum_y) / denom : 0.0;
  const double a = (sum_y - b * sum_t) / n;
  double rss = 0.0;
  for (int t = 0; t < k; ++t) {
    const int idx = (head_[j] + t) % k;
    const double y =
        history_[j * static_cast<std::size_t>(k) + static_cast<std::size_t>(idx)];
    const double r = y - (a + b * t);
    rss += r * r;
  }
  const double rms = std::sqrt(rss / n);
  return rms / (std::fabs(b) + 1e-12);
}

bool RegressionDiagnoser::is_linear(std::size_t j) const {
  return ready(j) && normalized_residual(j) < options_.residual_threshold;
}

double RegressionDiagnoser::slope(std::size_t j) const {
  if (!ready(j)) return 0.0;
  const int k = options_.window;
  double sum_t = 0.0, sum_y = 0.0, sum_tt = 0.0, sum_ty = 0.0;
  for (int t = 0; t < k; ++t) {
    const int idx = (head_[j] + t) % k;
    const double y =
        history_[j * static_cast<std::size_t>(k) + static_cast<std::size_t>(idx)];
    sum_t += t;
    sum_y += y;
    sum_tt += static_cast<double>(t) * t;
    sum_ty += t * y;
  }
  const double n = k;
  const double denom = n * sum_tt - sum_t * sum_t;
  return denom != 0.0 ? (n * sum_ty - sum_t * sum_y) / denom : 0.0;
}

std::size_t RegressionDiagnoser::state_bytes() const {
  return history_.size() * sizeof(float) + count_.size() * sizeof(int) +
         head_.size() * sizeof(int);
}

}  // namespace fedsu::core
