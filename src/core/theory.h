// Convergence-analysis helpers (paper §IV-D, Theorem 1).
//
// Theorem 1 bounds the averaged squared gradient norm after T rounds by
//
//   4 (F(x0) - F*) / sum(lr)
//   + 4 sigma^2 beta^2 T_S^2 * sum(lr^3) / sum(lr)
//   + 2 sigma^2 beta      * sum(lr^2) / sum(lr)
//
// under the beta-smoothness and sigma-bounded-gradient assumptions, where
// the middle term is exactly the price of speculation (it vanishes as
// T_S -> 0, recovering the plain SGD bound). These helpers evaluate the
// bound for a given schedule so benches can show (a) the bound shrinking as
// T grows for Eq. 13 schedules and (b) how T_S trades bound tightness for
// communication — the theory mirror of Fig. 10.
#pragma once

#include "nn/schedule.h"

namespace fedsu::core {

struct TheoryParams {
  double initial_gap = 1.0;  // F(x0) - F(x*)
  double beta = 1.0;         // smoothness constant (Assumption 1)
  double sigma2 = 1.0;       // gradient bound sigma^2 (Assumption 2)
  double t_s = 1.0;          // error-feedback threshold T_S
};

struct TheoremBound {
  double optimality_term = 0.0;   // 4 gap / sum(lr)
  double speculation_term = 0.0;  // 4 sigma^2 beta^2 T_S^2 sum(lr^3)/sum(lr)
  double variance_term = 0.0;     // 2 sigma^2 beta sum(lr^2)/sum(lr)
  double total() const {
    return optimality_term + speculation_term + variance_term;
  }
};

// Evaluates the Theorem 1 right-hand side over `rounds` of the schedule.
TheoremBound theorem1_bound(const TheoryParams& params,
                            const nn::LrSchedule& schedule, int rounds);

// The per-round model-deviation bound of Eq. 7: ||x_k - x_tilde_k||^2 is at
// most lr^2 T_S^2 sigma^2. Benches verify the measured deviation of the
// FedSU run stays under it.
double eq7_deviation_bound(double lr, double t_s, double sigma2);

}  // namespace fedsu::core
