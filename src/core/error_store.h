// Sparse per-client error-feedback store (DESIGN.md §13).
//
// FedSuManager keeps one prediction-error accumulator per (client, param).
// Stored densely that is a num_clients x num_params float matrix — the
// dominant server-side allocation of a large-cohort simulation, and mostly
// zeros: a client that was never selected during a speculation phase (or
// that crashed and was wiped) contributes nothing. This store keeps one
// lazily-allocated slab per client instead:
//
//   * a slab materializes (zero-filled) on the first NONZERO accumulation
//     for its client — reading an absent slab yields exact 0.0f, which is
//     bit-identical to the dense matrix because x - x == +0.0 and
//     0.0f + (+/-0.0f) == +0.0f in round-to-nearest IEEE arithmetic, and
//     once any delta is nonzero the slab exists and accumulates verbatim;
//   * on_client_rejoin releases the slab outright (the dense code filled it
//     with zeros); it re-materializes only if the client accumulates again;
//   * promotions/demotions clear one parameter across allocated slabs only.
//
// The store is not thread-safe as a whole, but disjoint clients may be
// accumulated concurrently: ensure()/slab() touch only the client's own
// pointer (the outer vector is never resized during a round).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "io/serialize.h"

namespace fedsu::core {

class SparseErrorStore {
 public:
  SparseErrorStore() = default;

  // Drops every slab and re-shapes the store.
  void reset(int num_clients, std::size_t params);

  int num_clients() const { return static_cast<int>(slabs_.size()); }
  std::size_t params() const { return params_; }

  // Registers one more client (no slab until it accumulates).
  void add_client() { slabs_.emplace_back(); }

  // The accumulated error, 0.0f for clients without a slab.
  float value(int client, std::size_t j) const {
    const float* s = slabs_[static_cast<std::size_t>(client)].get();
    return s ? s[j] : 0.0f;
  }

  // The client's slab, nullptr when unallocated.
  float* slab(int client) { return slabs_[static_cast<std::size_t>(client)].get(); }
  const float* slab(int client) const {
    return slabs_[static_cast<std::size_t>(client)].get();
  }

  // Materializes the client's slab (zero-filled) if absent and returns it.
  float* ensure(int client);

  // Releases the client's slab (rejoin-stamp reset: the accumulator is
  // semantically all-zero again, so the memory goes back to the allocator).
  void release(int client) { slabs_[static_cast<std::size_t>(client)].reset(); }

  // err[j] = 0 across every ALLOCATED slab (promotion / demotion path; the
  // dense equivalent wrote the whole column).
  void clear_param(std::size_t j);

  std::size_t allocated_slabs() const;
  // Bytes of slab memory currently resident (the quantity bench_scale
  // contrasts with the dense num_clients x params matrix).
  std::size_t resident_bytes() const {
    return allocated_slabs() * params_ * sizeof(float);
  }

  // Snapshot payload: u64 slab count, then ascending (u32 client,
  // length-prefixed f32 slab) pairs. Only allocated slabs are written.
  void serialize(io::BinaryWriter& writer) const;
  // Restores from `reader` into an empty store of the given shape; throws
  // on inconsistent client ids or slab sizes.
  void deserialize(io::BinaryReader& reader, int num_clients,
                   std::size_t params);

 private:
  std::size_t params_ = 0;
  std::vector<std::unique_ptr<float[]>> slabs_;
};

}  // namespace fedsu::core
