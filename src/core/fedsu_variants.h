// Ablation variants of FedSU (paper §VI-D, Fig. 8).
//
//   FedSU-v1: keeps the linearity diagnosis but removes error feedback —
//             a diagnosed-linear parameter speculates for a FIXED number of
//             rounds, then silently returns to regular updating (no error
//             aggregation, no correction).
//   FedSU-v2: removes the linearity diagnosis too — every synchronized
//             parameter enters speculative mode with a preset probability,
//             using the last observed update as its slope, again for a
//             fixed period.
#pragma once

#include <cstdint>
#include <string>

#include "compress/protocol.h"
#include "core/oscillation.h"
#include "util/rng.h"

namespace fedsu::core {

struct FedSuV1Options {
  double t_r = 0.01;
  double ema_decay = 0.98;
  int warmup = 3;
  int fixed_period = 43;  // paper Fig. 8: 43 (CNN) / 58 (DenseNet)
};

class FedSuV1 : public compress::SyncProtocol {
 public:
  explicit FedSuV1(FedSuV1Options options = {});

  std::string name() const override { return "FedSU-v1"; }
  void initialize(std::span<const float> global_state) override;
  compress::SyncResult synchronize(
      const compress::RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override;
  std::size_t state_bytes() const override;
  double last_sparsification_ratio() const override { return last_ratio_; }
  double predictable_fraction() const;

 private:
  FedSuV1Options options_;
  std::vector<float> global_;
  OscillationTracker osc_{0};
  std::vector<std::uint8_t> predictable_;
  std::vector<float> slope_;
  std::vector<std::int32_t> remaining_;
  double last_ratio_ = 0.0;
};

struct FedSuV2Options {
  double enter_probability = 0.0053;  // paper Fig. 8: 0.53 % (CNN)
  int fixed_period = 43;
  std::uint64_t seed = 1234;
};

class FedSuV2 : public compress::SyncProtocol {
 public:
  explicit FedSuV2(FedSuV2Options options = {});

  std::string name() const override { return "FedSU-v2"; }
  void initialize(std::span<const float> global_state) override;
  compress::SyncResult synchronize(
      const compress::RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override;
  std::size_t state_bytes() const override;
  double last_sparsification_ratio() const override { return last_ratio_; }
  double predictable_fraction() const;

 private:
  FedSuV2Options options_;
  std::vector<float> global_;
  std::vector<float> prev_update_;
  bool has_prev_update_ = false;
  std::vector<std::uint8_t> predictable_;
  std::vector<float> slope_;
  std::vector<std::int32_t> remaining_;
  util::Rng rng_{0};
  double last_ratio_ = 0.0;
};

}  // namespace fedsu::core
