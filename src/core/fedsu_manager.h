// FedSU — Federated Learning with Speculative Updating (paper Algorithm 1).
//
// Per round the manager partitions the model's scalars into:
//   * unpredictable parameters: synchronized normally (mean of client
//     values); their fresh global update feeds the OscillationTracker and,
//     when the ratio R drops below T_R, the parameter enters speculative
//     mode with the last round's update frozen as its slope;
//   * predictable parameters: NOT synchronized. Every client applies the
//     speculative value x + slope and accumulates its local prediction
//     error. When a parameter's no-checking period expires, the errors are
//     aggregated; the feedback signal S = |sum e| / |slope| (Eq. 3) decides
//     whether to extend the period (+1 round) or to end speculation —
//     applying the aggregated error as a correction so the trajectory
//     rejoins the true one (Fig. 6's red crosses).
//
// Masks and periods are derived purely from globally-identical quantities,
// so every client can maintain its own replica without extra communication
// (paper §V); a late joiner only downloads mask + periods + slopes once
// (join_state_bytes()).
#pragma once

#include <functional>
#include <string>

#include "compress/protocol.h"
#include "core/error_store.h"
#include "core/oscillation.h"

namespace fedsu::core {

struct FedSuOptions {
  double t_r = 0.01;        // predictability threshold T_R (paper §VI-A)
  double t_s = 1.0;         // error-feedback threshold T_S (paper §VI-A)
  double ema_decay = 0.9;   // theta of Eq. 2 ("close to 1", paper §IV-A)
  int warmup = 3;           // R observations before speculation may start
  int initial_no_check = 1; // first no-checking period, in rounds
  // When a speculation phase fails its S check, optionally wipe the
  // parameter's oscillation statistics. The paper's trajectories (Fig. 6)
  // show speculation re-starting shortly after a red-cross ending, which
  // requires the diagnosis state to survive demotion; resetting instead
  // forces a full re-warmup and collapses the steady-state sparsification
  // ratio under noisy (few-iteration) rounds. Kept as an ablation knob.
  bool reset_on_demote = false;
};

// Emitted when a parameter enters/leaves speculative mode (Fig. 6 markers).
struct SpecEvent {
  int round = 0;
  std::size_t param = 0;
  bool start = false;  // true: speculation begins; false: it ends
};

class FedSuManager : public compress::SyncProtocol {
 public:
  // `num_clients` is the total population (error accumulators are kept per
  // client id; participants vary per round).
  FedSuManager(int num_clients, FedSuOptions options = {});

  std::string name() const override { return "FedSU"; }

  void initialize(std::span<const float> global_state) override;

  void on_client_join(int client_id) override;

  // Crash/rejoin reconciliation (DESIGN.md §10): wipes the client's error
  // accumulator and stamps it so speculation phases that started while it
  // was away never read its partial sums — Eq. 3 sums from the phase start,
  // which an absent client did not observe. The rejoiner re-downloads
  // mask + periods + slopes (join_state_bytes()), so it also never applies
  // a speculative update from a stale slope.
  std::size_t on_client_rejoin(int client_id) override;

  // Accepts the optional RoundContext::dispatch_rounds version stamps from
  // buffered-async callers (DESIGN.md §11): a participant whose dispatch
  // version predates a parameter's speculation-phase start is fenced out of
  // that parameter's error accumulation — the async analogue of the rejoin
  // stamp, keyed by model version so stale feedback can't corrupt Eq. 3
  // corrections. An empty dispatch_rounds (every synchronous caller) keeps
  // the historical behaviour bit-for-bit.
  compress::SyncResult synchronize(
      const compress::RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override;

  std::size_t join_state_bytes() const override;
  std::size_t state_bytes() const override;
  std::vector<std::uint8_t> snapshot() const override;
  void restore(const std::vector<std::uint8_t>& bytes) override;
  double last_sparsification_ratio() const override { return last_ratio_; }
  // Demotions are fallback syncs: speculation ended and the parameter was
  // corrected with the aggregated error, rejoining regular updating.
  Telemetry last_round_telemetry() const override {
    return {predictable_fraction(), diag_.demotions};
  }

  // Per-round accounting exposed for diagnosis and the bench harness.
  struct RoundDiagnostics {
    std::size_t unpredictable = 0;  // scalars synchronized normally
    std::size_t expiring = 0;       // error scalars aggregated this round
    std::size_t promotions = 0;
    std::size_t demotions = 0;
  };

  // --- introspection (tests, Fig. 6 / Fig. 7 benches) ---
  const RoundDiagnostics& last_round_diagnostics() const { return diag_; }
  const std::vector<std::uint8_t>& predictable_mask() const {
    return predictable_;
  }
  double predictable_fraction() const;
  // Rounds each parameter spent in speculative mode so far.
  const std::vector<std::int32_t>& linear_rounds() const {
    return linear_rounds_;
  }
  int rounds_seen() const { return rounds_seen_; }
  const FedSuOptions& options() const { return options_; }
  // The sparse per-client error-feedback store (slab residency is what
  // bench_scale contrasts with the dense num_clients x params matrix).
  const SparseErrorStore& error_store() const { return client_err_; }

  void set_event_hook(std::function<void(const SpecEvent&)> hook) {
    event_hook_ = std::move(hook);
  }

 private:
  void emit(const SpecEvent& event) {
    if (event_hook_) event_hook_(event);
  }

  FedSuOptions options_;
  int num_clients_;
  std::vector<float> global_;
  OscillationTracker osc_{0};
  std::vector<std::uint8_t> predictable_;
  std::vector<float> slope_;
  std::vector<std::int32_t> no_check_period_;
  std::vector<std::int32_t> no_check_remaining_;
  // Accumulated local prediction error per (client, parameter). Sparse:
  // slabs materialize on first nonzero accumulation and are released on
  // rejoin, with reads of absent slabs yielding exact 0.0f — bit-identical
  // to the dense matrix this replaced (see core/error_store.h).
  SparseErrorStore client_err_;
  // Round (rounds_seen_ clock) when parameter j's current speculation phase
  // started; paired with rejoin_stamp_ to decide, per (client, parameter),
  // whether the client observed the whole phase (see pass 2).
  std::vector<std::int32_t> phase_start_round_;
  // First round from which client i's error accumulation is complete again
  // (0 = always was; bumped by on_client_rejoin).
  std::vector<std::int32_t> rejoin_stamp_;
  std::vector<std::int32_t> linear_rounds_;
  RoundDiagnostics diag_;
  int rounds_seen_ = 0;
  double last_ratio_ = 0.0;
  std::function<void(const SpecEvent&)> event_hook_;
};

}  // namespace fedsu::core
