// Second-order oscillation ratio (paper §IV-A, Eq. 2).
//
// For each scalar parameter the tracker ingests the per-round global update
// g_k = x_k - x_{k-1}, forms the second-order difference g'_k = g_k - g_{k-1}
// and maintains exponential moving averages of g'_k and |g'_k|:
//
//     R = |<g'>_theta| / <|g'|>_theta
//
// R near 0 means g' oscillates around zero, i.e. the first difference is
// stable and the parameter follows a linear trajectory. This is the
// regression-free diagnosis FedSU uses: O(1) time and O(1) state per
// parameter per round, no history window.
#pragma once

#include <cstdint>
#include <vector>

#include "io/serialize.h"

namespace fedsu::core {

struct OscillationOptions {
  double ema_decay = 0.9;  // theta in Eq. 2
  // Number of second-order observations required before R is trusted.
  int warmup = 3;
};

class OscillationTracker {
 public:
  OscillationTracker(std::size_t num_params, OscillationOptions options = {});

  std::size_t size() const { return ema_g2_.size(); }

  // Feeds the new first-order difference of parameter j and returns the
  // refreshed oscillation ratio R (1.0 while not yet computable).
  double observe(std::size_t j, float g_new);

  // Current ratio without observing (1.0 when not ready).
  double ratio(std::size_t j) const;

  // True once `warmup` second-order differences have been accumulated.
  bool ready(std::size_t j) const;

  // Forgets parameter j's history (used when a speculation phase ends and
  // the parameter's stale statistics no longer describe reality).
  void reset(std::size_t j);

  std::size_t state_bytes() const;

  // Checkpoint support.
  void serialize(io::BinaryWriter& writer) const;
  void deserialize(io::BinaryReader& reader);

 private:
  OscillationOptions options_;
  std::vector<float> ema_g2_;
  std::vector<float> ema_abs_g2_;
  std::vector<float> g_prev_;
  // observations_[j]: number of g' values seen; -1 encodes "no g_prev yet".
  std::vector<std::int32_t> observations_;
};

}  // namespace fedsu::core
