#include "core/error_store.h"

#include <cstring>
#include <stdexcept>

namespace fedsu::core {

void SparseErrorStore::reset(int num_clients, std::size_t params) {
  params_ = params;
  slabs_.clear();
  slabs_.resize(static_cast<std::size_t>(num_clients));
}

float* SparseErrorStore::ensure(int client) {
  auto& slot = slabs_[static_cast<std::size_t>(client)];
  if (!slot) {
    slot = std::make_unique<float[]>(params_);  // value-initialized: zeros
  }
  return slot.get();
}

void SparseErrorStore::clear_param(std::size_t j) {
  for (auto& slot : slabs_) {
    if (slot) slot[j] = 0.0f;
  }
}

std::size_t SparseErrorStore::allocated_slabs() const {
  std::size_t count = 0;
  for (const auto& slot : slabs_) count += slot ? 1 : 0;
  return count;
}

void SparseErrorStore::serialize(io::BinaryWriter& writer) const {
  writer.write_u64(allocated_slabs());
  for (std::size_t c = 0; c < slabs_.size(); ++c) {
    if (!slabs_[c]) continue;
    writer.write_u32(static_cast<std::uint32_t>(c));
    std::vector<float> slab(slabs_[c].get(), slabs_[c].get() + params_);
    writer.write_vector(slab);
  }
}

void SparseErrorStore::deserialize(io::BinaryReader& reader, int num_clients,
                                   std::size_t params) {
  reset(num_clients, params);
  const std::uint64_t count = reader.read_u64();
  if (count > static_cast<std::uint64_t>(num_clients)) {
    throw std::runtime_error("SparseErrorStore: slab count exceeds clients");
  }
  std::int64_t prev = -1;
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::uint32_t client = reader.read_u32();
    if (client >= static_cast<std::uint32_t>(num_clients) ||
        static_cast<std::int64_t>(client) <= prev) {
      throw std::runtime_error("SparseErrorStore: bad slab client id");
    }
    prev = static_cast<std::int64_t>(client);
    const std::vector<float> slab = reader.read_vector<float>();
    if (slab.size() != params) {
      throw std::runtime_error("SparseErrorStore: bad slab size");
    }
    float* dst = ensure(static_cast<int>(client));
    if (params > 0) std::memcpy(dst, slab.data(), params * sizeof(float));
  }
}

}  // namespace fedsu::core
