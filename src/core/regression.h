// Window-based least-squares linearity diagnosis — the baseline FedSU's
// §IV-A argues against. Kept for the diagnosis-quality ablation bench: it
// needs O(K) state per parameter and O(K) work per refresh, versus the
// O(1) / O(1) of the second-order oscillation ratio.
#pragma once

#include <cstddef>
#include <vector>

namespace fedsu::core {

struct RegressionOptions {
  int window = 8;             // K historical values retained
  double residual_threshold = 0.05;  // normalized RMS residual for "linear"
};

class RegressionDiagnoser {
 public:
  RegressionDiagnoser(std::size_t num_params, RegressionOptions options = {});

  // Appends the newest post-synchronization value of parameter j.
  void observe(std::size_t j, float value);

  // True once the window is full.
  bool ready(std::size_t j) const;

  // Least-squares fit over the window; returns the RMS residual normalized
  // by the fitted per-round slope magnitude (0 = perfectly linear). Returns
  // a large sentinel when not ready.
  double normalized_residual(std::size_t j) const;

  bool is_linear(std::size_t j) const;

  // Fitted slope of the window (per-round update estimate).
  double slope(std::size_t j) const;

  std::size_t state_bytes() const;

 private:
  RegressionOptions options_;
  std::size_t num_params_;
  // Ring buffers, window-per-parameter.
  std::vector<float> history_;      // [num_params * window]
  std::vector<int> count_;          // values seen per parameter
  std::vector<int> head_;           // ring cursor per parameter
};

}  // namespace fedsu::core
