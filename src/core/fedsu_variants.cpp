#include "core/fedsu_variants.h"

#include <stdexcept>

namespace fedsu::core {

namespace {
// Shared bookkeeping for a round under a fixed-period speculative scheme:
// synchronizes unmasked parameters, applies slopes to masked ones, and
// releases parameters whose period elapsed (without correction — both
// variants lack error feedback by construction).
struct FixedPeriodRound {
  std::size_t unpredictable_count = 0;
  std::vector<float> new_global;
};

FixedPeriodRound run_fixed_period_round(
    const std::vector<float>& global,
    const std::vector<std::span<const float>>& client_states,
    const std::vector<std::uint8_t>& predictable,
    const std::vector<float>& slope) {
  const std::size_t p = global.size();
  const std::size_t n = client_states.size();
  FixedPeriodRound out;
  out.new_global = global;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j < p; ++j) {
    if (predictable[j]) {
      out.new_global[j] = global[j] + slope[j];
      continue;
    }
    ++out.unpredictable_count;
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += client_states[i][j];
    out.new_global[j] = static_cast<float>(acc * inv_n);
  }
  return out;
}

compress::SyncResult make_result(FixedPeriodRound&& round, std::size_t p,
                                 std::size_t n, double& last_ratio) {
  compress::SyncResult result;
  result.new_global = std::move(round.new_global);
  const std::size_t bytes = round.unpredictable_count * sizeof(float);
  result.bytes_up.assign(n, bytes);
  result.bytes_down.assign(n, bytes);
  result.scalars_up = round.unpredictable_count * n;
  result.scalars_down = result.scalars_up;
  last_ratio = p == 0 ? 0.0
                      : 1.0 - static_cast<double>(round.unpredictable_count) /
                                  static_cast<double>(p);
  return result;
}

double fraction_of(const std::vector<std::uint8_t>& mask) {
  if (mask.empty()) return 0.0;
  std::size_t count = 0;
  for (auto m : mask) count += m;
  return static_cast<double>(count) / static_cast<double>(mask.size());
}
}  // namespace

FedSuV1::FedSuV1(FedSuV1Options options) : options_(options) {
  if (options_.fixed_period < 1) {
    throw std::invalid_argument("FedSuV1: fixed_period must be >= 1");
  }
}

void FedSuV1::initialize(std::span<const float> global_state) {
  global_.assign(global_state.begin(), global_state.end());
  OscillationOptions osc_options;
  osc_options.ema_decay = options_.ema_decay;
  osc_options.warmup = options_.warmup;
  osc_ = OscillationTracker(global_.size(), osc_options);
  predictable_.assign(global_.size(), 0);
  slope_.assign(global_.size(), 0.0f);
  remaining_.assign(global_.size(), 0);
}

compress::SyncResult FedSuV1::synchronize(
    const compress::RoundContext& ctx,
    const std::vector<std::span<const float>>& client_states) {
  if (client_states.size() != ctx.participants.size() || client_states.empty()) {
    throw std::invalid_argument("FedSuV1: participants/state mismatch");
  }
  const std::size_t p = global_.size();
  auto round =
      run_fixed_period_round(global_, client_states, predictable_, slope_);

  // Expire fixed periods (no feedback, no correction).
  for (std::size_t j = 0; j < p; ++j) {
    if (predictable_[j] && --remaining_[j] <= 0) {
      predictable_[j] = 0;
      osc_.reset(j);
    }
  }
  // Diagnose newly-synchronized parameters.
  for (std::size_t j = 0; j < p; ++j) {
    if (predictable_[j]) continue;
    const float g_new = round.new_global[j] - global_[j];
    const double r = osc_.observe(j, g_new);
    if (osc_.ready(j) && r < options_.t_r) {
      predictable_[j] = 1;
      slope_[j] = g_new;
      remaining_[j] = options_.fixed_period;
    }
  }
  global_ = round.new_global;
  return make_result(std::move(round), p, client_states.size(), last_ratio_);
}

std::size_t FedSuV1::state_bytes() const {
  return global_.size() * sizeof(float) + osc_.state_bytes() +
         predictable_.size() + slope_.size() * sizeof(float) +
         remaining_.size() * sizeof(std::int32_t);
}

double FedSuV1::predictable_fraction() const { return fraction_of(predictable_); }

FedSuV2::FedSuV2(FedSuV2Options options)
    : options_(options), rng_(options.seed) {
  if (options_.fixed_period < 1 || options_.enter_probability < 0.0 ||
      options_.enter_probability > 1.0) {
    throw std::invalid_argument("FedSuV2: bad options");
  }
}

void FedSuV2::initialize(std::span<const float> global_state) {
  global_.assign(global_state.begin(), global_state.end());
  prev_update_.assign(global_.size(), 0.0f);
  has_prev_update_ = false;
  predictable_.assign(global_.size(), 0);
  slope_.assign(global_.size(), 0.0f);
  remaining_.assign(global_.size(), 0);
}

compress::SyncResult FedSuV2::synchronize(
    const compress::RoundContext& ctx,
    const std::vector<std::span<const float>>& client_states) {
  if (client_states.size() != ctx.participants.size() || client_states.empty()) {
    throw std::invalid_argument("FedSuV2: participants/state mismatch");
  }
  const std::size_t p = global_.size();
  auto round =
      run_fixed_period_round(global_, client_states, predictable_, slope_);

  for (std::size_t j = 0; j < p; ++j) {
    if (predictable_[j] && --remaining_[j] <= 0) predictable_[j] = 0;
  }
  // Random speculation entry: no diagnosis at all. Requires one observed
  // update so a slope exists.
  for (std::size_t j = 0; j < p; ++j) {
    if (predictable_[j]) continue;
    const float g_new = round.new_global[j] - global_[j];
    if (has_prev_update_ && rng_.bernoulli(options_.enter_probability)) {
      predictable_[j] = 1;
      slope_[j] = g_new;
      remaining_[j] = options_.fixed_period;
    }
    prev_update_[j] = g_new;
  }
  has_prev_update_ = true;
  global_ = round.new_global;
  return make_result(std::move(round), p, client_states.size(), last_ratio_);
}

std::size_t FedSuV2::state_bytes() const {
  return global_.size() * sizeof(float) + prev_update_.size() * sizeof(float) +
         predictable_.size() + slope_.size() * sizeof(float) +
         remaining_.size() * sizeof(std::int32_t);
}

double FedSuV2::predictable_fraction() const { return fraction_of(predictable_); }

}  // namespace fedsu::core
