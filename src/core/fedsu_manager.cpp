#include "core/fedsu_manager.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "compress/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/reduce.h"
#include "util/thread_pool.h"

namespace fedsu::core {

FedSuManager::FedSuManager(int num_clients, FedSuOptions options)
    : options_(options), num_clients_(num_clients) {
  if (num_clients <= 0) {
    throw std::invalid_argument("FedSuManager: num_clients <= 0");
  }
  if (options_.t_r <= 0.0 || options_.t_s <= 0.0) {
    throw std::invalid_argument("FedSuManager: thresholds must be positive");
  }
  if (options_.initial_no_check < 1) {
    throw std::invalid_argument("FedSuManager: initial_no_check must be >= 1");
  }
}

void FedSuManager::initialize(std::span<const float> global_state) {
  global_.assign(global_state.begin(), global_state.end());
  const std::size_t p = global_.size();
  OscillationOptions osc_options;
  osc_options.ema_decay = options_.ema_decay;
  osc_options.warmup = options_.warmup;
  osc_ = OscillationTracker(p, osc_options);
  predictable_.assign(p, 0);
  slope_.assign(p, 0.0f);
  no_check_period_.assign(p, 0);
  no_check_remaining_.assign(p, 0);
  client_err_.reset(num_clients_, p);
  phase_start_round_.assign(p, 0);
  rejoin_stamp_.assign(static_cast<std::size_t>(num_clients_), 0);
  linear_rounds_.assign(p, 0);
  rounds_seen_ = 0;
  last_ratio_ = 0.0;
}

void FedSuManager::on_client_join(int client_id) {
  if (client_id != num_clients_) {
    throw std::invalid_argument("FedSuManager: client ids must be contiguous");
  }
  ++num_clients_;
  // The joiner downloads the masks/periods/slopes (join_state_bytes()) and
  // starts with a clean local error accumulator (no slab until it accrues).
  client_err_.add_client();
  rejoin_stamp_.push_back(0);
}

std::size_t FedSuManager::on_client_rejoin(int client_id) {
  if (client_id < 0 || client_id >= num_clients_) {
    throw std::out_of_range("FedSuManager: rejoining client id out of range");
  }
  // Rejoin-stamp reset reclaims the slab outright: the accumulator is
  // semantically all-zero, and reading an absent slab yields exact zeros.
  client_err_.release(client_id);
  rejoin_stamp_[static_cast<std::size_t>(client_id)] = rounds_seen_;
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::global().counter("core.fedsu.rejoins").add(1);
  }
  // The forced re-download is the same payload a fresh joiner pulls.
  return join_state_bytes();
}

compress::SyncResult FedSuManager::synchronize(
    const compress::RoundContext& ctx,
    const std::vector<std::span<const float>>& client_states) {
  OBS_SPAN("core.fedsu.sync");
  const std::size_t p = global_.size();
  const std::size_t n = client_states.size();
  if (n != ctx.participants.size() || n == 0) {
    throw std::invalid_argument("FedSuManager: participants/state mismatch");
  }
  for (const auto& s : client_states) {
    if (s.size() != p) {
      throw std::invalid_argument("FedSuManager: state size mismatch");
    }
  }
  for (int id : ctx.participants) {
    if (id < 0 || id >= num_clients_) {
      throw std::out_of_range("FedSuManager: participant id out of range");
    }
  }
  // Buffered-async callers stamp each participant with the model version it
  // was dispatched at (DESIGN.md §11). The synchronous path leaves the
  // vector empty, and every versioned code path below degenerates to the
  // historical behaviour bit-for-bit in that case.
  const bool versioned = !ctx.dispatch_rounds.empty();
  if (versioned && ctx.dispatch_rounds.size() != n) {
    throw std::invalid_argument("FedSuManager: dispatch_rounds size mismatch");
  }

  std::vector<float> new_global = global_;
  const double inv_n = 1.0 / static_cast<double>(n);
  diag_ = RoundDiagnostics{};
  std::size_t& unpredictable_count = diag_.unpredictable;
  std::size_t& expiring_count = diag_.expiring;

  // Client 0's wire upload: unpredictable values (pass 1) followed by
  // expiring error scalars (pass 2). The byte accounting below is
  // measure_dense over those counts; the payload itself is only
  // materialized under payload audit to cross-check the measured size.
  const bool audit = compress::wire::payload_audit();
  std::vector<float> up_payload;

  // Pass 1: synchronize unpredictable parameters; speculatively update the
  // predictable ones and accumulate prediction errors. The aggregation and
  // the error scatter are chunked over the global pool with fixed shapes
  // (util/reduce.h block tree; one scatter task per participant), so the
  // bits are identical for every --threads value (§5b).
  util::ThreadPool* pool = &util::ThreadPool::global();
  std::vector<std::size_t> expiring;  // ascending j, filled as periods lapse
  {
  OBS_SPAN("core.fedsu.speculate");
  // Positional sums of every column in the fixed block shape. For cohorts
  // up to util::kReduceClientBlock this is the historical per-column serial
  // chain bit-for-bit; beyond it the deterministic two-level tree applies
  // (documented §5b extension). Predictable columns are summed too — the
  // row-major traversal vectorizes, and it keeps the reduction shape a
  // function of (n, p) alone.
  std::vector<double> column_sums(p, 0.0);
  util::column_sums(client_states, column_sums, pool);
  for (std::size_t j = 0; j < p; ++j) {
    if (!predictable_[j]) {
      ++unpredictable_count;
      if (audit) up_payload.push_back(client_states[0][j]);
      new_global[j] = static_cast<float>(column_sums[j] * inv_n);
      continue;
    }
    // Speculative update: persist the profiled per-round slope.
    new_global[j] = global_[j] + slope_[j];
    ++linear_rounds_[j];
    if (--no_check_remaining_[j] <= 0) {
      ++expiring_count;
      expiring.push_back(j);
    }
  }
  // Each participating client logs its local prediction error
  // e = (local update) - slope = x_local - x_spec, where x_spec is the
  // speculative new_global written above. A stale participant whose model
  // version predates this parameter's speculation phase never observed the
  // phase's trajectory, so its error term is meaningless for Eq. 3 — the
  // version fence keeps it out of the accumulator, the same invariant the
  // rejoin stamps enforce for crash churn, keyed by dispatch version
  // instead of rejoin round. Participants are distinct clients, so each
  // scatter task owns its slab exclusively; a slab materializes on the
  // first nonzero delta (absent == exact zeros, core/error_store.h).
  if (unpredictable_count < p) {  // at least one predictable parameter
    auto scatter = [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        const int client = ctx.participants[i];
        const std::span<const float>& state = client_states[i];
        float* slab = client_err_.slab(client);
        for (std::size_t j = 0; j < p; ++j) {
          if (!predictable_[j]) continue;
          if (versioned && ctx.dispatch_rounds[i] < phase_start_round_[j]) {
            continue;
          }
          const float delta = state[j] - new_global[j];
          if (slab == nullptr) {
            if (delta == 0.0f) continue;  // dense would add +/-0 to 0: 0
            slab = client_err_.ensure(client);
          }
          slab[j] += delta;
        }
      }
    };
    if (pool->worth_parallelizing() && n > 1) {
      pool->parallel_for(0, n, scatter);
    } else {
      scatter(0, n);
    }
  }
  }  // OBS_SPAN core.fedsu.speculate

  // Pass 2: error feedback for parameters whose no-checking period expired.
  // Stage 2a computes every expiring parameter's aggregate concurrently
  // (disjoint outputs per expiring index); stage 2b applies the verdicts
  // serially in ascending parameter order, so payload layout, event order
  // and diagnostics are exactly the historical ones.
  {
  OBS_SPAN("core.fedsu.feedback");
  // Stage 2a: filtered sums. Aggregate only accumulators that cover the
  // whole speculation phase: a client that rejoined after the phase started
  // (rejoin_stamp_ > phase_start_round_) missed earlier error terms, and
  // Eq. 3 sums from the phase start. Without churn every participant is
  // valid and the mean is bit-identical to the unfiltered one. The filtered
  // column is folded with the same fixed block shape as every other
  // aggregation (util::blocked_sum), keeping the centralized and
  // distributed decompositions bit-identical at any cohort size.
  std::vector<double> err_sums(expiring.size(), 0.0);
  std::vector<std::size_t> err_valid(expiring.size(), 0);
  if (!expiring.empty()) {
    auto reduce_errors = [&](std::size_t k0, std::size_t k1) {
      std::vector<float> column;
      column.reserve(n);
      for (std::size_t k = k0; k < k1; ++k) {
        const std::size_t j = expiring[k];
        column.clear();
        for (std::size_t i = 0; i < n; ++i) {
          const auto id = static_cast<std::size_t>(ctx.participants[i]);
          if (rejoin_stamp_[id] > phase_start_round_[j]) continue;
          column.push_back(client_err_.value(ctx.participants[i], j));
        }
        err_sums[k] = util::blocked_sum(column);
        err_valid[k] = column.size();
      }
    };
    if (pool->worth_parallelizing() && expiring.size() > 1) {
      pool->parallel_for(0, expiring.size(), reduce_errors);
    } else {
      reduce_errors(0, expiring.size());
    }
  }
  // Stage 2b: verdicts, in ascending parameter order.
  for (std::size_t k = 0; k < expiring.size(); ++k) {
    const std::size_t j = expiring[k];
    // The client uploads its accumulated local error for this parameter.
    if (audit) up_payload.push_back(client_err_.value(ctx.participants[0], j));
    if (err_valid[k] == 0) {
      // Every participant's view of this phase is partial (all rejoined
      // mid-phase): the check cannot be evaluated. Re-arm for next round
      // without extending the period.
      no_check_remaining_[j] = 1;
      continue;
    }
    // The aggregate crosses the wire as float32 (matching the distributed
    // decomposition in core/distributed.h bit-for-bit).
    const float mean_err = static_cast<float>(
        err_sums[k] * (1.0 / static_cast<double>(err_valid[k])));
    const double denom = std::fabs(static_cast<double>(slope_[j])) + 1e-8;
    const double s = std::fabs(static_cast<double>(mean_err)) / denom;
    if (s < options_.t_s) {
      // Linear pattern persists: lengthen the no-checking period by one
      // round (paper §IV-C) and keep speculating. Errors keep accumulating
      // since Eq. 3 sums from the start of the speculation phase.
      no_check_period_[j] += 1;
      no_check_remaining_[j] = no_check_period_[j];
    } else {
      // Pattern broke: correct the value with the aggregated error so the
      // trajectory rejoins the true one, return to regular updating and
      // restart linearity diagnosis from scratch.
      predictable_[j] = 0;
      no_check_period_[j] = 0;
      no_check_remaining_[j] = 0;
      new_global[j] = static_cast<float>(new_global[j] + mean_err);
      client_err_.clear_param(j);
      if (options_.reset_on_demote) osc_.reset(j);
      ++diag_.demotions;
      emit(SpecEvent{ctx.round, j, /*start=*/false});
    }
  }
  }  // OBS_SPAN core.fedsu.feedback

  // Pass 3: refresh linearity diagnosis for parameters synchronized
  // normally this round, possibly promoting them into speculative mode.
  {
  OBS_SPAN("core.fedsu.diagnosis");
  obs::Histogram* osc_hist = nullptr;
  if (obs::metrics_enabled()) {
    obs::HistogramOptions osc_opts;
    osc_opts.scale = obs::HistogramOptions::Scale::kLog;
    osc_opts.lo = 1e-4;
    osc_opts.hi = 10.0;
    osc_opts.buckets = 20;
    osc_hist = &obs::MetricsRegistry::global().histogram(
        "core.fedsu.oscillation_ratio", osc_opts);
  }
  for (std::size_t j = 0; j < p; ++j) {
    if (predictable_[j]) continue;
    const float g_new = new_global[j] - global_[j];
    const double r = osc_.observe(j, g_new);
    if (!osc_.ready(j)) continue;
    if (osc_hist) osc_hist->record(r);
    if (r < options_.t_r) {
      predictable_[j] = 1;
      slope_[j] = g_new;  // "use the update of the last round" (§IV-B)
      no_check_period_[j] = options_.initial_no_check;
      no_check_remaining_[j] = options_.initial_no_check;
      phase_start_round_[j] = rounds_seen_;
      client_err_.clear_param(j);
      ++diag_.promotions;
      emit(SpecEvent{ctx.round, j, /*start=*/true});
    }
  }
  }  // OBS_SPAN core.fedsu.diagnosis

  global_ = new_global;
  ++rounds_seen_;

  compress::SyncResult result;
  result.new_global = std::move(new_global);
  // Wire accounting: unpredictable values travel both ways; expiring
  // parameters add one error scalar per direction (upload local error,
  // download the aggregated verdict/correction). Masks and periods are
  // derived locally on every client and cost nothing (§V).
  const std::size_t per_client_scalars = unpredictable_count + expiring_count;
  // One f32 per unpredictable value plus one per expiring error scalar,
  // sized without encoding (DESIGN.md §15).
  const std::size_t bytes = compress::wire::measure_dense(per_client_scalars);
  if (audit) {
    compress::wire::audit_bytes(
        "fedsu up", bytes, compress::wire::encode_dense(up_payload).size());
  }
  result.bytes_up.assign(n, bytes);
  result.bytes_down.assign(n, bytes);
  result.scalars_up = per_client_scalars * n;
  result.scalars_down = per_client_scalars * n;
  last_ratio_ = p == 0 ? 0.0
                       : 1.0 - static_cast<double>(per_client_scalars) /
                                   static_cast<double>(p);
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("core.fedsu.promotions").add(diag_.promotions);
    reg.counter("core.fedsu.demotions").add(diag_.demotions);
    reg.gauge("core.fedsu.predictable_fraction").set(predictable_fraction());
    compress::wire::record_round_bytes("fedsu", bytes * n, bytes * n);
  }
  return result;
}

std::size_t FedSuManager::join_state_bytes() const {
  // Mask (1 bit/param, sent packed) + no-checking periods + slopes.
  return predictable_.size() / 8 + 1 +
         no_check_period_.size() * sizeof(std::int32_t) +
         slope_.size() * sizeof(float);
}

std::size_t FedSuManager::state_bytes() const {
  // Extra resident memory FedSU adds on a device. Excluded: `global_` (the
  // client's own model copy, present with or without FedSU),
  // `linear_rounds_` (bench instrumentation only), and the churn
  // reconciliation stamps (server-side bookkeeping, not device-resident) —
  // keeping the Table II accounting identical with the fault layer off.
  std::size_t bytes = osc_.state_bytes() +
                      predictable_.size() * sizeof(std::uint8_t) +
                      slope_.size() * sizeof(float) +
                      no_check_period_.size() * sizeof(std::int32_t) +
                      no_check_remaining_.size() * sizeof(std::int32_t);
  // Per-client error accumulator: on a real device each client stores one
  // (dense — the device always observes its own errors; sparsity is a
  // server-side phenomenon driven by never-selected and churned clients).
  bytes += global_.size() * sizeof(float);
  return bytes;
}

namespace {
// 0xFED50002 added the churn-reconciliation bookkeeping (phase start
// rounds + rejoin stamps). 0xFED50003 switched the per-client error
// matrix to the sparse slab encoding (core/error_store.h): only allocated
// slabs are written, as (client id, slab) pairs. Older snapshots are not
// readable.
constexpr std::uint32_t kFedSuSnapshotMagic = 0xFED50003;
}  // namespace

std::vector<std::uint8_t> FedSuManager::snapshot() const {
  io::BinaryWriter writer;
  writer.write_magic(kFedSuSnapshotMagic);
  writer.write_i32(num_clients_);
  writer.write_i32(rounds_seen_);
  writer.write_f64(last_ratio_);
  writer.write_vector(global_);
  osc_.serialize(writer);
  writer.write_vector(predictable_);
  writer.write_vector(slope_);
  writer.write_vector(no_check_period_);
  writer.write_vector(no_check_remaining_);
  writer.write_vector(linear_rounds_);
  writer.write_vector(phase_start_round_);
  writer.write_vector(rejoin_stamp_);
  client_err_.serialize(writer);
  return writer.take();
}

void FedSuManager::restore(const std::vector<std::uint8_t>& bytes) {
  io::BinaryReader reader(bytes);
  reader.expect_magic(kFedSuSnapshotMagic, "FedSuManager snapshot");
  num_clients_ = reader.read_i32();
  rounds_seen_ = reader.read_i32();
  last_ratio_ = reader.read_f64();
  global_ = reader.read_vector<float>();
  osc_.deserialize(reader);
  predictable_ = reader.read_vector<std::uint8_t>();
  slope_ = reader.read_vector<float>();
  no_check_period_ = reader.read_vector<std::int32_t>();
  no_check_remaining_ = reader.read_vector<std::int32_t>();
  linear_rounds_ = reader.read_vector<std::int32_t>();
  phase_start_round_ = reader.read_vector<std::int32_t>();
  rejoin_stamp_ = reader.read_vector<std::int32_t>();
  const std::size_t p = global_.size();
  client_err_.deserialize(reader, num_clients_, p);
  if (predictable_.size() != p || slope_.size() != p ||
      no_check_period_.size() != p || no_check_remaining_.size() != p ||
      linear_rounds_.size() != p || osc_.size() != p ||
      phase_start_round_.size() != p ||
      rejoin_stamp_.size() != static_cast<std::size_t>(num_clients_)) {
    throw std::runtime_error("FedSuManager: inconsistent snapshot");
  }
}

double FedSuManager::predictable_fraction() const {
  if (predictable_.empty()) return 0.0;
  std::size_t count = 0;
  for (auto m : predictable_) count += m;
  return static_cast<double>(count) / static_cast<double>(predictable_.size());
}

}  // namespace fedsu::core
