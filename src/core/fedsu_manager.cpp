#include "core/fedsu_manager.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "compress/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedsu::core {

FedSuManager::FedSuManager(int num_clients, FedSuOptions options)
    : options_(options), num_clients_(num_clients) {
  if (num_clients <= 0) {
    throw std::invalid_argument("FedSuManager: num_clients <= 0");
  }
  if (options_.t_r <= 0.0 || options_.t_s <= 0.0) {
    throw std::invalid_argument("FedSuManager: thresholds must be positive");
  }
  if (options_.initial_no_check < 1) {
    throw std::invalid_argument("FedSuManager: initial_no_check must be >= 1");
  }
}

void FedSuManager::initialize(std::span<const float> global_state) {
  global_.assign(global_state.begin(), global_state.end());
  const std::size_t p = global_.size();
  OscillationOptions osc_options;
  osc_options.ema_decay = options_.ema_decay;
  osc_options.warmup = options_.warmup;
  osc_ = OscillationTracker(p, osc_options);
  predictable_.assign(p, 0);
  slope_.assign(p, 0.0f);
  no_check_period_.assign(p, 0);
  no_check_remaining_.assign(p, 0);
  client_err_.assign(static_cast<std::size_t>(num_clients_),
                     std::vector<float>(p, 0.0f));
  phase_start_round_.assign(p, 0);
  rejoin_stamp_.assign(static_cast<std::size_t>(num_clients_), 0);
  linear_rounds_.assign(p, 0);
  rounds_seen_ = 0;
  last_ratio_ = 0.0;
}

void FedSuManager::on_client_join(int client_id) {
  if (client_id != num_clients_) {
    throw std::invalid_argument("FedSuManager: client ids must be contiguous");
  }
  ++num_clients_;
  // The joiner downloads the masks/periods/slopes (join_state_bytes()) and
  // starts with a clean local error accumulator.
  client_err_.emplace_back(global_.size(), 0.0f);
  rejoin_stamp_.push_back(0);
}

std::size_t FedSuManager::on_client_rejoin(int client_id) {
  if (client_id < 0 || client_id >= num_clients_) {
    throw std::out_of_range("FedSuManager: rejoining client id out of range");
  }
  auto& err = client_err_[static_cast<std::size_t>(client_id)];
  std::fill(err.begin(), err.end(), 0.0f);
  rejoin_stamp_[static_cast<std::size_t>(client_id)] = rounds_seen_;
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::global().counter("core.fedsu.rejoins").add(1);
  }
  // The forced re-download is the same payload a fresh joiner pulls.
  return join_state_bytes();
}

compress::SyncResult FedSuManager::synchronize(
    const compress::RoundContext& ctx,
    const std::vector<std::span<const float>>& client_states) {
  OBS_SPAN("core.fedsu.sync");
  const std::size_t p = global_.size();
  const std::size_t n = client_states.size();
  if (n != ctx.participants.size() || n == 0) {
    throw std::invalid_argument("FedSuManager: participants/state mismatch");
  }
  for (const auto& s : client_states) {
    if (s.size() != p) {
      throw std::invalid_argument("FedSuManager: state size mismatch");
    }
  }
  for (int id : ctx.participants) {
    if (id < 0 || id >= num_clients_) {
      throw std::out_of_range("FedSuManager: participant id out of range");
    }
  }
  // Buffered-async callers stamp each participant with the model version it
  // was dispatched at (DESIGN.md §11). The synchronous path leaves the
  // vector empty, and every versioned code path below degenerates to the
  // historical behaviour bit-for-bit in that case.
  const bool versioned = !ctx.dispatch_rounds.empty();
  if (versioned && ctx.dispatch_rounds.size() != n) {
    throw std::invalid_argument("FedSuManager: dispatch_rounds size mismatch");
  }

  std::vector<float> new_global = global_;
  const double inv_n = 1.0 / static_cast<double>(n);
  diag_ = RoundDiagnostics{};
  std::size_t& unpredictable_count = diag_.unpredictable;
  std::size_t& expiring_count = diag_.expiring;

  // Client 0's wire upload, built as the passes run: unpredictable values
  // (pass 1) followed by expiring error scalars (pass 2). Its serialized
  // size is the per-client byte count reported below.
  std::vector<float> up_payload;

  // Pass 1: synchronize unpredictable parameters; speculatively update the
  // predictable ones and accumulate prediction errors.
  {
  OBS_SPAN("core.fedsu.speculate");
  for (std::size_t j = 0; j < p; ++j) {
    if (!predictable_[j]) {
      ++unpredictable_count;
      up_payload.push_back(client_states[0][j]);
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += client_states[i][j];
      new_global[j] = static_cast<float>(acc * inv_n);
      continue;
    }
    // Speculative update: persist the profiled per-round slope.
    const float x_spec = global_[j] + slope_[j];
    new_global[j] = x_spec;
    ++linear_rounds_[j];
    // Each participating client logs its local prediction error
    // e = (local update) - slope = x_local - x_spec. A stale participant
    // whose model version predates this parameter's speculation phase never
    // observed the phase's trajectory, so its error term is meaningless for
    // Eq. 3 — the version fence below keeps it out of the accumulator, the
    // same invariant the rejoin stamps enforce for crash churn, keyed by
    // dispatch version instead of rejoin round.
    for (std::size_t i = 0; i < n; ++i) {
      if (versioned && ctx.dispatch_rounds[i] < phase_start_round_[j]) {
        continue;
      }
      client_err_[static_cast<std::size_t>(
          ctx.participants[i])][j] += client_states[i][j] - x_spec;
    }
    if (--no_check_remaining_[j] <= 0) ++expiring_count;
  }
  }  // OBS_SPAN core.fedsu.speculate

  // Pass 2: error feedback for parameters whose no-checking period expired.
  {
  OBS_SPAN("core.fedsu.feedback");
  for (std::size_t j = 0; j < p; ++j) {
    if (!predictable_[j] || no_check_remaining_[j] > 0) continue;
    // The client uploads its accumulated local error for this parameter.
    up_payload.push_back(
        client_err_[static_cast<std::size_t>(ctx.participants[0])][j]);
    // Aggregate only accumulators that cover the whole speculation phase: a
    // client that rejoined after the phase started (rejoin_stamp_ >
    // phase_start_round_) missed earlier error terms, and Eq. 3 sums from
    // the phase start. Without churn every participant is valid and the
    // mean is bit-identical to the unfiltered one.
    double err_acc = 0.0;
    std::size_t valid = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<std::size_t>(ctx.participants[i]);
      if (rejoin_stamp_[id] > phase_start_round_[j]) continue;
      err_acc += client_err_[id][j];
      ++valid;
    }
    if (valid == 0) {
      // Every participant's view of this phase is partial (all rejoined
      // mid-phase): the check cannot be evaluated. Re-arm for next round
      // without extending the period.
      no_check_remaining_[j] = 1;
      continue;
    }
    // The aggregate crosses the wire as float32 (matching the distributed
    // decomposition in core/distributed.h bit-for-bit).
    const float mean_err =
        static_cast<float>(err_acc * (1.0 / static_cast<double>(valid)));
    const double denom = std::fabs(static_cast<double>(slope_[j])) + 1e-8;
    const double s = std::fabs(static_cast<double>(mean_err)) / denom;
    if (s < options_.t_s) {
      // Linear pattern persists: lengthen the no-checking period by one
      // round (paper §IV-C) and keep speculating. Errors keep accumulating
      // since Eq. 3 sums from the start of the speculation phase.
      no_check_period_[j] += 1;
      no_check_remaining_[j] = no_check_period_[j];
    } else {
      // Pattern broke: correct the value with the aggregated error so the
      // trajectory rejoins the true one, return to regular updating and
      // restart linearity diagnosis from scratch.
      predictable_[j] = 0;
      no_check_period_[j] = 0;
      no_check_remaining_[j] = 0;
      new_global[j] = static_cast<float>(new_global[j] + mean_err);
      for (auto& err : client_err_) err[j] = 0.0f;
      if (options_.reset_on_demote) osc_.reset(j);
      ++diag_.demotions;
      emit(SpecEvent{ctx.round, j, /*start=*/false});
    }
  }
  }  // OBS_SPAN core.fedsu.feedback

  // Pass 3: refresh linearity diagnosis for parameters synchronized
  // normally this round, possibly promoting them into speculative mode.
  {
  OBS_SPAN("core.fedsu.diagnosis");
  obs::Histogram* osc_hist = nullptr;
  if (obs::metrics_enabled()) {
    obs::HistogramOptions osc_opts;
    osc_opts.scale = obs::HistogramOptions::Scale::kLog;
    osc_opts.lo = 1e-4;
    osc_opts.hi = 10.0;
    osc_opts.buckets = 20;
    osc_hist = &obs::MetricsRegistry::global().histogram(
        "core.fedsu.oscillation_ratio", osc_opts);
  }
  for (std::size_t j = 0; j < p; ++j) {
    if (predictable_[j]) continue;
    const float g_new = new_global[j] - global_[j];
    const double r = osc_.observe(j, g_new);
    if (!osc_.ready(j)) continue;
    if (osc_hist) osc_hist->record(r);
    if (r < options_.t_r) {
      predictable_[j] = 1;
      slope_[j] = g_new;  // "use the update of the last round" (§IV-B)
      no_check_period_[j] = options_.initial_no_check;
      no_check_remaining_[j] = options_.initial_no_check;
      phase_start_round_[j] = rounds_seen_;
      for (auto& err : client_err_) err[j] = 0.0f;
      ++diag_.promotions;
      emit(SpecEvent{ctx.round, j, /*start=*/true});
    }
  }
  }  // OBS_SPAN core.fedsu.diagnosis

  global_ = new_global;
  ++rounds_seen_;

  compress::SyncResult result;
  result.new_global = std::move(new_global);
  // Wire accounting: unpredictable values travel both ways; expiring
  // parameters add one error scalar per direction (upload local error,
  // download the aggregated verdict/correction). Masks and periods are
  // derived locally on every client and cost nothing (§V).
  const std::size_t per_client_scalars = unpredictable_count + expiring_count;
  // Measured payload: client 0's upload serialized through io/serialize —
  // one f32 per unpredictable value plus one per expiring error scalar.
  const std::size_t bytes = compress::wire::encode_dense(up_payload).size();
  result.bytes_up.assign(n, bytes);
  result.bytes_down.assign(n, bytes);
  result.scalars_up = per_client_scalars * n;
  result.scalars_down = per_client_scalars * n;
  last_ratio_ = p == 0 ? 0.0
                       : 1.0 - static_cast<double>(per_client_scalars) /
                                   static_cast<double>(p);
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("core.fedsu.promotions").add(diag_.promotions);
    reg.counter("core.fedsu.demotions").add(diag_.demotions);
    reg.gauge("core.fedsu.predictable_fraction").set(predictable_fraction());
    compress::wire::record_round_bytes("fedsu", bytes * n, bytes * n);
  }
  return result;
}

std::size_t FedSuManager::join_state_bytes() const {
  // Mask (1 bit/param, sent packed) + no-checking periods + slopes.
  return predictable_.size() / 8 + 1 +
         no_check_period_.size() * sizeof(std::int32_t) +
         slope_.size() * sizeof(float);
}

std::size_t FedSuManager::state_bytes() const {
  // Extra resident memory FedSU adds on a device. Excluded: `global_` (the
  // client's own model copy, present with or without FedSU),
  // `linear_rounds_` (bench instrumentation only), and the churn
  // reconciliation stamps (server-side bookkeeping, not device-resident) —
  // keeping the Table II accounting identical with the fault layer off.
  std::size_t bytes = osc_.state_bytes() +
                      predictable_.size() * sizeof(std::uint8_t) +
                      slope_.size() * sizeof(float) +
                      no_check_period_.size() * sizeof(std::int32_t) +
                      no_check_remaining_.size() * sizeof(std::int32_t);
  // Per-client error accumulator: on a real device each client stores one.
  if (!client_err_.empty()) bytes += client_err_[0].size() * sizeof(float);
  return bytes;
}

namespace {
// 0xFED50002 added the churn-reconciliation bookkeeping (phase start
// rounds + rejoin stamps); older snapshots are not readable.
constexpr std::uint32_t kFedSuSnapshotMagic = 0xFED50002;
}  // namespace

std::vector<std::uint8_t> FedSuManager::snapshot() const {
  io::BinaryWriter writer;
  writer.write_magic(kFedSuSnapshotMagic);
  writer.write_i32(num_clients_);
  writer.write_i32(rounds_seen_);
  writer.write_f64(last_ratio_);
  writer.write_vector(global_);
  osc_.serialize(writer);
  writer.write_vector(predictable_);
  writer.write_vector(slope_);
  writer.write_vector(no_check_period_);
  writer.write_vector(no_check_remaining_);
  writer.write_vector(linear_rounds_);
  writer.write_vector(phase_start_round_);
  writer.write_vector(rejoin_stamp_);
  writer.write_u64(client_err_.size());
  for (const auto& err : client_err_) writer.write_vector(err);
  return writer.take();
}

void FedSuManager::restore(const std::vector<std::uint8_t>& bytes) {
  io::BinaryReader reader(bytes);
  reader.expect_magic(kFedSuSnapshotMagic, "FedSuManager snapshot");
  num_clients_ = reader.read_i32();
  rounds_seen_ = reader.read_i32();
  last_ratio_ = reader.read_f64();
  global_ = reader.read_vector<float>();
  osc_.deserialize(reader);
  predictable_ = reader.read_vector<std::uint8_t>();
  slope_ = reader.read_vector<float>();
  no_check_period_ = reader.read_vector<std::int32_t>();
  no_check_remaining_ = reader.read_vector<std::int32_t>();
  linear_rounds_ = reader.read_vector<std::int32_t>();
  phase_start_round_ = reader.read_vector<std::int32_t>();
  rejoin_stamp_ = reader.read_vector<std::int32_t>();
  const std::uint64_t clients = reader.read_u64();
  client_err_.clear();
  for (std::uint64_t i = 0; i < clients; ++i) {
    client_err_.push_back(reader.read_vector<float>());
  }
  const std::size_t p = global_.size();
  if (predictable_.size() != p || slope_.size() != p ||
      no_check_period_.size() != p || no_check_remaining_.size() != p ||
      linear_rounds_.size() != p || osc_.size() != p ||
      phase_start_round_.size() != p ||
      rejoin_stamp_.size() != static_cast<std::size_t>(num_clients_) ||
      client_err_.size() != static_cast<std::size_t>(num_clients_)) {
    throw std::runtime_error("FedSuManager: inconsistent snapshot");
  }
  for (const auto& err : client_err_) {
    if (err.size() != p) {
      throw std::runtime_error("FedSuManager: inconsistent snapshot (errors)");
    }
  }
}

double FedSuManager::predictable_fraction() const {
  if (predictable_.empty()) return 0.0;
  std::size_t count = 0;
  for (auto m : predictable_) count += m;
  return static_cast<double>(count) / static_cast<double>(predictable_.size());
}

}  // namespace fedsu::core
