#include "core/theory.h"

#include <stdexcept>

namespace fedsu::core {

TheoremBound theorem1_bound(const TheoryParams& params,
                            const nn::LrSchedule& schedule, int rounds) {
  if (rounds <= 0) throw std::invalid_argument("theorem1_bound: rounds <= 0");
  if (params.beta <= 0.0 || params.sigma2 < 0.0 || params.t_s < 0.0) {
    throw std::invalid_argument("theorem1_bound: bad parameters");
  }
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0;
  for (int k = 0; k < rounds; ++k) {
    const double lr = schedule.lr(k);
    sum += lr;
    sum2 += lr * lr;
    sum3 += lr * lr * lr;
  }
  if (sum <= 0.0) throw std::invalid_argument("theorem1_bound: zero lr sum");
  TheoremBound bound;
  bound.optimality_term = 4.0 * params.initial_gap / sum;
  bound.speculation_term = 4.0 * params.sigma2 * params.beta * params.beta *
                           params.t_s * params.t_s * sum3 / sum;
  bound.variance_term = 2.0 * params.sigma2 * params.beta * sum2 / sum;
  return bound;
}

double eq7_deviation_bound(double lr, double t_s, double sigma2) {
  if (lr < 0.0 || t_s < 0.0 || sigma2 < 0.0) {
    throw std::invalid_argument("eq7_deviation_bound: negative input");
  }
  return lr * lr * t_s * t_s * sigma2;
}

}  // namespace fedsu::core
