#include "net/network_model.h"

#include <cmath>
#include <stdexcept>

namespace fedsu::net {

NetworkModel::NetworkModel(int num_clients, const NetworkOptions& options)
    : options_(options), seed_(options.seed), rng_(options.seed) {
  if (num_clients <= 0) {
    throw std::invalid_argument("NetworkModel: num_clients <= 0");
  }
  add_clients(num_clients);
}

void NetworkModel::add_clients(int count) {
  if (count < 0) throw std::invalid_argument("NetworkModel: negative count");
  for (int i = 0; i < count; ++i) {
    speed_factor_.push_back(rng_.lognormal(0.0, options_.compute_sigma));
    bandwidth_factor_.push_back(rng_.lognormal(0.0, options_.bandwidth_sigma));
  }
}

double NetworkModel::compute_time(int client, int round, double flops) const {
  if (client < 0 || client >= num_clients()) {
    throw std::out_of_range("NetworkModel::compute_time: bad client");
  }
  // Deterministic per-(client, round) jitter.
  util::Rng jitter(seed_ ^ (0x9e3779b97f4a7c15ULL * (client + 1)) ^
                   (0xbf58476d1ce4e5b9ULL * (round + 1)));
  const double j = jitter.lognormal(0.0, options_.round_jitter_sigma);
  return flops / options_.device_flops *
         speed_factor_[static_cast<std::size_t>(client)] * j;
}

double NetworkModel::comm_time(int client, std::size_t bytes_up,
                               std::size_t bytes_down, int concurrent) const {
  if (client < 0 || client >= num_clients()) {
    throw std::out_of_range("NetworkModel::comm_time: bad client");
  }
  if (concurrent <= 0) concurrent = 1;
  const double client_bps = client_bandwidth_bps(client);
  const double server_bps = options_.server_bandwidth_bps / concurrent;
  const double up_bps = std::min(client_bps, server_bps);
  const double down_bps = std::min(client_bps, server_bps);
  double t = 0.0;
  if (bytes_up > 0) {
    t += options_.base_latency_s + 8.0 * static_cast<double>(bytes_up) / up_bps;
  }
  if (bytes_down > 0) {
    t += options_.base_latency_s +
         8.0 * static_cast<double>(bytes_down) / down_bps;
  }
  return t;
}

double NetworkModel::client_round_time(int client, int round, double flops,
                                       std::size_t bytes_up,
                                       std::size_t bytes_down,
                                       int concurrent) const {
  return compute_time(client, round, flops) +
         comm_time(client, bytes_up, bytes_down, concurrent);
}

double NetworkModel::client_bandwidth_bps(int client) const {
  return options_.client_bandwidth_bps *
         bandwidth_factor_[static_cast<std::size_t>(client)];
}

}  // namespace fedsu::net
