// Flow-level network simulation with max-min fair sharing.
//
// Models one bottleneck link (the FL server's access link) shared by many
// client flows, each additionally capped by its own access rate — the
// classic water-filling allocation, advanced event-by-event (a flow
// arriving or completing changes the allocation; rates are constant in
// between). This is the exact fluid model of TCP-fair sharing and upgrades
// the coarse "capacity / concurrent" approximation of NetworkModel: with
// staggered arrivals, early flows get more than 1/N of the bottleneck, so
// the earliest-70% participation cut (paper §VI-A) lands differently.
#pragma once

#include <cstddef>
#include <vector>

namespace fedsu::net {

struct Flow {
  double start_time_s = 0.0;  // when the flow becomes active
  double bytes = 0.0;         // payload to move
  double rate_cap_bps = 0.0;  // client access-link rate (bits/s), > 0
};

struct FlowResult {
  double finish_time_s = 0.0;  // absolute completion time
};

// Simulates the given flows over a shared bottleneck of
// `bottleneck_bps` (bits/s). Zero-byte flows finish at their start time.
// Throws std::invalid_argument for non-positive capacities or negative
// inputs.
std::vector<FlowResult> simulate_shared_link(const std::vector<Flow>& flows,
                                             double bottleneck_bps);

// Max-min fair ("water-filling") instantaneous allocation: divides
// `capacity` over `caps` so no flow exceeds its cap and unused share is
// redistributed. Exposed for tests. Returns per-flow rates.
std::vector<double> max_min_fair_rates(const std::vector<double>& caps,
                                       double capacity);

}  // namespace fedsu::net
