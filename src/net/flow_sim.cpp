#include "net/flow_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fedsu::net {

std::vector<double> max_min_fair_rates(const std::vector<double>& caps,
                                       double capacity) {
  if (capacity <= 0.0) {
    throw std::invalid_argument("max_min_fair_rates: capacity <= 0");
  }
  const std::size_t n = caps.size();
  std::vector<double> rates(n, 0.0);
  if (n == 0) return rates;
  for (double c : caps) {
    if (c <= 0.0) throw std::invalid_argument("max_min_fair_rates: cap <= 0");
  }
  // Water-filling: repeatedly grant the fair share; flows whose cap is
  // below it are frozen at their cap and their leftover redistributes.
  std::vector<std::size_t> active(n);
  for (std::size_t i = 0; i < n; ++i) active[i] = i;
  double remaining = capacity;
  while (!active.empty()) {
    const double fair = remaining / static_cast<double>(active.size());
    // Freeze all capped flows this pass.
    std::vector<std::size_t> still_active;
    bool froze_any = false;
    for (std::size_t i : active) {
      if (caps[i] <= fair) {
        rates[i] = caps[i];
        remaining -= caps[i];
        froze_any = true;
      } else {
        still_active.push_back(i);
      }
    }
    if (!froze_any) {
      for (std::size_t i : still_active) rates[i] = fair;
      break;
    }
    active = std::move(still_active);
  }
  return rates;
}

std::vector<FlowResult> simulate_shared_link(const std::vector<Flow>& flows,
                                             double bottleneck_bps) {
  if (bottleneck_bps <= 0.0) {
    throw std::invalid_argument("simulate_shared_link: bottleneck <= 0");
  }
  const std::size_t n = flows.size();
  std::vector<FlowResult> results(n);
  std::vector<double> bits_left(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (flows[i].bytes < 0.0 || flows[i].rate_cap_bps <= 0.0 ||
        flows[i].start_time_s < 0.0) {
      throw std::invalid_argument("simulate_shared_link: bad flow");
    }
    bits_left[i] = flows[i].bytes * 8.0;
    results[i].finish_time_s = flows[i].start_time_s;  // zero-byte default
  }

  // Event loop: between events the active set and its rates are constant.
  double now = 0.0;
  std::vector<bool> started(n, false), finished(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (bits_left[i] == 0.0) finished[i] = true;
  }
  auto all_done = [&]() {
    for (std::size_t i = 0; i < n; ++i) {
      if (!finished[i]) return false;
    }
    return true;
  };

  while (!all_done()) {
    // Active flows: started and unfinished.
    std::vector<std::size_t> active;
    double next_arrival = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (finished[i]) continue;
      if (flows[i].start_time_s <= now) {
        started[i] = true;
        active.push_back(i);
      } else {
        next_arrival = std::min(next_arrival, flows[i].start_time_s);
      }
    }
    if (active.empty()) {
      // Idle until the next arrival.
      now = next_arrival;
      continue;
    }
    std::vector<double> caps;
    caps.reserve(active.size());
    for (std::size_t i : active) caps.push_back(flows[i].rate_cap_bps);
    const std::vector<double> rates = max_min_fair_rates(caps, bottleneck_bps);

    // Time until the first active flow completes at current rates.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < active.size(); ++k) {
      if (rates[k] > 0.0) {
        dt = std::min(dt, bits_left[active[k]] / rates[k]);
      }
    }
    // ... or until a new flow arrives and reshapes the allocation.
    if (next_arrival - now < dt) dt = next_arrival - now;
    if (!(dt > 0.0) || !std::isfinite(dt)) {
      throw std::logic_error("simulate_shared_link: stalled simulation");
    }

    for (std::size_t k = 0; k < active.size(); ++k) {
      const std::size_t i = active[k];
      bits_left[i] -= rates[k] * dt;
      if (bits_left[i] <= 1e-9) {
        bits_left[i] = 0.0;
        finished[i] = true;
        results[i].finish_time_s = now + dt;
      }
    }
    now += dt;
  }
  return results;
}

}  // namespace fedsu::net
