// One FL round as a two-phase flow-level timeline:
//   1. each client computes locally, then uploads its payload; all uploads
//      share the server's ingress link (max-min fair);
//   2. when the last needed upload lands, the server aggregates (instant)
//      and broadcasts; all downloads share the egress link.
// Returns per-client completion times, giving an exact earliest-finishers
// ordering instead of the coarse capacity/N approximation.
#pragma once

#include <vector>

#include "net/flow_sim.h"

namespace fedsu::net {

struct RoundTimelineInput {
  // Per client, all vectors the same length:
  std::vector<double> compute_done_s;   // local training finish times
  std::vector<double> bytes_up;
  std::vector<double> bytes_down;
  std::vector<double> client_rate_bps;  // access-link rate per client
  double server_bps = 10e9;             // shared ingress/egress capacity
};

struct RoundTimelineResult {
  std::vector<double> upload_done_s;
  double broadcast_start_s = 0.0;  // when aggregation completes
  std::vector<double> round_done_s;  // per-client download completion
  double round_end_s = 0.0;          // max over clients
};

RoundTimelineResult simulate_round(const RoundTimelineInput& input);

}  // namespace fedsu::net
