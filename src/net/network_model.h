// Deterministic network/compute cost model (DESIGN.md §2).
//
// Reproduces the paper's emulated testbed: every client gets a throttled
// link (13.7 Mbps, the FedScale average the paper adopts) and a phone-class
// compute budget with lognormal heterogeneity; the server link is fat enough
// to never be the bottleneck. All times are simulated seconds — deterministic
// for a given seed, independent of the host machine.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fedsu::net {

struct NetworkOptions {
  double client_bandwidth_bps = 13.7e6;  // up and down, per client
  double server_bandwidth_bps = 10e9;
  double base_latency_s = 0.05;          // per direction RTT share
  double device_flops = 3.0e8;           // effective phone-class throughput
  double compute_sigma = 0.25;           // lognormal sigma of per-client speed
  double bandwidth_sigma = 0.15;         // lognormal sigma of per-client link
  double round_jitter_sigma = 0.10;      // fresh per-round multiplicative noise
  std::uint64_t seed = 23;
};

class NetworkModel {
 public:
  NetworkModel(int num_clients, const NetworkOptions& options);

  int num_clients() const { return static_cast<int>(speed_factor_.size()); }

  // Seconds client `i` needs to run `flops` of local training in round `r`
  // (jitter varies per round, deterministic in (seed, i, r)).
  double compute_time(int client, int round, double flops) const;

  // Seconds to push `bytes_up` and pull `bytes_down` over client i's link.
  // The server link is shared: `concurrent` clients divide it.
  double comm_time(int client, std::size_t bytes_up, std::size_t bytes_down,
                   int concurrent) const;

  // One direction of comm_time (comm_time == upload_time + download_time,
  // exactly). The fault layer needs the split so each upload retry can be
  // charged individually and straggler bandwidth multipliers can scale
  // transfers without touching compute (DESIGN.md §10).
  double upload_time(int client, std::size_t bytes, int concurrent) const {
    return comm_time(client, bytes, 0, concurrent);
  }
  double download_time(int client, std::size_t bytes, int concurrent) const {
    return comm_time(client, 0, bytes, concurrent);
  }

  // Total round finish time for one client.
  double client_round_time(int client, int round, double flops,
                           std::size_t bytes_up, std::size_t bytes_down,
                           int concurrent) const;

  double client_bandwidth_bps(int client) const;

  // Extends the population (client joins, paper §V). New clients draw their
  // factors from the same deterministic stream.
  void add_clients(int count);

 private:
  NetworkOptions options_;
  std::vector<double> speed_factor_;      // >1 => slower device
  std::vector<double> bandwidth_factor_;  // multiplies the base link rate
  std::uint64_t seed_;
  util::Rng rng_{0};
};

}  // namespace fedsu::net
