#include "net/async_queue.h"

#include <stdexcept>

#include "obs/trace.h"

namespace fedsu::net {

std::uint64_t arrival_tiebreak(std::uint64_t seed, int client, int version) {
  // splitmix64-style finalizer over the three keys; any bijective mixer
  // works, it only has to be stable and seed-dependent.
  std::uint64_t x = seed ^
                    (0x9e3779b97f4a7c15ULL *
                     (static_cast<std::uint64_t>(client) + 1)) ^
                    (0xbf58476d1ce4e5b9ULL *
                     (static_cast<std::uint64_t>(version) + 1));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

AsyncUplink::AsyncUplink(double server_bps) : server_bps_(server_bps) {
  if (server_bps <= 0.0) {
    throw std::invalid_argument("AsyncUplink: server_bps <= 0");
  }
}

std::size_t AsyncUplink::add(double start_s, double bytes,
                             double rate_cap_bps) {
  Flow flow;
  flow.start_time_s = start_s;
  flow.bytes = bytes;
  flow.rate_cap_bps = rate_cap_bps;
  flows_.push_back(flow);
  dirty_ = true;
  return flows_.size() - 1;
}

double AsyncUplink::completion_s(std::size_t flow) {
  if (flow >= flows_.size()) {
    throw std::out_of_range("AsyncUplink: bad flow id");
  }
  if (dirty_) {
    OBS_SPAN("net.async_uplink");
    const auto results = simulate_shared_link(flows_, server_bps_);
    done_.resize(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      done_[i] = results[i].finish_time_s;
    }
    dirty_ = false;
  }
  return done_[flow];
}

}  // namespace fedsu::net
