// Per-upload completion ordering for the buffered-async round engine
// (DESIGN.md §11).
//
// The synchronous path simulates one round's uploads in isolation
// (net/round_timeline); under buffered-async execution uploads from many
// dispatch cycles overlap on the server's ingress link, so completion times
// depend on the *whole* contention history. AsyncUplink keeps every upload
// flow ever dispatched (absolute start times) and re-runs the max-min fair
// water-filling simulation over the full history whenever a new cycle needs
// arrival times.
//
// Why re-simulating is safe (and deterministic): flows are only ever
// appended, and every new flow starts at or after the aggregation instant
// that triggered its dispatch. simulate_shared_link integrates epochs in
// absolute time and visits flows in index order, so the completion of any
// flow that finished before the earliest newly-added start time is bitwise
// unchanged by the re-run — consumed arrivals never move — while flows still
// in progress legitimately pick up the new contention. Cost is O(F^2) over a
// run's flow count, which is negligible next to local training at bench
// scales.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/flow_sim.h"

namespace fedsu::net {

// Seed-keyed tiebreak for simultaneous arrivals: hashes (client, version)
// through the run seed so equal-time arrivals are consumed in an order that
// is reproducible for any thread count yet not systematically biased toward
// low client ids (the id itself is only the final tiebreak; §5b).
std::uint64_t arrival_tiebreak(std::uint64_t seed, int client, int version);

class AsyncUplink {
 public:
  // `server_bps` is the shared ingress capacity every upload contends for.
  explicit AsyncUplink(double server_bps);

  // Registers an upload flow; returns its stable id. `start_s` is absolute
  // simulated time (compute finish + any retry backoff).
  std::size_t add(double start_s, double bytes, double rate_cap_bps);

  // Completion time of `flow` under the full contention history, re-running
  // the water-filling simulation if any flow was added since the last call.
  double completion_s(std::size_t flow);

  std::size_t size() const { return flows_.size(); }

  // Checkpoint support: the flow history IS the uplink's state — `done_`
  // and `dirty_` are a cache recomputed by the next completion_s() call.
  // Restoring the same flows therefore reproduces bitwise-identical
  // completion times (simulate_shared_link is deterministic in its input).
  const std::vector<Flow>& flows() const { return flows_; }
  void restore_flows(std::vector<Flow> flows) {
    flows_ = std::move(flows);
    done_.clear();
    dirty_ = !flows_.empty();
  }

 private:
  double server_bps_;
  std::vector<Flow> flows_;
  std::vector<double> done_;
  bool dirty_ = false;
};

}  // namespace fedsu::net
