#include "net/round_timeline.h"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.h"

namespace fedsu::net {

RoundTimelineResult simulate_round(const RoundTimelineInput& input) {
  OBS_SPAN("net.flow_sim");
  const std::size_t n = input.compute_done_s.size();
  if (input.bytes_up.size() != n || input.bytes_down.size() != n ||
      input.client_rate_bps.size() != n) {
    throw std::invalid_argument("simulate_round: vector length mismatch");
  }
  if (n == 0) throw std::invalid_argument("simulate_round: no clients");

  RoundTimelineResult result;

  // Phase 1: uploads start as each client's compute finishes.
  std::vector<Flow> uploads(n);
  for (std::size_t i = 0; i < n; ++i) {
    uploads[i].start_time_s = input.compute_done_s[i];
    uploads[i].bytes = input.bytes_up[i];
    uploads[i].rate_cap_bps = input.client_rate_bps[i];
  }
  const auto upload_results = simulate_shared_link(uploads, input.server_bps);
  result.upload_done_s.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.upload_done_s[i] = upload_results[i].finish_time_s;
  }

  // Aggregation waits for every participating upload (the simulator passes
  // only the clients whose updates the server uses).
  result.broadcast_start_s =
      *std::max_element(result.upload_done_s.begin(), result.upload_done_s.end());

  // Phase 2: broadcast to everyone simultaneously.
  std::vector<Flow> downloads(n);
  for (std::size_t i = 0; i < n; ++i) {
    downloads[i].start_time_s = result.broadcast_start_s;
    downloads[i].bytes = input.bytes_down[i];
    downloads[i].rate_cap_bps = input.client_rate_bps[i];
  }
  const auto download_results =
      simulate_shared_link(downloads, input.server_bps);
  result.round_done_s.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.round_done_s[i] = download_results[i].finish_time_s;
  }
  result.round_end_s =
      *std::max_element(result.round_done_s.begin(), result.round_done_s.end());
  return result;
}

}  // namespace fedsu::net
