#include "util/reduce.h"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.h"

namespace fedsu::util {

namespace {

// Columns per parallel_for grain in the combine stage; coarse enough that
// a chunk amortizes the dispatch, fine enough that wide models spread.
constexpr std::size_t kColumnGrain = 4096;

// Accumulates rows [row_begin, row_end) row-major into panel (one double
// per column). The caller zeroed the panel.
void accumulate_rows(const std::vector<std::span<const float>>& rows,
                     std::size_t row_begin, std::size_t row_end,
                     std::span<double> panel) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const float* __restrict row = rows[i].data();
    double* __restrict acc = panel.data();
    const std::size_t p = panel.size();
    for (std::size_t j = 0; j < p; ++j) acc[j] += row[j];
  }
}

}  // namespace

void column_sums(const std::vector<std::span<const float>>& rows,
                 std::span<double> sums, ThreadPool* pool) {
  const std::size_t n = rows.size();
  const std::size_t p = sums.size();
  std::fill(sums.begin(), sums.end(), 0.0);
  if (n == 0 || p == 0) return;
  for (const auto& row : rows) {
    if (row.size() != p) {
      throw std::invalid_argument("column_sums: row size mismatch");
    }
  }
  const bool fan_out = pool != nullptr && pool->worth_parallelizing();
  const std::size_t blocks = (n + kReduceClientBlock - 1) / kReduceClientBlock;
  if (blocks == 1) {
    // Single block: the fold IS the serial chain. Columns have disjoint
    // accumulators, so chunking them keeps every chain intact.
    if (fan_out && p > kColumnGrain) {
      pool->parallel_for(
          0, p,
          [&](std::size_t j0, std::size_t j1) {
            for (std::size_t i = 0; i < n; ++i) {
              const float* __restrict row = rows[i].data();
              for (std::size_t j = j0; j < j1; ++j) sums[j] += row[j];
            }
          },
          kColumnGrain);
    } else {
      accumulate_rows(rows, 0, n, sums);
    }
    return;
  }

  // Two-level tree: per-block panels (parallel over blocks), then a
  // per-column combine in ascending block order (parallel over columns).
  std::vector<double> panels(blocks * p, 0.0);
  auto fill_blocks = [&](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      const std::size_t row_begin = b * kReduceClientBlock;
      const std::size_t row_end = std::min(n, row_begin + kReduceClientBlock);
      accumulate_rows(rows, row_begin, row_end,
                      std::span<double>(panels).subspan(b * p, p));
    }
  };
  auto combine = [&](std::size_t j0, std::size_t j1) {
    for (std::size_t j = j0; j < j1; ++j) {
      double acc = panels[j];
      for (std::size_t b = 1; b < blocks; ++b) acc += panels[b * p + j];
      sums[j] = acc;
    }
  };
  if (fan_out) {
    pool->parallel_for(0, blocks, fill_blocks);
    pool->parallel_for(0, p, combine, kColumnGrain);
  } else {
    fill_blocks(0, blocks);
    combine(0, p);
  }
}

void column_means(const std::vector<std::span<const float>>& rows,
                  std::span<float> out, ThreadPool* pool) {
  if (rows.empty()) {
    throw std::invalid_argument("column_means: no rows");
  }
  std::vector<double> sums(out.size(), 0.0);
  column_sums(rows, sums, pool);
  const double inv_n = 1.0 / static_cast<double>(rows.size());
  for (std::size_t j = 0; j < out.size(); ++j) {
    out[j] = static_cast<float>(sums[j] * inv_n);
  }
}

double blocked_sum(std::span<const float> values) {
  const std::size_t n = values.size();
  if (n <= kReduceClientBlock) {
    double acc = 0.0;
    for (float v : values) acc += v;
    return acc;
  }
  // Mirrors the column_sums combine exactly: the first block's panel seeds
  // the accumulator (no leading zero), later blocks add in ascending order.
  double total = 0.0;
  for (std::size_t b = 0; b * kReduceClientBlock < n; ++b) {
    const std::size_t begin = b * kReduceClientBlock;
    const std::size_t end = std::min(n, begin + kReduceClientBlock);
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += values[i];
    total = b == 0 ? acc : total + acc;
  }
  return total;
}

}  // namespace fedsu::util
