#include "util/scratch_arena.h"

#include <algorithm>
#include <new>

namespace fedsu::util {

namespace {
constexpr std::size_t kAlign = 64;
// First block is big enough that small-model training never grows twice.
constexpr std::size_t kMinBlockBytes = std::size_t{1} << 16;  // 64 KiB
}  // namespace

ScratchArena::~ScratchArena() {
  for (const Block& b : blocks_) {
    ::operator delete(b.data, std::align_val_t{kAlign});
  }
}

void* ScratchArena::bytes(std::size_t size) {
  std::size_t need = (size + (kAlign - 1)) & ~(kAlign - 1);
  if (need == 0) need = kAlign;
  // Skip forward to the first block with room (blocks past the cursor hold
  // only rewound — dead — data, so restarting them at offset 0 is safe).
  while (block_ < blocks_.size() &&
         need > blocks_[block_].capacity - offset_) {
    ++block_;
    offset_ = 0;
  }
  if (block_ >= blocks_.size()) grow(need);
  void* p = static_cast<char*>(blocks_[block_].data) + offset_;
  offset_ += need;
  return p;
}

void ScratchArena::grow(std::size_t size) {
  // Double total capacity each growth so the block count stays logarithmic
  // in peak demand and the cursor walk above stays cheap.
  const std::size_t capacity =
      std::max({size, kMinBlockBytes, 2 * capacity_bytes()});
  blocks_.push_back(
      {::operator new(capacity, std::align_val_t{kAlign}), capacity});
  block_ = blocks_.size() - 1;
  offset_ = 0;
}

std::size_t ScratchArena::capacity_bytes() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.capacity;
  return total;
}

ScratchArena& ScratchArena::local() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace fedsu::util
