// Minimal leveled logger used across the FedSU codebase.
//
// Design notes:
//  * Header-light: formatting is done with iostreams via a RAII line object,
//    so call sites read `LOG_INFO() << "round " << r;`.
//  * Thread-safe at line granularity (a single mutex guards the sink).
//  * The global level can be changed at runtime (e.g. from --verbose flags).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace fedsu::util {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// Returns the mutable global minimum level. Messages below it are dropped.
LogLevel& log_level();

const char* log_level_name(LogLevel level);

// One log line. Accumulates into a buffer and flushes (with a trailing
// newline) on destruction so interleaved threads never split a line.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace fedsu::util

#define FEDSU_LOG(level) ::fedsu::util::LogLine(level, __FILE__, __LINE__)
#define LOG_DEBUG() FEDSU_LOG(::fedsu::util::LogLevel::kDebug)
#define LOG_INFO() FEDSU_LOG(::fedsu::util::LogLevel::kInfo)
#define LOG_WARN() FEDSU_LOG(::fedsu::util::LogLevel::kWarn)
#define LOG_ERROR() FEDSU_LOG(::fedsu::util::LogLevel::kError)
