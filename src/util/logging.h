// Minimal leveled logger used across the FedSU codebase.
//
// Design notes:
//  * Header-light: formatting is done with iostreams via a RAII line object,
//    so call sites read `LOG_INFO() << "round " << r;`.
//  * Thread-safe at line granularity: each LogLine formats into its own
//    thread-private buffer, and the single fputs of the finished line runs
//    under the sink mutex, so interleaved threads can never tear a line.
//  * The global level can be changed at runtime (e.g. from --verbose flags);
//    it is an atomic, so flipping it while other threads log is race-free.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace fedsu::util {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// Global minimum level; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

const char* log_level_name(LogLevel level);

// One log line. Accumulates into a buffer and flushes (with a trailing
// newline) on destruction so interleaved threads never split a line.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace fedsu::util

#define FEDSU_LOG(level) ::fedsu::util::LogLine(level, __FILE__, __LINE__)
#define LOG_DEBUG() FEDSU_LOG(::fedsu::util::LogLevel::kDebug)
#define LOG_INFO() FEDSU_LOG(::fedsu::util::LogLevel::kInfo)
#define LOG_WARN() FEDSU_LOG(::fedsu::util::LogLevel::kWarn)
#define LOG_ERROR() FEDSU_LOG(::fedsu::util::LogLevel::kError)
