// Packed bitmask: the wire format a late-joining FedSU client downloads the
// predictability mask in (1 bit per parameter, paper §V).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fedsu::util {

class PackedBitset {
 public:
  PackedBitset() = default;
  explicit PackedBitset(std::size_t size);

  // Packs a byte-per-entry mask (non-zero => set).
  static PackedBitset pack(const std::vector<std::uint8_t>& mask);
  // Expands back to a byte-per-entry mask.
  std::vector<std::uint8_t> unpack() const;

  std::size_t size() const { return size_; }
  bool test(std::size_t i) const;
  void set(std::size_t i, bool value);
  std::size_t count() const;

  // Serialized wire size: 8-byte length header + packed words.
  std::size_t wire_bytes() const;
  std::vector<std::uint8_t> serialize() const;
  static PackedBitset deserialize(const std::vector<std::uint8_t>& bytes);

  bool operator==(const PackedBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fedsu::util
