#include "util/rng.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <numbers>

namespace fedsu::util {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::gamma(double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia-Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> Rng::dirichlet(double alpha, int k) {
  std::vector<double> out(static_cast<std::size_t>(k));
  double sum = 0.0;
  for (auto& v : out) {
    v = gamma(alpha);
    sum += v;
  }
  if (sum <= 0.0) {
    // Degenerate draw (can happen for tiny alpha): fall back to one-hot.
    const std::size_t hot = uniform_index(static_cast<std::uint64_t>(k));
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = (i == hot) ? 1.0 : 0.0;
    return out;
  }
  for (auto& v : out) v /= sum;
  return out;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::fork(std::uint64_t stream) const {
  SplitMix64 sm(seed_ ^ (0xa0761d6478bd642fULL * (stream + 1)));
  return Rng(sm.next());
}

std::array<std::uint64_t, Rng::kStateWords> Rng::state_words() const {
  return {s_[0], s_[1], s_[2], s_[3], seed_,
          has_cached_normal_ ? 1ULL : 0ULL,
          std::bit_cast<std::uint64_t>(cached_normal_)};
}

void Rng::restore_state_words(
    const std::array<std::uint64_t, kStateWords>& w) {
  s_[0] = w[0];
  s_[1] = w[1];
  s_[2] = w[2];
  s_[3] = w[3];
  seed_ = w[4];
  has_cached_normal_ = w[5] != 0;
  cached_normal_ = std::bit_cast<double>(w[6]);
}

}  // namespace fedsu::util
