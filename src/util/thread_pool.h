// Fixed-size worker pool with a chunked parallel_for.
//
// Design notes (DESIGN.md §"Determinism under parallelism"):
//  * Work is split into contiguous index chunks; each chunk runs the same
//    sequential loop body it would run single-threaded, so any computation
//    whose outputs are disjoint per index is bitwise identical for every
//    thread count (including 1).
//  * Calls issued from inside a worker run inline on that worker (nested
//    parallel_for never deadlocks and never oversubscribes).
//  * The first exception thrown by any chunk is rethrown on the caller once
//    all chunks have finished; the pool stays usable afterwards.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fedsu::util {

class ThreadPool {
 public:
  // num_threads <= 0 selects std::thread::hardware_concurrency() (min 1).
  // A pool of size 1 spawns no workers; everything runs on the caller.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  // Resolves the `0 = hardware concurrency` convention used by flags and
  // SimulationOptions.
  static int resolve_threads(int requested);

  // Runs body(chunk_begin, chunk_end) over a partition of [begin, end) into
  // chunks of at least `grain` indices; blocks until every chunk finished.
  // Empty or reversed ranges are no-ops.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t grain = 1);

  // Like parallel_for, but with at most size() chunks and the chunk index
  // (dense in [0, chunks)) passed as the third argument so callers can index
  // per-worker scratch state (e.g. model replicas).
  void parallel_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  // True when a parallel_for issued from this thread would actually fan out
  // (more than one worker and not already inside a worker of any pool).
  bool worth_parallelizing() const;

  // True on threads currently executing a pool task (any pool).
  static bool inside_worker();

  // Process-wide pool shared by the tensor kernels. Created on first use
  // with hardware concurrency unless set_global_threads() ran earlier.
  static ThreadPool& global();

  // Replaces the global pool (e.g. from a --threads flag). Must not be
  // called while a parallel_for on the global pool is in flight.
  static void set_global_threads(int num_threads);

 private:
  void worker_loop(int worker_index);
  void run_chunks(std::size_t begin, std::size_t end, std::size_t chunks,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)>& body);

  int size_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  bool stopping_ = false;
};

}  // namespace fedsu::util
