// Minimal command-line flag parser for bench/example binaries.
//
// Supports `--name value` and `--name=value`; unknown flags abort with a
// usage listing so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace fedsu::util {

class Flags {
 public:
  // Registration returns *this for chaining.
  Flags& add_int(const std::string& name, long long def, const std::string& help);
  Flags& add_double(const std::string& name, double def, const std::string& help);
  Flags& add_string(const std::string& name, const std::string& def,
                    const std::string& help);
  Flags& add_bool(const std::string& name, bool def, const std::string& help);

  // Parses argv. On `--help` prints usage and returns false (caller should
  // exit 0). Throws std::runtime_error on unknown flags or bad values.
  bool parse(int argc, char** argv);

  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  std::string usage(const std::string& program) const;

  // Every flag with its resolved value rendered as text, in registration
  // order — the config block a run manifest records so any run can be
  // replayed from its manifest alone.
  std::vector<std::pair<std::string, std::string>> resolved() const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Entry {
    Type type;
    std::string help;
    long long int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  const Entry& find(const std::string& name, Type type) const;

  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

}  // namespace fedsu::util
