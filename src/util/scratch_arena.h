// Per-thread, capacity-retaining bump allocator for kernel scratch memory.
//
// The training hot path (im2col columns, GEMM pack panels, per-sample
// gradient staging) needs short-lived buffers on every batch. Allocating
// them with new/std::vector costs a heap round-trip per call and, worse,
// makes throughput dependent on allocator state. A ScratchArena instead
// bumps a cursor through blocks it never returns to the heap: the first
// batch grows the arena to the workload's peak demand, and every batch
// after that is allocation-free (verified by test_gemm.cpp).
//
// Usage pattern:
//   ScratchArena& arena = ScratchArena::local();   // this thread's arena
//   ScratchArena::Frame frame(arena);              // marks the cursor
//   float* cols = arena.floats(fan_in * patch);
//   ...                                            // valid until frame pops
//   // ~Frame rewinds the cursor; capacity is retained for the next call.
//
// Frames nest (strict LIFO): a GEMM called while a conv backward holds a
// frame opens its own inner frame for pack buffers without clobbering the
// outer allocations. Pointers handed out stay stable for the lifetime of
// their frame — blocks are never moved or freed by a rewind.
//
// Thread safety: none by design. Each thread uses its own arena via
// local(); pool workers are long-lived (util::ThreadPool), so worker
// arenas also reach a steady state after the first parallel batch.
#pragma once

#include <cstddef>
#include <vector>

namespace fedsu::util {

class ScratchArena {
 public:
  ScratchArena() = default;
  ~ScratchArena();

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // RAII cursor mark; destruction rewinds the arena to where it was when
  // the frame opened, making that space reusable without freeing it.
  class Frame {
   public:
    explicit Frame(ScratchArena& arena)
        : arena_(arena), block_(arena.block_), offset_(arena.offset_) {}
    ~Frame() {
      arena_.block_ = block_;
      arena_.offset_ = offset_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    ScratchArena& arena_;
    std::size_t block_;
    std::size_t offset_;
  };

  // Returns a 64-byte-aligned buffer of `count` floats, uninitialized,
  // valid until the innermost enclosing Frame pops. count == 0 returns a
  // valid (dereferenceable-for-zero-elements) pointer.
  float* floats(std::size_t count) {
    return static_cast<float*>(bytes(count * sizeof(float)));
  }

  // Raw 64-byte-aligned variant of floats().
  void* bytes(std::size_t size);

  // Number of heap allocations ever made (== block count; blocks are never
  // freed before destruction). Stable across batches once warmed up — the
  // zero-allocation tests key off this.
  std::size_t grow_count() const { return blocks_.size(); }

  // Total bytes owned across all blocks.
  std::size_t capacity_bytes() const;

  // The calling thread's arena (thread_local; constructed on first use).
  static ScratchArena& local();

 private:
  struct Block {
    void* data;
    std::size_t capacity;
  };

  // Appends a block able to hold `size` bytes and makes it current.
  void grow(std::size_t size);

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   // index of the block the cursor is in
  std::size_t offset_ = 0;  // bytes used in blocks_[block_]
};

}  // namespace fedsu::util
