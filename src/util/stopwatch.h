// Wall-clock stopwatch for overhead measurements (Table II).
//
// Built on std::chrono::steady_clock: readings are monotonic and immune to
// wall-clock adjustments (NTP slews, DST), so elapsed times can never go
// negative or jump.
#pragma once

#include <chrono>

namespace fedsu::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()), lap_(start_) {}

  void reset() {
    start_ = Clock::now();
    lap_ = start_;
  }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

  // Seconds since the last lap() (or since construction/reset for the first
  // call), advancing the lap marker. Splits one stopwatch into consecutive
  // phase durations that sum to elapsed_seconds().
  double lap() {
    const Clock::time_point now = Clock::now();
    const double s = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace fedsu::util
