#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <string>

#include "obs/trace.h"

namespace fedsu::util {

namespace {
// Set while a thread is executing a pool task; nested parallel_for from a
// worker runs inline instead of re-entering the queue (no deadlock, no
// oversubscription).
thread_local bool tl_inside_worker = false;
}  // namespace

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads) : size_(resolve_threads(num_threads)) {
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  // size_ - 1 workers: the caller of parallel_for executes chunks too, so a
  // pool of size N uses exactly N threads while a region is running.
  for (int i = 0; i + 1 < size_; ++i) {
    // Worker 0 is the caller thread of parallel_for; spawned workers are 1..N.
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop(int worker_index) {
  obs::Tracer::global().set_current_thread_name(
      "util.pool.worker-" + std::to_string(worker_index));
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    tl_inside_worker = true;
    job();
    tl_inside_worker = false;
  }
}

bool ThreadPool::inside_worker() { return tl_inside_worker; }

bool ThreadPool::worth_parallelizing() const {
  return size_ > 1 && !tl_inside_worker;
}

void ThreadPool::run_chunks(
    std::size_t begin, std::size_t end, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  const std::size_t n = end - begin;
  if (chunks <= 1 || !worth_parallelizing()) {
    body(begin, end, 0);
    return;
  }

  // Shared completion state for this region. Chunk boundaries depend only on
  // (n, chunks), never on scheduling, so the partition is deterministic.
  struct Region {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto region = std::make_shared<Region>();
  region->remaining = chunks;

  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;  // first `extra` chunks get +1
  auto run_one = [region, &body](std::size_t b, std::size_t e, std::size_t c) {
    try {
      body(b, e, c);
    } catch (...) {
      std::lock_guard<std::mutex> lock(region->mutex);
      if (!region->error) region->error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(region->mutex);
    if (--region->remaining == 0) region->done.notify_all();
  };

  // Compute boundaries up front so queueing order cannot affect them.
  std::vector<std::pair<std::size_t, std::size_t>> bounds(chunks);
  std::size_t cursor = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    bounds[c] = {cursor, cursor + len};
    cursor += len;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t c = 1; c < chunks; ++c) {
      queue_.emplace_back([run_one, b = bounds[c].first, e = bounds[c].second,
                           c] { run_one(b, e, c); });
    }
  }
  work_ready_.notify_all();

  // The caller runs chunk 0, then helps drain the queue until the region is
  // finished (its remaining jobs may belong to a concurrent region — running
  // them is harmless and keeps all N threads busy).
  tl_inside_worker = true;
  run_one(bounds[0].first, bounds[0].second, 0);
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!queue_.empty()) {
        job = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (!job) break;
    job();
  }
  tl_inside_worker = false;

  std::unique_lock<std::mutex> lock(region->mutex);
  region->done.wait(lock, [&] { return region->remaining == 0; });
  if (region->error) std::rethrow_exception(region->error);
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t g = std::max<std::size_t>(1, grain);
  const std::size_t chunks =
      std::min<std::size_t>(static_cast<std::size_t>(size_), (n + g - 1) / g);
  run_chunks(begin, end, chunks,
             [&body](std::size_t b, std::size_t e, std::size_t) { body(b, e); });
}

void ThreadPool::parallel_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t chunks =
      std::min<std::size_t>(static_cast<std::size_t>(size_), end - begin);
  run_chunks(begin, end, chunks, body);
}

namespace {
std::mutex g_global_mutex;
ThreadPool* g_global_pool = nullptr;
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) g_global_pool = new ThreadPool(0);
  return *g_global_pool;
}

void ThreadPool::set_global_threads(int num_threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (g_global_pool) {
    if (g_global_pool->size() == resolve_threads(num_threads)) return;
    delete g_global_pool;
  }
  g_global_pool = new ThreadPool(num_threads);
}

}  // namespace fedsu::util
