#include "util/bitset.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace fedsu::util {

PackedBitset::PackedBitset(std::size_t size)
    : size_(size), words_((size + 63) / 64, 0) {}

PackedBitset PackedBitset::pack(const std::vector<std::uint8_t>& mask) {
  PackedBitset out(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0) out.words_[i / 64] |= (1ULL << (i % 64));
  }
  return out;
}

std::vector<std::uint8_t> PackedBitset::unpack() const {
  std::vector<std::uint8_t> out(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out[i] = test(i) ? 1 : 0;
  }
  return out;
}

bool PackedBitset::test(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("PackedBitset::test");
  return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void PackedBitset::set(std::size_t i, bool value) {
  if (i >= size_) throw std::out_of_range("PackedBitset::set");
  if (value) {
    words_[i / 64] |= (1ULL << (i % 64));
  } else {
    words_[i / 64] &= ~(1ULL << (i % 64));
  }
}

std::size_t PackedBitset::count() const {
  std::size_t total = 0;
  for (auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t PackedBitset::wire_bytes() const {
  return sizeof(std::uint64_t) + words_.size() * sizeof(std::uint64_t);
}

std::vector<std::uint8_t> PackedBitset::serialize() const {
  std::vector<std::uint8_t> bytes(wire_bytes());
  const std::uint64_t header = size_;
  std::memcpy(bytes.data(), &header, sizeof(header));
  std::memcpy(bytes.data() + sizeof(header), words_.data(),
              words_.size() * sizeof(std::uint64_t));
  return bytes;
}

PackedBitset PackedBitset::deserialize(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < sizeof(std::uint64_t)) {
    throw std::invalid_argument("PackedBitset::deserialize: truncated header");
  }
  std::uint64_t size = 0;
  std::memcpy(&size, bytes.data(), sizeof(size));
  PackedBitset out(static_cast<std::size_t>(size));
  const std::size_t expected =
      sizeof(std::uint64_t) + out.words_.size() * sizeof(std::uint64_t);
  if (bytes.size() != expected) {
    throw std::invalid_argument("PackedBitset::deserialize: size mismatch");
  }
  std::memcpy(out.words_.data(), bytes.data() + sizeof(std::uint64_t),
              out.words_.size() * sizeof(std::uint64_t));
  // Clear any stray bits beyond `size` so equality semantics hold.
  if (size % 64 != 0 && !out.words_.empty()) {
    out.words_.back() &= (1ULL << (size % 64)) - 1;
  }
  return out;
}

}  // namespace fedsu::util
