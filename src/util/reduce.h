// Fixed-shape blocked reductions for server-side aggregation.
//
// Design notes (DESIGN.md §5b + §13): the aggregation passes fold N client
// state rows into per-parameter double accumulators. Folding is not
// associative in floating point, so a reduction whose shape depended on the
// thread count would violate the §5b bitwise-determinism contract. Instead
// the shape here is fixed by N alone:
//
//   * rows are split into contiguous blocks of kReduceClientBlock rows;
//   * each block accumulates its rows row-major into a private double
//     panel (one accumulator per column);
//   * panels are combined per column in ascending block order.
//
// Both stages have disjoint outputs per index (per block, then per column),
// so chunking them over a ThreadPool is bitwise identical for every pool
// size, including 1. With N <= kReduceClientBlock there is a single block
// and the fold degenerates to the plain serial chain
//   acc = 0; acc += row_0[j]; acc += row_1[j]; ...
// i.e. exactly the pre-existing serial aggregation loops — every artifact
// and test produced at cohort sizes up to the block survives bit-for-bit.
// Larger cohorts get a deterministic two-level tree (the point: the panels
// parallelize and the row-major traversal is cache-friendly either way).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fedsu::util {

class ThreadPool;

// Rows per reduction block. Chosen so every historical cohort (benches and
// tests run 8-client populations; the §5b suites go up to 8 threads x a
// handful of participants) falls into the single-block regime.
inline constexpr std::size_t kReduceClientBlock = 32;

// sums[j] = sum_i rows[i][j], accumulated in double with the fixed block
// shape above. Every row must have exactly sums.size() elements (the caller
// validates; out-of-range access is UB as with any span). `pool` may be
// null — the blocks then run inline on the caller, producing the identical
// bits.
void column_sums(const std::vector<std::span<const float>>& rows,
                 std::span<double> sums, ThreadPool* pool);

// out[j] = float(sums[j] / rows.size()): the positional mean every
// aggregation path stores back into float32 state.
void column_means(const std::vector<std::span<const float>>& rows,
                  std::span<float> out, ThreadPool* pool);

// One-column counterpart sharing the block shape: folds `values` exactly as
// column_sums folds one column of a cohort with the same row count. Used
// where a pass gathers a filtered column before reducing it (FedSuManager
// pass 2), so the centralized and distributed decompositions keep producing
// identical bits.
double blocked_sum(std::span<const float> values);

}  // namespace fedsu::util
