#include "util/csv.h"

#include <sstream>
#include <stdexcept>

namespace fedsu::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

namespace {
std::string escape(const std::string& raw) {
  if (raw.find_first_of(",\"\n") == std::string::npos) return raw;
  std::string quoted = "\"";
  for (char c : raw) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string> fields) {
  write_row(std::vector<std::string>(fields));
}

void CsvWriter::flush() {
  if (!out_.flush()) throw std::runtime_error("CsvWriter: flush failed");
}

std::string CsvWriter::field(double value) {
  std::ostringstream os;
  os.precision(10);
  os << value;
  return os.str();
}

std::string CsvWriter::field(long long value) { return std::to_string(value); }

std::string CsvWriter::field(const std::string& value) { return value; }

}  // namespace fedsu::util
