#include "util/flags.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace fedsu::util {

Flags& Flags::add_int(const std::string& name, long long def,
                      const std::string& help) {
  Entry e;
  e.type = Type::kInt;
  e.help = help;
  e.int_value = def;
  entries_[name] = e;
  order_.push_back(name);
  return *this;
}

Flags& Flags::add_double(const std::string& name, double def,
                         const std::string& help) {
  Entry e;
  e.type = Type::kDouble;
  e.help = help;
  e.double_value = def;
  entries_[name] = e;
  order_.push_back(name);
  return *this;
}

Flags& Flags::add_string(const std::string& name, const std::string& def,
                         const std::string& help) {
  Entry e;
  e.type = Type::kString;
  e.help = help;
  e.string_value = def;
  entries_[name] = e;
  order_.push_back(name);
  return *this;
}

Flags& Flags::add_bool(const std::string& name, bool def,
                       const std::string& help) {
  Entry e;
  e.type = Type::kBool;
  e.help = help;
  e.bool_value = def;
  entries_[name] = e;
  order_.push_back(name);
  return *this;
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::runtime_error("Flags: positional argument not supported: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw std::runtime_error("Flags: unknown flag --" + name + "\n" +
                               usage(argv[0]));
    }
    Entry& entry = it->second;
    if (!has_value) {
      if (entry.type == Type::kBool) {
        // Bare boolean flag means "true".
        entry.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        throw std::runtime_error("Flags: missing value for --" + name);
      }
      value = argv[++i];
    }
    try {
      switch (entry.type) {
        case Type::kInt:
          entry.int_value = std::stoll(value);
          break;
        case Type::kDouble:
          entry.double_value = std::stod(value);
          break;
        case Type::kString:
          entry.string_value = value;
          break;
        case Type::kBool:
          entry.bool_value = (value == "1" || value == "true" || value == "yes");
          break;
      }
    } catch (const std::exception&) {
      throw std::runtime_error("Flags: bad value '" + value + "' for --" + name);
    }
  }
  return true;
}

const Flags::Entry& Flags::find(const std::string& name, Type type) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::runtime_error("Flags: flag not registered: --" + name);
  }
  if (it->second.type != type) {
    throw std::runtime_error("Flags: type mismatch for --" + name);
  }
  return it->second;
}

long long Flags::get_int(const std::string& name) const {
  return find(name, Type::kInt).int_value;
}

double Flags::get_double(const std::string& name) const {
  return find(name, Type::kDouble).double_value;
}

const std::string& Flags::get_string(const std::string& name) const {
  return find(name, Type::kString).string_value;
}

bool Flags::get_bool(const std::string& name) const {
  return find(name, Type::kBool).bool_value;
}

std::vector<std::pair<std::string, std::string>> Flags::resolved() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(order_.size());
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    std::string value;
    switch (e.type) {
      case Type::kInt:
        value = std::to_string(e.int_value);
        break;
      case Type::kDouble: {
        // Shortest round-trippable text, locale-independent (matches the
        // JSON number formatting the manifest embeds this in).
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", e.double_value);
        double probe = 0.0;
        std::sscanf(buf, "%lf", &probe);
        for (int precision = 1; precision < 17; ++precision) {
          char shorter[64];
          std::snprintf(shorter, sizeof(shorter), "%.*g", precision,
                        e.double_value);
          std::sscanf(shorter, "%lf", &probe);
          if (probe == e.double_value) {
            std::snprintf(buf, sizeof(buf), "%s", shorter);
            break;
          }
        }
        value = buf;
        break;
      }
      case Type::kString:
        value = e.string_value;
        break;
      case Type::kBool:
        value = e.bool_value ? "true" : "false";
        break;
    }
    out.emplace_back(name, std::move(value));
  }
  return out;
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    os << "  --" << name;
    switch (e.type) {
      case Type::kInt:
        os << " <int, default " << e.int_value << ">";
        break;
      case Type::kDouble:
        os << " <float, default " << e.double_value << ">";
        break;
      case Type::kString:
        os << " <string, default '" << e.string_value << "'>";
        break;
      case Type::kBool:
        os << " <bool, default " << (e.bool_value ? "true" : "false") << ">";
        break;
    }
    os << "\n      " << e.help << "\n";
  }
  return os.str();
}

}  // namespace fedsu::util
