// Deterministic random number generation for reproducible experiments.
//
// We deliberately avoid std::mt19937 + std::*_distribution at experiment
// boundaries because their exact output is implementation-defined across
// standard libraries; xoshiro256** plus hand-rolled distributions gives
// bit-identical runs everywhere, which the tests rely on.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fedsu::util {

// SplitMix64: used to expand a single user seed into generator state.
// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
// generators" (OOPSLA'14).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  // Standard normal via Box-Muller (cached pair).
  double normal();
  double normal(double mean, double stddev);
  // Lognormal with parameters of the underlying normal.
  double lognormal(double mu, double sigma);
  // Gamma(shape, 1) via Marsaglia-Tsang; used by the Dirichlet sampler.
  double gamma(double shape);
  // Dirichlet(alpha, ..., alpha) over `k` categories.
  std::vector<double> dirichlet(double alpha, int k);
  // Bernoulli draw.
  bool bernoulli(double p);

  // Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  // Derives an independent child generator; stream `i` is stable across
  // runs for the same parent seed.
  Rng fork(std::uint64_t stream) const;

  // Full generator state as 7 words: s_[0..3], seed_, the Box-Muller
  // cache flag, and the cached normal's bit pattern. Restoring these
  // words reproduces the exact draw sequence, which checkpoint/resume
  // relies on (fork() depends only on seed_, so the words are complete).
  static constexpr std::size_t kStateWords = 7;
  std::array<std::uint64_t, kStateWords> state_words() const;
  void restore_state_words(const std::array<std::uint64_t, kStateWords>& w);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fedsu::util
