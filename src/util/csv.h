// Tiny CSV writer used by bench binaries to dump figure series.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace fedsu::util {

// Writes one CSV file. Quotes fields containing separators. Throws
// std::runtime_error if the file cannot be opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& fields);
  void write_row(std::initializer_list<std::string> fields);

  // Pushes buffered rows to the OS; throws std::runtime_error if the stream
  // failed. Call after each row for crash durability (fl::RoundTrace does).
  void flush();

  // Convenience: formats doubles with enough precision for re-plotting.
  static std::string field(double value);
  static std::string field(long long value);
  static std::string field(const std::string& value);

  bool is_open() const { return out_.is_open(); }

 private:
  std::ofstream out_;
};

}  // namespace fedsu::util
