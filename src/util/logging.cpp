#include "util/logging.h"

#include <cstdio>
#include <cstring>
#include <mutex>

namespace fedsu::util {

namespace {
std::atomic<LogLevel>& level_slot() {
  static std::atomic<LogLevel> level{LogLevel::kInfo};
  return level;
}
}  // namespace

LogLevel log_level() { return level_slot().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_slot().store(level, std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace {
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= log_level()), level_(level) {
  if (enabled_) {
    stream_ << "[" << log_level_name(level) << " " << basename_of(file) << ":"
            << line << "] ";
  }
}

LogLine::~LogLine() {
  if (!enabled_) return;
  stream_ << "\n";
  const std::string text = stream_.str();
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::fputs(text.c_str(), level_ >= LogLevel::kWarn ? stderr : stdout);
}

}  // namespace fedsu::util
