#include "util/logging.h"

#include <cstdio>
#include <cstring>

namespace fedsu::util {

LogLevel& log_level() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace {
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= log_level()), level_(level) {
  if (enabled_) {
    stream_ << "[" << log_level_name(level) << " " << basename_of(file) << ":"
            << line << "] ";
  }
}

LogLine::~LogLine() {
  if (!enabled_) return;
  stream_ << "\n";
  const std::string text = stream_.str();
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::fputs(text.c_str(), level_ >= LogLevel::kWarn ? stderr : stdout);
}

}  // namespace fedsu::util
