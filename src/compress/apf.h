// APF — Adaptive Parameter Freezing (Chen et al., ICDCS'21).
//
// Per scalar parameter, APF tracks an "effective perturbation" EP =
// |EMA(update)| / EMA(|update|). A parameter whose EP stays under the
// stability threshold has converged (it only zigzags around a fixed value)
// and is frozen — excluded from synchronization — for a freezing period that
// grows additively each time the parameter proves stable again at the next
// check, and resets when it turns unstable (TCP-style probing).
#pragma once

#include <cstdint>

#include "compress/protocol.h"

namespace fedsu::compress {

struct ApfOptions {
  double stability_threshold = 0.05;  // paper default (§VI-A)
  // For a perfectly alternating (+a, -a, ...) update the EP metric floors at
  // (1 - theta) / (1 + theta); theta = 0.95 puts that floor (0.026) safely
  // under the 0.05 stability threshold so converged zigzagging parameters
  // can actually freeze.
  double ema_decay = 0.95;
  int warmup_rounds = 3;   // EP is meaningless before a few observations
  int initial_period = 1;  // first freezing period, in rounds
};

class Apf : public SyncProtocol {
 public:
  explicit Apf(ApfOptions options = {});

  std::string name() const override { return "APF"; }

  void initialize(std::span<const float> global_state) override;

  SyncResult synchronize(
      const RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override;

  std::size_t state_bytes() const override;
  double last_sparsification_ratio() const override { return last_ratio_; }
  // Frozen parameters are APF's analogue of speculated ones: held locally
  // without transmission.
  Telemetry last_round_telemetry() const override {
    return {frozen_fraction(), 0};
  }

  // Fraction of parameters currently frozen (for tests / Fig. 5 dashed line).
  double frozen_fraction() const;

 private:
  ApfOptions options_;
  std::vector<float> global_;
  // Per-parameter bookkeeping (struct-of-arrays for cache friendliness).
  std::vector<float> ema_update_;
  std::vector<float> ema_abs_update_;
  std::vector<std::int32_t> freeze_remaining_;  // rounds left frozen; 0 = active
  std::vector<std::int32_t> freeze_period_;     // current period length
  std::vector<std::int32_t> observations_;
  double last_ratio_ = 0.0;
};

}  // namespace fedsu::compress
