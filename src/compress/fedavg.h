// FedAvg (McMahan et al.): full-model synchronization every round.
#pragma once

#include "compress/protocol.h"

namespace fedsu::compress {

class FedAvg : public SyncProtocol {
 public:
  std::string name() const override { return "FedAvg"; }

  void initialize(std::span<const float> global_state) override;

  SyncResult synchronize(
      const RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override;

  double last_sparsification_ratio() const override { return 0.0; }

 private:
  std::size_t state_size_ = 0;
};

}  // namespace fedsu::compress
