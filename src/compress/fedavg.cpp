#include "compress/fedavg.h"

#include <stdexcept>

#include "compress/wire.h"
#include "obs/trace.h"
#include "util/reduce.h"
#include "util/thread_pool.h"

namespace fedsu::compress {

std::vector<float> average_states(
    const std::vector<std::span<const float>>& client_states) {
  if (client_states.empty()) {
    throw std::invalid_argument("average_states: no clients");
  }
  const std::size_t p = client_states.front().size();
  for (const auto& state : client_states) {
    if (state.size() != p) {
      throw std::invalid_argument("average_states: state size mismatch");
    }
  }
  // Positional mean in the fixed block shape (util/reduce.h): chunked over
  // the global pool, bitwise identical for every thread count, and — for
  // cohorts up to the block size — to the historical serial fold.
  std::vector<float> out(p);
  util::column_means(client_states, out, &util::ThreadPool::global());
  return out;
}

void FedAvg::initialize(std::span<const float> global_state) {
  state_size_ = global_state.size();
}

SyncResult FedAvg::synchronize(
    const RoundContext& ctx,
    const std::vector<std::span<const float>>& client_states) {
  OBS_SPAN("compress.fedavg.sync");
  if (client_states.size() != ctx.participants.size()) {
    throw std::invalid_argument("FedAvg: participants/state count mismatch");
  }
  SyncResult result;
  result.new_global = average_states(client_states);
  // Byte accounting is the measured size of the dense payload each client
  // uploads (its state) and downloads (the new global) — identical lengths,
  // sized without encoding (DESIGN.md §15).
  const std::size_t bytes = wire::measure_dense(result.new_global.size());
  if (wire::payload_audit()) {
    wire::audit_bytes("fedavg", bytes,
                      wire::encode_dense(result.new_global).size());
  }
  result.bytes_up.assign(client_states.size(), bytes);
  result.bytes_down.assign(client_states.size(), bytes);
  result.scalars_up = result.new_global.size() * client_states.size();
  result.scalars_down = result.scalars_up;
  wire::record_round_bytes("fedavg", bytes * client_states.size(),
                           bytes * client_states.size());
  return result;
}

}  // namespace fedsu::compress
