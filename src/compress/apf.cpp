#include "compress/apf.h"

#include <cmath>
#include <stdexcept>

#include "compress/wire.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace fedsu::compress {

Apf::Apf(ApfOptions options) : options_(options) {
  if (options_.stability_threshold <= 0.0 || options_.ema_decay <= 0.0 ||
      options_.ema_decay >= 1.0) {
    throw std::invalid_argument("Apf: bad options");
  }
}

void Apf::initialize(std::span<const float> global_state) {
  global_.assign(global_state.begin(), global_state.end());
  const std::size_t p = global_.size();
  ema_update_.assign(p, 0.0f);
  ema_abs_update_.assign(p, 0.0f);
  freeze_remaining_.assign(p, 0);
  freeze_period_.assign(p, 0);
  observations_.assign(p, 0);
}

SyncResult Apf::synchronize(
    const RoundContext& ctx,
    const std::vector<std::span<const float>>& client_states) {
  OBS_SPAN("compress.apf.sync");
  if (client_states.size() != ctx.participants.size()) {
    throw std::invalid_argument("Apf: participants/state count mismatch");
  }
  const std::size_t p = global_.size();
  const std::size_t n = client_states.size();
  const float theta = static_cast<float>(options_.ema_decay);

  // The active coordinate set is fixed at round entry (the main pass below
  // decrements the frozen counters), so count it — and under payload audit
  // build the representative wire payload — up front.
  std::size_t synced = 0;
  for (std::size_t j = 0; j < p; ++j) {
    if (freeze_remaining_[j] == 0) ++synced;
  }
  const std::size_t bytes = n == 0 ? 0 : wire::measure_dense(synced);
  if (wire::payload_audit() && n > 0) {
    OBS_SPAN("compress.apf.encode");
    std::vector<float> up_values;  // client 0's unfrozen coords
    up_values.reserve(synced);
    for (std::size_t j = 0; j < p; ++j) {
      if (freeze_remaining_[j] == 0) up_values.push_back(client_states[0][j]);
    }
    wire::audit_bytes("apf up", bytes, wire::encode_dense(up_values).size());
  }

  // Every per-coordinate decision — aggregate, EMA statistics, freeze
  // bookkeeping, the in-place global write — touches only slot j, so the
  // pass chunks over parameters with identical results for any thread
  // count. Frozen coordinates hold their value untouched, making global_
  // itself the new state (the result takes the single full-width copy).
  auto update_params = [&](std::size_t j0, std::size_t j1) {
    for (std::size_t j = j0; j < j1; ++j) {
      if (freeze_remaining_[j] > 0) {
        // Frozen: hold the value, not transmitted. When the period elapses
        // the parameter rejoins synchronization for a stability check.
        --freeze_remaining_[j];
        continue;
      }
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += client_states[i][j];
      const float synced_value =
          static_cast<float>(acc / static_cast<double>(n));
      const float update = synced_value - global_[j];
      global_[j] = synced_value;
      // Update the effective-perturbation statistics.
      ema_update_[j] = theta * ema_update_[j] + (1.0f - theta) * update;
      ema_abs_update_[j] =
          theta * ema_abs_update_[j] + (1.0f - theta) * std::fabs(update);
      ++observations_[j];
      if (observations_[j] < options_.warmup_rounds) continue;
      const float denom = ema_abs_update_[j];
      const double ep = denom > 0.0f ? std::fabs(ema_update_[j]) / denom : 0.0;
      if (ep < options_.stability_threshold) {
        // Stable: freeze, growing the period additively each consecutive
        // stable verdict.
        freeze_period_[j] = freeze_period_[j] > 0
                                ? freeze_period_[j] + 1
                                : options_.initial_period;
        freeze_remaining_[j] = freeze_period_[j];
      } else {
        freeze_period_[j] = 0;  // unstable: restart the probing cycle
      }
    }
  };
  {
    OBS_SPAN("compress.apf.update");
    util::ThreadPool& pool = util::ThreadPool::global();
    if (pool.worth_parallelizing() && p > 1) {
      pool.parallel_for(0, p, update_params, 1024);
    } else {
      update_params(0, p);
    }
  }

  SyncResult result;
  result.new_global = global_;
  // Measured payload: the dense block of unfrozen values (client 0 is
  // representative; all clients sync the same coordinate set).
  result.bytes_up.assign(n, bytes);
  result.bytes_down.assign(n, bytes);
  result.scalars_up = synced * n;
  result.scalars_down = synced * n;
  wire::record_round_bytes("apf", bytes * n, bytes * n);
  last_ratio_ =
      p == 0 ? 0.0 : 1.0 - static_cast<double>(synced) / static_cast<double>(p);
  return result;
}

std::size_t Apf::state_bytes() const {
  return global_.size() * sizeof(float) + ema_update_.size() * sizeof(float) +
         ema_abs_update_.size() * sizeof(float) +
         freeze_remaining_.size() * sizeof(std::int32_t) +
         freeze_period_.size() * sizeof(std::int32_t) +
         observations_.size() * sizeof(std::int32_t);
}

double Apf::frozen_fraction() const {
  if (freeze_remaining_.empty()) return 0.0;
  std::size_t frozen = 0;
  for (auto r : freeze_remaining_) {
    if (r > 0) ++frozen;
  }
  return static_cast<double>(frozen) / static_cast<double>(freeze_remaining_.size());
}

}  // namespace fedsu::compress
