// QSGD-style stochastic uniform quantization (Alistarh et al., NeurIPS'17),
// the quantization baseline the paper's related work discusses (§II-B).
//
// Each client quantizes its update to `bits` levels per coordinate with
// stochastic rounding (unbiased); the server averages dequantized updates
// and broadcasts a quantized global update back.
#pragma once

#include "compress/protocol.h"
#include "util/rng.h"

namespace fedsu::compress {

struct QsgdOptions {
  int bits = 8;  // bits per coordinate on the wire
  std::uint64_t seed = 77;
};

class Qsgd : public SyncProtocol {
 public:
  explicit Qsgd(QsgdOptions options = {});

  std::string name() const override { return "QSGD"; }
  void initialize(std::span<const float> global_state) override;
  SyncResult synchronize(
      const RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override;
  std::size_t state_bytes() const override;
  // Quantization is dense: nothing is skipped, ratio reflects byte shrink.
  double last_sparsification_ratio() const override { return 0.0; }

  // Quantize/dequantize one vector (exposed for tests). When `levels_out`
  // is non-null it receives the integer levels actually drawn — the wire
  // payload — without changing RNG consumption.
  std::vector<float> quantize_dequantize(
      std::span<const float> v, util::Rng& rng,
      std::vector<std::int32_t>* levels_out = nullptr) const;

 private:
  QsgdOptions options_;
  std::vector<float> global_;
  util::Rng rng_{0};
};

}  // namespace fedsu::compress
