// QSGD-style stochastic uniform quantization (Alistarh et al., NeurIPS'17),
// the quantization baseline the paper's related work discusses (§II-B).
//
// Each client quantizes its update to `bits` levels per coordinate with
// stochastic rounding (unbiased); the server averages dequantized updates
// and broadcasts a quantized global update back.
//
// Hot-path design (DESIGN.md §15): each client's rounding noise comes from
// its own counter-derived stream, Rng(seed).fork(round + 1).fork(id + 1)
// (stream 0 of a round quantizes the broadcast) — a pure function of
// (seed, round, client id), so per-client quantization parallelizes over
// util::ThreadPool with bitwise-identical results for every thread count
// (§5b). Dequantized updates fold through fixed kReduceClientBlock-row
// double panels combined in ascending block order, and byte accounting is
// wire::measure_quantized — the encoder only runs in payload-audit mode.
#pragma once

#include "compress/protocol.h"
#include "util/rng.h"

namespace fedsu::compress {

struct QsgdOptions {
  int bits = 8;  // bits per coordinate on the wire
  std::uint64_t seed = 77;
};

class Qsgd : public SyncProtocol {
 public:
  explicit Qsgd(QsgdOptions options = {});

  std::string name() const override { return "QSGD"; }
  void initialize(std::span<const float> global_state) override;
  SyncResult synchronize(
      const RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override;
  std::size_t state_bytes() const override;
  // Quantization is dense: nothing is skipped, ratio reflects byte shrink.
  double last_sparsification_ratio() const override { return 0.0; }

  // Quantize/dequantize one vector (exposed for tests). When `levels_out`
  // is non-null it receives the integer levels actually drawn — the wire
  // payload — without changing RNG consumption.
  std::vector<float> quantize_dequantize(
      std::span<const float> v, util::Rng& rng,
      std::vector<std::int32_t>* levels_out = nullptr) const;

 private:
  QsgdOptions options_;
  std::vector<float> global_;
  util::Rng rng_{0};  // stream base: never advanced, only fork()ed per round

  // Round-loop scratch, sized on first use and reused thereafter so the
  // steady state is heap-allocation-free. panels_ holds one double
  // accumulator panel per kReduceClientBlock-client block (block b owns
  // [b*p, (b+1)*p)); acc_/mean_update_ are the combined sum and its mean.
  std::vector<double> panels_;
  std::vector<double> acc_;
  std::vector<float> mean_update_;
};

}  // namespace fedsu::compress
