#include "compress/wire.h"

#include <array>
#include <stdexcept>
#include <string>

#include "io/serialize.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace fedsu::compress::wire {

namespace {
bool g_payload_audit = false;
}  // namespace

void set_payload_audit(bool enabled) { g_payload_audit = enabled; }
bool payload_audit() { return g_payload_audit; }

void audit_bytes(const char* what, std::size_t measured, std::size_t encoded) {
  if (measured != encoded) {
    throw std::logic_error(std::string("wire payload audit: ") + what +
                           ": measured " + std::to_string(measured) +
                           " bytes but encoded " + std::to_string(encoded));
  }
}

std::vector<std::uint8_t> encode_dense(std::span<const float> values) {
  io::BinaryWriter writer;
  for (float v : values) writer.write_f32(v);
  return writer.take();
}

std::vector<float> decode_dense(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() % sizeof(float) != 0) {
    throw std::runtime_error("wire: dense payload size not a multiple of 4");
  }
  io::BinaryReader reader(bytes);
  std::vector<float> values(bytes.size() / sizeof(float));
  for (float& v : values) v = reader.read_f32();
  return values;
}

std::vector<std::uint8_t> encode_sparse(std::span<const std::uint32_t> indices,
                                        std::span<const float> values) {
  if (indices.size() != values.size()) {
    throw std::invalid_argument("wire: sparse index/value length mismatch");
  }
  io::BinaryWriter writer;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    writer.write_u32(indices[i]);
    writer.write_f32(values[i]);
  }
  return writer.take();
}

SparsePayload decode_sparse(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() % 8 != 0) {
    throw std::runtime_error("wire: sparse payload size not a multiple of 8");
  }
  io::BinaryReader reader(bytes);
  SparsePayload payload;
  const std::size_t entries = bytes.size() / 8;
  payload.indices.reserve(entries);
  payload.values.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    payload.indices.push_back(reader.read_u32());
    payload.values.push_back(reader.read_f32());
  }
  return payload;
}

std::vector<std::uint8_t> encode_signs(std::span<const std::uint8_t> signs,
                                       float scale) {
  io::BinaryWriter writer;
  std::uint8_t packed = 0;
  int filled = 0;
  for (std::uint8_t s : signs) {
    packed |= static_cast<std::uint8_t>((s ? 1 : 0) << filled);
    if (++filled == 8) {
      writer.write_u8(packed);
      packed = 0;
      filled = 0;
    }
  }
  if (filled > 0) writer.write_u8(packed);
  writer.write_f32(scale);
  return writer.take();
}

SignsPayload decode_signs(const std::vector<std::uint8_t>& bytes,
                          std::size_t count) {
  const std::size_t mask_bytes = (count + 7) / 8;
  if (bytes.size() != mask_bytes + sizeof(float)) {
    throw std::runtime_error("wire: signs payload size mismatch");
  }
  io::BinaryReader reader(bytes);
  SignsPayload payload;
  payload.signs.resize(count);
  std::uint8_t packed = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 8 == 0) packed = reader.read_u8();
    payload.signs[i] = (packed >> (i % 8)) & 1;
  }
  payload.scale = reader.read_f32();
  return payload;
}

std::vector<std::uint8_t> encode_quantized(std::span<const std::int32_t> levels,
                                           int bits, float scale) {
  if (bits < 1 || bits > 16) {
    throw std::invalid_argument("wire: quantized bits out of [1, 16]");
  }
  const std::int32_t max_level = (1 << (bits - 1)) - 1;
  io::BinaryWriter writer;
  std::uint32_t packed = 0;
  int filled = 0;
  for (std::int32_t level : levels) {
    if (level < -max_level || level > max_level) {
      throw std::invalid_argument("wire: quantized level out of range");
    }
    packed |= static_cast<std::uint32_t>(level + max_level) << filled;
    filled += bits;
    while (filled >= 8) {
      writer.write_u8(static_cast<std::uint8_t>(packed & 0xFF));
      packed >>= 8;
      filled -= 8;
    }
  }
  if (filled > 0) writer.write_u8(static_cast<std::uint8_t>(packed & 0xFF));
  writer.write_f32(scale);
  return writer.take();
}

QuantizedPayload decode_quantized(const std::vector<std::uint8_t>& bytes,
                                  std::size_t count, int bits) {
  if (bits < 1 || bits > 16) {
    throw std::invalid_argument("wire: quantized bits out of [1, 16]");
  }
  const std::size_t level_bytes = (count * static_cast<std::size_t>(bits) + 7) / 8;
  if (bytes.size() != level_bytes + sizeof(float)) {
    throw std::runtime_error("wire: quantized payload size mismatch");
  }
  const std::int32_t max_level = (1 << (bits - 1)) - 1;
  io::BinaryReader reader(bytes);
  QuantizedPayload payload;
  payload.levels.reserve(count);
  std::uint64_t packed = 0;
  int filled = 0;
  for (std::size_t i = 0; i < count; ++i) {
    while (filled < bits) {
      packed |= static_cast<std::uint64_t>(reader.read_u8()) << filled;
      filled += 8;
    }
    const auto raw = static_cast<std::uint32_t>(packed & ((1u << bits) - 1));
    payload.levels.push_back(static_cast<std::int32_t>(raw) - max_level);
    packed >>= bits;
    filled -= bits;
  }
  payload.scale = reader.read_f32();
  return payload;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void record_round_bytes(const char* protocol, std::size_t bytes_up,
                        std::size_t bytes_down) {
  if (!obs::metrics_enabled()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::string prefix = std::string("compress.") + protocol;
  registry.counter(prefix + ".rounds").add(1);
  registry.counter(prefix + ".bytes_up").add(bytes_up);
  registry.counter(prefix + ".bytes_down").add(bytes_down);
}

}  // namespace fedsu::compress::wire
