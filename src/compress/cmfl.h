// CMFL (Wang/Luping et al., ICDCS'19): a client uploads its update only when
// a sufficient fraction of its element-wise signs agree with the previous
// global update ("relevance"); irrelevant updates are withheld.
#pragma once

#include "compress/protocol.h"

namespace fedsu::compress {

struct CmflOptions {
  // Paper default (§VI-A): updates with < 80 % sign agreement are withheld.
  double relevance_threshold = 0.8;
};

class Cmfl : public SyncProtocol {
 public:
  explicit Cmfl(CmflOptions options = {});

  std::string name() const override { return "CMFL"; }

  void initialize(std::span<const float> global_state) override;

  SyncResult synchronize(
      const RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override;

  std::size_t state_bytes() const override;
  double last_sparsification_ratio() const override { return last_ratio_; }

  // Relevance of each participant in the most recent round (for tests).
  const std::vector<double>& last_relevances() const { return last_relevances_; }

 private:
  CmflOptions options_;
  std::vector<float> global_;       // current global state
  std::vector<float> prev_update_;  // last global update (round k-1)
  bool has_prev_update_ = false;
  double last_ratio_ = 0.0;
  std::vector<double> last_relevances_;
};

}  // namespace fedsu::compress
