// CMFL (Wang/Luping et al., ICDCS'19): a client uploads its update only when
// a sufficient fraction of its element-wise signs agree with the previous
// global update ("relevance"); irrelevant updates are withheld.
//
// Hot-path design (DESIGN.md §15): per-client relevance checks are
// independent reads of the shared previous update, so they run in parallel
// over util::ThreadPool with disjoint per-client outputs; the reporting
// subset then aggregates through util::column_sums' fixed block shape —
// both bitwise identical for every thread count (§5b). Byte accounting is
// wire::measure_dense; the encoder only runs in payload-audit mode.
#pragma once

#include "compress/protocol.h"

namespace fedsu::compress {

struct CmflOptions {
  // Paper default (§VI-A): updates with < 80 % sign agreement are withheld.
  double relevance_threshold = 0.8;
};

class Cmfl : public SyncProtocol {
 public:
  explicit Cmfl(CmflOptions options = {});

  std::string name() const override { return "CMFL"; }

  void initialize(std::span<const float> global_state) override;

  SyncResult synchronize(
      const RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override;

  std::size_t state_bytes() const override;
  double last_sparsification_ratio() const override { return last_ratio_; }

  // Relevance of each participant in the most recent round (for tests).
  const std::vector<double>& last_relevances() const { return last_relevances_; }

 private:
  CmflOptions options_;
  std::vector<float> global_;       // current global state
  std::vector<float> prev_update_;  // last global update (round k-1)
  bool has_prev_update_ = false;
  double last_ratio_ = 0.0;
  std::vector<double> last_relevances_;

  // Round-loop scratch, reused so the steady state is allocation-free.
  // reports_ is byte-wide (not vector<bool>) so the parallel relevance pass
  // writes disjoint slots without bit-packing races.
  std::vector<std::uint8_t> reports_;
  std::vector<double> acc_;
  std::vector<std::span<const float>> reporting_rows_;
};

}  // namespace fedsu::compress
