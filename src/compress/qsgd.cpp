#include "compress/qsgd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "compress/wire.h"
#include "obs/trace.h"
#include "util/reduce.h"
#include "util/scratch_arena.h"
#include "util/thread_pool.h"

namespace fedsu::compress {

namespace {

float max_abs(std::span<const float> v) {
  float scale = 0.0f;
  for (float x : v) scale = std::max(scale, std::fabs(x));
  return scale;
}

// Stochastic-rounding core shared by the allocation-free hot path and the
// test-facing quantize_dequantize: one uniform draw per coordinate, none
// when scale == 0 (the historical RNG consumption pattern).
void quantize_into(std::span<const float> v, int bits, float scale,
                   util::Rng& rng, float* out, std::int32_t* levels_out) {
  if (scale == 0.0f) {
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = 0.0f;
    return;
  }
  const int levels = (1 << (bits - 1)) - 1;  // signed range
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double t = static_cast<double>(v[i]) / scale * levels;  // [-L, L]
    const double lo = std::floor(t);
    const double frac = t - lo;
    const double q = rng.uniform() < frac ? lo + 1.0 : lo;
    if (levels_out) levels_out[i] = static_cast<std::int32_t>(q);
    out[i] = static_cast<float>(q / levels * scale);
  }
}

}  // namespace

Qsgd::Qsgd(QsgdOptions options) : options_(options), rng_(options.seed) {
  if (options_.bits < 1 || options_.bits > 16) {
    throw std::invalid_argument("Qsgd: bits must be in [1, 16]");
  }
}

void Qsgd::initialize(std::span<const float> global_state) {
  global_.assign(global_state.begin(), global_state.end());
}

std::vector<float> Qsgd::quantize_dequantize(
    std::span<const float> v, util::Rng& rng,
    std::vector<std::int32_t>* levels_out) const {
  // Uniform levels over [-scale, scale] with stochastic rounding; scale is
  // the max-abs of the vector (sent alongside as one float).
  if (levels_out) levels_out->assign(v.size(), 0);
  std::vector<float> out(v.size(), 0.0f);
  quantize_into(v, options_.bits, max_abs(v), rng, out.data(),
                levels_out ? levels_out->data() : nullptr);
  return out;
}

SyncResult Qsgd::synchronize(
    const RoundContext& ctx,
    const std::vector<std::span<const float>>& client_states) {
  OBS_SPAN("compress.qsgd.sync");
  const std::size_t p = global_.size();
  const std::size_t n = client_states.size();
  if (n != ctx.participants.size() || n == 0) {
    throw std::invalid_argument("Qsgd: participants/state mismatch");
  }
  // Per-(round, client) RNG streams: client c's rounding noise this round is
  // rng_.fork(round + 1).fork(c + 1), stream 0 quantizes the broadcast.
  // fork() is a pure function of the base seed, so clients quantize in
  // parallel with bitwise-identical results for every thread count and the
  // audit path can re-derive any stream after the fact.
  const util::Rng round_rng =
      rng_.fork(static_cast<std::uint64_t>(ctx.round) + 1);

  const std::size_t block = util::kReduceClientBlock;
  const std::size_t num_blocks = (n + block - 1) / block;
  panels_.assign(num_blocks * p, 0.0);
  auto run_blocks = [&](std::size_t b0, std::size_t b1) {
    util::ScratchArena& arena = util::ScratchArena::local();
    util::ScratchArena::Frame frame(arena);
    float* update = arena.floats(p);
    float* dq = arena.floats(p);
    const std::span<const float> update_span(update, p);
    for (std::size_t b = b0; b < b1; ++b) {
      double* panel = panels_.data() + b * p;
      const std::size_t hi = std::min(n, (b + 1) * block);
      for (std::size_t i = b * block; i < hi; ++i) {
        for (std::size_t j = 0; j < p; ++j) {
          update[j] = client_states[i][j] - global_[j];
        }
        util::Rng rng = round_rng.fork(
            static_cast<std::uint64_t>(ctx.participants[i]) + 1);
        quantize_into(update_span, options_.bits, max_abs(update_span), rng,
                      dq, nullptr);
        for (std::size_t j = 0; j < p; ++j) panel[j] += dq[j];
      }
    }
  };
  {
    OBS_SPAN("compress.qsgd.quantize");
    util::ThreadPool& pool = util::ThreadPool::global();
    if (pool.worth_parallelizing() && num_blocks > 1) {
      pool.parallel_for(0, num_blocks, run_blocks);
    } else {
      run_blocks(0, num_blocks);
    }
  }

  const std::size_t bytes = wire::measure_quantized(p, options_.bits);
  if (wire::payload_audit()) {
    OBS_SPAN("compress.qsgd.encode");
    // Re-derive client 0's stream (forks are pure) and cross-check the
    // measured size against a real encode of its drawn levels.
    std::vector<float> update0(p);
    for (std::size_t j = 0; j < p; ++j) {
      update0[j] = client_states[0][j] - global_[j];
    }
    util::Rng rng = round_rng.fork(
        static_cast<std::uint64_t>(ctx.participants[0]) + 1);
    std::vector<std::int32_t> levels;
    quantize_dequantize(update0, rng, &levels);
    wire::audit_bytes(
        "qsgd up", bytes,
        wire::encode_quantized(levels, options_.bits, 0.0f).size());
  }

  {
    OBS_SPAN("compress.qsgd.aggregate");
    // Combine panels in ascending block order (fixed reduction shape, §5b),
    // then apply the quantized broadcast to global_ in place — the result
    // takes the single full-width copy.
    acc_.assign(p, 0.0);
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const double* panel = panels_.data() + b * p;
      for (std::size_t j = 0; j < p; ++j) acc_[j] += panel[j];
    }
    mean_update_.resize(p);
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t j = 0; j < p; ++j) {
      mean_update_[j] = static_cast<float>(acc_[j] * inv_n);
    }
    util::ScratchArena& arena = util::ScratchArena::local();
    util::ScratchArena::Frame frame(arena);
    float* broadcast = arena.floats(p);
    util::Rng bc_rng = round_rng.fork(0);
    quantize_into(mean_update_, options_.bits, max_abs(mean_update_), bc_rng,
                  broadcast, nullptr);
    for (std::size_t j = 0; j < p; ++j) global_[j] += broadcast[j];
  }
  if (wire::payload_audit()) {
    util::Rng bc_rng = round_rng.fork(0);
    std::vector<std::int32_t> levels;
    quantize_dequantize(mean_update_, bc_rng, &levels);
    wire::audit_bytes(
        "qsgd down", bytes,
        wire::encode_quantized(levels, options_.bits, 0.0f).size());
  }

  SyncResult result;
  result.new_global = global_;
  // Measured payload: the bit-packed levels plus the f32 scale. Every
  // payload in both directions has the same length.
  result.bytes_up.assign(n, bytes);
  result.bytes_down.assign(n, bytes);
  result.scalars_up = p * n;
  result.scalars_down = p * n;
  wire::record_round_bytes("qsgd", bytes * n, bytes * n);
  return result;
}

std::size_t Qsgd::state_bytes() const {
  return global_.size() * sizeof(float);
}

}  // namespace fedsu::compress
