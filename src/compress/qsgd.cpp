#include "compress/qsgd.h"

#include <cmath>
#include <stdexcept>

#include "compress/wire.h"
#include "obs/trace.h"

namespace fedsu::compress {

Qsgd::Qsgd(QsgdOptions options) : options_(options), rng_(options.seed) {
  if (options_.bits < 1 || options_.bits > 16) {
    throw std::invalid_argument("Qsgd: bits must be in [1, 16]");
  }
}

void Qsgd::initialize(std::span<const float> global_state) {
  global_.assign(global_state.begin(), global_state.end());
}

std::vector<float> Qsgd::quantize_dequantize(
    std::span<const float> v, util::Rng& rng,
    std::vector<std::int32_t>* levels_out) const {
  // Uniform levels over [-scale, scale] with stochastic rounding; scale is
  // the max-abs of the vector (sent alongside as one float).
  if (levels_out) levels_out->assign(v.size(), 0);
  float scale = 0.0f;
  for (float x : v) scale = std::max(scale, std::fabs(x));
  std::vector<float> out(v.size(), 0.0f);
  if (scale == 0.0f) return out;
  const int levels = (1 << (options_.bits - 1)) - 1;  // signed range
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double t = static_cast<double>(v[i]) / scale * levels;  // [-L, L]
    const double lo = std::floor(t);
    const double frac = t - lo;
    const double q = rng.uniform() < frac ? lo + 1.0 : lo;
    if (levels_out) (*levels_out)[i] = static_cast<std::int32_t>(q);
    out[i] = static_cast<float>(q / levels * scale);
  }
  return out;
}

SyncResult Qsgd::synchronize(
    const RoundContext& ctx,
    const std::vector<std::span<const float>>& client_states) {
  OBS_SPAN("compress.qsgd.sync");
  const std::size_t p = global_.size();
  const std::size_t n = client_states.size();
  if (n != ctx.participants.size() || n == 0) {
    throw std::invalid_argument("Qsgd: participants/state mismatch");
  }
  std::vector<double> acc(p, 0.0);
  std::vector<float> update(p);
  std::vector<std::int32_t> up_levels;  // client 0's wire levels
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      update[j] = client_states[i][j] - global_[j];
    }
    const auto dq =
        quantize_dequantize(update, rng_, i == 0 ? &up_levels : nullptr);
    for (std::size_t j = 0; j < p; ++j) acc[j] += dq[j];
  }
  std::vector<float> mean_update(p);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j < p; ++j) {
    mean_update[j] = static_cast<float>(acc[j] * inv_n);
  }
  // The broadcast is quantized too.
  const auto broadcast = quantize_dequantize(mean_update, rng_);
  std::vector<float> new_global = global_;
  for (std::size_t j = 0; j < p; ++j) new_global[j] += broadcast[j];
  global_ = new_global;

  SyncResult result;
  result.new_global = std::move(new_global);
  // Measured payload: the bit-packed levels plus the f32 scale. Every
  // client's payload has the same length (client 0 is representative).
  const std::size_t bytes =
      wire::encode_quantized(up_levels, options_.bits, 0.0f).size();
  result.bytes_up.assign(n, bytes);
  result.bytes_down.assign(n, bytes);
  result.scalars_up = p * n;
  result.scalars_down = p * n;
  wire::record_round_bytes("qsgd", bytes * n, bytes * n);
  return result;
}

std::size_t Qsgd::state_bytes() const {
  return global_.size() * sizeof(float);
}

}  // namespace fedsu::compress
