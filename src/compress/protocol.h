// SyncProtocol: the server-side synchronization contract every scheme
// (FedAvg, CMFL, APF, FedSU, ...) implements.
//
// The simulator is logically centralized: after local training it hands the
// protocol every participant's full local state vector and receives the new
// global state plus exact per-client byte counts. Each protocol keeps
// whatever cross-round state it needs (masks, EMAs, residuals) internally.
// This mirrors the paper's Algorithm 1 while keeping byte accounting exact —
// what travels on the wire is decided here, not by the simulator.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace fedsu::compress {

struct RoundContext {
  int round = 0;  // 0-based FL round index
  // Ids of the clients whose updates participate in aggregation this round
  // (the 70 % earliest under the paper's participation model). Parallel to
  // the `client_states` argument of synchronize().
  std::vector<int> participants;
  // Buffered-async execution (DESIGN.md §11): the model version (protocol
  // aggregation count) each participant's update was trained against,
  // parallel to `participants`. Empty — the default, and what every
  // synchronous caller passes — means every participant trained on the
  // current global state; protocols must treat that case exactly as before
  // the field existed. When non-empty, protocols with per-client cross-round
  // state (e.g. FedSU's error accumulators) can fence out contributions
  // whose dispatch version predates the state's validity window.
  std::vector<int> dispatch_rounds;
};

struct SyncResult {
  // The state every participant holds after synchronization.
  std::vector<float> new_global;
  // Exact bytes moved per participant (same order as ctx.participants).
  std::vector<std::size_t> bytes_up;
  std::vector<std::size_t> bytes_down;
  // Scalars that crossed the wire in each direction, summed over clients —
  // used for the sparsification-ratio metric of Fig. 5.
  std::size_t scalars_up = 0;
  std::size_t scalars_down = 0;
};

class SyncProtocol {
 public:
  virtual ~SyncProtocol() = default;

  virtual std::string name() const = 0;

  // `client_states[i]` is participant i's local state after its local
  // iterations, starting from the previous round's global state. All spans
  // have identical length = model state size.
  virtual SyncResult synchronize(
      const RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) = 0;

  // Initial global state registration; called once before round 0.
  virtual void initialize(std::span<const float> global_state) = 0;

  // A new client with the given id joined mid-run (paper §V dynamicity).
  // Protocols with per-client state extend their bookkeeping here.
  virtual void on_client_join(int client_id) { (void)client_id; }

  // Extra bytes a late-joining client must download beyond the model itself
  // (e.g. FedSU's predictability mask + no-check periods, §V dynamicity).
  virtual std::size_t join_state_bytes() const { return 0; }

  // A previously-known client reappeared after an absence (crash/rejoin
  // churn, DESIGN.md §10). Its local replica is stale: the server forces a
  // full re-sync, and protocols with per-client speculation state must
  // invalidate it here — a rejoiner must never speculate from a stale slope
  // or contribute a partially-observed error accumulator (docs/
  // FAULT_MODEL.md). Returns the extra bytes the rejoiner re-downloads
  // beyond the model itself. Default: no per-client state, nothing to do.
  virtual std::size_t on_client_rejoin(int client_id) {
    (void)client_id;
    return 0;
  }

  // Resident memory of protocol bookkeeping (Table II memory inflation).
  virtual std::size_t state_bytes() const { return 0; }

  // Serializes the protocol's cross-round state for checkpoint/restart.
  // Protocols without state return an empty buffer; restore() of an empty
  // buffer is a no-op.
  virtual std::vector<std::uint8_t> snapshot() const { return {}; }
  virtual void restore(const std::vector<std::uint8_t>& bytes) {
    if (!bytes.empty()) {
      throw std::logic_error(name() + ": restore not supported");
    }
  }

  // Fraction of model scalars NOT uploaded, averaged over participants, for
  // the most recent round (the paper's "sparsification ratio").
  virtual double last_sparsification_ratio() const { return 0.0; }

  // Structured per-round telemetry for the observability layer (src/obs).
  // Protocols without speculation report the zero defaults.
  struct Telemetry {
    // Share of model scalars updated speculatively / without transmission
    // this round (FedSU: predictable fraction; APF: frozen fraction).
    double speculated_fraction = 0.0;
    // Speculation phases force-ended this round because the error-feedback
    // check failed — each one costs a fallback synchronization.
    std::size_t fallback_syncs = 0;
  };
  virtual Telemetry last_round_telemetry() const { return {}; }
};

// Dense mean of the participants' states (the FedAvg aggregation rule);
// shared by several protocols.
std::vector<float> average_states(
    const std::vector<std::span<const float>>& client_states);

}  // namespace fedsu::compress
