#include "compress/topk.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "compress/wire.h"
#include "io/serialize.h"
#include "obs/trace.h"
#include "util/scratch_arena.h"
#include "util/thread_pool.h"

namespace fedsu::compress {

TopK::TopK(int num_clients, TopKOptions options)
    : options_(options), num_clients_(num_clients) {
  if (num_clients <= 0) throw std::invalid_argument("TopK: num_clients <= 0");
  if (options_.fraction <= 0.0 || options_.fraction > 1.0) {
    throw std::invalid_argument("TopK: fraction out of (0, 1]");
  }
}

void TopK::initialize(std::span<const float> global_state) {
  global_.assign(global_state.begin(), global_state.end());
  residual_.reset(num_clients_, global_.size());
}

void TopK::on_client_join(int client_id) {
  if (client_id != num_clients_) {
    throw std::invalid_argument("TopK: client ids must be contiguous");
  }
  ++num_clients_;
  residual_.add_client();  // no slab until it accumulates
}

std::size_t TopK::on_client_rejoin(int client_id) {
  if (client_id < 0 || client_id >= num_clients_) {
    throw std::out_of_range("TopK: rejoining client id out of range");
  }
  // The rejoiner is force re-synced to the current global model, so the
  // residual it accumulated against its pre-crash trajectory is stale error
  // feedback — replaying it would inject mass that was already corrected by
  // the full re-download. Releasing the slab makes the accumulator exactly
  // zero again (absent == zeros) and returns the memory.
  residual_.release(client_id);
  return 0;  // nothing beyond the model itself to re-download
}

SyncResult TopK::synchronize(
    const RoundContext& ctx,
    const std::vector<std::span<const float>>& client_states) {
  OBS_SPAN("compress.topk.sync");
  const std::size_t p = global_.size();
  const std::size_t n = client_states.size();
  if (n != ctx.participants.size() || n == 0) {
    throw std::invalid_argument("TopK: participants/state mismatch");
  }
  const std::size_t k =
      p == 0 ? 0
             : std::min(p, std::max<std::size_t>(
                               1, static_cast<std::size_t>(std::llround(
                                      options_.fraction *
                                      static_cast<double>(p)))));

  sel_indices_.resize(n * k);
  sel_values_.resize(n * k);

  // Pass 1 — compensate + select, parallel over clients. Each participant
  // owns its residual slab and its [i*k, (i+1)*k) slice of the selection
  // arrays, so chunking over the pool is bitwise identical for every thread
  // count (§5b). Selection is threshold-then-scan: one nth_element over the
  // reused |compensated| buffer finds the k-th largest magnitude, then an
  // ascending scan takes everything strictly above it and breaks ties at
  // the threshold by earliest index — deterministic, and no O(p) index
  // array to rebuild per client.
  auto select_client = [&](std::size_t i0, std::size_t i1) {
    util::ScratchArena& arena = util::ScratchArena::local();
    util::ScratchArena::Frame frame(arena);
    float* comp = arena.floats(p);
    float* mags = arena.floats(p);
    for (std::size_t i = i0; i < i1; ++i) {
      const int client = ctx.participants[i];
      const std::span<const float>& state = client_states[i];
      const float* slab = residual_.slab(client);
      if (slab != nullptr) {
        for (std::size_t j = 0; j < p; ++j) {
          comp[j] = (state[j] - global_[j]) + slab[j];
        }
      } else {  // absent slab reads as exact zeros
        for (std::size_t j = 0; j < p; ++j) comp[j] = state[j] - global_[j];
      }
      if (k == 0) continue;
      for (std::size_t j = 0; j < p; ++j) mags[j] = std::fabs(comp[j]);
      std::nth_element(mags, mags + (k - 1), mags + p, std::greater<float>());
      const float threshold = mags[k - 1];
      std::uint32_t* idx = sel_indices_.data() + i * k;
      float* val = sel_values_.data() + i * k;
      std::size_t taken = 0;
      for (std::size_t j = 0; j < p; ++j) {
        if (std::fabs(comp[j]) > threshold) {
          idx[taken] = static_cast<std::uint32_t>(j);
          val[taken] = comp[j];
          ++taken;
        }
      }
      for (std::size_t j = 0; j < p && taken < k; ++j) {
        if (std::fabs(comp[j]) == threshold) {
          idx[taken] = static_cast<std::uint32_t>(j);
          val[taken] = comp[j];
          ++taken;
        }
      }
      // Residual update: unselected mass carries to the next round. A slab
      // materializes only when some unselected coordinate is nonzero (an
      // all-zero residual is represented by absence, bit-identically).
      float* wslab = residual_.slab(client);
      if (wslab == nullptr) {
        // Zero the selected coordinates in comp, then look for remaining
        // mass: only then is a slab worth materializing.
        for (std::size_t t = 0; t < taken; ++t) comp[idx[t]] = 0.0f;
        bool residual_mass = false;
        for (std::size_t j = 0; j < p && !residual_mass; ++j) {
          residual_mass = comp[j] != 0.0f;
        }
        if (!residual_mass) continue;  // absent slab already reads as zeros
        wslab = residual_.ensure(client);
        for (std::size_t j = 0; j < p; ++j) wslab[j] = comp[j];
        continue;
      }
      for (std::size_t j = 0; j < p; ++j) wslab[j] = comp[j];
      for (std::size_t t = 0; t < taken; ++t) wslab[idx[t]] = 0.0f;
    }
  };
  {
    OBS_SPAN("compress.topk.select");
    util::ThreadPool* pool = &util::ThreadPool::global();
    if (pool->worth_parallelizing() && n > 1) {
      pool->parallel_for(0, n, select_client);
    } else {
      select_client(0, n);
    }
  }

  // Pass 2 — aggregate, serial in ascending client order: each coordinate
  // is touched at most once per client, so the per-coordinate fold order is
  // ascending client id exactly as the historical loop, independent of the
  // per-client selection order above.
  std::size_t union_size = 0;
  {
    OBS_SPAN("compress.topk.aggregate");
    agg_.assign(p, 0.0);
    touched_.assign(p, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t* idx = sel_indices_.data() + i * k;
      const float* val = sel_values_.data() + i * k;
      for (std::size_t t = 0; t < k; ++t) {
        agg_[idx[t]] += val[t];
        touched_[idx[t]] = 1;
      }
    }
    // One O(p)-width write: the union update lands in global_ in place and
    // the result takes a single copy of it (the old code built new_global,
    // copied it into global_, and moved a second copy into the result).
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t j = 0; j < p; ++j) {
      if (!touched_[j]) continue;
      ++union_size;
      global_[j] = static_cast<float>(global_[j] + agg_[j] * inv_n);
    }
  }

  SyncResult result;
  result.new_global = global_;
  // Exact sparse payload sizes without materializing the payloads: each
  // upload carries k (index, value) entries; the broadcast carries the
  // union of touched coordinates (wire::measure_sparse == encoded size).
  const std::size_t up_bytes = wire::measure_sparse(k);
  const std::size_t down_bytes = wire::measure_sparse(union_size);
  if (wire::payload_audit()) {
    OBS_SPAN("compress.topk.encode");
    // Client 0's representative upload, and the broadcast payload.
    std::vector<std::uint32_t> down_indices;
    std::vector<float> down_values;
    down_indices.reserve(union_size);
    down_values.reserve(union_size);
    for (std::size_t j = 0; j < p; ++j) {
      if (!touched_[j]) continue;
      down_indices.push_back(static_cast<std::uint32_t>(j));
      down_values.push_back(global_[j]);
    }
    wire::audit_bytes(
        "topk up", up_bytes,
        wire::encode_sparse(std::span(sel_indices_.data(), k),
                            std::span(sel_values_.data(), k))
            .size());
    wire::audit_bytes("topk down", down_bytes,
                      wire::encode_sparse(down_indices, down_values).size());
  }
  result.bytes_up.assign(n, up_bytes);
  result.bytes_down.assign(n, down_bytes);
  result.scalars_up = k * n;
  result.scalars_down = union_size * n;
  wire::record_round_bytes("topk", up_bytes * n, down_bytes * n);
  last_ratio_ =
      p == 0 ? 0.0 : 1.0 - static_cast<double>(k) / static_cast<double>(p);
  return result;
}

std::size_t TopK::state_bytes() const {
  // Device-side accounting (Table II): the model plus the client's own
  // residual, which is dense on the device — sparsity is a server-side
  // phenomenon driven by never-selected and churned clients.
  return global_.size() * sizeof(float) + global_.size() * sizeof(float);
}

namespace {
constexpr std::uint32_t kTopKSnapshotMagic = 0xFED5701C;
}  // namespace

std::vector<std::uint8_t> TopK::snapshot() const {
  io::BinaryWriter writer;
  writer.write_magic(kTopKSnapshotMagic);
  writer.write_i32(num_clients_);
  writer.write_f64(last_ratio_);
  writer.write_vector(global_);
  residual_.serialize(writer);
  return writer.take();
}

void TopK::restore(const std::vector<std::uint8_t>& bytes) {
  io::BinaryReader reader(bytes);
  reader.expect_magic(kTopKSnapshotMagic, "TopK snapshot");
  num_clients_ = reader.read_i32();
  last_ratio_ = reader.read_f64();
  global_ = reader.read_vector<float>();
  residual_.deserialize(reader, num_clients_, global_.size());
}

}  // namespace fedsu::compress
