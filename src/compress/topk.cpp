#include "compress/topk.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "compress/wire.h"
#include "obs/trace.h"

namespace fedsu::compress {

TopK::TopK(int num_clients, TopKOptions options)
    : options_(options), num_clients_(num_clients) {
  if (num_clients <= 0) throw std::invalid_argument("TopK: num_clients <= 0");
  if (options_.fraction <= 0.0 || options_.fraction > 1.0) {
    throw std::invalid_argument("TopK: fraction out of (0, 1]");
  }
}

void TopK::initialize(std::span<const float> global_state) {
  global_.assign(global_state.begin(), global_state.end());
  residual_.assign(static_cast<std::size_t>(num_clients_),
                   std::vector<float>(global_.size(), 0.0f));
}

void TopK::on_client_join(int client_id) {
  if (client_id != num_clients_) {
    throw std::invalid_argument("TopK: client ids must be contiguous");
  }
  ++num_clients_;
  residual_.emplace_back(global_.size(), 0.0f);
}

SyncResult TopK::synchronize(
    const RoundContext& ctx,
    const std::vector<std::span<const float>>& client_states) {
  OBS_SPAN("compress.topk.sync");
  const std::size_t p = global_.size();
  const std::size_t n = client_states.size();
  if (n != ctx.participants.size() || n == 0) {
    throw std::invalid_argument("TopK: participants/state mismatch");
  }
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(options_.fraction *
                                               static_cast<double>(p))));

  std::vector<double> agg(p, 0.0);
  std::vector<std::uint8_t> touched(p, 0);
  std::vector<float> compensated(p);
  std::vector<std::size_t> order(p);
  std::vector<std::uint32_t> up_indices;
  std::vector<float> up_values;
  up_indices.reserve(k);
  up_values.reserve(k);
  for (std::size_t i = 0; i < n; ++i) {
    auto& res = residual_[static_cast<std::size_t>(ctx.participants[i])];
    for (std::size_t j = 0; j < p; ++j) {
      compensated[j] = (client_states[i][j] - global_[j]) + res[j];
    }
    // Select the k largest |compensated| coordinates.
    for (std::size_t j = 0; j < p; ++j) order[j] = j;
    std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return std::fabs(compensated[a]) >
                              std::fabs(compensated[b]);
                     });
    for (std::size_t r = 0; r < p; ++r) {
      const std::size_t j = order[r];
      if (r < k) {
        agg[j] += compensated[j];
        touched[j] = 1;
        if (i == 0) {
          // Representative upload payload (every client sends k entries).
          up_indices.push_back(static_cast<std::uint32_t>(j));
          up_values.push_back(compensated[j]);
        }
        res[j] = 0.0f;
      } else {
        res[j] = compensated[j];  // remember for the next round
      }
    }
  }

  std::vector<float> new_global = global_;
  std::size_t union_size = 0;
  std::vector<std::uint32_t> down_indices;
  std::vector<float> down_values;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j < p; ++j) {
    if (!touched[j]) continue;
    ++union_size;
    new_global[j] = static_cast<float>(global_[j] + agg[j] * inv_n);
    down_indices.push_back(static_cast<std::uint32_t>(j));
    down_values.push_back(new_global[j]);
  }
  global_ = new_global;

  SyncResult result;
  result.new_global = std::move(new_global);
  // Measured sparse payload sizes: each upload carries k (index, value)
  // entries; the broadcast carries the union of touched coordinates.
  const std::size_t up_bytes = wire::encode_sparse(up_indices, up_values).size();
  const std::size_t down_bytes =
      wire::encode_sparse(down_indices, down_values).size();
  result.bytes_up.assign(n, up_bytes);
  result.bytes_down.assign(n, down_bytes);
  result.scalars_up = k * n;
  result.scalars_down = union_size * n;
  wire::record_round_bytes("topk", up_bytes * n, down_bytes * n);
  last_ratio_ =
      p == 0 ? 0.0 : 1.0 - static_cast<double>(k) / static_cast<double>(p);
  return result;
}

std::size_t TopK::state_bytes() const {
  std::size_t bytes = global_.size() * sizeof(float);
  if (!residual_.empty()) bytes += residual_[0].size() * sizeof(float);
  return bytes;
}

}  // namespace fedsu::compress
