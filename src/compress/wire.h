// Wire payload encoders and exact sizing for the synchronization protocols.
//
// Every protocol's SyncResult byte accounting comes from the measure_*
// functions below: closed-form byte counts proven equal to the encoders'
// output size for every shape (tests/test_comm.cpp checks them
// exhaustively, and the payload-audit mode re-checks at runtime). The hot
// path therefore never materializes a wire buffer just to call .size() on
// it — encoding happens only in round-trip tests, in the fault layer's CRC
// stamping, and when payload auditing is switched on. Decoders are provided
// for round-trip tests; the simulator itself never decodes (client states
// are handed over in memory).
//
// Formats (little-endian, no framing — framing belongs to the transport):
//   dense      count x f32
//   sparse     count x (u32 index, f32 value)
//   signs      ceil(count/8) sign-bit bytes (LSB-first), f32 scale
//   quantized  ceil(count*bits/8) level bytes (LSB-first bitstream of
//              unsigned (level + max_level) in `bits` bits), f32 scale
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fedsu::compress::wire {

// --- Exact sizing (no allocation, no encoding) ---------------------------
//
// Each measure_* returns exactly encode_*(...).size() for a payload with
// `count` entries. The formats above are fixed-width, so the size is a pure
// function of the shape — the protocols' byte accounting calls these every
// round instead of building a buffer (DESIGN.md §15).

constexpr std::size_t measure_dense(std::size_t count) {
  return count * sizeof(float);
}

constexpr std::size_t measure_sparse(std::size_t count) {
  return count * (sizeof(std::uint32_t) + sizeof(float));
}

constexpr std::size_t measure_signs(std::size_t count) {
  return (count + 7) / 8 + sizeof(float);
}

constexpr std::size_t measure_quantized(std::size_t count, int bits) {
  return (count * static_cast<std::size_t>(bits) + 7) / 8 + sizeof(float);
}

// --- Payload audit -------------------------------------------------------
//
// With auditing on, every protocol still builds its representative wire
// payload through the encoders and cross-checks the measured size against
// the encoded one, throwing std::logic_error on any mismatch. Off (the
// default) the hot path is sizing-only. Tests flip this on to prove the
// measure/encode split lossless end to end; a debugging session can flip it
// on to dump/inspect real bytes. Not thread-safe: set it before the run.
void set_payload_audit(bool enabled);
bool payload_audit();

// Throws std::logic_error naming `what` unless measured == encoded.
void audit_bytes(const char* what, std::size_t measured, std::size_t encoded);

std::vector<std::uint8_t> encode_dense(std::span<const float> values);
std::vector<float> decode_dense(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_sparse(
    std::span<const std::uint32_t> indices, std::span<const float> values);
struct SparsePayload {
  std::vector<std::uint32_t> indices;
  std::vector<float> values;
};
SparsePayload decode_sparse(const std::vector<std::uint8_t>& bytes);

// `signs[i]` is 0 or 1 (1 = positive).
std::vector<std::uint8_t> encode_signs(std::span<const std::uint8_t> signs,
                                       float scale);
struct SignsPayload {
  std::vector<std::uint8_t> signs;
  float scale = 0.0f;
};
SignsPayload decode_signs(const std::vector<std::uint8_t>& bytes,
                          std::size_t count);

// `levels[i]` in [-max_level, max_level] with max_level = 2^(bits-1) - 1.
std::vector<std::uint8_t> encode_quantized(std::span<const std::int32_t> levels,
                                           int bits, float scale);
struct QuantizedPayload {
  std::vector<std::int32_t> levels;
  float scale = 0.0f;
};
QuantizedPayload decode_quantized(const std::vector<std::uint8_t>& bytes,
                                  std::size_t count, int bits);

// CRC-32 (IEEE 802.3 polynomial, bit-reflected) over a payload. The fault
// layer (fl/faults, DESIGN.md §10) stamps every simulated upload with this
// checksum so corrupted-in-transit payloads are detected and discarded; any
// single-bit flip changes the CRC.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

// Adds one round's totals to the global metrics registry counters
// `compress.<protocol>.rounds` / `.bytes_up` / `.bytes_down`. No-op unless
// obs metrics are enabled; called once per round, so the name lookup is off
// any hot path.
void record_round_bytes(const char* protocol, std::size_t bytes_up,
                        std::size_t bytes_down);

}  // namespace fedsu::compress::wire
