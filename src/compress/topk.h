// Top-K gradient sparsification with local error memory (classic sparsified
// SGD, e.g. Stich et al.). Not evaluated in the paper but a standard point
// of comparison for sparsification-style schemes (§II-B).
//
// Each client uploads only the k-fraction of update entries with the largest
// magnitude; the remainder is kept in a local residual and added to the next
// round's update. The server averages the sparse contributions; the global
// model changes only at the union of uploaded coordinates, and only that
// union is broadcast back.
//
// Hot-path design (DESIGN.md §15): residuals live in a lazily-allocated
// core::SparseErrorStore (slab on first nonzero, released on rejoin) instead
// of a dense clients x params matrix; the per-client compensate+select work
// runs in parallel over util::ThreadPool with per-client-owned outputs, so
// results are bitwise identical for every thread count (§5b); selection is
// threshold-then-scan — one nth_element over a reused |compensated| value
// buffer, then an ascending index scan with earliest-index tie-breaking at
// the threshold (deterministic, unlike partitioning an index array); and
// byte accounting is wire::measure_sparse, so no wire buffer is built
// outside payload-audit mode. Steady-state rounds allocate nothing beyond
// the returned SyncResult (tests/test_comm.cpp counts operator new).
#pragma once

#include "compress/protocol.h"
#include "core/error_store.h"

namespace fedsu::compress {

struct TopKOptions {
  double fraction = 0.1;  // fraction of coordinates uploaded per client
};

class TopK : public SyncProtocol {
 public:
  explicit TopK(int num_clients, TopKOptions options = {});

  std::string name() const override { return "TopK"; }
  void initialize(std::span<const float> global_state) override;
  void on_client_join(int client_id) override;
  std::size_t on_client_rejoin(int client_id) override;
  SyncResult synchronize(
      const RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override;
  std::size_t state_bytes() const override;
  double last_sparsification_ratio() const override { return last_ratio_; }
  std::vector<std::uint8_t> snapshot() const override;
  void restore(const std::vector<std::uint8_t>& bytes) override;

  // Residual slabs currently resident server-side (bench/test introspection;
  // the dense design held one slab per client unconditionally).
  std::size_t resident_residual_slabs() const {
    return residual_.allocated_slabs();
  }

 private:
  TopKOptions options_;
  int num_clients_;
  std::vector<float> global_;
  core::SparseErrorStore residual_;  // per client id, slab on first nonzero
  double last_ratio_ = 0.0;

  // Round-loop scratch, sized on first use and reused thereafter so the
  // steady state is heap-allocation-free. sel_* hold each participant's k
  // selected (coordinate, compensated-value) pairs, written by the parallel
  // select pass (client i owns [i*k, (i+1)*k)) and folded serially in
  // ascending client order by the aggregation pass.
  std::vector<std::uint32_t> sel_indices_;
  std::vector<float> sel_values_;
  std::vector<double> agg_;
  std::vector<std::uint8_t> touched_;
};

}  // namespace fedsu::compress
