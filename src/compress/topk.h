// Top-K gradient sparsification with local error memory (classic sparsified
// SGD, e.g. Stich et al.). Not evaluated in the paper but a standard point
// of comparison for sparsification-style schemes (§II-B).
//
// Each client uploads only the k-fraction of update entries with the largest
// magnitude; the remainder is kept in a local residual and added to the next
// round's update. The server averages the sparse contributions; the global
// model changes only at the union of uploaded coordinates, and only that
// union is broadcast back.
#pragma once

#include "compress/protocol.h"

namespace fedsu::compress {

struct TopKOptions {
  double fraction = 0.1;  // fraction of coordinates uploaded per client
};

class TopK : public SyncProtocol {
 public:
  explicit TopK(int num_clients, TopKOptions options = {});

  std::string name() const override { return "TopK"; }
  void initialize(std::span<const float> global_state) override;
  void on_client_join(int client_id) override;
  SyncResult synchronize(
      const RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override;
  std::size_t state_bytes() const override;
  double last_sparsification_ratio() const override { return last_ratio_; }

 private:
  TopKOptions options_;
  int num_clients_;
  std::vector<float> global_;
  std::vector<std::vector<float>> residual_;  // per client id
  double last_ratio_ = 0.0;
};

}  // namespace fedsu::compress
