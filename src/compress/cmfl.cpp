#include "compress/cmfl.h"

#include <stdexcept>

#include "compress/wire.h"
#include "obs/trace.h"
#include "util/reduce.h"
#include "util/thread_pool.h"

namespace fedsu::compress {

Cmfl::Cmfl(CmflOptions options) : options_(options) {
  if (options_.relevance_threshold < 0.0 || options_.relevance_threshold > 1.0) {
    throw std::invalid_argument("Cmfl: relevance threshold out of [0, 1]");
  }
}

void Cmfl::initialize(std::span<const float> global_state) {
  global_.assign(global_state.begin(), global_state.end());
  prev_update_.assign(global_state.size(), 0.0f);
  has_prev_update_ = false;
}

SyncResult Cmfl::synchronize(
    const RoundContext& ctx,
    const std::vector<std::span<const float>>& client_states) {
  OBS_SPAN("compress.cmfl.sync");
  if (client_states.size() != ctx.participants.size()) {
    throw std::invalid_argument("Cmfl: participants/state count mismatch");
  }
  const std::size_t p = global_.size();
  const std::size_t n = client_states.size();
  last_relevances_.assign(n, 1.0);

  // Decide which clients report. Round 0 has no reference update: everyone
  // reports (matching the CMFL paper's warm-up behaviour). Each client's
  // check only reads shared state and writes its own slots, so the pass
  // chunks over the pool with identical results for any thread count.
  reports_.assign(n, 1);
  if (has_prev_update_) {
    auto relevance = [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        std::size_t agree = 0;
        for (std::size_t j = 0; j < p; ++j) {
          const float u = client_states[i][j] - global_[j];
          // Zero entries count as agreeing: they cannot hurt the global
          // direction (and exact zeros are rare for float updates anyway).
          const bool sign_u = u >= 0.0f;
          const bool sign_g = prev_update_[j] >= 0.0f;
          if (u == 0.0f || prev_update_[j] == 0.0f || sign_u == sign_g) ++agree;
        }
        last_relevances_[i] =
            p == 0 ? 1.0 : static_cast<double>(agree) / static_cast<double>(p);
        reports_[i] =
            last_relevances_[i] >= options_.relevance_threshold ? 1 : 0;
      }
    };
    OBS_SPAN("compress.cmfl.relevance");
    util::ThreadPool& pool = util::ThreadPool::global();
    if (pool.worth_parallelizing() && n > 1) {
      pool.parallel_for(0, n, relevance);
    } else {
      relevance(0, n);
    }
  }

  // Aggregate the reporting clients; if every update was withheld, the
  // global state stays put for this round.
  std::size_t reporting = 0;
  {
    OBS_SPAN("compress.cmfl.aggregate");
    reporting_rows_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (reports_[i]) reporting_rows_.push_back(client_states[i]);
    }
    reporting = reporting_rows_.size();
    if (reporting > 0) {
      acc_.assign(p, 0.0);
      util::column_sums(reporting_rows_, acc_, &util::ThreadPool::global());
      const double inv = 1.0 / static_cast<double>(reporting);
      // In-place global update; prev_update_ tracks the step for next
      // round's relevance checks, and the result takes the single copy.
      for (std::size_t j = 0; j < p; ++j) {
        const float next = static_cast<float>(acc_[j] * inv);
        prev_update_[j] = next - global_[j];
        global_[j] = next;
      }
    } else {
      for (std::size_t j = 0; j < p; ++j) prev_update_[j] = 0.0f;
    }
    has_prev_update_ = true;
  }

  SyncResult result;
  result.new_global = global_;
  // Measured dense payload: a reporting upload and every download carry the
  // full state (all the same length; the broadcast is representative).
  const std::size_t full_bytes = wire::measure_dense(p);
  if (wire::payload_audit()) {
    OBS_SPAN("compress.cmfl.encode");
    wire::audit_bytes("cmfl down", full_bytes,
                      wire::encode_dense(global_).size());
  }
  result.bytes_up.resize(n);
  result.bytes_down.assign(n, full_bytes);  // everyone downloads the model
  std::size_t total_up = 0;
  for (std::size_t i = 0; i < n; ++i) {
    result.bytes_up[i] = reports_[i] ? full_bytes : 0;
    total_up += result.bytes_up[i];
    result.scalars_up += reports_[i] ? p : 0;
  }
  result.scalars_down = p * n;
  wire::record_round_bytes("cmfl", total_up, full_bytes * n);
  last_ratio_ = n == 0 ? 0.0
                       : 1.0 - static_cast<double>(reporting) /
                                   static_cast<double>(n);
  return result;
}

std::size_t Cmfl::state_bytes() const {
  return (global_.size() + prev_update_.size()) * sizeof(float);
}

}  // namespace fedsu::compress
