// signSGD with majority vote (Bernstein et al., ICML'18): clients upload one
// sign bit per coordinate plus a scalar step size; the server takes the
// element-wise majority. An extreme-quantization point of comparison for the
// related-work spectrum (§II-B).
//
// Hot-path design (DESIGN.md §15): the vote pass runs in parallel over
// fixed kReduceClientBlock-client blocks, each folding its rows into a
// private int vote panel and a double |update| partial; panels combine in
// ascending block order (integer votes are exact, the double partials keep
// the §5b fixed reduction shape — a single block is the historical serial
// chain bit-for-bit). Byte accounting is wire::measure_signs; the encoder
// only runs in payload-audit mode.
#pragma once

#include "compress/protocol.h"

namespace fedsu::compress {

struct SignSgdOptions {
  // Server step applied along the majority sign, as a fraction of the mean
  // per-round update magnitude observed so far (adaptive scale).
  double step_scale = 1.0;
};

class SignSgd : public SyncProtocol {
 public:
  explicit SignSgd(SignSgdOptions options = {});

  std::string name() const override { return "signSGD"; }
  void initialize(std::span<const float> global_state) override;
  SyncResult synchronize(
      const RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override;
  std::size_t state_bytes() const override;

 private:
  SignSgdOptions options_;
  std::vector<float> global_;
  float step_ = 0.0f;  // adaptive per-coordinate step magnitude

  // Round-loop scratch, reused so the steady state is allocation-free:
  // block b owns vote_panels_[b*p, (b+1)*p) and abs_partials_[b].
  std::vector<int> vote_panels_;
  std::vector<double> abs_partials_;
};

}  // namespace fedsu::compress
