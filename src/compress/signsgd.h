// signSGD with majority vote (Bernstein et al., ICML'18): clients upload one
// sign bit per coordinate plus a scalar step size; the server takes the
// element-wise majority. An extreme-quantization point of comparison for the
// related-work spectrum (§II-B).
#pragma once

#include "compress/protocol.h"

namespace fedsu::compress {

struct SignSgdOptions {
  // Server step applied along the majority sign, as a fraction of the mean
  // per-round update magnitude observed so far (adaptive scale).
  double step_scale = 1.0;
};

class SignSgd : public SyncProtocol {
 public:
  explicit SignSgd(SignSgdOptions options = {});

  std::string name() const override { return "signSGD"; }
  void initialize(std::span<const float> global_state) override;
  SyncResult synchronize(
      const RoundContext& ctx,
      const std::vector<std::span<const float>>& client_states) override;
  std::size_t state_bytes() const override;

 private:
  SignSgdOptions options_;
  std::vector<float> global_;
  float step_ = 0.0f;  // adaptive per-coordinate step magnitude
};

}  // namespace fedsu::compress
