#include "compress/signsgd.h"

#include <cmath>
#include <stdexcept>

#include "compress/wire.h"
#include "obs/trace.h"

namespace fedsu::compress {

SignSgd::SignSgd(SignSgdOptions options) : options_(options) {
  if (options_.step_scale <= 0.0) {
    throw std::invalid_argument("SignSgd: step_scale <= 0");
  }
}

void SignSgd::initialize(std::span<const float> global_state) {
  global_.assign(global_state.begin(), global_state.end());
  step_ = 0.0f;
}

SyncResult SignSgd::synchronize(
    const RoundContext& ctx,
    const std::vector<std::span<const float>>& client_states) {
  OBS_SPAN("compress.signsgd.sync");
  const std::size_t p = global_.size();
  const std::size_t n = client_states.size();
  if (n != ctx.participants.size() || n == 0) {
    throw std::invalid_argument("SignSgd: participants/state mismatch");
  }
  // Majority vote over update signs; track mean |update| to size the step.
  std::vector<int> votes(p, 0);
  std::vector<std::uint8_t> up_signs(p, 0);  // client 0's wire mask
  double abs_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      const float u = client_states[i][j] - global_[j];
      votes[j] += (u > 0.0f) - (u < 0.0f);
      if (i == 0) up_signs[j] = u > 0.0f ? 1 : 0;
      abs_sum += std::fabs(u);
    }
  }
  const float mean_abs =
      static_cast<float>(abs_sum / (static_cast<double>(p) * n));
  // Adaptive step: EMA of the observed mean magnitude.
  step_ = step_ == 0.0f ? mean_abs : 0.9f * step_ + 0.1f * mean_abs;
  const float step = static_cast<float>(options_.step_scale) * step_;

  std::vector<float> new_global = global_;
  for (std::size_t j = 0; j < p; ++j) {
    if (votes[j] > 0) {
      new_global[j] += step;
    } else if (votes[j] < 0) {
      new_global[j] -= step;
    }
  }
  global_ = new_global;

  SyncResult result;
  result.new_global = std::move(new_global);
  // Measured payload: one sign bit per coordinate (packed) plus one f32
  // each way — the client's local mean |update| up, the global step down.
  const std::size_t bytes = wire::encode_signs(up_signs, step_).size();
  result.bytes_up.assign(n, bytes);
  result.bytes_down.assign(n, bytes);
  result.scalars_up = p * n;
  result.scalars_down = p * n;
  wire::record_round_bytes("signsgd", bytes * n, bytes * n);
  return result;
}

std::size_t SignSgd::state_bytes() const {
  return global_.size() * sizeof(float) + sizeof(float);
}

}  // namespace fedsu::compress
