#include "compress/signsgd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "compress/wire.h"
#include "obs/trace.h"
#include "util/reduce.h"
#include "util/thread_pool.h"

namespace fedsu::compress {

SignSgd::SignSgd(SignSgdOptions options) : options_(options) {
  if (options_.step_scale <= 0.0) {
    throw std::invalid_argument("SignSgd: step_scale <= 0");
  }
}

void SignSgd::initialize(std::span<const float> global_state) {
  global_.assign(global_state.begin(), global_state.end());
  step_ = 0.0f;
}

SyncResult SignSgd::synchronize(
    const RoundContext& ctx,
    const std::vector<std::span<const float>>& client_states) {
  OBS_SPAN("compress.signsgd.sync");
  const std::size_t p = global_.size();
  const std::size_t n = client_states.size();
  if (n != ctx.participants.size() || n == 0) {
    throw std::invalid_argument("SignSgd: participants/state mismatch");
  }
  // Majority vote over update signs; track mean |update| to size the step.
  // Each block folds its rows row-major into a private vote panel and a
  // private double partial, exactly the historical serial loop restricted to
  // the block's rows, so any thread count produces the same panels.
  const std::size_t block = util::kReduceClientBlock;
  const std::size_t num_blocks = (n + block - 1) / block;
  vote_panels_.assign(num_blocks * p, 0);
  abs_partials_.assign(num_blocks, 0.0);
  auto run_blocks = [&](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      int* votes = vote_panels_.data() + b * p;
      double abs_sum = 0.0;
      const std::size_t hi = std::min(n, (b + 1) * block);
      for (std::size_t i = b * block; i < hi; ++i) {
        for (std::size_t j = 0; j < p; ++j) {
          const float u = client_states[i][j] - global_[j];
          votes[j] += (u > 0.0f) - (u < 0.0f);
          abs_sum += std::fabs(u);
        }
      }
      abs_partials_[b] = abs_sum;
    }
  };
  {
    OBS_SPAN("compress.signsgd.vote");
    util::ThreadPool& pool = util::ThreadPool::global();
    if (pool.worth_parallelizing() && num_blocks > 1) {
      pool.parallel_for(0, num_blocks, run_blocks);
    } else {
      run_blocks(0, num_blocks);
    }
  }

  // Measured payload: one sign bit per coordinate (packed) plus one f32
  // each way — the client's local mean |update| up, the global step down.
  const std::size_t bytes = wire::measure_signs(p);
  if (wire::payload_audit()) {
    OBS_SPAN("compress.signsgd.encode");
    // Client 0's wire mask, rebuilt against the pre-update global state.
    std::vector<std::uint8_t> up_signs(p, 0);
    for (std::size_t j = 0; j < p; ++j) {
      up_signs[j] = client_states[0][j] - global_[j] > 0.0f ? 1 : 0;
    }
    wire::audit_bytes("signsgd up", bytes,
                      wire::encode_signs(up_signs, 0.0f).size());
  }

  {
    OBS_SPAN("compress.signsgd.aggregate");
    // Combine in ascending block order: votes into the block-0 panel
    // (integer adds, exact in any order), |update| partials as a short
    // double chain — with n <= kReduceClientBlock both degenerate to the
    // historical single accumulators.
    int* votes = vote_panels_.data();
    double abs_sum = abs_partials_[0];
    for (std::size_t b = 1; b < num_blocks; ++b) {
      const int* panel = vote_panels_.data() + b * p;
      for (std::size_t j = 0; j < p; ++j) votes[j] += panel[j];
      abs_sum += abs_partials_[b];
    }
    const float mean_abs =
        static_cast<float>(abs_sum / (static_cast<double>(p) * n));
    // Adaptive step: EMA of the observed mean magnitude.
    step_ = step_ == 0.0f ? mean_abs : 0.9f * step_ + 0.1f * mean_abs;
    const float step = static_cast<float>(options_.step_scale) * step_;
    for (std::size_t j = 0; j < p; ++j) {
      if (votes[j] > 0) {
        global_[j] += step;
      } else if (votes[j] < 0) {
        global_[j] -= step;
      }
    }
  }

  SyncResult result;
  result.new_global = global_;
  result.bytes_up.assign(n, bytes);
  result.bytes_down.assign(n, bytes);
  result.scalars_up = p * n;
  result.scalars_down = p * n;
  wire::record_round_bytes("signsgd", bytes * n, bytes * n);
  return result;
}

std::size_t SignSgd::state_bytes() const {
  return global_.size() * sizeof(float) + sizeof(float);
}

}  // namespace fedsu::compress
