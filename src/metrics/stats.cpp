#include "metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedsu::metrics {

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Cdf::quantile(double q) const {
  if (values_.empty()) throw std::logic_error("Cdf::quantile: no samples");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Cdf::quantile: bad q");
  ensure_sorted();
  const std::size_t rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(values_.size()) - 1.0,
                       std::floor(q * static_cast<double>(values_.size()))));
  return values_[rank];
}

double Cdf::fraction_below(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

std::vector<std::pair<double, double>> Cdf::curve(int points) const {
  if (points < 2) throw std::invalid_argument("Cdf::curve: points < 2");
  std::vector<std::pair<double, double>> out;
  if (values_.empty()) return out;
  ensure_sorted();
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / (points - 1);
    const std::size_t rank = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(values_.size()) - 1.0,
                         std::round(q * (static_cast<double>(values_.size()) - 1))));
    out.emplace_back(values_[rank], q);
  }
  return out;
}

double NormalizedDifference::observe(const std::vector<float>& update) {
  double nd = -1.0;
  if (has_prev_) {
    if (update.size() != prev_update_.size()) {
      throw std::invalid_argument("NormalizedDifference: size mismatch");
    }
    double diff2 = 0.0, prev2 = 0.0;
    for (std::size_t i = 0; i < update.size(); ++i) {
      const double d = static_cast<double>(update[i]) - prev_update_[i];
      diff2 += d * d;
      prev2 += static_cast<double>(prev_update_[i]) * prev_update_[i];
    }
    nd = prev2 > 0.0 ? std::sqrt(diff2) / std::sqrt(prev2) : 0.0;
    history_.push_back(nd);
  }
  prev_update_ = update;
  has_prev_ = true;
  return nd;
}

TrajectoryRecorder::TrajectoryRecorder(std::vector<std::size_t> indices)
    : indices_(std::move(indices)), series_(indices_.size()) {}

void TrajectoryRecorder::record(const std::vector<float>& state) {
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    if (indices_[i] >= state.size()) {
      throw std::out_of_range("TrajectoryRecorder: index out of range");
    }
    series_[i].push_back(state[indices_[i]]);
  }
}

}  // namespace fedsu::metrics
