#include "metrics/convergence.h"

#include <stdexcept>

namespace fedsu::metrics {

ConvergenceTracker::ConvergenceTracker(float target_accuracy)
    : target_(target_accuracy) {
  if (target_accuracy <= 0.0f || target_accuracy > 1.0f) {
    throw std::invalid_argument("ConvergenceTracker: target out of (0, 1]");
  }
}

void ConvergenceTracker::observe(const fl::RoundRecord& record) {
  if (!record.test_accuracy) return;
  best_accuracy_ = std::max(best_accuracy_, *record.test_accuracy);
  if (!reached_ && *record.test_accuracy >= target_) {
    reached_ = {record.elapsed_time_s, record.round + 1};
  }
}

double ConvergenceTracker::time_to_target_s() const {
  if (!reached_) throw std::logic_error("ConvergenceTracker: not reached");
  return reached_->first;
}

int ConvergenceTracker::rounds_to_target() const {
  if (!reached_) throw std::logic_error("ConvergenceTracker: not reached");
  return reached_->second;
}

RunSummary summarize(const std::vector<fl::RoundRecord>& records) {
  RunSummary s;
  s.rounds = static_cast<int>(records.size());
  double ratio_sum = 0.0;
  double bytes = 0.0;
  for (const auto& r : records) {
    s.total_time_s = r.elapsed_time_s;
    ratio_sum += r.sparsification_ratio;
    bytes += static_cast<double>(r.bytes_up + r.bytes_down);
    if (r.test_accuracy) {
      s.final_accuracy = *r.test_accuracy;
      s.best_accuracy = std::max(s.best_accuracy, *r.test_accuracy);
    }
  }
  if (s.rounds > 0) {
    s.mean_round_time_s = s.total_time_s / s.rounds;
    s.mean_sparsification_ratio = ratio_sum / s.rounds;
  }
  s.total_gigabytes = bytes / 1e9;
  return s;
}

}  // namespace fedsu::metrics
