// Small statistics helpers: CDFs (Figs. 2b, 7), the normalized-difference
// metric (Fig. 2), and per-parameter trajectory recording (Figs. 1, 6).
#pragma once

#include <cstddef>
#include <vector>

namespace fedsu::metrics {

// Accumulates samples; answers quantile queries and dumps CDF points.
class Cdf {
 public:
  void add(double value) { values_.push_back(value); }
  std::size_t count() const { return values_.size(); }

  // q in [0, 1]; nearest-rank quantile.
  double quantile(double q) const;

  // Fraction of samples <= x.
  double fraction_below(double x) const;

  // `points` evenly-spaced CDF samples as (value, cumulative fraction).
  std::vector<std::pair<double, double>> curve(int points = 50) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

// Normalized difference (CMFL's metric, paper Fig. 2):
//   ND_k = ||delta_{k} - delta_{k-1}|| / ||delta_{k-1}||
// where delta_k is the round-k global update vector.
class NormalizedDifference {
 public:
  // Feeds the round's update; returns ND when two updates are available.
  // Returns a negative value on the first call (no reference yet).
  double observe(const std::vector<float>& update);

  const std::vector<double>& history() const { return history_; }

 private:
  std::vector<float> prev_update_;
  bool has_prev_ = false;
  std::vector<double> history_;
};

// Records the value of chosen state coordinates every round.
class TrajectoryRecorder {
 public:
  explicit TrajectoryRecorder(std::vector<std::size_t> indices);

  void record(const std::vector<float>& state);

  const std::vector<std::size_t>& indices() const { return indices_; }
  // series()[i][r]: value of tracked coordinate i at recorded round r.
  const std::vector<std::vector<float>>& series() const { return series_; }

 private:
  std::vector<std::size_t> indices_;
  std::vector<std::vector<float>> series_;
};

}  // namespace fedsu::metrics
