// Time-to-accuracy tracking (Table I) and round-record summaries.
#pragma once

#include <optional>
#include <vector>

#include "fl/simulation.h"

namespace fedsu::metrics {

// Watches a stream of RoundRecords for the first test evaluation reaching a
// target accuracy.
class ConvergenceTracker {
 public:
  explicit ConvergenceTracker(float target_accuracy);

  void observe(const fl::RoundRecord& record);

  bool reached() const { return reached_.has_value(); }
  // Simulated seconds / rounds when the target was first reached.
  double time_to_target_s() const;
  int rounds_to_target() const;
  float best_accuracy() const { return best_accuracy_; }

 private:
  float target_;
  std::optional<std::pair<double, int>> reached_;  // (elapsed time, round+1)
  float best_accuracy_ = 0.0f;
};

struct RunSummary {
  int rounds = 0;
  double total_time_s = 0.0;
  double mean_round_time_s = 0.0;
  double mean_sparsification_ratio = 0.0;
  double total_gigabytes = 0.0;  // up + down, all participants
  float final_accuracy = 0.0f;
  float best_accuracy = 0.0f;
};

RunSummary summarize(const std::vector<fl::RoundRecord>& records);

}  // namespace fedsu::metrics
