// Round-trace logger: appends one CSV row per RoundRecord so long
// experiments can be inspected / re-plotted without re-running.
//
// Durability: every appended row is flushed to the OS immediately, so a
// crashed or killed run keeps its partial trace (the destructor adds
// nothing beyond closing the already-flushed stream).
#pragma once

#include <memory>
#include <string>

#include "fl/simulation.h"
#include "util/csv.h"

namespace fedsu::fl {

class RoundTrace {
 public:
  // Opens `path` and writes the header row.
  explicit RoundTrace(const std::string& path);

  void append(const RoundRecord& record);

  // Installable hook for Simulation::set_round_hook.
  std::function<void(const RoundRecord&)> hook();

  int rows_written() const { return rows_; }

 private:
  util::CsvWriter csv_;
  int rows_ = 0;
};

}  // namespace fedsu::fl
