#include "fl/simulation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "compress/wire.h"
#include "net/round_timeline.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedsu::fl {

namespace {

// Flushes one round's fault tallies into the metrics registry (no-op with
// metrics off). faults.crashes counts onsets and is recorded separately,
// where the round summary is in scope.
void add_fault_counters(const RoundRecord::FaultCounters& counters,
                        int uploads_lost) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("faults.resyncs").add(static_cast<std::uint64_t>(counters.resyncs));
  reg.counter("faults.retries").add(static_cast<std::uint64_t>(counters.retries));
  reg.counter("faults.stragglers")
      .add(static_cast<std::uint64_t>(counters.stragglers));
  reg.counter("faults.corrupt").add(static_cast<std::uint64_t>(counters.corrupt));
  reg.counter("faults.lost_uploads")
      .add(static_cast<std::uint64_t>(uploads_lost));
  reg.counter("faults.deadline_missed")
      .add(static_cast<std::uint64_t>(counters.deadline_missed));
  if (!counters.quorum_met) reg.counter("faults.quorum_stalls").add(1);
}

}  // namespace

Simulation::Simulation(SimulationOptions options,
                       std::unique_ptr<compress::SyncProtocol> protocol)
    : options_(std::move(options)),
      protocol_(std::move(protocol)),
      data_(data::generate_synthetic(options_.dataset)),
      scratch_model_(nn::build_model(options_.model, util::Rng(options_.seed))),
      network_(options_.num_clients, options_.network) {
  if (!protocol_) throw std::invalid_argument("Simulation: null protocol");
  if (options_.num_clients <= 0) {
    throw std::invalid_argument("Simulation: num_clients <= 0");
  }
  if (util::ThreadPool::resolve_threads(options_.threads) > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  }
  if (options_.participation_fraction <= 0.0 ||
      options_.participation_fraction > 1.0) {
    throw std::invalid_argument("Simulation: participation fraction out of (0,1]");
  }

  // Fold the legacy flat upload-loss knob into the fault plan so there is a
  // single failure mechanism. The fault stream is salted with the
  // simulation seed: two runs differing only in `seed` see different fault
  // realizations (matching the historical loss behaviour), while fixing
  // both seeds pins the schedule for controlled comparisons.
  FaultOptions fault_options = options_.faults;
  if (fault_options.upload_loss_probability == 0.0 &&
      options_.upload_loss_probability > 0.0) {
    fault_options.upload_loss_probability = options_.upload_loss_probability;
  }
  fault_options.seed ^= options_.seed;
  faults_ = FaultPlan(fault_options);

  // Partition the training data across clients (Dirichlet label skew).
  data::PartitionOptions part;
  part.num_clients = options_.num_clients;
  part.alpha = options_.dirichlet_alpha;
  part.seed = options_.seed ^ 0x5bd1e995;
  const auto shards = data::dirichlet_partition(data_.train, part);

  util::Rng client_rng(options_.seed ^ 0x2545f491);
  clients_.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    clients_.push_back(std::make_unique<Client>(
        static_cast<int>(i), data_.train.subset(shards[i]),
        options_.local.batch_size, client_rng.fork(i)));
  }
  active_.assign(clients_.size(), true);

  global_ = scratch_model_.state_vector();
  protocol_->initialize(global_);
  last_mean_payload_bytes_ = static_cast<double>(global_.size()) * sizeof(float);
}

double Simulation::model_flops_per_round() const {
  // Forward + backward is roughly 3x a forward pass.
  return 3.0 * options_.model.flops_per_sample * options_.local.batch_size *
         options_.local.iterations;
}

std::vector<int> Simulation::select_participants(int round) {
  // All active clients start the round; the server keeps the fraction that
  // finishes earliest. Finish times are estimated with the previous round's
  // mean payload (payload differences across clients within a protocol are
  // second-order; compute heterogeneity dominates the ordering).
  const bool faulty = faults_.enabled();
  std::vector<int> active_ids;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (!active_[i]) continue;
    if (faulty && faults_.is_absent(static_cast<int>(i))) continue;
    active_ids.push_back(static_cast<int>(i));
  }
  if (active_ids.empty()) {
    // With churn this is a legitimate (if bleak) state — every client is
    // down and the round stalls; without it, it is caller error.
    if (faulty) {
      select_target_ = 0;
      return {};
    }
    throw std::logic_error("Simulation: no active clients");
  }
  const std::size_t target = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(options_.participation_fraction *
                       static_cast<double>(active_ids.size()))));
  select_target_ = target;
  std::size_t take = target;
  if (faulty && faults_.options().over_select_fraction > 0.0) {
    // Over-selection: the server starts extra clients beyond the
    // aggregation target so lost/late uploads can be backfilled.
    take = std::min(
        active_ids.size(),
        std::max(target,
                 static_cast<std::size_t>(std::ceil(
                     (options_.participation_fraction +
                      faults_.options().over_select_fraction) *
                     static_cast<double>(active_ids.size())))));
  }
  std::vector<int> chosen;
  chosen.reserve(take);
  if (options_.participation == SimulationOptions::Participation::kUniform) {
    util::Rng pick(options_.seed ^ 0x5e1ec7 ^
                   (0x9e3779b97f4a7c15ULL * (round + 1)));
    const auto perm = pick.permutation(active_ids.size());
    for (std::size_t i = 0; i < take; ++i) {
      chosen.push_back(active_ids[perm[i]]);
    }
  } else {
    const double flops = model_flops_per_round();
    const auto est_bytes = static_cast<std::size_t>(last_mean_payload_bytes_);
    std::vector<std::pair<double, int>> finish;
    finish.reserve(active_ids.size());
    for (int id : active_ids) {
      double t;
      if (faulty) {
        // Straggler multipliers feed the estimate, so the earliest cut
        // reshuffles when a fast client has a slow round. With unit
        // factors this decomposition equals client_round_time exactly.
        const ClientFault& f = faults_.fault(id);
        t = network_.compute_time(id, round, flops) * f.compute_factor +
            network_.comm_time(id, est_bytes, est_bytes,
                               static_cast<int>(active_ids.size())) *
                f.comm_factor;
      } else {
        t = network_.client_round_time(id, round, flops, est_bytes, est_bytes,
                                       static_cast<int>(active_ids.size()));
      }
      finish.emplace_back(t, id);
    }
    std::sort(finish.begin(), finish.end());
    for (std::size_t i = 0; i < take && i < finish.size(); ++i) {
      chosen.push_back(finish[i].second);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

RoundRecord Simulation::stalled_round(int round, double round_time,
                                      RoundRecord::FaultCounters counters) {
  elapsed_time_s_ += round_time;
  ++round_;
  RoundRecord record;
  record.round = round;
  record.uploads_lost = counters.selected - counters.corrupt -
                        counters.deadline_missed - counters.unused;
  record.round_time_s = round_time;
  record.elapsed_time_s = elapsed_time_s_;
  record.num_participants = 0;
  counters.quorum_met = false;
  record.faults = counters;
  add_fault_counters(counters, record.uploads_lost);
  if (options_.eval_every > 0 && (round_ % options_.eval_every == 0)) {
    record.test_accuracy = evaluate();
  }
  if (round_hook_) round_hook_(record);
  return record;
}

RoundRecord Simulation::step() {
  OBS_SPAN("sim.round");
  const int round = round_;
  // Wall-clock phase attribution (host time, gated so the disabled path
  // costs one clock read per round and nothing else). Never feeds back
  // into the simulated clock.
  const bool wall_on = obs::metrics_enabled();
  util::Stopwatch wall_sw;
  RoundRecord::WallPhases wall;

  const bool faulty = faults_.enabled();
  RoundRecord::FaultCounters fc;
  std::size_t resync_bytes_total = 0;
  std::size_t resync_bytes_each = 0;
  if (faulty) {
    faults_.begin_round(round, static_cast<int>(clients_.size()));
    const FaultPlan::RoundSummary& summary = faults_.round_summary();
    fc.crashed = summary.absent;
    if (obs::metrics_enabled() && summary.onsets > 0) {
      obs::MetricsRegistry::global()
          .counter("faults.crashes")
          .add(static_cast<std::uint64_t>(summary.onsets));
    }
    // A client back from a crash is stale: force a full re-sync (model +
    // protocol speculation state) before it may participate again, so it
    // never speculates from a stale slope or contributes a stale error
    // accumulator. The download is charged to this round.
    resync_bytes_each =
        global_.size() * sizeof(float) + protocol_->join_state_bytes();
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (!active_[i]) continue;
      if (!faults_.fault(static_cast<int>(i)).rejoined) continue;
      ++fc.rejoined;
      ++fc.resyncs;
      resync_bytes_total += global_.size() * sizeof(float) +
                            protocol_->on_client_rejoin(static_cast<int>(i));
    }
  }

  std::vector<int> participants;
  {
    OBS_SPAN("sim.select");
    participants = select_participants(round);
  }
  if (wall_on) wall.select_s = wall_sw.lap();

  const double flops = model_flops_per_round();

  // Fault pipeline: resolve which uploads the server aggregates. Delivery
  // order uses estimated times (actual payload bytes exist only after
  // synchronization, but the cut must be made before it); the simulated
  // clock below charges actual bytes.
  int uploads_lost = 0;
  std::vector<int> kept = participants;  // the aggregation set
  std::vector<int> corrupt_ids;          // delivered, doomed to fail the CRC
  if (faulty) {
    fc.selected = static_cast<int>(participants.size());
    const FaultOptions& fo = faults_.options();
    const auto est_bytes = static_cast<std::size_t>(last_mean_payload_bytes_);
    const int concurrent = static_cast<int>(participants.size());
    double last_giveup_s = 0.0;  // when the slowest selected client stopped
    std::vector<std::pair<double, int>> arrivals;
    arrivals.reserve(participants.size());
    for (int id : participants) {
      const ClientFault& f = faults_.fault(id);
      if (f.straggler) ++fc.stragglers;
      fc.retries += f.upload_attempts - 1;
      // Retries re-send the payload and wait out the backoff in between —
      // all on the simulated clock.
      const double est =
          network_.compute_time(id, round, flops) * f.compute_factor +
          static_cast<double>(f.upload_attempts) *
              network_.upload_time(id, est_bytes, concurrent) * f.comm_factor +
          static_cast<double>(f.upload_attempts - 1) * fo.retry_backoff_s;
      last_giveup_s = std::max(last_giveup_s, est);
      if (!f.delivered) {
        ++uploads_lost;
        continue;
      }
      if (fo.deadline_s > 0.0 && est > fo.deadline_s) {
        ++fc.deadline_missed;
        continue;
      }
      arrivals.emplace_back(est, id);
    }
    std::sort(arrivals.begin(), arrivals.end());
    // The server consumes uploads in (estimated) arrival order until the
    // aggregation target is met. Corrupt payloads are detected on receipt
    // (CRC, below) and never count toward the target — the next arrival
    // backfills. Whatever lands after the target is met goes unused.
    kept.clear();
    for (const auto& [est, id] : arrivals) {
      (void)est;
      if (kept.size() >= select_target_) {
        ++fc.unused;
        continue;
      }
      if (faults_.fault(id).corrupt) {
        corrupt_ids.push_back(id);
      } else {
        kept.push_back(id);
      }
    }
    if (kept.size() < static_cast<std::size_t>(fo.min_quorum)) {
      // Below quorum: the round stalls. Time still passes — until the
      // server deadline if one is set, else until the slowest selected
      // client finished or gave up; a fully-crashed population costs one
      // latency heartbeat.
      double stall_time =
          fo.deadline_s > 0.0 ? fo.deadline_s : last_giveup_s;
      if (stall_time <= 0.0) stall_time = options_.network.base_latency_s;
      fc.corrupt += static_cast<int>(corrupt_ids.size());
      fc.unused += static_cast<int>(kept.size());
      RoundRecord record = stalled_round(round, stall_time, fc);
      record.bytes_down = resync_bytes_total;
      return record;
    }
    std::sort(kept.begin(), kept.end());  // protocol contract: ascending ids
    std::sort(corrupt_ids.begin(), corrupt_ids.end());
  }

  // Local training: the aggregation set plus the corrupt deliveries (their
  // compute is spent and their real payload feeds the CRC check).
  LocalTrainOptions local = options_.local;
  if (options_.lr_schedule) {
    local.learning_rate = options_.lr_schedule->lr(round);
  }
  std::vector<int> train_ids = kept;
  if (!corrupt_ids.empty()) {
    train_ids.insert(train_ids.end(), corrupt_ids.begin(), corrupt_ids.end());
    std::sort(train_ids.begin(), train_ids.end());
  }
  std::vector<std::vector<float>> states(train_ids.size());
  std::vector<double> losses(train_ids.size(), 0.0);
  {
    OBS_SPAN("sim.train");
    train_participants(train_ids, local, states, losses);
  }
  if (wall_on) wall.train_s = wall_sw.lap();

  // Corruption on receipt: encode the trained payload, flip one
  // deterministic bit "in transit", and verify the CRC rejects it (it
  // always does for a single-bit flip). The update is discarded.
  for (int id : corrupt_ids) {
    const std::size_t pos = static_cast<std::size_t>(
        std::lower_bound(train_ids.begin(), train_ids.end(), id) -
        train_ids.begin());
    auto payload = compress::wire::encode_dense(states[pos]);
    if (payload.empty()) payload.push_back(0);
    const std::uint32_t sent_crc = compress::wire::crc32(payload);
    util::Rng flip(faults_.options().seed ^
                   (0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(round) + 1)) ^
                   (0x94d049bb133111ebULL * (static_cast<std::uint64_t>(id) + 1)));
    const std::size_t bit =
        static_cast<std::size_t>(flip.uniform_index(payload.size() * 8));
    payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    if (compress::wire::crc32(payload) == sent_crc) {
      throw std::logic_error("Simulation: CRC failed to detect a bit flip");
    }
    ++fc.corrupt;
  }

  // Synchronization through the protocol under test.
  compress::RoundContext ctx;
  ctx.round = round;
  ctx.participants = kept;
  std::vector<std::span<const float>> views;
  views.reserve(kept.size());
  double loss_sum = 0.0;
  {
    std::size_t ti = 0;
    for (int id : kept) {
      while (train_ids[ti] != id) ++ti;  // both ascending; kept ⊆ train_ids
      views.emplace_back(states[ti]);
      loss_sum += losses[ti];
      ++ti;
    }
  }
  compress::SyncResult sync = [&] {
    OBS_SPAN("sim.sync");
    return protocol_->synchronize(ctx, views);
  }();
  if (wall_on) wall.sync_s = wall_sw.lap();
  if (sync.new_global.size() != global_.size()) {
    throw std::logic_error("Simulation: protocol changed state size");
  }
  global_ = std::move(sync.new_global);

  // Simulated time: the round ends when the slowest used client finishes.
  double round_time = 0.0;
  std::size_t bytes_up_total = 0, bytes_down_total = 0;
  for (std::size_t i = 0; i < kept.size(); ++i) {
    bytes_up_total += sync.bytes_up[i];
    bytes_down_total += sync.bytes_down[i];
  }
  {
  OBS_SPAN("sim.timing");
  if (options_.timing == TimingModel::kFlowLevel) {
    net::RoundTimelineInput timeline;
    timeline.server_bps = options_.network.server_bandwidth_bps;
    for (std::size_t i = 0; i < kept.size(); ++i) {
      const int id = kept[i];
      double compute_done = network_.compute_time(id, round, flops);
      double up_bytes = static_cast<double>(sync.bytes_up[i]);
      double down_bytes = static_cast<double>(sync.bytes_down[i]);
      double rate = network_.client_bandwidth_bps(id);
      if (faulty) {
        const ClientFault& f = faults_.fault(id);
        // Retries re-cross the link; backoffs delay the flow start. Comm
        // slowdown maps onto a proportionally thinner client link.
        compute_done = compute_done * f.compute_factor +
                       static_cast<double>(f.upload_attempts - 1) *
                           faults_.options().retry_backoff_s;
        up_bytes *= static_cast<double>(f.upload_attempts);
        rate /= f.comm_factor;
        if (f.rejoined) down_bytes += static_cast<double>(resync_bytes_each);
      }
      timeline.compute_done_s.push_back(compute_done);
      timeline.bytes_up.push_back(up_bytes);
      timeline.bytes_down.push_back(down_bytes);
      timeline.client_rate_bps.push_back(rate);
    }
    round_time = net::simulate_round(timeline).round_end_s;
  } else {
    for (std::size_t i = 0; i < kept.size(); ++i) {
      const int id = kept[i];
      double t;
      if (faulty) {
        const ClientFault& f = faults_.fault(id);
        const std::size_t down_bytes =
            sync.bytes_down[i] + (f.rejoined ? resync_bytes_each : 0);
        t = network_.compute_time(id, round, flops) * f.compute_factor +
            static_cast<double>(f.upload_attempts) *
                network_.upload_time(id, sync.bytes_up[i],
                                     static_cast<int>(kept.size())) *
                f.comm_factor +
            static_cast<double>(f.upload_attempts - 1) *
                faults_.options().retry_backoff_s +
            network_.download_time(id, down_bytes,
                                   static_cast<int>(kept.size())) *
                f.comm_factor;
      } else {
        t = network_.client_round_time(id, round, flops, sync.bytes_up[i],
                                       sync.bytes_down[i],
                                       static_cast<int>(kept.size()));
      }
      round_time = std::max(round_time, t);
    }
  }
  if (faulty && fc.deadline_missed > 0 && faults_.options().deadline_s > 0.0) {
    // The server waited out its deadline for the uploads that missed it.
    round_time = std::max(round_time, faults_.options().deadline_s);
  }
  }  // OBS_SPAN sim.timing
  if (wall_on) wall.timing_s = wall_sw.lap();
  elapsed_time_s_ += round_time;
  last_mean_payload_bytes_ =
      kept.empty() ? last_mean_payload_bytes_
                   : static_cast<double>(bytes_up_total + bytes_down_total) /
                         (2.0 * static_cast<double>(kept.size()));
  ++round_;

  RoundRecord record;
  record.round = round;
  record.round_time_s = round_time;
  record.elapsed_time_s = elapsed_time_s_;
  record.train_loss =
      kept.empty() ? 0.0 : loss_sum / static_cast<double>(kept.size());
  record.sparsification_ratio = protocol_->last_sparsification_ratio();
  record.bytes_up = bytes_up_total;
  record.bytes_down = bytes_down_total + resync_bytes_total;
  record.num_participants = static_cast<int>(kept.size());
  record.uploads_lost = uploads_lost;
  const compress::SyncProtocol::Telemetry tele =
      protocol_->last_round_telemetry();
  record.speculated_fraction = tele.speculated_fraction;
  record.fallback_syncs = static_cast<int>(tele.fallback_syncs);
  if (faulty) {
    record.faults = fc;
    add_fault_counters(fc, uploads_lost);
  }
  if (options_.eval_every > 0 && (round_ % options_.eval_every == 0)) {
    OBS_SPAN("sim.eval");
    record.test_accuracy = evaluate();
  }
  if (wall_on) {
    wall.eval_s = wall_sw.lap();
    wall.total_s = wall_sw.elapsed_seconds();
    record.wall = wall;
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("fl.round.count").add(1);
    reg.counter("fl.round.bytes_up").add(record.bytes_up);
    reg.counter("fl.round.bytes_down").add(record.bytes_down);
  }
  if (round_hook_) round_hook_(record);
  return record;
}

void Simulation::train_participants(const std::vector<int>& participants,
                                    const LocalTrainOptions& local,
                                    std::vector<std::vector<float>>& states,
                                    std::vector<double>& losses) {
  auto train_one = [&](std::size_t idx, nn::Model& model) {
    model.load_state_vector(global_);
    losses[idx] = clients_[static_cast<std::size_t>(participants[idx])]
                      ->train_round(model, local);
    states[idx] = model.state_vector();
  };

  if (!pool_ || participants.size() <= 1) {
    for (std::size_t i = 0; i < participants.size(); ++i) {
      train_one(i, scratch_model_);
    }
    return;
  }

  // Lazily build one replica per worker. A replica built from the same
  // spec+seed as scratch_model_ has the identical parameter layout, and
  // train_one overwrites every parameter (weights and BN buffers alike) via
  // load_state_vector, so which replica trains a client cannot change any
  // bit of the result. Each client is trained by exactly one chunk, and its
  // own batch-loader RNG advances exactly as it would sequentially.
  if (replicas_.size() < static_cast<std::size_t>(pool_->size())) {
    replicas_.clear();
    for (int w = 0; w < pool_->size(); ++w) {
      nn::ModelSpec spec = options_.model;
      replicas_.push_back(std::make_unique<nn::Model>(
          nn::build_model(spec, util::Rng(options_.seed))));
    }
  }
  pool_->parallel_chunks(
      0, participants.size(),
      [&](std::size_t chunk_begin, std::size_t chunk_end, std::size_t chunk) {
        nn::Model& model = *replicas_[chunk];
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          train_one(i, model);
        }
      });
}

std::vector<RoundRecord> Simulation::run(int rounds,
                                         std::optional<float> stop_at_accuracy) {
  std::vector<RoundRecord> records;
  records.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    records.push_back(step());
    if (stop_at_accuracy && records.back().test_accuracy &&
        *records.back().test_accuracy >= *stop_at_accuracy) {
      break;
    }
  }
  return records;
}

float Simulation::evaluate() const {
  scratch_model_.load_state_vector(global_);
  const data::Dataset& test = data_.test;
  const std::size_t n = test.size();
  std::size_t done = 0;
  double correct_weighted = 0.0;
  tensor::Tensor batch;
  std::vector<int> labels;
  while (done < n) {
    const std::size_t take =
        std::min(static_cast<std::size_t>(options_.eval_batch), n - done);
    std::vector<std::size_t> idx(take);
    std::iota(idx.begin(), idx.end(), done);
    test.gather(idx, batch, labels);
    const tensor::Tensor logits =
        scratch_model_.forward(batch, /*train=*/false);
    correct_weighted +=
        static_cast<double>(nn::accuracy(logits, labels)) * take;
    done += take;
  }
  return n == 0 ? 0.0f : static_cast<float>(correct_weighted / n);
}

std::pair<int, std::size_t> Simulation::add_client(data::Dataset shard) {
  const int id = static_cast<int>(clients_.size());
  util::Rng rng(options_.seed ^ (0x9e3779b9ULL * (id + 1)));
  clients_.push_back(std::make_unique<Client>(id, std::move(shard),
                                              options_.local.batch_size, rng));
  active_.push_back(true);
  network_.add_clients(1);
  protocol_->on_client_join(id);
  // The joiner downloads the latest model plus protocol join state (§V).
  const std::size_t join_bytes =
      global_.size() * sizeof(float) + protocol_->join_state_bytes();
  return {id, join_bytes};
}

void Simulation::load_global_state(std::vector<float> state) {
  if (state.size() != global_.size()) {
    throw std::invalid_argument("Simulation::load_global_state: size mismatch");
  }
  global_ = std::move(state);
}

void Simulation::drop_client(int client_id) {
  if (client_id < 0 || client_id >= static_cast<int>(clients_.size())) {
    throw std::out_of_range("Simulation::drop_client: bad id");
  }
  active_[static_cast<std::size_t>(client_id)] = false;
}

}  // namespace fedsu::fl
