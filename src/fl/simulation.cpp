#include "fl/simulation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "net/round_timeline.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedsu::fl {

Simulation::Simulation(SimulationOptions options,
                       std::unique_ptr<compress::SyncProtocol> protocol)
    : options_(std::move(options)),
      protocol_(std::move(protocol)),
      data_(data::generate_synthetic(options_.dataset)),
      scratch_model_(nn::build_model(options_.model, util::Rng(options_.seed))),
      network_(options_.num_clients, options_.network) {
  if (!protocol_) throw std::invalid_argument("Simulation: null protocol");
  if (options_.num_clients <= 0) {
    throw std::invalid_argument("Simulation: num_clients <= 0");
  }
  if (util::ThreadPool::resolve_threads(options_.threads) > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  }
  if (options_.participation_fraction <= 0.0 ||
      options_.participation_fraction > 1.0) {
    throw std::invalid_argument("Simulation: participation fraction out of (0,1]");
  }

  // Partition the training data across clients (Dirichlet label skew).
  data::PartitionOptions part;
  part.num_clients = options_.num_clients;
  part.alpha = options_.dirichlet_alpha;
  part.seed = options_.seed ^ 0x5bd1e995;
  const auto shards = data::dirichlet_partition(data_.train, part);

  util::Rng client_rng(options_.seed ^ 0x2545f491);
  clients_.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    clients_.push_back(std::make_unique<Client>(
        static_cast<int>(i), data_.train.subset(shards[i]),
        options_.local.batch_size, client_rng.fork(i)));
  }
  active_.assign(clients_.size(), true);

  global_ = scratch_model_.state_vector();
  protocol_->initialize(global_);
  last_mean_payload_bytes_ = static_cast<double>(global_.size()) * sizeof(float);
}

double Simulation::model_flops_per_round() const {
  // Forward + backward is roughly 3x a forward pass.
  return 3.0 * options_.model.flops_per_sample * options_.local.batch_size *
         options_.local.iterations;
}

std::vector<int> Simulation::select_participants(int round) {
  // All active clients start the round; the server keeps the fraction that
  // finishes earliest. Finish times are estimated with the previous round's
  // mean payload (payload differences across clients within a protocol are
  // second-order; compute heterogeneity dominates the ordering).
  std::vector<int> active_ids;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (active_[i]) active_ids.push_back(static_cast<int>(i));
  }
  if (active_ids.empty()) {
    throw std::logic_error("Simulation: no active clients");
  }
  const std::size_t take = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(options_.participation_fraction *
                       static_cast<double>(active_ids.size()))));
  std::vector<int> chosen;
  chosen.reserve(take);
  if (options_.participation == SimulationOptions::Participation::kUniform) {
    util::Rng pick(options_.seed ^ 0x5e1ec7 ^
                   (0x9e3779b97f4a7c15ULL * (round + 1)));
    const auto perm = pick.permutation(active_ids.size());
    for (std::size_t i = 0; i < take; ++i) {
      chosen.push_back(active_ids[perm[i]]);
    }
  } else {
    const double flops = model_flops_per_round();
    const auto est_bytes = static_cast<std::size_t>(last_mean_payload_bytes_);
    std::vector<std::pair<double, int>> finish;
    finish.reserve(active_ids.size());
    for (int id : active_ids) {
      finish.emplace_back(
          network_.client_round_time(id, round, flops, est_bytes, est_bytes,
                                     static_cast<int>(active_ids.size())),
          id);
    }
    std::sort(finish.begin(), finish.end());
    for (std::size_t i = 0; i < take && i < finish.size(); ++i) {
      chosen.push_back(finish[i].second);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

RoundRecord Simulation::step() {
  OBS_SPAN("sim.round");
  const int round = round_;
  // Wall-clock phase attribution (host time, gated so the disabled path
  // costs one clock read per round and nothing else). Never feeds back
  // into the simulated clock.
  const bool wall_on = obs::metrics_enabled();
  util::Stopwatch wall_sw;
  RoundRecord::WallPhases wall;

  std::vector<int> participants;
  {
    OBS_SPAN("sim.select");
    participants = select_participants(round);
  }
  if (wall_on) wall.select_s = wall_sw.lap();

  // Failure injection: drop uploads after training (compute is spent, the
  // update never reaches the server). Deterministic per (seed, round).
  int uploads_lost = 0;
  if (options_.upload_loss_probability > 0.0) {
    util::Rng loss_rng(options_.seed ^ 0xfa11 ^
                       (0x9e3779b97f4a7c15ULL * (round + 1)));
    std::vector<int> survivors;
    for (int id : participants) {
      if (loss_rng.bernoulli(options_.upload_loss_probability)) {
        ++uploads_lost;
      } else {
        survivors.push_back(id);
      }
    }
    if (survivors.empty()) {
      // Whole round lost: charge the time, keep the state.
      const double flops = model_flops_per_round();
      double round_time = 0.0;
      for (int id : participants) {
        round_time = std::max(
            round_time,
            network_.client_round_time(id, round, flops, 0, 0,
                                       static_cast<int>(participants.size())));
      }
      elapsed_time_s_ += round_time;
      ++round_;
      RoundRecord record;
      record.round = round;
      record.uploads_lost = uploads_lost;
      record.round_time_s = round_time;
      record.elapsed_time_s = elapsed_time_s_;
      record.num_participants = 0;
      if (options_.eval_every > 0 && (round_ % options_.eval_every == 0)) {
        record.test_accuracy = evaluate();
      }
      if (round_hook_) round_hook_(record);
      return record;
    }
    participants = std::move(survivors);
  }

  // Local training on each participant.
  LocalTrainOptions local = options_.local;
  if (options_.lr_schedule) {
    local.learning_rate = options_.lr_schedule->lr(round);
  }
  std::vector<std::vector<float>> states(participants.size());
  std::vector<double> losses(participants.size(), 0.0);
  {
    OBS_SPAN("sim.train");
    train_participants(participants, local, states, losses);
  }
  if (wall_on) wall.train_s = wall_sw.lap();
  double loss_sum = 0.0;
  for (double l : losses) loss_sum += l;

  // Synchronization through the protocol under test.
  compress::RoundContext ctx;
  ctx.round = round;
  ctx.participants = participants;
  std::vector<std::span<const float>> views;
  views.reserve(states.size());
  for (const auto& s : states) views.emplace_back(s);
  compress::SyncResult sync = [&] {
    OBS_SPAN("sim.sync");
    return protocol_->synchronize(ctx, views);
  }();
  if (wall_on) wall.sync_s = wall_sw.lap();
  if (sync.new_global.size() != global_.size()) {
    throw std::logic_error("Simulation: protocol changed state size");
  }
  global_ = std::move(sync.new_global);

  // Simulated time: the round ends when the slowest used client finishes.
  const double flops = model_flops_per_round();
  double round_time = 0.0;
  std::size_t bytes_up_total = 0, bytes_down_total = 0;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    bytes_up_total += sync.bytes_up[i];
    bytes_down_total += sync.bytes_down[i];
  }
  {
  OBS_SPAN("sim.timing");
  if (options_.timing == TimingModel::kFlowLevel) {
    net::RoundTimelineInput timeline;
    timeline.server_bps = options_.network.server_bandwidth_bps;
    for (std::size_t i = 0; i < participants.size(); ++i) {
      timeline.compute_done_s.push_back(
          network_.compute_time(participants[i], round, flops));
      timeline.bytes_up.push_back(static_cast<double>(sync.bytes_up[i]));
      timeline.bytes_down.push_back(static_cast<double>(sync.bytes_down[i]));
      timeline.client_rate_bps.push_back(
          network_.client_bandwidth_bps(participants[i]));
    }
    round_time = net::simulate_round(timeline).round_end_s;
  } else {
    for (std::size_t i = 0; i < participants.size(); ++i) {
      const double t = network_.client_round_time(
          participants[i], round, flops, sync.bytes_up[i], sync.bytes_down[i],
          static_cast<int>(participants.size()));
      round_time = std::max(round_time, t);
    }
  }
  }  // OBS_SPAN sim.timing
  if (wall_on) wall.timing_s = wall_sw.lap();
  elapsed_time_s_ += round_time;
  last_mean_payload_bytes_ =
      participants.empty()
          ? last_mean_payload_bytes_
          : static_cast<double>(bytes_up_total + bytes_down_total) /
                (2.0 * static_cast<double>(participants.size()));
  ++round_;

  RoundRecord record;
  record.round = round;
  record.round_time_s = round_time;
  record.elapsed_time_s = elapsed_time_s_;
  record.train_loss = participants.empty()
                          ? 0.0
                          : loss_sum / static_cast<double>(participants.size());
  record.sparsification_ratio = protocol_->last_sparsification_ratio();
  record.bytes_up = bytes_up_total;
  record.bytes_down = bytes_down_total;
  record.num_participants = static_cast<int>(participants.size());
  record.uploads_lost = uploads_lost;
  const compress::SyncProtocol::Telemetry tele =
      protocol_->last_round_telemetry();
  record.speculated_fraction = tele.speculated_fraction;
  record.fallback_syncs = static_cast<int>(tele.fallback_syncs);
  if (options_.eval_every > 0 && (round_ % options_.eval_every == 0)) {
    OBS_SPAN("sim.eval");
    record.test_accuracy = evaluate();
  }
  if (wall_on) {
    wall.eval_s = wall_sw.lap();
    wall.total_s = wall_sw.elapsed_seconds();
    record.wall = wall;
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("fl.round.count").add(1);
    reg.counter("fl.round.bytes_up").add(record.bytes_up);
    reg.counter("fl.round.bytes_down").add(record.bytes_down);
  }
  if (round_hook_) round_hook_(record);
  return record;
}

void Simulation::train_participants(const std::vector<int>& participants,
                                    const LocalTrainOptions& local,
                                    std::vector<std::vector<float>>& states,
                                    std::vector<double>& losses) {
  auto train_one = [&](std::size_t idx, nn::Model& model) {
    model.load_state_vector(global_);
    losses[idx] = clients_[static_cast<std::size_t>(participants[idx])]
                      ->train_round(model, local);
    states[idx] = model.state_vector();
  };

  if (!pool_ || participants.size() <= 1) {
    for (std::size_t i = 0; i < participants.size(); ++i) {
      train_one(i, scratch_model_);
    }
    return;
  }

  // Lazily build one replica per worker. A replica built from the same
  // spec+seed as scratch_model_ has the identical parameter layout, and
  // train_one overwrites every parameter (weights and BN buffers alike) via
  // load_state_vector, so which replica trains a client cannot change any
  // bit of the result. Each client is trained by exactly one chunk, and its
  // own batch-loader RNG advances exactly as it would sequentially.
  if (replicas_.size() < static_cast<std::size_t>(pool_->size())) {
    replicas_.clear();
    for (int w = 0; w < pool_->size(); ++w) {
      nn::ModelSpec spec = options_.model;
      replicas_.push_back(std::make_unique<nn::Model>(
          nn::build_model(spec, util::Rng(options_.seed))));
    }
  }
  pool_->parallel_chunks(
      0, participants.size(),
      [&](std::size_t chunk_begin, std::size_t chunk_end, std::size_t chunk) {
        nn::Model& model = *replicas_[chunk];
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          train_one(i, model);
        }
      });
}

std::vector<RoundRecord> Simulation::run(int rounds,
                                         std::optional<float> stop_at_accuracy) {
  std::vector<RoundRecord> records;
  records.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    records.push_back(step());
    if (stop_at_accuracy && records.back().test_accuracy &&
        *records.back().test_accuracy >= *stop_at_accuracy) {
      break;
    }
  }
  return records;
}

float Simulation::evaluate() const {
  scratch_model_.load_state_vector(global_);
  const data::Dataset& test = data_.test;
  const std::size_t n = test.size();
  std::size_t done = 0;
  double correct_weighted = 0.0;
  tensor::Tensor batch;
  std::vector<int> labels;
  while (done < n) {
    const std::size_t take =
        std::min(static_cast<std::size_t>(options_.eval_batch), n - done);
    std::vector<std::size_t> idx(take);
    std::iota(idx.begin(), idx.end(), done);
    test.gather(idx, batch, labels);
    const tensor::Tensor logits =
        scratch_model_.forward(batch, /*train=*/false);
    correct_weighted +=
        static_cast<double>(nn::accuracy(logits, labels)) * take;
    done += take;
  }
  return n == 0 ? 0.0f : static_cast<float>(correct_weighted / n);
}

std::pair<int, std::size_t> Simulation::add_client(data::Dataset shard) {
  const int id = static_cast<int>(clients_.size());
  util::Rng rng(options_.seed ^ (0x9e3779b9ULL * (id + 1)));
  clients_.push_back(std::make_unique<Client>(id, std::move(shard),
                                              options_.local.batch_size, rng));
  active_.push_back(true);
  network_.add_clients(1);
  protocol_->on_client_join(id);
  // The joiner downloads the latest model plus protocol join state (§V).
  const std::size_t join_bytes =
      global_.size() * sizeof(float) + protocol_->join_state_bytes();
  return {id, join_bytes};
}

void Simulation::load_global_state(std::vector<float> state) {
  if (state.size() != global_.size()) {
    throw std::invalid_argument("Simulation::load_global_state: size mismatch");
  }
  global_ = std::move(state);
}

void Simulation::drop_client(int client_id) {
  if (client_id < 0 || client_id >= static_cast<int>(clients_.size())) {
    throw std::out_of_range("Simulation::drop_client: bad id");
  }
  active_[static_cast<std::size_t>(client_id)] = false;
}

}  // namespace fedsu::fl
