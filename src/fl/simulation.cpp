#include "fl/simulation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "compress/wire.h"
#include "io/checkpoint.h"
#include "io/serialize.h"
#include "net/round_timeline.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedsu::fl {

namespace {

// Flushes one round's fault tallies into the metrics registry (no-op with
// metrics off). faults.crashes counts onsets and is recorded separately,
// where the round summary is in scope.
void add_fault_counters(const RoundRecord::FaultCounters& counters,
                        int uploads_lost) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("faults.resyncs").add(static_cast<std::uint64_t>(counters.resyncs));
  reg.counter("faults.retries").add(static_cast<std::uint64_t>(counters.retries));
  reg.counter("faults.stragglers")
      .add(static_cast<std::uint64_t>(counters.stragglers));
  reg.counter("faults.corrupt").add(static_cast<std::uint64_t>(counters.corrupt));
  reg.counter("faults.lost_uploads")
      .add(static_cast<std::uint64_t>(uploads_lost));
  reg.counter("faults.deadline_missed")
      .add(static_cast<std::uint64_t>(counters.deadline_missed));
  if (!counters.quorum_met) reg.counter("faults.quorum_stalls").add(1);
}

}  // namespace

double staleness_weight(int staleness, double alpha) {
  // alpha == 0 is the unweighted-buffering ablation: exactly 1.0 for every
  // staleness, so an alpha-0 run is a pure FedBuff mean over raw deltas.
  if (staleness <= 0 || alpha == 0.0) return 1.0;
  return std::pow(1.0 + static_cast<double>(staleness), -alpha);
}

Simulation::Simulation(SimulationOptions options,
                       std::unique_ptr<compress::SyncProtocol> protocol)
    : options_(std::move(options)),
      protocol_(std::move(protocol)),
      scratch_model_(nn::build_model(options_.model, util::Rng(options_.seed))),
      network_(options_.num_clients, options_.network) {
  if (!protocol_) throw std::invalid_argument("Simulation: null protocol");
  if (options_.num_clients <= 0) {
    throw std::invalid_argument("Simulation: num_clients <= 0");
  }
  if (util::ThreadPool::resolve_threads(options_.threads) > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  }
  if (options_.participation_fraction <= 0.0 ||
      options_.participation_fraction > 1.0) {
    throw std::invalid_argument("Simulation: participation fraction out of (0,1]");
  }
  if (options_.async.buffer_k < 0) {
    throw std::invalid_argument("Simulation: async.buffer_k < 0");
  }
  if (options_.async.staleness_alpha < 0.0) {
    throw std::invalid_argument("Simulation: async.staleness_alpha < 0");
  }
  if (options_.async.enabled) {
    // Async dispatches every active client continuously: the synchronous
    // participation cut does not exist. Forcing the fraction to 1 also makes
    // the barrier-degenerate route (step_sync below) aggregate the full
    // cohort, which is what a K >= cohort buffer does.
    options_.participation_fraction = 1.0;
    // Overlapping uploads only exist in the flow-level timing model.
    options_.timing = TimingModel::kFlowLevel;
    uplink_ = std::make_unique<net::AsyncUplink>(
        options_.network.server_bandwidth_bps);
    client_busy_.assign(static_cast<std::size_t>(options_.num_clients), 0);
    client_ready_s_.assign(static_cast<std::size_t>(options_.num_clients),
                           0.0);
  }

  // Fold the legacy flat upload-loss knob into the fault plan so there is a
  // single failure mechanism. The fault stream is salted with the
  // simulation seed: two runs differing only in `seed` see different fault
  // realizations (matching the historical loss behaviour), while fixing
  // both seeds pins the schedule for controlled comparisons.
  FaultOptions fault_options = options_.faults;
  if (fault_options.upload_loss_probability == 0.0 &&
      options_.upload_loss_probability > 0.0) {
    fault_options.upload_loss_probability = options_.upload_loss_probability;
  }
  fault_options.seed ^= options_.seed;
  faults_ = FaultPlan(fault_options);

  // With K >= cohort and no faults the arrival buffer only fills when every
  // client has arrived — structurally the synchronous barrier — so the run
  // routes to the exact synchronous path (DESIGN.md §11 explains why the
  // general engine cannot reproduce it bit-for-bit: absolute-time
  // water-filling arithmetic is not shift-invariant in floating point).
  async_barrier_ = options_.async.enabled && !faults_.enabled() &&
                   options_.async.buffer_k > 0 &&
                   options_.async.buffer_k >= options_.num_clients;

  // Generate the data once; clients share the training set through views.
  {
    data::TrainTest data = data::generate_synthetic(options_.dataset);
    train_data_ = std::make_shared<const data::Dataset>(std::move(data.train));
    test_data_ = std::move(data.test);
  }

  // Partition the training data across clients (Dirichlet label skew). Each
  // shard becomes a zero-copy DatasetView over the shared dataset: the
  // images are stored exactly once no matter how many clients exist, and
  // view-backed gather copies the identical bytes the legacy per-client
  // subset() copies did, so results are unchanged bit-for-bit.
  data::PartitionOptions part;
  part.num_clients = options_.num_clients;
  part.alpha = options_.dirichlet_alpha;
  part.seed = options_.seed ^ 0x5bd1e995;
  auto shards = data::dirichlet_partition(*train_data_, part);

  util::Rng client_rng(options_.seed ^ 0x2545f491);
  clients_.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    clients_.push_back(std::make_unique<Client>(
        static_cast<int>(i),
        data::DatasetView(train_data_, std::move(shards[i])),
        options_.local.batch_size, client_rng.fork(i)));
  }
  active_.assign(clients_.size(), true);

  global_ = scratch_model_.state_vector();
  protocol_->initialize(global_);
  last_mean_payload_bytes_ = static_cast<double>(global_.size()) * sizeof(float);
}

double Simulation::model_flops_per_round() const {
  // Forward + backward is roughly 3x a forward pass.
  return 3.0 * options_.model.flops_per_sample * options_.local.batch_size *
         options_.local.iterations;
}

std::vector<int> Simulation::select_participants(int round) {
  // All active clients start the round; the server keeps the fraction that
  // finishes earliest. Finish times are estimated with the previous round's
  // mean payload (payload differences across clients within a protocol are
  // second-order; compute heterogeneity dominates the ordering).
  const bool faulty = faults_.enabled();
  std::vector<int> active_ids;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (!active_[i]) continue;
    if (faulty && faults_.is_absent(static_cast<int>(i))) continue;
    active_ids.push_back(static_cast<int>(i));
  }
  if (active_ids.empty()) {
    // With churn this is a legitimate (if bleak) state — every client is
    // down and the round stalls; without it, it is caller error.
    if (faulty) {
      select_target_ = 0;
      return {};
    }
    throw std::logic_error("Simulation: no active clients");
  }
  const std::size_t target = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(options_.participation_fraction *
                       static_cast<double>(active_ids.size()))));
  select_target_ = target;
  std::size_t take = target;
  if (faulty && faults_.options().over_select_fraction > 0.0) {
    // Over-selection: the server starts extra clients beyond the
    // aggregation target so lost/late uploads can be backfilled.
    take = std::min(
        active_ids.size(),
        std::max(target,
                 static_cast<std::size_t>(std::ceil(
                     (options_.participation_fraction +
                      faults_.options().over_select_fraction) *
                     static_cast<double>(active_ids.size())))));
  }
  std::vector<int> chosen;
  chosen.reserve(take);
  if (options_.participation == SimulationOptions::Participation::kUniform) {
    util::Rng pick(options_.seed ^ 0x5e1ec7 ^
                   (0x9e3779b97f4a7c15ULL * (round + 1)));
    const auto perm = pick.permutation(active_ids.size());
    for (std::size_t i = 0; i < take; ++i) {
      chosen.push_back(active_ids[perm[i]]);
    }
  } else {
    const double flops = model_flops_per_round();
    const auto est_bytes = static_cast<std::size_t>(last_mean_payload_bytes_);
    std::vector<std::pair<double, int>> finish;
    finish.reserve(active_ids.size());
    for (int id : active_ids) {
      double t;
      if (faulty) {
        // Straggler multipliers feed the estimate, so the earliest cut
        // reshuffles when a fast client has a slow round. With unit
        // factors this decomposition equals client_round_time exactly.
        const ClientFault& f = faults_.fault(id);
        t = network_.compute_time(id, round, flops) * f.compute_factor +
            network_.comm_time(id, est_bytes, est_bytes,
                               static_cast<int>(active_ids.size())) *
                f.comm_factor;
      } else {
        t = network_.client_round_time(id, round, flops, est_bytes, est_bytes,
                                       static_cast<int>(active_ids.size()));
      }
      finish.emplace_back(t, id);
    }
    std::sort(finish.begin(), finish.end());
    for (std::size_t i = 0; i < take && i < finish.size(); ++i) {
      chosen.push_back(finish[i].second);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

RoundRecord Simulation::stalled_round(int round, double round_time,
                                      RoundRecord::FaultCounters counters) {
  elapsed_time_s_ += round_time;
  ++round_;
  RoundRecord record;
  record.round = round;
  record.uploads_lost = counters.selected - counters.corrupt -
                        counters.deadline_missed - counters.unused;
  record.round_time_s = round_time;
  record.elapsed_time_s = elapsed_time_s_;
  record.num_participants = 0;
  counters.quorum_met = false;
  record.faults = counters;
  add_fault_counters(counters, record.uploads_lost);
  if (options_.eval_every > 0 && (round_ % options_.eval_every == 0)) {
    record.test_accuracy = evaluate();
  }
  return record;
}

RoundRecord Simulation::step() {
  // Server-crash fault family (docs/FAULT_MODEL.md §7): the server dies at
  // the start of the round, before any client is dispatched — the previous
  // round's state (and its checkpoint, if one was written) is the recovery
  // frontier.
  if (faults_.server_faults_enabled() && faults_.server_crash(round_)) {
    throw ServerCrashed(round_);
  }
  RoundRecord record = (options_.async.enabled && !async_barrier_)
                           ? step_async()
                           : step_sync();
  // Checkpoint before the hook fires so telemetry and the health monitor
  // see the write outcome on the round it happened.
  maybe_checkpoint(record);
  if (round_hook_) round_hook_(record);
  return record;
}

void Simulation::maybe_checkpoint(RoundRecord& record) {
  const int every = options_.checkpoint.every;
  if (every <= 0 || round_ % every != 0) return;
  RoundRecord::CheckpointEvent ev;
  ev.round = round_;
  try {
    const std::vector<std::uint8_t> payload = snapshot_state();
    ev.bytes = payload.size();
    ev.path = io::save_run_checkpoint(options_.checkpoint.dir, round_, payload);
    ev.ok = true;
    // Retention runs only after a successful write: a failed write must
    // never cost an older, still-good checkpoint its slot.
    if (options_.checkpoint.keep > 0) {
      io::prune_run_checkpoints(options_.checkpoint.dir,
                                options_.checkpoint.keep);
    }
  } catch (const std::exception& e) {
    // A failed write never kills the run (losing training to a full disk
    // would invert the feature's purpose); the record carries the
    // diagnostic and the health monitor raises a critical alert.
    ev.ok = false;
    ev.error = e.what();
  }
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    if (ev.ok) {
      reg.counter("checkpoint.writes").add(1);
      reg.counter("checkpoint.bytes").add(ev.bytes);
    } else {
      reg.counter("checkpoint.failures").add(1);
    }
  }
  record.checkpoint = std::move(ev);
}

RoundRecord Simulation::step_sync() {
  OBS_SPAN("sim.round");
  const int round = round_;
  // Wall-clock phase attribution (host time, gated so the disabled path
  // costs one clock read per round and nothing else). Never feeds back
  // into the simulated clock.
  const bool wall_on = obs::metrics_enabled();
  util::Stopwatch wall_sw;
  RoundRecord::WallPhases wall;

  const bool faulty = faults_.enabled();
  RoundRecord::FaultCounters fc;
  std::size_t resync_bytes_total = 0;
  std::size_t resync_bytes_each = 0;
  if (faulty) {
    faults_.begin_round(round, static_cast<int>(clients_.size()));
    const FaultPlan::RoundSummary& summary = faults_.round_summary();
    fc.crashed = summary.absent;
    if (obs::metrics_enabled() && summary.onsets > 0) {
      obs::MetricsRegistry::global()
          .counter("faults.crashes")
          .add(static_cast<std::uint64_t>(summary.onsets));
    }
    // A client back from a crash is stale: force a full re-sync (model +
    // protocol speculation state) before it may participate again, so it
    // never speculates from a stale slope or contributes a stale error
    // accumulator. The download is charged to this round.
    resync_bytes_each =
        global_.size() * sizeof(float) + protocol_->join_state_bytes();
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (!active_[i]) continue;
      if (!faults_.fault(static_cast<int>(i)).rejoined) continue;
      ++fc.rejoined;
      ++fc.resyncs;
      resync_bytes_total += global_.size() * sizeof(float) +
                            protocol_->on_client_rejoin(static_cast<int>(i));
    }
  }

  std::vector<int> participants;
  {
    OBS_SPAN("sim.select");
    participants = select_participants(round);
  }
  if (wall_on) wall.select_s = wall_sw.lap();

  const double flops = model_flops_per_round();

  // Fault pipeline: resolve which uploads the server aggregates. Delivery
  // order uses estimated times (actual payload bytes exist only after
  // synchronization, but the cut must be made before it); the simulated
  // clock below charges actual bytes.
  int uploads_lost = 0;
  std::vector<int> kept = participants;  // the aggregation set
  std::vector<int> corrupt_ids;          // delivered, doomed to fail the CRC
  if (faulty) {
    fc.selected = static_cast<int>(participants.size());
    const FaultOptions& fo = faults_.options();
    const auto est_bytes = static_cast<std::size_t>(last_mean_payload_bytes_);
    const int concurrent = static_cast<int>(participants.size());
    double last_giveup_s = 0.0;  // when the slowest selected client stopped
    std::vector<std::pair<double, int>> arrivals;
    arrivals.reserve(participants.size());
    for (int id : participants) {
      const ClientFault& f = faults_.fault(id);
      if (f.straggler) ++fc.stragglers;
      fc.retries += f.upload_attempts - 1;
      // Retries re-send the payload and wait out the backoff in between —
      // all on the simulated clock.
      const double est =
          network_.compute_time(id, round, flops) * f.compute_factor +
          static_cast<double>(f.upload_attempts) *
              network_.upload_time(id, est_bytes, concurrent) * f.comm_factor +
          static_cast<double>(f.upload_attempts - 1) * fo.retry_backoff_s;
      last_giveup_s = std::max(last_giveup_s, est);
      if (!f.delivered) {
        ++uploads_lost;
        continue;
      }
      if (fo.deadline_s > 0.0 && est > fo.deadline_s) {
        ++fc.deadline_missed;
        continue;
      }
      arrivals.emplace_back(est, id);
    }
    std::sort(arrivals.begin(), arrivals.end());
    // The server consumes uploads in (estimated) arrival order until the
    // aggregation target is met. Corrupt payloads are detected on receipt
    // (CRC, below) and never count toward the target — the next arrival
    // backfills. Whatever lands after the target is met goes unused.
    kept.clear();
    for (const auto& [est, id] : arrivals) {
      (void)est;
      if (kept.size() >= select_target_) {
        ++fc.unused;
        continue;
      }
      if (faults_.fault(id).corrupt) {
        corrupt_ids.push_back(id);
      } else {
        kept.push_back(id);
      }
    }
    if (kept.size() < static_cast<std::size_t>(fo.min_quorum)) {
      // Below quorum: the round stalls. Time still passes — until the
      // server deadline if one is set, else until the slowest selected
      // client finished or gave up; a fully-crashed population costs one
      // latency heartbeat.
      double stall_time =
          fo.deadline_s > 0.0 ? fo.deadline_s : last_giveup_s;
      if (stall_time <= 0.0) stall_time = options_.network.base_latency_s;
      fc.corrupt += static_cast<int>(corrupt_ids.size());
      fc.unused += static_cast<int>(kept.size());
      RoundRecord record = stalled_round(round, stall_time, fc);
      record.bytes_down = resync_bytes_total;
      return record;
    }
    std::sort(kept.begin(), kept.end());  // protocol contract: ascending ids
    std::sort(corrupt_ids.begin(), corrupt_ids.end());
  }

  // Local training: the aggregation set plus the corrupt deliveries (their
  // compute is spent and their real payload feeds the CRC check).
  LocalTrainOptions local = options_.local;
  if (options_.lr_schedule) {
    local.learning_rate = options_.lr_schedule->lr(round);
  }
  std::vector<int> train_ids = kept;
  if (!corrupt_ids.empty()) {
    train_ids.insert(train_ids.end(), corrupt_ids.begin(), corrupt_ids.end());
    std::sort(train_ids.begin(), train_ids.end());
  }
  std::vector<std::vector<float>> states(train_ids.size());
  std::vector<double> losses(train_ids.size(), 0.0);
  {
    OBS_SPAN("sim.train");
    train_participants(train_ids, local, states, losses);
  }
  if (wall_on) wall.train_s = wall_sw.lap();

  // Corruption on receipt: encode the trained payload, flip one
  // deterministic bit "in transit", and verify the CRC rejects it (it
  // always does for a single-bit flip). The update is discarded.
  for (int id : corrupt_ids) {
    const std::size_t pos = static_cast<std::size_t>(
        std::lower_bound(train_ids.begin(), train_ids.end(), id) -
        train_ids.begin());
    auto payload = compress::wire::encode_dense(states[pos]);
    if (payload.empty()) payload.push_back(0);
    const std::uint32_t sent_crc = compress::wire::crc32(payload);
    util::Rng flip(faults_.options().seed ^
                   (0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(round) + 1)) ^
                   (0x94d049bb133111ebULL * (static_cast<std::uint64_t>(id) + 1)));
    const std::size_t bit =
        static_cast<std::size_t>(flip.uniform_index(payload.size() * 8));
    payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    if (compress::wire::crc32(payload) == sent_crc) {
      throw std::logic_error("Simulation: CRC failed to detect a bit flip");
    }
    ++fc.corrupt;
  }

  // Synchronization through the protocol under test.
  compress::RoundContext ctx;
  ctx.round = round;
  ctx.participants = kept;
  std::vector<std::span<const float>> views;
  views.reserve(kept.size());
  double loss_sum = 0.0;
  {
    std::size_t ti = 0;
    for (int id : kept) {
      while (train_ids[ti] != id) ++ti;  // both ascending; kept ⊆ train_ids
      views.emplace_back(states[ti]);
      loss_sum += losses[ti];
      ++ti;
    }
  }
  compress::SyncResult sync = [&] {
    OBS_SPAN("sim.sync");
    return protocol_->synchronize(ctx, views);
  }();
  if (wall_on) wall.sync_s = wall_sw.lap();
  if (sync.new_global.size() != global_.size()) {
    throw std::logic_error("Simulation: protocol changed state size");
  }
  global_ = std::move(sync.new_global);

  // Simulated time: the round ends when the slowest used client finishes.
  double round_time = 0.0;
  std::size_t bytes_up_total = 0, bytes_down_total = 0;
  for (std::size_t i = 0; i < kept.size(); ++i) {
    bytes_up_total += sync.bytes_up[i];
    bytes_down_total += sync.bytes_down[i];
  }
  {
  OBS_SPAN("sim.timing");
  if (options_.timing == TimingModel::kFlowLevel) {
    net::RoundTimelineInput timeline;
    timeline.server_bps = options_.network.server_bandwidth_bps;
    for (std::size_t i = 0; i < kept.size(); ++i) {
      const int id = kept[i];
      double compute_done = network_.compute_time(id, round, flops);
      double up_bytes = static_cast<double>(sync.bytes_up[i]);
      double down_bytes = static_cast<double>(sync.bytes_down[i]);
      double rate = network_.client_bandwidth_bps(id);
      if (faulty) {
        const ClientFault& f = faults_.fault(id);
        // Retries re-cross the link; backoffs delay the flow start. Comm
        // slowdown maps onto a proportionally thinner client link.
        compute_done = compute_done * f.compute_factor +
                       static_cast<double>(f.upload_attempts - 1) *
                           faults_.options().retry_backoff_s;
        up_bytes *= static_cast<double>(f.upload_attempts);
        rate /= f.comm_factor;
        if (f.rejoined) down_bytes += static_cast<double>(resync_bytes_each);
      }
      timeline.compute_done_s.push_back(compute_done);
      timeline.bytes_up.push_back(up_bytes);
      timeline.bytes_down.push_back(down_bytes);
      timeline.client_rate_bps.push_back(rate);
    }
    round_time = net::simulate_round(timeline).round_end_s;
  } else {
    for (std::size_t i = 0; i < kept.size(); ++i) {
      const int id = kept[i];
      double t;
      if (faulty) {
        const ClientFault& f = faults_.fault(id);
        const std::size_t down_bytes =
            sync.bytes_down[i] + (f.rejoined ? resync_bytes_each : 0);
        t = network_.compute_time(id, round, flops) * f.compute_factor +
            static_cast<double>(f.upload_attempts) *
                network_.upload_time(id, sync.bytes_up[i],
                                     static_cast<int>(kept.size())) *
                f.comm_factor +
            static_cast<double>(f.upload_attempts - 1) *
                faults_.options().retry_backoff_s +
            network_.download_time(id, down_bytes,
                                   static_cast<int>(kept.size())) *
                f.comm_factor;
      } else {
        t = network_.client_round_time(id, round, flops, sync.bytes_up[i],
                                       sync.bytes_down[i],
                                       static_cast<int>(kept.size()));
      }
      round_time = std::max(round_time, t);
    }
  }
  if (faulty && fc.deadline_missed > 0 && faults_.options().deadline_s > 0.0) {
    // The server waited out its deadline for the uploads that missed it.
    round_time = std::max(round_time, faults_.options().deadline_s);
  }
  }  // OBS_SPAN sim.timing
  if (wall_on) wall.timing_s = wall_sw.lap();
  elapsed_time_s_ += round_time;
  last_mean_payload_bytes_ =
      kept.empty() ? last_mean_payload_bytes_
                   : static_cast<double>(bytes_up_total + bytes_down_total) /
                         (2.0 * static_cast<double>(kept.size()));
  ++round_;

  RoundRecord record;
  record.round = round;
  record.round_time_s = round_time;
  record.elapsed_time_s = elapsed_time_s_;
  record.train_loss =
      kept.empty() ? 0.0 : loss_sum / static_cast<double>(kept.size());
  record.sparsification_ratio = protocol_->last_sparsification_ratio();
  record.bytes_up = bytes_up_total;
  record.bytes_down = bytes_down_total + resync_bytes_total;
  record.num_participants = static_cast<int>(kept.size());
  record.uploads_lost = uploads_lost;
  const compress::SyncProtocol::Telemetry tele =
      protocol_->last_round_telemetry();
  record.speculated_fraction = tele.speculated_fraction;
  record.fallback_syncs = static_cast<int>(tele.fallback_syncs);
  if (faulty) {
    record.faults = fc;
    add_fault_counters(fc, uploads_lost);
  }
  if (options_.eval_every > 0 && (round_ % options_.eval_every == 0)) {
    OBS_SPAN("sim.eval");
    record.test_accuracy = evaluate();
  }
  if (wall_on) {
    wall.eval_s = wall_sw.lap();
    wall.total_s = wall_sw.elapsed_seconds();
    record.wall = wall;
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("fl.round.count").add(1);
    reg.counter("fl.round.bytes_up").add(record.bytes_up);
    reg.counter("fl.round.bytes_down").add(record.bytes_down);
  }
  return record;
}

// One buffered-async aggregation cycle (DESIGN.md §11). The barrier is
// gone: every idle client is dispatched against the current model version,
// uploads contend on the shared ingress link across cycles (AsyncUplink
// keeps the full flow history), and the server aggregates as soon as the
// first K deliverable uploads have arrived on the simulated clock. Stale
// updates are re-based onto the current model with the 1/(1+s)^alpha
// discount; aggregation order is (arrival time, seed-keyed tiebreak,
// client id), so results are bitwise identical for every --threads value.
RoundRecord Simulation::step_async() {
  OBS_SPAN("sim.round");
  const int round = round_;
  const bool wall_on = obs::metrics_enabled();
  util::Stopwatch wall_sw;
  RoundRecord::WallPhases wall;

  const double cycle_start_s = elapsed_time_s_;
  const double flops = model_flops_per_round();
  const bool faulty = faults_.enabled();
  const FaultOptions& fo = faults_.options();

  RoundRecord::FaultCounters fc;
  std::size_t resync_bytes_total = 0;
  if (faulty) {
    faults_.begin_round(round, static_cast<int>(clients_.size()));
    const FaultPlan::RoundSummary& summary = faults_.round_summary();
    fc.crashed = summary.absent;
    if (obs::metrics_enabled() && summary.onsets > 0) {
      obs::MetricsRegistry::global()
          .counter("faults.crashes")
          .add(static_cast<std::uint64_t>(summary.onsets));
    }
  }

  // Dispatch: every idle, present client starts a new leg against the
  // current model version. Clients mid-upload keep traveling against the
  // version they were handed; crashed clients wait until they rejoin.
  std::vector<int> dispatch_ids;
  int cohort = 0;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (!active_[i]) continue;
    ++cohort;
    if (client_busy_[i]) continue;
    if (faulty && faults_.is_absent(static_cast<int>(i))) continue;
    dispatch_ids.push_back(static_cast<int>(i));
  }
  fc.selected = static_cast<int>(dispatch_ids.size());
  if (faulty) {
    // A rejoiner is billed its forced re-sync (model + protocol speculation
    // state) when it is next dispatched — the same staleness rule as the
    // synchronous path, anchored to the dispatch instead of the barrier.
    for (int id : dispatch_ids) {
      if (!faults_.fault(id).rejoined) continue;
      ++fc.rejoined;
      ++fc.resyncs;
      resync_bytes_total +=
          global_.size() * sizeof(float) + protocol_->on_client_rejoin(id);
    }
  }
  if (wall_on) wall.select_s = wall_sw.lap();

  // Local training for the new legs. They all read the same current
  // global_, so the per-worker-replica pool path applies unchanged and the
  // §5b thread-count determinism argument carries over verbatim.
  LocalTrainOptions local = options_.local;
  if (options_.lr_schedule) {
    local.learning_rate = options_.lr_schedule->lr(round);
  }
  std::vector<std::vector<float>> states(dispatch_ids.size());
  std::vector<double> losses(dispatch_ids.size(), 0.0);
  {
    OBS_SPAN("sim.train");
    train_participants(dispatch_ids, local, states, losses);
  }
  if (wall_on) wall.train_s = wall_sw.lap();

  // Register the new upload flows. Flow timing uses the dispatch-time
  // payload estimate (actual bytes exist only after synchronization — the
  // same convention the synchronous selection estimate relies on); the byte
  // accounting below charges actual bytes.
  std::shared_ptr<const std::vector<float>> snapshot;
  const double est_bytes = last_mean_payload_bytes_;
  for (std::size_t k = 0; k < dispatch_ids.size(); ++k) {
    const int id = dispatch_ids[k];
    InFlight leg;
    leg.client = id;
    leg.version = model_version_;
    leg.dispatch_cycle = round;
    leg.dispatch_s = std::max(cycle_start_s, client_ready_s_[id]);
    double compute_done =
        leg.dispatch_s + network_.compute_time(id, round, flops);
    double up_bytes = est_bytes;
    double rate = network_.client_bandwidth_bps(id);
    if (faulty) {
      const ClientFault& f = faults_.fault(id);
      if (f.straggler) ++fc.stragglers;
      fc.retries += f.upload_attempts - 1;
      compute_done =
          leg.dispatch_s +
          network_.compute_time(id, round, flops) * f.compute_factor +
          static_cast<double>(f.upload_attempts - 1) * fo.retry_backoff_s;
      up_bytes *= static_cast<double>(f.upload_attempts);
      rate /= f.comm_factor;
      leg.attempts = f.upload_attempts;
      leg.comm_factor = f.comm_factor;
      leg.delivered = f.delivered;
      leg.corrupt = f.corrupt;
    }
    leg.flow = uplink_->add(compute_done, up_bytes, rate);
    leg.loss = losses[k];
    leg.state = std::move(states[k]);
    if (!snapshot) {
      snapshot = std::make_shared<const std::vector<float>>(global_);
    }
    leg.dispatch_global = snapshot;
    client_busy_[static_cast<std::size_t>(id)] = 1;
    inflight_.push_back(std::move(leg));
  }

  // Arrival ordering under the full contention history: (arrival time,
  // seed-keyed tiebreak, client id) — deterministic for any thread count.
  struct Candidate {
    double arrival_s = 0.0;
    std::uint64_t tiebreak = 0;
    int client = 0;
    std::size_t entry = 0;
    bool deliverable = false;
    bool deadline_missed = false;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(inflight_.size());
  {
    OBS_SPAN("sim.timing");
    for (std::size_t e = 0; e < inflight_.size(); ++e) {
      const InFlight& leg = inflight_[e];
      Candidate c;
      c.arrival_s = uplink_->completion_s(leg.flow);
      c.tiebreak =
          net::arrival_tiebreak(options_.seed, leg.client, leg.version);
      c.client = leg.client;
      c.entry = e;
      // In async mode deadline_s bounds an upload's AGE (arrival minus
      // dispatch): there is no per-round barrier for an absolute deadline
      // to anchor to (docs/FAULT_MODEL.md).
      c.deadline_missed = faulty && fo.deadline_s > 0.0 &&
                          (c.arrival_s - leg.dispatch_s) > fo.deadline_s;
      c.deliverable = leg.delivered && !leg.corrupt && !c.deadline_missed;
      candidates.push_back(c);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.arrival_s != b.arrival_s) {
                  return a.arrival_s < b.arrival_s;
                }
                if (a.tiebreak != b.tiebreak) return a.tiebreak < b.tiebreak;
                return a.client < b.client;
              });
  }
  if (wall_on) wall.timing_s = wall_sw.lap();

  int deliverable_count = 0;
  for (const Candidate& c : candidates) {
    if (c.deliverable) ++deliverable_count;
  }
  const int base_k = [&] {
    const int k = options_.async.buffer_k;
    if (k <= 0) return std::max(1, cohort / 2);  // default: half the cohort
    return std::min(k, std::max(cohort, 1));     // clamp: K > cohort is a barrier
  }();
  const int quorum = faulty ? std::max(1, fo.min_quorum) : 1;
  const int k_eff = std::min(base_k, deliverable_count);

  int uploads_lost = 0;
  auto free_client = [&](const InFlight& leg, double when) {
    client_busy_[static_cast<std::size_t>(leg.client)] = 0;
    client_ready_s_[static_cast<std::size_t>(leg.client)] = when;
  };
  // Corruption on receipt, same mechanics as the synchronous path: encode
  // the trained payload, flip one deterministic bit keyed on the DISPATCH
  // cycle (so the realization travels with the leg), verify the CRC rejects.
  auto verify_corrupt = [&](const InFlight& leg) {
    auto payload = compress::wire::encode_dense(leg.state);
    if (payload.empty()) payload.push_back(0);
    const std::uint32_t sent_crc = compress::wire::crc32(payload);
    util::Rng flip(
        fo.seed ^
        (0x9e3779b97f4a7c15ULL *
         (static_cast<std::uint64_t>(leg.dispatch_cycle) + 1)) ^
        (0x94d049bb133111ebULL * (static_cast<std::uint64_t>(leg.client) + 1)));
    const std::size_t bit =
        static_cast<std::size_t>(flip.uniform_index(payload.size() * 8));
    payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    if (compress::wire::crc32(payload) == sent_crc) {
      throw std::logic_error("Simulation: CRC failed to detect a bit flip");
    }
    ++fc.corrupt;
  };
  auto erase_entries = [&](std::vector<std::size_t>& which) {
    std::sort(which.begin(), which.end());
    std::vector<InFlight> keep;
    keep.reserve(inflight_.size() - which.size());
    std::size_t ri = 0;
    for (std::size_t e = 0; e < inflight_.size(); ++e) {
      if (ri < which.size() && which[ri] == e) {
        ++ri;
        continue;
      }
      keep.push_back(std::move(inflight_[e]));
    }
    inflight_ = std::move(keep);
  };

  if (k_eff < quorum) {
    // The buffer cannot fill: the cycle stalls. Deliverable legs stay
    // buffered for a later cycle; loss / corruption / deadline events are
    // waited out so their clients come back as dispatchable. A cycle with
    // nothing to wait for costs one latency heartbeat.
    if (!faulty && candidates.empty()) {
      throw std::logic_error("Simulation: no active clients");
    }
    double t_end = cycle_start_s;
    bool any_event = false;
    std::vector<std::size_t> remove_entries;
    for (const Candidate& c : candidates) {
      if (c.deliverable) continue;
      const InFlight& leg = inflight_[c.entry];
      any_event = true;
      t_end = std::max(t_end, c.arrival_s);
      if (!leg.delivered) {
        ++uploads_lost;
      } else if (leg.corrupt) {
        verify_corrupt(leg);
      } else {
        ++fc.deadline_missed;
      }
      free_client(leg, c.arrival_s);
      remove_entries.push_back(c.entry);
    }
    if (!any_event) t_end = cycle_start_s + options_.network.base_latency_s;
    erase_entries(remove_entries);
    fc.quorum_met = false;
    const double round_time = t_end - cycle_start_s;
    elapsed_time_s_ = t_end;
    ++round_;

    RoundRecord record;
    record.round = round;
    record.uploads_lost = uploads_lost;
    record.round_time_s = round_time;
    record.elapsed_time_s = elapsed_time_s_;
    record.num_participants = 0;
    record.bytes_down = resync_bytes_total;
    RoundRecord::AsyncStats as;
    as.buffer_k = base_k;
    as.inflight = static_cast<int>(inflight_.size());
    as.fill_time_s = round_time;
    record.async = as;
    if (faulty) {
      record.faults = fc;
      add_fault_counters(fc, uploads_lost);
    }
    if (options_.eval_every > 0 && (round_ % options_.eval_every == 0)) {
      OBS_SPAN("sim.eval");
      record.test_accuracy = evaluate();
    }
    if (wall_on) {
      wall.eval_s = wall_sw.lap();
      wall.total_s = wall_sw.elapsed_seconds();
      record.wall = wall;
    }
    return record;
  }

  // Consume arrivals in order until the buffer holds K deliverable updates.
  // Loss / corruption / deadline events landing before the buffer fills are
  // realized now; anything ordered after the K-th arrival stays in flight.
  double t_agg = cycle_start_s;
  std::vector<std::size_t> consumed_entries;
  std::vector<std::size_t> remove_entries;
  int consumed = 0;
  for (const Candidate& c : candidates) {
    const InFlight& leg = inflight_[c.entry];
    if (c.deliverable) {
      consumed_entries.push_back(c.entry);
      remove_entries.push_back(c.entry);
      t_agg = std::max(t_agg, c.arrival_s);
      if (++consumed == k_eff) break;
    } else {
      if (!leg.delivered) {
        ++uploads_lost;
      } else if (leg.corrupt) {
        verify_corrupt(leg);
      } else {
        ++fc.deadline_missed;
      }
      free_client(leg, c.arrival_s);
      remove_entries.push_back(c.entry);
    }
  }

  // Aggregate. The protocol contract wants ascending client ids; staleness
  // is the number of aggregations since the leg's version was dispatched.
  std::sort(consumed_entries.begin(), consumed_entries.end(),
            [&](std::size_t a, std::size_t b) {
              return inflight_[a].client < inflight_[b].client;
            });
  compress::RoundContext ctx;
  ctx.round = round;
  RoundRecord::AsyncStats as;
  as.buffer_k = base_k;
  as.consumed = consumed;
  as.fill_time_s = t_agg - cycle_start_s;
  std::vector<std::vector<float>> virtuals;
  virtuals.reserve(consumed_entries.size());
  std::vector<std::span<const float>> views;
  views.reserve(consumed_entries.size());
  // Stale legs re-base off the pool below; each job fills one pre-sized
  // virtual vector (disjoint outputs, §5b).
  struct RebaseJob {
    const InFlight* leg = nullptr;
    double weight = 1.0;
    std::size_t slot = 0;
  };
  std::vector<RebaseJob> rebase_jobs;
  double loss_sum = 0.0;
  int staleness_sum = 0;
  int stale_uploads = 0;
  for (std::size_t e : consumed_entries) {
    const InFlight& leg = inflight_[e];
    ctx.participants.push_back(leg.client);
    ctx.dispatch_rounds.push_back(leg.version);
    loss_sum += leg.loss;
    const int s = model_version_ - leg.version;
    as.max_staleness = std::max(as.max_staleness, s);
    staleness_sum += s;
    if (static_cast<int>(as.staleness_hist.size()) <= s) {
      as.staleness_hist.resize(static_cast<std::size_t>(s) + 1, 0);
    }
    ++as.staleness_hist[static_cast<std::size_t>(s)];
    const double w = staleness_weight(s, options_.async.staleness_alpha);
    as.weight_sum += w;
    if (s == 0) {
      // Fresh update: hand the raw state through, so an all-fresh cycle is
      // bit-identical to a synchronous aggregation of the same clients
      // (global + (state - global) != state in float arithmetic).
      views.emplace_back(leg.state);
      continue;
    }
    ++stale_uploads;
    // Stale update: re-base its delta onto the current model under the
    // staleness discount — virtual = global + w * (state - dispatch_global)
    // — which turns the protocol's plain mean into the FedBuff buffered
    // update rule. Accumulated in double, stored as float like every other
    // aggregation path in the repo. The fill happens below, possibly across
    // the pool: per-element arithmetic with disjoint output vectors, so the
    // bits cannot depend on the thread count.
    rebase_jobs.push_back(RebaseJob{&leg, w, virtuals.size()});
    virtuals.emplace_back(global_.size());
    views.emplace_back(virtuals.back());
  }
  if (!rebase_jobs.empty()) {
    auto rebase = [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        const RebaseJob& job = rebase_jobs[k];
        const std::vector<float>& state = job.leg->state;
        const std::vector<float>& base = *job.leg->dispatch_global;
        std::vector<float>& virt = virtuals[job.slot];
        for (std::size_t j = 0; j < virt.size(); ++j) {
          virt[j] = static_cast<float>(
              static_cast<double>(global_[j]) +
              job.weight * (static_cast<double>(state[j]) -
                            static_cast<double>(base[j])));
        }
      }
    };
    if (pool_ && rebase_jobs.size() > 1) {
      pool_->parallel_for(0, rebase_jobs.size(), rebase);
    } else {
      rebase(0, rebase_jobs.size());
    }
  }
  as.mean_staleness =
      consumed == 0 ? 0.0
                    : static_cast<double>(staleness_sum) /
                          static_cast<double>(consumed);

  compress::SyncResult sync = [&] {
    OBS_SPAN("sim.sync");
    return protocol_->synchronize(ctx, views);
  }();
  if (wall_on) wall.sync_s = wall_sw.lap();
  if (sync.new_global.size() != global_.size()) {
    throw std::logic_error("Simulation: protocol changed state size");
  }
  global_ = std::move(sync.new_global);
  ++model_version_;

  // The consumed clients download the new model starting at the
  // aggregation instant; their next dispatch waits for that download.
  // Egress is simulated per aggregation batch (the same shape as the
  // synchronous phase 2); cross-cycle egress contention is not modeled —
  // the server link dwarfs the client caps, so batches barely interact.
  std::size_t bytes_up_total = 0, bytes_down_total = 0;
  {
    OBS_SPAN("sim.timing");
    std::vector<net::Flow> downloads(consumed_entries.size());
    for (std::size_t i = 0; i < consumed_entries.size(); ++i) {
      const InFlight& leg = inflight_[consumed_entries[i]];
      bytes_up_total += sync.bytes_up[i];
      bytes_down_total += sync.bytes_down[i];
      downloads[i].start_time_s = t_agg;
      downloads[i].bytes = static_cast<double>(sync.bytes_down[i]);
      // A straggler's thin link covers its whole leg, the upload and the
      // following model download alike.
      downloads[i].rate_cap_bps =
          network_.client_bandwidth_bps(leg.client) / leg.comm_factor;
    }
    const auto finished = net::simulate_shared_link(
        downloads, options_.network.server_bandwidth_bps);
    for (std::size_t i = 0; i < consumed_entries.size(); ++i) {
      free_client(inflight_[consumed_entries[i]], finished[i].finish_time_s);
    }
  }
  erase_entries(remove_entries);
  as.inflight = static_cast<int>(inflight_.size());
  if (wall_on) wall.timing_s += wall_sw.lap();

  const double round_time = t_agg - cycle_start_s;
  elapsed_time_s_ = t_agg;
  last_mean_payload_bytes_ =
      consumed == 0 ? last_mean_payload_bytes_
                    : static_cast<double>(bytes_up_total + bytes_down_total) /
                          (2.0 * static_cast<double>(consumed));
  ++round_;

  RoundRecord record;
  record.round = round;
  record.round_time_s = round_time;
  record.elapsed_time_s = elapsed_time_s_;
  record.train_loss =
      consumed == 0 ? 0.0 : loss_sum / static_cast<double>(consumed);
  record.sparsification_ratio = protocol_->last_sparsification_ratio();
  record.bytes_up = bytes_up_total;
  record.bytes_down = bytes_down_total + resync_bytes_total;
  record.num_participants = consumed;
  record.uploads_lost = uploads_lost;
  const compress::SyncProtocol::Telemetry tele =
      protocol_->last_round_telemetry();
  record.speculated_fraction = tele.speculated_fraction;
  record.fallback_syncs = static_cast<int>(tele.fallback_syncs);
  record.async = as;
  if (faulty) {
    record.faults = fc;
    add_fault_counters(fc, uploads_lost);
  }
  if (options_.eval_every > 0 && (round_ % options_.eval_every == 0)) {
    OBS_SPAN("sim.eval");
    record.test_accuracy = evaluate();
  }
  if (wall_on) {
    wall.eval_s = wall_sw.lap();
    wall.total_s = wall_sw.elapsed_seconds();
    record.wall = wall;
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("fl.round.count").add(1);
    reg.counter("fl.round.bytes_up").add(record.bytes_up);
    reg.counter("fl.round.bytes_down").add(record.bytes_down);
    reg.counter("fl.async.aggregations").add(1);
    reg.counter("fl.async.stale_uploads")
        .add(static_cast<std::uint64_t>(stale_uploads));
    obs::HistogramOptions stale_opts;
    stale_opts.lo = 0.0;
    stale_opts.hi = 32.0;
    stale_opts.buckets = 16;
    auto& hist =
        reg.histogram("fl.async.staleness", stale_opts);
    for (std::size_t s = 0; s < as.staleness_hist.size(); ++s) {
      for (int c = 0; c < as.staleness_hist[s]; ++c) {
        hist.record(static_cast<double>(s));
      }
    }
  }
  return record;
}

void Simulation::train_participants(const std::vector<int>& participants,
                                    const LocalTrainOptions& local,
                                    std::vector<std::vector<float>>& states,
                                    std::vector<double>& losses) {
  auto train_one = [&](std::size_t idx, nn::Model& model) {
    model.load_state_vector(global_);
    losses[idx] = clients_[static_cast<std::size_t>(participants[idx])]
                      ->train_round(model, local);
    states[idx] = model.state_vector();
  };

  if (!pool_ || participants.size() <= 1) {
    for (std::size_t i = 0; i < participants.size(); ++i) {
      train_one(i, scratch_model_);
    }
    return;
  }

  // Lazily build one replica per worker. A replica built from the same
  // spec+seed as scratch_model_ has the identical parameter layout, and
  // train_one overwrites every parameter (weights and BN buffers alike) via
  // load_state_vector, so which replica trains a client cannot change any
  // bit of the result. Each client is trained by exactly one chunk, and its
  // own batch-loader RNG advances exactly as it would sequentially.
  if (replicas_.size() < static_cast<std::size_t>(pool_->size())) {
    replicas_.clear();
    for (int w = 0; w < pool_->size(); ++w) {
      nn::ModelSpec spec = options_.model;
      replicas_.push_back(std::make_unique<nn::Model>(
          nn::build_model(spec, util::Rng(options_.seed))));
    }
  }
  pool_->parallel_chunks(
      0, participants.size(),
      [&](std::size_t chunk_begin, std::size_t chunk_end, std::size_t chunk) {
        nn::Model& model = *replicas_[chunk];
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          train_one(i, model);
        }
      });
}

std::vector<RoundRecord> Simulation::run(int rounds,
                                         std::optional<float> stop_at_accuracy) {
  std::vector<RoundRecord> records;
  records.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    records.push_back(step());
    if (stop_at_accuracy && records.back().test_accuracy &&
        *records.back().test_accuracy >= *stop_at_accuracy) {
      break;
    }
  }
  return records;
}

float Simulation::evaluate() const {
  scratch_model_.load_state_vector(global_);
  const data::Dataset& test = test_data_;
  const std::size_t n = test.size();
  std::size_t done = 0;
  double correct_weighted = 0.0;
  tensor::Tensor batch;
  std::vector<int> labels;
  while (done < n) {
    const std::size_t take =
        std::min(static_cast<std::size_t>(options_.eval_batch), n - done);
    std::vector<std::size_t> idx(take);
    std::iota(idx.begin(), idx.end(), done);
    test.gather(idx, batch, labels);
    const tensor::Tensor logits =
        scratch_model_.forward(batch, /*train=*/false);
    correct_weighted +=
        static_cast<double>(nn::accuracy(logits, labels)) * take;
    done += take;
  }
  return n == 0 ? 0.0f : static_cast<float>(correct_weighted / n);
}

std::pair<int, std::size_t> Simulation::add_client(data::Dataset shard) {
  const int id = static_cast<int>(clients_.size());
  util::Rng rng(options_.seed ^ (0x9e3779b9ULL * (id + 1)));
  clients_.push_back(std::make_unique<Client>(id, std::move(shard),
                                              options_.local.batch_size, rng));
  active_.push_back(true);
  network_.add_clients(1);
  if (options_.async.enabled) {
    client_busy_.push_back(0);
    // The joiner can be dispatched from the moment it appears.
    client_ready_s_.push_back(elapsed_time_s_);
  }
  protocol_->on_client_join(id);
  // The joiner downloads the latest model plus protocol join state (§V).
  const std::size_t join_bytes =
      global_.size() * sizeof(float) + protocol_->join_state_bytes();
  return {id, join_bytes};
}

void Simulation::load_global_state(std::vector<float> state) {
  if (state.size() != global_.size()) {
    throw std::invalid_argument("Simulation::load_global_state: size mismatch");
  }
  global_ = std::move(state);
}

void Simulation::drop_client(int client_id) {
  if (client_id < 0 || client_id >= static_cast<int>(clients_.size())) {
    throw std::out_of_range("Simulation::drop_client: bad id");
  }
  active_[static_cast<std::size_t>(client_id)] = false;
}

// ---------------------------------------------------------------------------
// Run-checkpoint payload (docs/RECOVERY.md). Five magic-tagged sections in
// fixed order: sim core, protocol snapshot, client loaders, fault-plan churn
// state, and (async runs only) the in-flight frontier. Everything NOT here —
// shards, network model, selection and fault RNGs, worker replicas — is a
// pure function of SimulationOptions and the stored round counter, so it is
// validated against the snapshot instead of stored in it.
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint32_t kSnapCoreMagic = 0xFED5'C401;
constexpr std::uint32_t kSnapProtocolMagic = 0xFED5'C402;
constexpr std::uint32_t kSnapClientsMagic = 0xFED5'C403;
constexpr std::uint32_t kSnapFaultsMagic = 0xFED5'C404;
constexpr std::uint32_t kSnapAsyncMagic = 0xFED5'C405;
}  // namespace

std::vector<std::uint8_t> Simulation::snapshot_state() const {
  io::BinaryWriter writer;

  // Section 1: sim core + the identity fingerprint restore validates.
  writer.write_magic(kSnapCoreMagic);
  writer.write_string(protocol_->name());
  writer.write_u64(options_.seed);
  writer.write_i32(static_cast<std::int32_t>(clients_.size()));
  writer.write_bool(options_.async.enabled && !async_barrier_);
  writer.write_i32(round_);
  writer.write_i32(model_version_);
  writer.write_f64(elapsed_time_s_);
  writer.write_f64(last_mean_payload_bytes_);
  writer.write_vector(global_);
  {
    std::vector<std::uint8_t> active(active_.size());
    for (std::size_t i = 0; i < active_.size(); ++i) {
      active[i] = active_[i] ? 1 : 0;
    }
    writer.write_vector(active);
  }

  // Section 2: the protocol's own snapshot (for FedSU: promotion/demotion
  // phase state, SparseErrorStore slabs, rejoin stamps — magic 0xFED50003).
  writer.write_magic(kSnapProtocolMagic);
  writer.write_vector(protocol_->snapshot());

  // Section 3: per-client batch-loader state (shuffle RNG words, epoch
  // permutation, cursor). The shards themselves re-derive from the seed.
  writer.write_magic(kSnapClientsMagic);
  writer.write_u64(clients_.size());
  for (const auto& client : clients_) client->serialize(writer);

  // Section 4: fault-plan churn state — the only stateful part of the
  // fault schedule (everything else is (seed, round, client)-keyed).
  writer.write_magic(kSnapFaultsMagic);
  {
    const std::vector<int>& down = faults_.churn_state();
    std::vector<std::int32_t> down32(down.begin(), down.end());
    writer.write_vector(down32);
  }

  // Section 5: the async in-flight frontier, so restore does not require a
  // quiescent server. Dispatch-era globals are deduplicated by identity
  // (legs dispatched in one cycle share one snapshot); restoring
  // content-identical vectors preserves the re-base arithmetic bitwise.
  if (options_.async.enabled && !async_barrier_) {
    writer.write_magic(kSnapAsyncMagic);
    {
      std::vector<std::uint8_t> busy(client_busy_.begin(), client_busy_.end());
      writer.write_vector(busy);
    }
    writer.write_vector(client_ready_s_);
    const std::vector<net::Flow>& flows = uplink_->flows();
    writer.write_u64(flows.size());
    for (const net::Flow& flow : flows) {
      writer.write_f64(flow.start_time_s);
      writer.write_f64(flow.bytes);
      writer.write_f64(flow.rate_cap_bps);
    }
    std::vector<const std::vector<float>*> bases;
    std::vector<std::uint32_t> base_index(inflight_.size(), 0);
    for (std::size_t e = 0; e < inflight_.size(); ++e) {
      const std::vector<float>* base = inflight_[e].dispatch_global.get();
      std::size_t found = bases.size();
      for (std::size_t b = 0; b < bases.size(); ++b) {
        if (bases[b] == base) {
          found = b;
          break;
        }
      }
      if (found == bases.size()) bases.push_back(base);
      base_index[e] = static_cast<std::uint32_t>(found);
    }
    writer.write_u64(bases.size());
    for (const std::vector<float>* base : bases) writer.write_vector(*base);
    writer.write_u64(inflight_.size());
    for (std::size_t e = 0; e < inflight_.size(); ++e) {
      const InFlight& leg = inflight_[e];
      writer.write_i32(leg.client);
      writer.write_i32(leg.version);
      writer.write_i32(leg.dispatch_cycle);
      writer.write_f64(leg.dispatch_s);
      writer.write_u64(leg.flow);
      writer.write_i32(leg.attempts);
      writer.write_f64(leg.comm_factor);
      writer.write_bool(leg.delivered);
      writer.write_bool(leg.corrupt);
      writer.write_f64(leg.loss);
      writer.write_vector(leg.state);
      writer.write_u32(base_index[e]);
    }
  }

  return writer.take();
}

void Simulation::restore_state(const std::vector<std::uint8_t>& payload) {
  io::BinaryReader reader(payload);

  // Parse + validate everything into locals first: a mismatch anywhere
  // must leave the simulation untouched, never half-restored.
  reader.expect_magic(kSnapCoreMagic, "run-checkpoint core section");
  const std::string protocol_name = reader.read_string();
  if (protocol_name != protocol_->name()) {
    throw std::runtime_error("Simulation::restore_state: snapshot is for '" +
                             protocol_name + "', this run uses '" +
                             protocol_->name() + "'");
  }
  const std::uint64_t seed = reader.read_u64();
  if (seed != options_.seed) {
    throw std::runtime_error(
        "Simulation::restore_state: snapshot seed does not match (resume "
        "must reuse the original --seed; shards and fault schedules derive "
        "from it)");
  }
  const std::int32_t num_clients = reader.read_i32();
  if (num_clients != static_cast<std::int32_t>(clients_.size())) {
    throw std::runtime_error(
        "Simulation::restore_state: snapshot has " +
        std::to_string(num_clients) + " clients, this run has " +
        std::to_string(clients_.size()) +
        " (mid-run add_client joiners are outside the resume frontier)");
  }
  const bool snap_async = reader.read_bool();
  const bool this_async = options_.async.enabled && !async_barrier_;
  if (snap_async != this_async) {
    throw std::runtime_error(
        "Simulation::restore_state: snapshot and run disagree on async "
        "mode");
  }
  const std::int32_t round = reader.read_i32();
  const std::int32_t model_version = reader.read_i32();
  const double elapsed = reader.read_f64();
  const double last_mean_payload = reader.read_f64();
  std::vector<float> global = reader.read_vector<float>();
  if (global.size() != global_.size()) {
    throw std::runtime_error(
        "Simulation::restore_state: model state size mismatch");
  }
  std::vector<std::uint8_t> active = reader.read_vector<std::uint8_t>();
  if (active.size() != active_.size()) {
    throw std::runtime_error(
        "Simulation::restore_state: active-set size mismatch");
  }

  reader.expect_magic(kSnapProtocolMagic, "run-checkpoint protocol section");
  std::vector<std::uint8_t> protocol_snapshot =
      reader.read_vector<std::uint8_t>();

  reader.expect_magic(kSnapClientsMagic, "run-checkpoint clients section");
  const std::uint64_t client_count = reader.read_u64();
  if (client_count != clients_.size()) {
    throw std::runtime_error(
        "Simulation::restore_state: client-section count mismatch");
  }

  // All identity validation is done; mutations start here. (Byte-level
  // damage never reaches this function: io::load_run_checkpoint rejects
  // the file on its CRC footer before the payload is parsed.)
  protocol_->restore(protocol_snapshot);

  for (auto& client : clients_) client->deserialize(reader);

  reader.expect_magic(kSnapFaultsMagic, "run-checkpoint faults section");
  {
    std::vector<std::int32_t> down32 = reader.read_vector<std::int32_t>();
    faults_.restore_churn_state(std::vector<int>(down32.begin(), down32.end()));
  }

  if (this_async) {
    reader.expect_magic(kSnapAsyncMagic, "run-checkpoint async section");
    std::vector<std::uint8_t> busy = reader.read_vector<std::uint8_t>();
    if (busy.size() != client_busy_.size()) {
      throw std::runtime_error(
          "Simulation::restore_state: async busy-set size mismatch");
    }
    std::vector<double> ready = reader.read_vector<double>();
    if (ready.size() != client_ready_s_.size()) {
      throw std::runtime_error(
          "Simulation::restore_state: async ready-set size mismatch");
    }
    const std::uint64_t flow_count = reader.read_u64();
    std::vector<net::Flow> flows(static_cast<std::size_t>(flow_count));
    for (net::Flow& flow : flows) {
      flow.start_time_s = reader.read_f64();
      flow.bytes = reader.read_f64();
      flow.rate_cap_bps = reader.read_f64();
    }
    const std::uint64_t base_count = reader.read_u64();
    std::vector<std::shared_ptr<const std::vector<float>>> bases;
    bases.reserve(static_cast<std::size_t>(base_count));
    for (std::uint64_t b = 0; b < base_count; ++b) {
      bases.push_back(std::make_shared<const std::vector<float>>(
          reader.read_vector<float>()));
    }
    const std::uint64_t leg_count = reader.read_u64();
    std::vector<InFlight> inflight(static_cast<std::size_t>(leg_count));
    for (InFlight& leg : inflight) {
      leg.client = reader.read_i32();
      leg.version = reader.read_i32();
      leg.dispatch_cycle = reader.read_i32();
      leg.dispatch_s = reader.read_f64();
      leg.flow = static_cast<std::size_t>(reader.read_u64());
      leg.attempts = reader.read_i32();
      leg.comm_factor = reader.read_f64();
      leg.delivered = reader.read_bool();
      leg.corrupt = reader.read_bool();
      leg.loss = reader.read_f64();
      leg.state = reader.read_vector<float>();
      const std::uint32_t base = reader.read_u32();
      if (base >= bases.size() || leg.flow >= flows.size() ||
          leg.client < 0 ||
          leg.client >= static_cast<int>(clients_.size()) ||
          leg.state.size() != global_.size() ||
          bases[base]->size() != global_.size()) {
        throw std::runtime_error(
            "Simulation::restore_state: malformed in-flight leg");
      }
      leg.dispatch_global = bases[base];
    }
    uplink_->restore_flows(std::move(flows));
    std::copy(busy.begin(), busy.end(), client_busy_.begin());
    client_ready_s_ = std::move(ready);
    inflight_ = std::move(inflight);
  }
  if (!reader.at_end()) {
    throw std::runtime_error(
        "Simulation::restore_state: trailing bytes after the last section");
  }

  round_ = round;
  model_version_ = model_version;
  elapsed_time_s_ = elapsed;
  last_mean_payload_bytes_ = last_mean_payload;
  global_ = std::move(global);
  for (std::size_t i = 0; i < active.size(); ++i) active_[i] = active[i] != 0;
}

}  // namespace fedsu::fl
