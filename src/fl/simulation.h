// End-to-end FL simulation: dataset generation, Dirichlet partitioning,
// round loop with earliest-70 % participation, protocol-driven
// synchronization, and the simulated-time cost model (DESIGN.md §2).
// Participant training runs across a thread pool (SimulationOptions::threads)
// with bitwise-identical results for every thread count: clients train on
// per-worker replicas in parallel, and aggregation consumes the states in
// deterministic participant order.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "compress/protocol.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "net/network_model.h"
#include "nn/schedule.h"
#include "nn/zoo.h"
#include "util/thread_pool.h"

namespace fedsu::fl {

// How per-round simulated time is computed.
enum class TimingModel {
  kCoarse,     // per-client: compute + bytes / (capacity shared evenly)
  kFlowLevel,  // two-phase max-min-fair flow simulation (net/round_timeline)
};

struct SimulationOptions {
  nn::ModelSpec model;
  data::SyntheticSpec dataset;
  int num_clients = 8;
  double dirichlet_alpha = 1.0;  // paper §VI-A uses alpha = 1
  LocalTrainOptions local;
  // Optional learning-rate schedule; when set it overrides
  // local.learning_rate per round (e.g. the O(1/sqrt(T)) schedule Theorem 1
  // suggests). Null means the constant local.learning_rate.
  std::shared_ptr<const nn::LrSchedule> lr_schedule;
  // Fraction of clients whose updates the server uses each round — the
  // earliest finishers (paper: 70 %).
  double participation_fraction = 0.7;
  // How the fraction is chosen: the paper keeps the EARLIEST finishers
  // (biasing toward fast devices); kUniform samples uniformly instead
  // (classic FedAvg C-fraction), at the cost of waiting for slow devices.
  enum class Participation { kEarliest, kUniform };
  Participation participation = Participation::kEarliest;
  net::NetworkOptions network;
  TimingModel timing = TimingModel::kCoarse;
  // Failure injection: probability that a selected client's upload is lost
  // mid-round (the client trained, but the server never receives it and
  // aggregates without it). 0 disables. If every upload of a round is lost
  // the round is wasted: time passes, the global state stays put.
  double upload_loss_probability = 0.0;
  int eval_every = 1;       // test-set evaluation period, in rounds
  int eval_batch = 64;
  std::uint64_t seed = 42;
  // Worker threads for the round's local training (each participant trains
  // on a per-worker model replica). 0 = hardware concurrency; 1 runs the
  // historical sequential path. Results are bitwise identical for every
  // value — see DESIGN.md §"Determinism under parallelism".
  int threads = 0;
};

struct RoundRecord {
  int round = 0;
  int uploads_lost = 0;  // failure injection (see SimulationOptions)
  double round_time_s = 0.0;     // simulated duration of this round
  double elapsed_time_s = 0.0;   // cumulative simulated time
  double train_loss = 0.0;       // mean over participants
  std::optional<float> test_accuracy;  // present on eval rounds
  double sparsification_ratio = 0.0;   // protocol-reported
  std::size_t bytes_up = 0;            // summed over participants
  std::size_t bytes_down = 0;
  int num_participants = 0;

  // Protocol-reported speculation telemetry (compress::SyncProtocol::
  // last_round_telemetry): zero for non-speculative schemes.
  double speculated_fraction = 0.0;
  int fallback_syncs = 0;

  // Host wall-clock time spent in each phase of step(), measured only when
  // obs::metrics_enabled() (all zero otherwise). These are real durations on
  // the machine running the simulator — they never feed back into the
  // simulated clock, so recording them cannot perturb results.
  struct WallPhases {
    double select_s = 0.0;  // participant selection
    double train_s = 0.0;   // local training across the pool
    double sync_s = 0.0;    // protocol synchronization
    double timing_s = 0.0;  // network cost model / flow simulation
    double eval_s = 0.0;    // test-set evaluation (eval rounds only)
    double total_s = 0.0;   // whole step(); >= sum of the phases
  };
  WallPhases wall;
};

class Simulation {
 public:
  // The protocol object defines the synchronization scheme under test.
  Simulation(SimulationOptions options,
             std::unique_ptr<compress::SyncProtocol> protocol);

  // Runs one round; returns its record.
  RoundRecord step();

  // Runs `rounds` rounds, collecting records. `stop_at_accuracy`, when set,
  // ends the run early once a test evaluation reaches the target.
  std::vector<RoundRecord> run(int rounds,
                               std::optional<float> stop_at_accuracy = {});

  float evaluate() const;  // test accuracy of the current global model

  const std::vector<float>& global_state() const { return global_; }
  compress::SyncProtocol& protocol() { return *protocol_; }
  const SimulationOptions& options() const { return options_; }
  int rounds_completed() const { return round_; }
  double elapsed_time_s() const { return elapsed_time_s_; }
  std::size_t model_state_size() const { return global_.size(); }
  double model_flops_per_round() const;

  // Called after each round, before the record is returned; used by benches
  // to snoop trajectories without re-running.
  void set_round_hook(std::function<void(const RoundRecord&)> hook) {
    round_hook_ = std::move(hook);
  }

  // Dynamicity (paper §V): adds a fresh client mid-run with the given shard
  // of extra data; it downloads model + protocol join state. Returns its id
  // and the join payload bytes.
  std::pair<int, std::size_t> add_client(data::Dataset shard);

  // Removes a client from future participation (simulated dropout).
  void drop_client(int client_id);

  // Replaces the global model state (checkpoint restore). The protocol's own
  // state is restored separately via SyncProtocol::restore().
  void load_global_state(std::vector<float> state);

 private:
  std::vector<int> select_participants(int round);
  // Trains every participant (reading global_, filling states/losses by
  // participant position) — across the pool when it pays, else sequentially.
  void train_participants(const std::vector<int>& participants,
                          const LocalTrainOptions& local,
                          std::vector<std::vector<float>>& states,
                          std::vector<double>& losses);

  SimulationOptions options_;
  std::unique_ptr<compress::SyncProtocol> protocol_;
  data::TrainTest data_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<bool> active_;
  mutable nn::Model scratch_model_;
  // Worker pool plus one model replica per worker; both null/empty when
  // options_.threads resolves to 1. Replicas are built lazily on the first
  // multi-participant round from the same spec+seed as scratch_model_, so a
  // replica that loaded global_ is bit-identical to the scratch model.
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<std::unique_ptr<nn::Model>> replicas_;
  net::NetworkModel network_;
  std::vector<float> global_;
  int round_ = 0;
  double elapsed_time_s_ = 0.0;
  double last_mean_payload_bytes_ = 0.0;  // for finish-time estimation
  std::function<void(const RoundRecord&)> round_hook_;
};

}  // namespace fedsu::fl
