// End-to-end FL simulation: dataset generation, Dirichlet partitioning,
// round loop with earliest-70 % participation, protocol-driven
// synchronization, and the simulated-time cost model (DESIGN.md §2).
// Participant training runs across a thread pool (SimulationOptions::threads)
// with bitwise-identical results for every thread count: clients train on
// per-worker replicas in parallel, and aggregation consumes the states in
// deterministic participant order.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "compress/protocol.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/faults.h"
#include "net/async_queue.h"
#include "net/network_model.h"
#include "nn/schedule.h"
#include "nn/zoo.h"
#include "util/thread_pool.h"

namespace fedsu::fl {

// How per-round simulated time is computed.
enum class TimingModel {
  kCoarse,     // per-client: compute + bytes / (capacity shared evenly)
  kFlowLevel,  // two-phase max-min-fair flow simulation (net/round_timeline)
};

// FedBuff-style buffered-asynchronous execution (DESIGN.md §11): the server
// aggregates as soon as the first `buffer_k` uploads arrive on the simulated
// clock, weighting each update by 1/(1+staleness)^alpha where staleness is
// the number of aggregations since the update's model version was
// dispatched. Slow clients keep training against the version they were
// handed instead of being re-selected; the synchronous barrier disappears.
struct AsyncOptions {
  bool enabled = false;
  // Uploads buffered before the server aggregates. 0 (the default) means
  // half the cohort, rounded up to 1. A value >= the cohort with zero fault
  // rates is structurally a barrier and runs the exact synchronous path
  // (bitwise-identical byte stream, see DESIGN.md §11).
  int buffer_k = 0;
  // Staleness discount exponent alpha. 0 = unweighted buffering: every
  // update's delta is applied at full weight regardless of age.
  double staleness_alpha = 0.5;
};

// The staleness discount w = 1/(1+s)^alpha. s <= 0 or alpha == 0 gives
// exactly 1.0. Exposed for tests and doc examples.
double staleness_weight(int staleness, double alpha);

// Periodic run checkpointing (docs/RECOVERY.md): every `every` completed
// rounds the simulation serializes its full resume frontier
// (Simulation::snapshot_state) and writes it atomically to
// `dir/ckpt-<round>.fedsu` (io::save_run_checkpoint). A later process
// restores it with Simulation::restore_state and replays the remaining
// rounds bitwise-identically to the uninterrupted run.
struct CheckpointOptions {
  int every = 0;    // cadence in completed rounds; 0 disables
  std::string dir;  // checkpoint directory (created on first write)
  // Retention: after each successful write, delete the oldest checkpoints
  // in `dir` until at most `keep` remain (io::prune_run_checkpoints).
  // 0 keeps everything — the historical behaviour.
  int keep = 0;
};

// Thrown by Simulation::step() when the server-crash fault family
// (FaultOptions::server_crash_*, docs/FAULT_MODEL.md §7) kills the server at
// the start of a round/cycle. The simulation object is left exactly as the
// previous round ended — harnesses typically exit the process here and a
// later invocation resumes from the last checkpoint.
class ServerCrashed : public std::runtime_error {
 public:
  explicit ServerCrashed(int round)
      : std::runtime_error("server crashed at the start of round " +
                           std::to_string(round)),
        round_(round) {}
  int round() const { return round_; }

 private:
  int round_;
};

struct SimulationOptions {
  nn::ModelSpec model;
  data::SyntheticSpec dataset;
  int num_clients = 8;
  double dirichlet_alpha = 1.0;  // paper §VI-A uses alpha = 1
  LocalTrainOptions local;
  // Optional learning-rate schedule; when set it overrides
  // local.learning_rate per round (e.g. the O(1/sqrt(T)) schedule Theorem 1
  // suggests). Null means the constant local.learning_rate.
  std::shared_ptr<const nn::LrSchedule> lr_schedule;
  // Fraction of clients whose updates the server uses each round — the
  // earliest finishers (paper: 70 %).
  double participation_fraction = 0.7;
  // How the fraction is chosen: the paper keeps the EARLIEST finishers
  // (biasing toward fast devices); kUniform samples uniformly instead
  // (classic FedAvg C-fraction), at the cost of waiting for slow devices.
  enum class Participation { kEarliest, kUniform };
  Participation participation = Participation::kEarliest;
  net::NetworkOptions network;
  TimingModel timing = TimingModel::kCoarse;
  // Deterministic fault injection & churn (fl/faults, DESIGN.md §10,
  // docs/FAULT_MODEL.md). All rates zero (the default) keeps the fault
  // layer entirely off the round path: results are bitwise identical to a
  // build without it.
  FaultOptions faults;
  // Legacy flat upload-loss knob, folded into `faults` at construction so
  // there is a single failure mechanism: when faults.upload_loss_probability
  // is 0 this value is used as the per-attempt loss probability (with
  // faults.max_retries retries, default 0 = the historical no-retry
  // semantics). A round whose every upload is lost stalls: time passes, the
  // global state stays put, and the RoundRecord is self-consistent
  // (num_participants == 0, speculated_fraction == 0).
  double upload_loss_probability = 0.0;
  // Buffered-async execution. When enabled, `participation_fraction` is
  // ignored (every active client is always either training or uploading),
  // and `timing` is forced to kFlowLevel — overlapping uploads only exist
  // in the flow-level model.
  AsyncOptions async;
  // Periodic crash-recovery checkpoints (docs/RECOVERY.md). Writing a
  // checkpoint only reads state, so enabling it cannot perturb results.
  CheckpointOptions checkpoint;
  int eval_every = 1;       // test-set evaluation period, in rounds
  int eval_batch = 64;
  std::uint64_t seed = 42;
  // Worker threads for the round's local training (each participant trains
  // on a per-worker model replica). 0 = hardware concurrency; 1 runs the
  // historical sequential path. Results are bitwise identical for every
  // value — see DESIGN.md §"Determinism under parallelism".
  int threads = 0;
};

struct RoundRecord {
  int round = 0;
  int uploads_lost = 0;  // failure injection (see SimulationOptions)
  double round_time_s = 0.0;     // simulated duration of this round
  double elapsed_time_s = 0.0;   // cumulative simulated time
  double train_loss = 0.0;       // mean over participants
  std::optional<float> test_accuracy;  // present on eval rounds
  double sparsification_ratio = 0.0;   // protocol-reported
  std::size_t bytes_up = 0;            // summed over participants
  std::size_t bytes_down = 0;
  int num_participants = 0;

  // Protocol-reported speculation telemetry (compress::SyncProtocol::
  // last_round_telemetry): zero for non-speculative schemes.
  double speculated_fraction = 0.0;
  int fallback_syncs = 0;

  // Per-round fault tallies, engaged only when fault injection is on (the
  // optional stays empty otherwise, keeping zero-rate records bit-identical
  // to pre-fault-layer output). Invariant when present:
  //   selected == num_participants + uploads_lost + corrupt
  //              + deadline_missed + unused.
  struct FaultCounters {
    int selected = 0;         // clients the server started this round
    int crashed = 0;          // population currently absent (crashed)
    int rejoined = 0;         // clients back from an absence this round
    int resyncs = 0;          // forced protocol state re-syncs on rejoin
    int stragglers = 0;       // slowed-down clients among the selected
    int retries = 0;          // extra upload attempts among the selected
    int corrupt = 0;          // uploads discarded on CRC mismatch
    int deadline_missed = 0;  // uploads dropped for landing past deadline
    int unused = 0;           // delivered but beyond the aggregation target
    bool quorum_met = true;   // false: round stalled below min_quorum
  };
  std::optional<FaultCounters> faults;

  // Per-cycle buffered-async telemetry, engaged only when the async engine
  // ran the cycle (the optional stays empty on the synchronous path and in
  // barrier-degenerate async runs, which ARE the synchronous path).
  // In async mode one RoundRecord describes one aggregation cycle, and the
  // fault reconciliation invariant becomes cumulative: over a run,
  //   sum(selected) == sum(num_participants) + sum(uploads_lost)
  //                  + sum(corrupt) + sum(deadline_missed)
  //                  + inflight-at-end
  // because a cycle may consume uploads dispatched cycles earlier.
  struct AsyncStats {
    int buffer_k = 0;          // effective K after clamping to the cohort
    int consumed = 0;          // uploads aggregated this cycle
    int inflight = 0;          // uploads still traveling when the cycle ended
    double fill_time_s = 0.0;  // cycle start -> K-th arrival (sim. seconds)
    int max_staleness = 0;     // version lag, in aggregations
    double mean_staleness = 0.0;
    double weight_sum = 0.0;   // sum of staleness weights over consumed
    // staleness_hist[s] = consumed uploads that were s versions stale;
    // sums to `consumed`.
    std::vector<int> staleness_hist;
  };
  std::optional<AsyncStats> async;

  // Outcome of the periodic run-checkpoint write, present only on rounds
  // where SimulationOptions::checkpoint scheduled one (the optional stays
  // empty otherwise, keeping checkpoint-off records bit-identical to
  // pre-recovery output). A failed write sets ok = false with a diagnostic;
  // the run continues — the health monitor raises a critical alert instead.
  struct CheckpointEvent {
    bool ok = false;
    int round = 0;          // rounds completed in the snapshot
    std::size_t bytes = 0;  // payload size (the file adds a 16-byte frame)
    std::string path;       // final file path; "" on failure
    std::string error;      // diagnostic on failure
  };
  std::optional<CheckpointEvent> checkpoint;

  // Host wall-clock time spent in each phase of step(), measured only when
  // obs::metrics_enabled() (all zero otherwise). These are real durations on
  // the machine running the simulator — they never feed back into the
  // simulated clock, so recording them cannot perturb results.
  struct WallPhases {
    double select_s = 0.0;  // participant selection
    double train_s = 0.0;   // local training across the pool
    double sync_s = 0.0;    // protocol synchronization
    double timing_s = 0.0;  // network cost model / flow simulation
    double eval_s = 0.0;    // test-set evaluation (eval rounds only)
    double total_s = 0.0;   // whole step(); >= sum of the phases
  };
  WallPhases wall;
};

class Simulation {
 public:
  // The protocol object defines the synchronization scheme under test.
  Simulation(SimulationOptions options,
             std::unique_ptr<compress::SyncProtocol> protocol);

  // Runs one round; returns its record.
  RoundRecord step();

  // Runs `rounds` rounds, collecting records. `stop_at_accuracy`, when set,
  // ends the run early once a test evaluation reaches the target.
  std::vector<RoundRecord> run(int rounds,
                               std::optional<float> stop_at_accuracy = {});

  float evaluate() const;  // test accuracy of the current global model

  const std::vector<float>& global_state() const { return global_; }
  compress::SyncProtocol& protocol() { return *protocol_; }
  const SimulationOptions& options() const { return options_; }
  const FaultPlan& fault_plan() const { return faults_; }
  int rounds_completed() const { return round_; }
  double elapsed_time_s() const { return elapsed_time_s_; }
  std::size_t model_state_size() const { return global_.size(); }
  double model_flops_per_round() const;

  // Called after each round, before the record is returned; used by benches
  // to snoop trajectories without re-running.
  void set_round_hook(std::function<void(const RoundRecord&)> hook) {
    round_hook_ = std::move(hook);
  }

  // Dynamicity (paper §V): adds a fresh client mid-run with the given shard
  // of extra data; it downloads model + protocol join state. Returns its id
  // and the join payload bytes.
  std::pair<int, std::size_t> add_client(data::Dataset shard);

  // Removes a client from future participation (simulated dropout).
  void drop_client(int client_id);

  // Replaces the global model state (checkpoint restore). The protocol's own
  // state is restored separately via SyncProtocol::restore().
  void load_global_state(std::vector<float> state);

  // Serializes the full resume frontier (docs/RECOVERY.md): model, protocol
  // snapshot (FedSU promotion/demotion state, SparseErrorStore slabs, rejoin
  // stamps), per-client batch-loader RNG/permutation cursors, fault-plan
  // churn state, and — in async mode — the version fence plus every
  // in-flight dispatch leg, so restore does not require a quiescent server.
  // Everything else (shards, network model, selection RNGs) re-derives from
  // SimulationOptions deterministically and is validated, not stored.
  std::vector<std::uint8_t> snapshot_state() const;

  // Restores a snapshot_state() payload onto a Simulation constructed with
  // the SAME options (protocol, cohort, model, seed — `threads` may differ;
  // §5b holds across thread counts). Replaying the remaining rounds then
  // produces output bitwise identical to the uninterrupted run. Throws on
  // any mismatch (different protocol, cohort size, model size, or sync/async
  // mode) and on malformed payloads, leaving no partial restore behind on a
  // validation failure. Mid-run add_client joiners are outside the resume
  // frontier: restore onto the constructed cohort, then re-add them.
  void restore_state(const std::vector<std::uint8_t>& payload);

 private:
  // One upload leg in flight between dispatch and consumption (async mode).
  struct InFlight {
    int client = 0;
    int version = 0;         // model_version_ at dispatch
    int dispatch_cycle = 0;  // round_ at dispatch (keys the fault RNG)
    double dispatch_s = 0.0; // absolute simulated dispatch time
    std::size_t flow = 0;    // AsyncUplink flow id
    int attempts = 1;
    double comm_factor = 1.0;
    bool delivered = true;
    bool corrupt = false;
    double loss = 0.0;
    std::vector<float> state;  // trained local state (awaiting arrival)
    // The global the client trained against; shared by every leg dispatched
    // off the same version so stale deltas can be re-based onto the current
    // model at consumption time.
    std::shared_ptr<const std::vector<float>> dispatch_global;
  };

  // The synchronous barrier round (the historical step()).
  RoundRecord step_sync();
  // One buffered-async aggregation cycle (DESIGN.md §11).
  RoundRecord step_async();
  // Writes the periodic run checkpoint when the cadence says so, attaching
  // the outcome to `record` (before the round hook sees it).
  void maybe_checkpoint(RoundRecord& record);

  std::vector<int> select_participants(int round);
  // Builds the consistent record for a round that stalled (no aggregation:
  // every upload lost, quorum missed, or every client crashed).
  RoundRecord stalled_round(int round, double round_time,
                            RoundRecord::FaultCounters counters);
  // Trains every participant (reading global_, filling states/losses by
  // participant position) — across the pool when it pays, else sequentially.
  void train_participants(const std::vector<int>& participants,
                          const LocalTrainOptions& local,
                          std::vector<std::vector<float>>& states,
                          std::vector<double>& losses);

  SimulationOptions options_;
  std::unique_ptr<compress::SyncProtocol> protocol_;
  // The training data exists exactly once: every client holds a
  // DatasetView (row indices) into this shared dataset instead of a copy
  // (DESIGN.md §13). Declared before clients_ so views outlive their users
  // even mid-destruction.
  std::shared_ptr<const data::Dataset> train_data_;
  data::Dataset test_data_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<bool> active_;
  mutable nn::Model scratch_model_;
  // Worker pool plus one model replica per worker; both null/empty when
  // options_.threads resolves to 1. Replicas are built lazily on the first
  // multi-participant round from the same spec+seed as scratch_model_, so a
  // replica that loaded global_ is bit-identical to the scratch model.
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<std::unique_ptr<nn::Model>> replicas_;
  net::NetworkModel network_;
  FaultPlan faults_;
  // Aggregation target of the latest selection (before over-selection).
  std::size_t select_target_ = 0;
  std::vector<float> global_;
  int round_ = 0;
  double elapsed_time_s_ = 0.0;
  double last_mean_payload_bytes_ = 0.0;  // for finish-time estimation
  std::function<void(const RoundRecord&)> round_hook_;

  // --- buffered-async state (unused on the synchronous path) ---
  // True when the configured K is structurally a barrier (K >= cohort, no
  // faults): the run routes to step_sync() and is the synchronous path.
  bool async_barrier_ = false;
  int model_version_ = 0;  // aggregations completed (== protocol rounds_seen)
  std::unique_ptr<net::AsyncUplink> uplink_;
  std::vector<InFlight> inflight_;
  std::vector<char> client_busy_;       // has an upload leg in flight
  std::vector<double> client_ready_s_;  // absolute next-dispatch time

};

}  // namespace fedsu::fl
