#include "fl/client.h"

#include <stdexcept>

#include "obs/trace.h"

namespace fedsu::fl {

Client::Client(int id, data::DatasetView shard, int batch_size, util::Rng rng)
    : id_(id), shard_(std::move(shard)), loader_(shard_, batch_size, rng) {
  if (id < 0) throw std::invalid_argument("Client: negative id");
}

Client::Client(int id, data::Dataset shard, int batch_size, util::Rng rng)
    : Client(id, data::DatasetView::own(std::move(shard)), batch_size, rng) {}

float Client::train_round(nn::Model& model, const LocalTrainOptions& options) {
  OBS_SPAN("client.train");
  nn::SgdOptions sgd_options;
  sgd_options.learning_rate = options.learning_rate;
  sgd_options.weight_decay = options.weight_decay;
  sgd_options.momentum = options.momentum;
  nn::Sgd sgd(model.parameters(), sgd_options);
  nn::SoftmaxCrossEntropy loss;

  // FedProx anchor: the global state the round started from.
  std::vector<float> anchor;
  if (options.proximal_mu != 0.0f) anchor = model.state_vector();

  tensor::Tensor batch;
  std::vector<int> labels;
  double total_loss = 0.0;
  for (int it = 0; it < options.iterations; ++it) {
    loader_.next(batch, labels);
    model.zero_grads();
    const tensor::Tensor logits = model.forward(batch, /*train=*/true);
    total_loss += loss.forward(logits, labels);
    model.backward(loss.backward());
    if (options.proximal_mu != 0.0f) {
      apply_proximal_term(model, anchor, options.proximal_mu);
    }
    sgd.step();
  }
  return options.iterations > 0
             ? static_cast<float>(total_loss / options.iterations)
             : 0.0f;
}

void Client::apply_proximal_term(nn::Model& model,
                                 const std::vector<float>& anchor,
                                 float mu) const {
  // grad += mu * (x - x_global), over trainable parameters only.
  std::size_t offset = 0;
  for (nn::Param* p : model.parameters()) {
    if (p->trainable) {
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        p->grad[i] += mu * (p->value[i] - anchor[offset + i]);
      }
    }
    offset += p->value.size();
  }
}

}  // namespace fedsu::fl
