#include "fl/protocol_factory.h"

#include <stdexcept>

#include "compress/apf.h"
#include "compress/cmfl.h"
#include "compress/fedavg.h"
#include "compress/qsgd.h"
#include "compress/signsgd.h"
#include "compress/topk.h"

namespace fedsu::fl {

std::unique_ptr<compress::SyncProtocol> make_protocol(
    const ProtocolConfig& config) {
  if (config.name == "fedavg") {
    return std::make_unique<compress::FedAvg>();
  }
  if (config.name == "cmfl") {
    compress::CmflOptions options;
    options.relevance_threshold = config.cmfl_relevance;
    return std::make_unique<compress::Cmfl>(options);
  }
  if (config.name == "apf") {
    compress::ApfOptions options;
    options.stability_threshold = config.apf_stability;
    return std::make_unique<compress::Apf>(options);
  }
  if (config.name == "fedsu") {
    return std::make_unique<core::FedSuManager>(config.num_clients,
                                                config.fedsu);
  }
  if (config.name == "fedsu-v1") {
    return std::make_unique<core::FedSuV1>(config.fedsu_v1);
  }
  if (config.name == "fedsu-v2") {
    return std::make_unique<core::FedSuV2>(config.fedsu_v2);
  }
  if (config.name == "topk") {
    compress::TopKOptions options;
    options.fraction = config.topk_fraction;
    return std::make_unique<compress::TopK>(config.num_clients, options);
  }
  if (config.name == "qsgd") {
    compress::QsgdOptions options;
    options.bits = config.qsgd_bits;
    return std::make_unique<compress::Qsgd>(options);
  }
  if (config.name == "signsgd") {
    compress::SignSgdOptions options;
    options.step_scale = config.signsgd_step_scale;
    return std::make_unique<compress::SignSgd>(options);
  }
  throw std::invalid_argument("make_protocol: unknown protocol '" +
                              config.name + "'");
}

std::vector<std::string> known_protocols() {
  return {"fedavg", "cmfl", "apf", "fedsu", "fedsu-v1", "fedsu-v2", "topk",
          "qsgd",  "signsgd"};
}

}  // namespace fedsu::fl
