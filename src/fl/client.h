// FL client: local SGD over a private shard.
//
// Clients do not own model replicas; the simulation lends each client a
// model for its local iterations (load global state -> train -> extract
// state) — the single scratch model when running sequentially, a per-worker
// replica when rounds train in parallel. Because the lent model is fully
// overwritten from the global state first, both are numerically identical
// to per-client replicas. A Client is only ever driven by one thread at a
// time; its batch-loader RNG is part of its private state.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "data/loader.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/sgd.h"
#include "util/rng.h"

namespace fedsu::fl {

struct LocalTrainOptions {
  int iterations = 10;  // F_s in Algorithm 1 (paper runs 50)
  int batch_size = 16;
  float learning_rate = 0.01f;
  float weight_decay = 1e-3f;
  float momentum = 0.0f;
  // FedProx proximal coefficient mu (Li et al., MLSys'20): adds
  // mu * (x - x_global) to each local gradient, damping client drift under
  // non-IID data. 0 disables. The paper notes FedSU composes with such
  // accuracy-oriented methods (§VI-A footnote 3).
  float proximal_mu = 0.0f;
};

class Client {
 public:
  // `shard` is a zero-copy view of the shared training dataset: the client
  // stores only its row indices, not a copy of the images (DESIGN.md §13).
  Client(int id, data::DatasetView shard, int batch_size, util::Rng rng);
  // Legacy copy path: adopts a standalone dataset as the private shard.
  // Training over it is bit-identical to the view over the same rows.
  Client(int id, data::Dataset shard, int batch_size, util::Rng rng);

  int id() const { return id_; }
  std::size_t dataset_size() const { return shard_.size(); }
  const data::DatasetView& shard() const { return shard_; }

  // Runs `options.iterations` local SGD steps on `model`, which must
  // already hold the current global state. Returns the mean training loss.
  float train_round(nn::Model& model, const LocalTrainOptions& options);

  // Checkpoint support: the client's only mutable state is its batch
  // loader (shuffle RNG + epoch permutation + cursor).
  void serialize(io::BinaryWriter& writer) const { loader_.serialize(writer); }
  void deserialize(io::BinaryReader& reader) { loader_.deserialize(reader); }

 private:
  void apply_proximal_term(nn::Model& model,
                           const std::vector<float>& anchor,
                           float mu) const;

 private:
  int id_;
  data::DatasetView shard_;  // must precede loader_ (it holds a reference)
  data::BatchLoader loader_;
};

}  // namespace fedsu::fl
