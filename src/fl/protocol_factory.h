// Builds a synchronization protocol by name — the registry bench binaries
// and examples share.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compress/protocol.h"
#include "core/fedsu_manager.h"
#include "core/fedsu_variants.h"

namespace fedsu::fl {

struct ProtocolConfig {
  // fedavg | cmfl | apf | fedsu | fedsu-v1 | fedsu-v2 | topk | qsgd | signsgd
  std::string name = "fedsu";
  int num_clients = 8;

  core::FedSuOptions fedsu;       // fedsu
  core::FedSuV1Options fedsu_v1;  // fedsu-v1
  core::FedSuV2Options fedsu_v2;  // fedsu-v2
  double cmfl_relevance = 0.8;    // cmfl
  double apf_stability = 0.05;    // apf
  double topk_fraction = 0.1;     // topk
  int qsgd_bits = 8;              // qsgd
  double signsgd_step_scale = 1.0;  // signsgd
};

std::unique_ptr<compress::SyncProtocol> make_protocol(
    const ProtocolConfig& config);

std::vector<std::string> known_protocols();

}  // namespace fedsu::fl
