// Deterministic fault injection & churn for the FL simulator (DESIGN.md §10,
// docs/FAULT_MODEL.md).
//
// A FaultPlan turns FaultOptions + a seed (or an explicit CSV trace) into
// per-(round, client) events: crash/rejoin churn, compute/bandwidth
// stragglers, upload loss with bounded retry/backoff, and payload corruption.
// Every realization is drawn from a generator keyed on (seed, round, client),
// so the schedule is bitwise identical for any `--threads` value and any
// call-site ordering — the §5b determinism contract extends to faults.
//
// The plan is pay-for-what-you-use: a default-constructed (or all-zero-rate,
// trace-less) plan reports enabled() == false and the simulator skips the
// fault path entirely, leaving results bitwise identical to a build without
// this subsystem.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fedsu::fl {

struct FaultOptions {
  // Crash/rejoin churn: each round an up client crashes with this
  // probability and stays absent for a uniform number of rounds in
  // [crash_rounds_min, crash_rounds_max]. On return it is stale: the server
  // forces a re-sync (model + protocol speculation state) before it may
  // participate again.
  double crash_probability = 0.0;
  int crash_rounds_min = 1;
  int crash_rounds_max = 3;
  // Stragglers: with this probability a client's round runs slower by the
  // given multipliers (>= 1; compute and communication independently), so
  // the earliest-70% participation cut reshuffles.
  double straggler_probability = 0.0;
  double straggler_compute_factor = 4.0;
  double straggler_comm_factor = 4.0;
  // Upload loss: each upload attempt is lost with this probability; the
  // client retries up to max_retries times, waiting retry_backoff_s of
  // simulated time between attempts. With max_retries = 0 this reduces to
  // the legacy flat SimulationOptions::upload_loss_probability semantics.
  double upload_loss_probability = 0.0;
  int max_retries = 0;
  double retry_backoff_s = 0.5;
  // Payload corruption: a delivered upload arrives bit-flipped with this
  // probability. The server detects it via the CRC-32 on the wire encoding
  // (compress/wire) and discards the update.
  double corruption_probability = 0.0;
  // Server collection policy. deadline_s > 0: uploads estimated to land
  // after the deadline are dropped (the server stops waiting). Over-
  // selection starts extra clients beyond the participation target so
  // losses/stragglers can be backfilled. min_quorum: fewer surviving
  // uploads than this stalls the round (time passes, state stays).
  double deadline_s = 0.0;
  double over_select_fraction = 0.0;
  int min_quorum = 1;
  // Server-side fault family (docs/FAULT_MODEL.md §7): the *server* dies at
  // the start of round/cycle k. A crash terminates the run (the process
  // exits; recovery is resuming from the last checkpoint — docs/RECOVERY.md),
  // so unlike client faults there is no per-round state machine: the event
  // is a pure function of (seed, round). server_crash_at pins a single
  // deterministic crash round (< 0 disables); server_crash_probability
  // draws per round from a stream keyed on (seed, round) — the same
  // stateless keying as the client families, salted so the server stream
  // never collides with any client's. These knobs deliberately do NOT flip
  // enabled(): they engage no client-fault machinery and leave the
  // telemetry/record format untouched.
  int server_crash_at = -1;
  double server_crash_probability = 0.0;
  std::uint64_t seed = 0x5eedfa17ULL;
  // Optional CSV trace of explicit events, applied on top of (and taking
  // precedence over) the probabilistic draws. Format, one event per line:
  //   round,client,event,value
  // with event in {crash, straggle-compute, straggle-comm, lose-upload,
  // corrupt, server-crash}. Values: crash = rounds absent; straggle-* =
  // time multiplier; lose-upload = attempts needed to deliver (0 or >
  // max_retries + 1 means never delivered); corrupt and server-crash ignore
  // the value (server-crash also ignores the client column). Lines starting
  // with '#' and a leading "round,client,..." header are skipped.
  std::string trace_csv;
};

// Everything that befalls one client in one round.
struct ClientFault {
  bool absent = false;    // crashed: does not train, cannot be selected
  bool rejoined = false;  // first round back after an absence (stale state)
  bool straggler = false;
  double compute_factor = 1.0;  // >= 1 multiplies compute time
  double comm_factor = 1.0;     // >= 1 multiplies transfer time
  int upload_attempts = 1;      // attempts actually made this round
  bool delivered = true;        // false: lost even after all retries
  bool corrupt = false;         // delivered, but fails the CRC check
};

class FaultPlan {
 public:
  FaultPlan() = default;  // disabled: enabled() == false
  explicit FaultPlan(FaultOptions options);

  bool enabled() const { return enabled_; }
  const FaultOptions& options() const { return options_; }

  // True when any server-crash source is configured (fixed round,
  // probability, or a trace event). Kept separate from enabled(): server
  // faults engage none of the client-fault branches.
  bool server_faults_enabled() const { return server_faults_enabled_; }

  // Does the server die at the start of `round`? Pure function of
  // (seed, round) — stateless, so it may be queried any number of times
  // (including after a resume) and always answers the same.
  bool server_crash(int round) const;

  // Resolves every fault for `round` across clients [0, num_clients).
  // Call once per round from the (sequential) round loop with
  // non-decreasing rounds: the crash state machine advances here. All
  // per-client draws come from (seed, round, client)-keyed streams, so the
  // realization is independent of threading.
  void begin_round(int round, int num_clients);

  const ClientFault& fault(int client) const {
    return current_[static_cast<std::size_t>(client)];
  }
  bool is_absent(int client) const { return fault(client).absent; }

  // Population-level tallies for the round begin_round() last resolved.
  struct RoundSummary {
    int onsets = 0;      // crashes that started this round
    int absent = 0;      // clients down this round (incl. earlier onsets)
    int rejoined = 0;    // clients back from an absence this round
    int stragglers = 0;
  };
  const RoundSummary& round_summary() const { return summary_; }

  // Checkpoint support: the crash/rejoin state machine (`down_until_`) is
  // the plan's only cross-round state. Everything else is re-derived from
  // (seed, round, client) keys, so snapshotting these ints is sufficient to
  // resume the fault schedule byte-exactly mid-run.
  const std::vector<int>& churn_state() const { return down_until_; }
  void restore_churn_state(std::vector<int> down_until) {
    down_until_ = std::move(down_until);
  }

 private:
  void apply_trace(int round, int num_clients);

  FaultOptions options_;
  bool enabled_ = false;
  bool server_faults_enabled_ = false;
  std::vector<ClientFault> current_;
  // down_until_[c] > round means client c is absent in `round`; a client
  // whose down_until_ equals the current round rejoins in it.
  std::vector<int> down_until_;
  RoundSummary summary_;

  struct TraceEvent {
    int client = 0;
    enum class Kind { kCrash, kStraggleCompute, kStraggleComm, kLoseUpload,
                      kCorrupt, kServerCrash } kind = Kind::kCrash;
    double value = 0.0;
  };
  std::unordered_map<int, std::vector<TraceEvent>> trace_;  // keyed by round
};

}  // namespace fedsu::fl
