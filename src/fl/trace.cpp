#include "fl/trace.h"

namespace fedsu::fl {

RoundTrace::RoundTrace(const std::string& path) : csv_(path) {
  csv_.write_row({"round", "round_time_s", "elapsed_time_s", "train_loss",
                  "test_accuracy", "sparsification_ratio", "bytes_up",
                  "bytes_down", "participants", "speculated_fraction",
                  "fallback_syncs"});
  csv_.flush();
}

void RoundTrace::append(const RoundRecord& record) {
  csv_.write_row(
      {std::to_string(record.round),
       util::CsvWriter::field(record.round_time_s),
       util::CsvWriter::field(record.elapsed_time_s),
       util::CsvWriter::field(record.train_loss),
       record.test_accuracy ? util::CsvWriter::field(*record.test_accuracy)
                            : std::string(""),
       util::CsvWriter::field(record.sparsification_ratio),
       util::CsvWriter::field(static_cast<long long>(record.bytes_up)),
       util::CsvWriter::field(static_cast<long long>(record.bytes_down)),
       std::to_string(record.num_participants),
       util::CsvWriter::field(record.speculated_fraction),
       std::to_string(record.fallback_syncs)});
  ++rows_;
  // Per-row flush: a killed long run keeps every completed round on disk.
  csv_.flush();
}

std::function<void(const RoundRecord&)> RoundTrace::hook() {
  return [this](const RoundRecord& record) { append(record); };
}

}  // namespace fedsu::fl
