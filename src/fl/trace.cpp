#include "fl/trace.h"

namespace fedsu::fl {

RoundTrace::RoundTrace(const std::string& path) : csv_(path) {
  csv_.write_row({"round", "round_time_s", "elapsed_time_s", "train_loss",
                  "test_accuracy", "sparsification_ratio", "bytes_up",
                  "bytes_down", "participants"});
}

void RoundTrace::append(const RoundRecord& record) {
  csv_.write_row(
      {std::to_string(record.round),
       util::CsvWriter::field(record.round_time_s),
       util::CsvWriter::field(record.elapsed_time_s),
       util::CsvWriter::field(record.train_loss),
       record.test_accuracy ? util::CsvWriter::field(*record.test_accuracy)
                            : std::string(""),
       util::CsvWriter::field(record.sparsification_ratio),
       util::CsvWriter::field(static_cast<long long>(record.bytes_up)),
       util::CsvWriter::field(static_cast<long long>(record.bytes_down)),
       std::to_string(record.num_participants)});
  ++rows_;
}

std::function<void(const RoundRecord&)> RoundTrace::hook() {
  return [this](const RoundRecord& record) { append(record); };
}

}  // namespace fedsu::fl
