#include "fl/faults.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace fedsu::fl {

namespace {

void check_probability(double p, const char* name) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                " outside [0, 1]");
  }
}

FaultPlan::RoundSummary summarize(const std::vector<ClientFault>& faults) {
  FaultPlan::RoundSummary summary;
  for (const ClientFault& f : faults) {
    if (f.absent) ++summary.absent;
    if (f.rejoined) ++summary.rejoined;
    if (f.straggler) ++summary.stragglers;
  }
  return summary;
}

}  // namespace

FaultPlan::FaultPlan(FaultOptions options) : options_(std::move(options)) {
  check_probability(options_.crash_probability, "crash_probability");
  check_probability(options_.straggler_probability, "straggler_probability");
  check_probability(options_.upload_loss_probability,
                    "upload_loss_probability");
  check_probability(options_.corruption_probability, "corruption_probability");
  check_probability(options_.over_select_fraction, "over_select_fraction");
  check_probability(options_.server_crash_probability,
                    "server_crash_probability");
  if (options_.crash_rounds_min < 1 ||
      options_.crash_rounds_max < options_.crash_rounds_min) {
    throw std::invalid_argument(
        "FaultPlan: need 1 <= crash_rounds_min <= crash_rounds_max");
  }
  if (options_.straggler_compute_factor <= 0.0 ||
      options_.straggler_comm_factor <= 0.0) {
    throw std::invalid_argument("FaultPlan: straggler factors must be > 0");
  }
  if (options_.max_retries < 0 || options_.retry_backoff_s < 0.0 ||
      options_.deadline_s < 0.0) {
    throw std::invalid_argument(
        "FaultPlan: retries/backoff/deadline must be non-negative");
  }
  if (options_.min_quorum < 1) {
    throw std::invalid_argument("FaultPlan: min_quorum must be >= 1");
  }

  if (!options_.trace_csv.empty()) {
    std::ifstream in(options_.trace_csv);
    if (!in) {
      throw std::runtime_error("FaultPlan: cannot open trace " +
                               options_.trace_csv);
    }
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty() || line[0] == '#') continue;
      std::istringstream row(line);
      std::string round_s, client_s, event, value_s;
      if (!std::getline(row, round_s, ',') ||
          !std::getline(row, client_s, ',') ||
          !std::getline(row, event, ',')) {
        throw std::runtime_error("FaultPlan: malformed trace line " +
                                 std::to_string(line_no));
      }
      std::getline(row, value_s, ',');  // optional (corrupt ignores it)
      if (round_s == "round") continue;  // header
      TraceEvent ev;
      int round = 0;
      try {
        round = std::stoi(round_s);
        ev.client = std::stoi(client_s);
        ev.value = value_s.empty() ? 0.0 : std::stod(value_s);
      } catch (const std::exception&) {
        throw std::runtime_error("FaultPlan: bad number on trace line " +
                                 std::to_string(line_no));
      }
      if (event == "crash") {
        ev.kind = TraceEvent::Kind::kCrash;
      } else if (event == "straggle-compute") {
        ev.kind = TraceEvent::Kind::kStraggleCompute;
      } else if (event == "straggle-comm") {
        ev.kind = TraceEvent::Kind::kStraggleComm;
      } else if (event == "lose-upload") {
        ev.kind = TraceEvent::Kind::kLoseUpload;
      } else if (event == "corrupt") {
        ev.kind = TraceEvent::Kind::kCorrupt;
      } else if (event == "server-crash") {
        ev.kind = TraceEvent::Kind::kServerCrash;
      } else {
        throw std::runtime_error("FaultPlan: unknown event '" + event +
                                 "' on trace line " + std::to_string(line_no));
      }
      if (round < 0 || ev.client < 0) {
        throw std::runtime_error("FaultPlan: negative round/client on line " +
                                 std::to_string(line_no));
      }
      trace_[round].push_back(ev);
    }
  }

  // enabled_ gates only the *client*-fault machinery: server-crash events
  // (knobs or trace lines) must not engage it, or a server-faults-only run
  // would change its telemetry/record format.
  bool trace_has_client_events = false;
  bool trace_has_server_crash = false;
  for (const auto& [round, events] : trace_) {
    for (const TraceEvent& ev : events) {
      if (ev.kind == TraceEvent::Kind::kServerCrash) {
        trace_has_server_crash = true;
      } else {
        trace_has_client_events = true;
      }
    }
  }
  enabled_ = options_.crash_probability > 0.0 ||
             options_.straggler_probability > 0.0 ||
             options_.upload_loss_probability > 0.0 ||
             options_.corruption_probability > 0.0 ||
             options_.deadline_s > 0.0 ||
             options_.over_select_fraction > 0.0 || trace_has_client_events;
  server_faults_enabled_ = options_.server_crash_at >= 0 ||
                           options_.server_crash_probability > 0.0 ||
                           trace_has_server_crash;
}

bool FaultPlan::server_crash(int round) const {
  if (round < 0 || !server_faults_enabled_) return false;
  if (options_.server_crash_at >= 0 && round == options_.server_crash_at) {
    return true;
  }
  if (auto it = trace_.find(round); it != trace_.end()) {
    for (const TraceEvent& ev : it->second) {
      if (ev.kind == TraceEvent::Kind::kServerCrash) return true;
    }
  }
  if (options_.server_crash_probability > 0.0) {
    // Same stateless (seed, round) keying as the client families, salted so
    // the server stream never collides with a client's (client streams XOR
    // in 0xbf58476d1ce4e5b9 * (c + 1); this salt is outside that family).
    util::Rng draw(options_.seed ^ 0x5e12c7a5d00dfeedULL ^
                   (0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(round) + 1)));
    return draw.bernoulli(options_.server_crash_probability);
  }
  return false;
}

void FaultPlan::begin_round(int round, int num_clients) {
  if (round < 0 || num_clients < 0) {
    throw std::invalid_argument("FaultPlan::begin_round: negative argument");
  }
  const auto n = static_cast<std::size_t>(num_clients);
  if (down_until_.size() < n) down_until_.resize(n, 0);  // late joiners
  current_.assign(n, ClientFault{});
  summary_ = RoundSummary{};

  // Crash state machine + rejoin detection. A client whose absence window
  // ended (at or before this round) rejoins exactly once.
  for (std::size_t c = 0; c < n; ++c) {
    ClientFault& f = current_[c];
    if (round < down_until_[c]) {
      f.absent = true;
      f.delivered = false;  // a crashed client uploads nothing
    } else if (down_until_[c] > 0) {
      f.rejoined = true;
      down_until_[c] = 0;
    }
  }

  // Explicit trace crashes first: they drive the same state machine and
  // override a same-round rejoin (the client never actually came back).
  if (auto it = trace_.find(round); it != trace_.end()) {
    for (const TraceEvent& ev : it->second) {
      if (ev.kind != TraceEvent::Kind::kCrash) continue;
      if (ev.client >= num_clients) continue;  // not in the population yet
      const int duration = std::max(1, static_cast<int>(ev.value));
      down_until_[static_cast<std::size_t>(ev.client)] = round + duration;
      ClientFault& f = current_[static_cast<std::size_t>(ev.client)];
      if (!f.absent) ++summary_.onsets;
      f.absent = true;
      f.delivered = false;
      f.rejoined = false;
    }
  }

  // Probabilistic realizations: one fresh generator per (seed, round,
  // client), drawn in a fixed order, so the schedule is a pure function of
  // the key — threading and call order cannot perturb it.
  for (std::size_t c = 0; c < n; ++c) {
    ClientFault& f = current_[c];
    if (f.absent) continue;
    util::Rng draw(options_.seed ^
                   (0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(round) + 1)) ^
                   (0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(c) + 1)));
    // Rejoining rounds are protected from a fresh onset: the forced re-sync
    // must complete before the client can crash again.
    if (!f.rejoined && options_.crash_probability > 0.0 &&
        draw.bernoulli(options_.crash_probability)) {
      const int span =
          options_.crash_rounds_max - options_.crash_rounds_min + 1;
      const int duration =
          options_.crash_rounds_min +
          static_cast<int>(draw.uniform_index(static_cast<std::uint64_t>(span)));
      down_until_[c] = round + duration;
      f.absent = true;
      f.delivered = false;
      ++summary_.onsets;
      continue;
    }
    if (options_.straggler_probability > 0.0 &&
        draw.bernoulli(options_.straggler_probability)) {
      f.straggler = true;
      f.compute_factor = options_.straggler_compute_factor;
      f.comm_factor = options_.straggler_comm_factor;
    }
    if (options_.upload_loss_probability > 0.0) {
      f.delivered = false;
      for (int attempt = 1; attempt <= options_.max_retries + 1; ++attempt) {
        f.upload_attempts = attempt;
        if (!draw.bernoulli(options_.upload_loss_probability)) {
          f.delivered = true;
          break;
        }
      }
    }
    if (f.delivered && options_.corruption_probability > 0.0 &&
        draw.bernoulli(options_.corruption_probability)) {
      f.corrupt = true;
    }
  }

  // Non-crash trace events override the probabilistic draws. Server
  // crashes are not per-client events; begin_round ignores them entirely.
  if (auto it = trace_.find(round); it != trace_.end()) {
    for (const TraceEvent& ev : it->second) {
      if (ev.kind == TraceEvent::Kind::kCrash ||
          ev.kind == TraceEvent::Kind::kServerCrash) {
        continue;
      }
      if (ev.client >= num_clients) continue;
      ClientFault& f = current_[static_cast<std::size_t>(ev.client)];
      if (f.absent) continue;  // a crashed client has no round to perturb
      switch (ev.kind) {
        case TraceEvent::Kind::kStraggleCompute:
          f.straggler = true;
          f.compute_factor = ev.value > 0.0 ? ev.value : 1.0;
          break;
        case TraceEvent::Kind::kStraggleComm:
          f.straggler = true;
          f.comm_factor = ev.value > 0.0 ? ev.value : 1.0;
          break;
        case TraceEvent::Kind::kLoseUpload: {
          const int attempts = static_cast<int>(ev.value);
          if (attempts < 1 || attempts > options_.max_retries + 1) {
            f.upload_attempts = options_.max_retries + 1;
            f.delivered = false;
          } else {
            f.upload_attempts = attempts;
            f.delivered = true;
          }
          f.corrupt = f.corrupt && f.delivered;
          break;
        }
        case TraceEvent::Kind::kCorrupt:
          f.corrupt = f.delivered;
          break;
        case TraceEvent::Kind::kCrash:
        case TraceEvent::Kind::kServerCrash:
          break;
      }
    }
  }

  const RoundSummary tallies = summarize(current_);
  summary_.absent = tallies.absent;
  summary_.rejoined = tallies.rejoined;
  summary_.stragglers = tallies.stragglers;
}

}  // namespace fedsu::fl
