#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "obs/json.h"
#include "obs/obs.h"

namespace fedsu::obs {

struct Tracer::ThreadBuffer {
  std::mutex mutex;  // guards events/dropped against snapshot readers
  std::vector<SpanEvent> events;
  std::string name;
  std::uint32_t tid = 0;
};

namespace {

struct TracerState {
  std::mutex registry_mutex;
  // Buffers are created once per thread and intentionally never destroyed
  // (bounded by the number of distinct threads): exporting after a pool shut
  // down, or a worker exiting mid-snapshot, can never touch freed memory.
  std::vector<std::unique_ptr<Tracer::ThreadBuffer>> buffers;
};

TracerState& state() {
  static TracerState* s = new TracerState();
  return *s;
}

std::chrono::steady_clock::time_point epoch() {
  static const std::chrono::steady_clock::time_point e =
      std::chrono::steady_clock::now();
  return e;
}

thread_local Tracer::ThreadBuffer* tl_buffer = nullptr;
thread_local int tl_depth = 0;

std::atomic<std::uint64_t> g_dropped{0};

}  // namespace

std::int64_t Tracer::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch())
      .count();
}

Tracer::ThreadBuffer& Tracer::buffer_for_current_thread() {
  if (tl_buffer) return *tl_buffer;
  TracerState& s = state();
  std::lock_guard<std::mutex> lock(s.registry_mutex);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<std::uint32_t>(s.buffers.size());
  buffer->name = "thread-" + std::to_string(buffer->tid);
  tl_buffer = buffer.get();
  s.buffers.push_back(std::move(buffer));
  return *tl_buffer;
}

void Tracer::record(const char* name, std::int64_t begin_ns,
                    std::int64_t end_ns) {
  ThreadBuffer& buffer = buffer_for_current_thread();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    // Cap reached: tally the drop so exports can warn instead of silently
    // truncating history.
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back(
      SpanEvent{name, buffer.tid, tl_depth, begin_ns, end_ns});
}

void Tracer::set_current_thread_name(const std::string& name) {
  ThreadBuffer& buffer = buffer_for_current_thread();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.name = name;
}

std::vector<SpanEvent> Tracer::snapshot() const {
  TracerState& s = state();
  std::vector<SpanEvent> out;
  std::lock_guard<std::mutex> registry_lock(s.registry_mutex);
  for (const auto& buffer : s.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns
                                    : a.tid < b.tid;
  });
  return out;
}

void Tracer::reset() {
  TracerState& s = state();
  std::lock_guard<std::mutex> registry_lock(s.registry_mutex);
  for (const auto& buffer : s.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
  }
  g_dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t Tracer::dropped() const {
  return g_dropped.load(std::memory_order_relaxed);
}

std::vector<PhaseTotal> Tracer::aggregate() const {
  std::map<std::string, PhaseTotal> by_name;
  for (const SpanEvent& e : snapshot()) {
    PhaseTotal& total = by_name[e.name];
    total.name = e.name;
    ++total.count;
    total.total_ms += static_cast<double>(e.end_ns - e.begin_ns) * 1e-6;
  }
  std::vector<PhaseTotal> out;
  out.reserve(by_name.size());
  for (auto& [name, total] : by_name) out.push_back(std::move(total));
  std::sort(out.begin(), out.end(), [](const PhaseTotal& a, const PhaseTotal& b) {
    return a.total_ms > b.total_ms;
  });
  return out;
}

std::string Tracer::table() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-32s %10s %14s %12s\n", "span", "count",
                "total (ms)", "mean (ms)");
  out += line;
  for (const PhaseTotal& t : aggregate()) {
    std::snprintf(line, sizeof(line), "%-32s %10llu %14.3f %12.4f\n",
                  t.name.c_str(), static_cast<unsigned long long>(t.count),
                  t.total_ms,
                  t.count ? t.total_ms / static_cast<double>(t.count) : 0.0);
    out += line;
  }
  return out;
}

std::string Tracer::chrome_json() const {
  // chrome://tracing "JSON Object Format": complete ("X") events with
  // microsecond timestamps, plus thread_name metadata rows so pool workers
  // show up attributed in the timeline UI.
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  {
    TracerState& s = state();
    std::lock_guard<std::mutex> registry_lock(s.registry_mutex);
    for (const auto& buffer : s.buffers) {
      std::lock_guard<std::mutex> lock(buffer->mutex);
      out += first ? "" : ",\n";
      first = false;
      out += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": " +
             std::to_string(buffer->tid) + ", \"args\": {\"name\": " +
             json_quote(buffer->name) + "}}";
    }
  }
  for (const SpanEvent& e : snapshot()) {
    out += first ? "" : ",\n";
    first = false;
    out += "{\"name\": " + json_quote(e.name) +
           ", \"ph\": \"X\", \"pid\": 0, \"tid\": " + std::to_string(e.tid) +
           ", \"ts\": " + json_number(static_cast<double>(e.begin_ns) * 1e-3) +
           ", \"dur\": " +
           json_number(static_cast<double>(e.end_ns - e.begin_ns) * 1e-3) +
           ", \"args\": {\"depth\": " + std::to_string(e.depth) + "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped\": " +
         std::to_string(dropped()) + "}}\n";
  return out;
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Tracer: cannot open " + path);
  out << chrome_json();
  if (!out.flush()) throw std::runtime_error("Tracer: write failed for " + path);
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

namespace internal {

ScopedSpan::ScopedSpan(const char* name)
    : name_(name), begin_ns_(0), active_(trace_enabled()) {
  if (active_) {
    begin_ns_ = Tracer::now_ns();
    ++tl_depth;
  }
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const std::int64_t end_ns = Tracer::now_ns();
  --tl_depth;
  Tracer::global().record(name_, begin_ns_, end_ns);
}

}  // namespace internal

}  // namespace fedsu::obs
