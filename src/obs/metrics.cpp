#include "obs/metrics.h"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "obs/json.h"
#include "util/csv.h"

namespace fedsu::obs {

namespace {
// fetch_add for atomic<double> is C++20; a CAS loop keeps us portable
// across the libstdc++/libc++ versions the CI matrix builds with.
void atomic_add(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace

Histogram::Histogram(HistogramOptions options) : options_(options) {
  if (options_.buckets <= 0) {
    throw std::invalid_argument("Histogram: buckets must be positive");
  }
  if (!(options_.hi > options_.lo)) {
    throw std::invalid_argument("Histogram: hi must exceed lo");
  }
  if (options_.scale == HistogramOptions::Scale::kLog && options_.lo <= 0.0) {
    throw std::invalid_argument("Histogram: log scale requires lo > 0");
  }
  const int b = options_.buckets;
  bounds_.resize(static_cast<std::size_t>(b) + 1);
  if (options_.scale == HistogramOptions::Scale::kLinear) {
    const double width = (options_.hi - options_.lo) / b;
    inv_width_ = 1.0 / width;
    for (int i = 0; i <= b; ++i) bounds_[i] = options_.lo + width * i;
  } else {
    const double ratio = std::pow(options_.hi / options_.lo, 1.0 / b);
    inv_log_ratio_ = 1.0 / std::log(ratio);
    for (int i = 0; i <= b; ++i) {
      bounds_[i] = options_.lo * std::pow(ratio, i);
    }
  }
  bounds_.front() = options_.lo;
  bounds_.back() = options_.hi;
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(b) + 2);  // [under, buckets..., over]
  for (int i = 0; i < b + 2; ++i) counts_[i].store(0, std::memory_order_relaxed);
}

int Histogram::bucket_index(double value) const {
  if (!(value >= options_.lo)) return -1;  // NaN also counts as underflow
  if (value >= options_.hi) return options_.buckets;
  int idx;
  if (options_.scale == HistogramOptions::Scale::kLinear) {
    idx = static_cast<int>((value - options_.lo) * inv_width_);
  } else {
    idx = static_cast<int>(std::log(value / options_.lo) * inv_log_ratio_);
  }
  // Guard the float rounding at bucket edges.
  if (idx < 0) idx = 0;
  if (idx >= options_.buckets) idx = options_.buckets - 1;
  if (value < bounds_[static_cast<std::size_t>(idx)]) --idx;
  else if (value >= bounds_[static_cast<std::size_t>(idx) + 1]) ++idx;
  return idx;
}

void Histogram::record(double value) {
  const int idx = bucket_index(value);
  counts_[static_cast<std::size_t>(idx + 1)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.options = options_;
  snap.bounds = bounds_;
  snap.counts.resize(static_cast<std::size_t>(options_.buckets));
  for (int i = 0; i < options_.buckets; ++i) {
    snap.counts[static_cast<std::size_t>(i)] =
        counts_[static_cast<std::size_t>(i) + 1].load(
            std::memory_order_relaxed);
  }
  snap.underflow = counts_[0].load(std::memory_order_relaxed);
  snap.overflow = counts_[static_cast<std::size_t>(options_.buckets) + 1].load(
      std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() {
  for (int i = 0; i < options_.buckets + 2; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(name) || histograms_.count(name)) {
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered as another kind");
  }
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) || histograms_.count(name)) {
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered as another kind");
  }
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) || gauges_.count(name)) {
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered as another kind");
  }
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(options);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(name) + ": " + std::to_string(value);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(name) + ": " + json_number(value);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(name) + ": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + json_number(h.sum) +
           ", \"underflow\": " + std::to_string(h.underflow) +
           ", \"overflow\": " + std::to_string(h.overflow) + ", \"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ", ";
      out += json_number(h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("MetricsRegistry: cannot open " + path);
  }
  out << to_json();
  if (!out.flush()) {
    throw std::runtime_error("MetricsRegistry: write failed for " + path);
  }
}

void MetricsRegistry::write_csv(const std::string& path) const {
  const MetricsSnapshot snap = snapshot();
  util::CsvWriter csv(path);
  csv.write_row({"metric", "kind", "key", "value"});
  for (const auto& [name, value] : snap.counters) {
    csv.write_row({name, "counter", "", util::CsvWriter::field(
                                            static_cast<long long>(value))});
  }
  for (const auto& [name, value] : snap.gauges) {
    csv.write_row({name, "gauge", "", util::CsvWriter::field(value)});
  }
  for (const auto& [name, h] : snap.histograms) {
    csv.write_row({name, "histogram", "count",
                   util::CsvWriter::field(static_cast<long long>(h.count))});
    csv.write_row({name, "histogram", "sum", util::CsvWriter::field(h.sum)});
    csv.write_row({name, "histogram", "underflow",
                   util::CsvWriter::field(static_cast<long long>(h.underflow))});
    csv.write_row({name, "histogram", "overflow",
                   util::CsvWriter::field(static_cast<long long>(h.overflow))});
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      csv.write_row({name, "histogram",
                     "bucket_ge_" + util::CsvWriter::field(h.bounds[i]),
                     util::CsvWriter::field(
                         static_cast<long long>(h.counts[i]))});
    }
  }
}

std::string MetricsRegistry::prometheus_name(const std::string& name) {
  std::string out = "fedsu_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  const MetricsSnapshot snap = snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + json_number(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " histogram\n";
    // Prometheus buckets are cumulative counts of observations <= le; the
    // registry's underflow bin (value < lo) folds into every bucket and the
    // overflow bin only into +Inf.
    std::uint64_t cumulative = h.underflow;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      out += prom + "_bucket{le=\"" + json_number(h.bounds[i + 1]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += prom + "_sum " + json_number(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

void MetricsRegistry::write_prometheus(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("MetricsRegistry: cannot open " + path);
  }
  out << to_prometheus();
  if (!out.flush()) {
    throw std::runtime_error("MetricsRegistry: write failed for " + path);
  }
}

namespace {
bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}
}  // namespace

void MetricsRegistry::write(const std::string& path,
                            const std::string& format) const {
  std::string resolved = format;
  if (resolved == "auto") {
    if (has_suffix(path, ".csv")) resolved = "csv";
    else if (has_suffix(path, ".prom")) resolved = "prom";
    else resolved = "json";
  }
  if (resolved == "json") return write_json(path);
  if (resolved == "csv") return write_csv(path);
  if (resolved == "prom" || resolved == "prometheus") {
    return write_prometheus(path);
  }
  throw std::invalid_argument(
      "MetricsRegistry: metrics format must be auto | json | csv | prom, "
      "got '" + format + "'");
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace fedsu::obs
