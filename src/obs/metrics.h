// Thread-safe metrics registry: named counters, gauges, and fixed-bucket /
// log-scale histograms (DESIGN.md §8 "Observability").
//
// Naming scheme: `layer.component.metric` (e.g. `fl.round.bytes_up`,
// `core.fedsu.demotions`). Registration takes a mutex once per metric name;
// after that every increment is a handful of relaxed/acq-rel atomic ops on
// per-metric storage — no locks, no allocation — so instrumented hot loops
// stay safe to run from thread-pool workers. Metric objects live for the
// registry's lifetime (node-based storage), so cached pointers never dangle.
//
// Increments are expected to be gated on obs::metrics_enabled() at the call
// site; the registry itself never checks the level.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace fedsu::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramOptions {
  enum class Scale { kLinear, kLog };
  Scale scale = Scale::kLinear;
  // Linear: `buckets` equal-width buckets over [lo, hi). Log: `buckets`
  // geometric buckets over [lo, hi) (lo must be > 0). Values below lo land
  // in the underflow bin, values >= hi in the overflow bin.
  double lo = 0.0;
  double hi = 1.0;
  int buckets = 20;
};

struct HistogramSnapshot {
  HistogramOptions options;
  // bounds[i] is the inclusive lower edge of bucket i; bucket i covers
  // [bounds[i], bounds[i+1]) with bounds[buckets] == hi.
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // size == options.buckets
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  std::uint64_t count = 0;  // total observations including under/overflow
  double sum = 0.0;
};

class Histogram {
 public:
  explicit Histogram(HistogramOptions options);

  void record(double value);
  HistogramSnapshot snapshot() const;
  void reset();

  // Exposed for tests: the bucket a value would land in (-1 underflow,
  // buckets overflow).
  int bucket_index(double value) const;

 private:
  HistogramOptions options_;
  double inv_width_ = 0.0;      // linear: 1 / bucket width
  double inv_log_ratio_ = 0.0;  // log: 1 / ln(per-bucket growth factor)
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // buckets + 2
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  // Get-or-create by name; the returned reference is valid for the
  // registry's lifetime. Re-registering a histogram ignores the new options
  // (first registration wins). Registering a name as two different metric
  // kinds throws std::logic_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, HistogramOptions options = {});

  MetricsSnapshot snapshot() const;
  // Zeroes every metric's data; registered names stay registered.
  void reset();

  std::string to_json() const;  // one {"counters":…,"gauges":…,"histograms":…}
  void write_json(const std::string& path) const;
  // Long format: metric,kind,key,value — one row per counter/gauge and per
  // histogram bucket, greppable and plottable without a JSON parser.
  void write_csv(const std::string& path) const;
  // Prometheus text exposition format (version 0.0.4): names are prefixed
  // `fedsu_` with dots/dashes mapped to underscores; histograms export
  // cumulative `le` buckets plus `_sum`/`_count`, so a long-running bench's
  // snapshot file is directly scrapeable (e.g. via node_exporter's textfile
  // collector).
  std::string to_prometheus() const;
  void write_prometheus(const std::string& path) const;
  // Dispatches on `format`: "json" | "csv" | "prom" (also accepted:
  // "prometheus"). "auto" picks by path suffix (.csv / .prom / else JSON).
  // Throws std::invalid_argument on an unknown format name.
  void write(const std::string& path, const std::string& format) const;

  // The metric name as Prometheus exposes it (exposed for the validator and
  // tests): `fedsu_` + name with every non-[a-zA-Z0-9_] mapped to '_'.
  static std::string prometheus_name(const std::string& name);

  // Process-wide registry the runtime instrumentation records into.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fedsu::obs
