// Run manifests: one self-describing JSON document per bench/example run
// (DESIGN.md §12).
//
// A manifest answers "what exactly was this run?" without the shell history:
// every resolved flag, the seed, thread count, ISA dispatch level, build
// type, wall-clock start/end, the outcome, and the headline aggregates the
// communication-efficiency literature compares on — time-to-target,
// bytes-to-target, final accuracy — one entry per (setting, scheme) cell,
// plus fault and alert totals. tools/obs_report renders it; the extended
// tools/validate_telemetry checks its schema and reconciles its totals
// against the telemetry JSONL from the same run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace fedsu::obs {

// Headline aggregates for one (setting, scheme) cell of a run.
struct RunAggregates {
  std::string scheme;
  std::string setting;  // bench cell label; empty for single-cell benches
  int rounds = 0;
  double sim_time_s = 0.0;   // simulated seconds, whole run
  double wall_seconds = 0.0; // host wall time in the round loop
  double total_gigabytes = 0.0;
  double final_accuracy = 0.0;
  double best_accuracy = 0.0;
  // Negative means the accuracy target was never reached (serialized null).
  double time_to_target_s = -1.0;
  double gigabytes_to_target = -1.0;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  // Host memory at cell completion (obs::sample_memory): the process RSS
  // high-water mark and the live heap bytes. 0 = not sampled / platform
  // cannot report; serialized as a "memory" object only when nonzero so
  // pre-existing manifests and consumers are unaffected.
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t heap_live_bytes = 0;
  // Summed RoundRecord::FaultCounters fields; empty when faults were off.
  std::map<std::string, std::uint64_t> fault_totals;
  // HealthMonitor raised-edge counts attributable to this cell.
  int alerts_info = 0;
  int alerts_warning = 0;
  int alerts_critical = 0;
};

// Crash-recovery summary for a run that used periodic checkpointing and/or
// resumed from a checkpoint (docs/RECOVERY.md). Serialized as a "recovery"
// object only when engaged so pre-recovery manifests are unaffected.
struct RunRecovery {
  bool resumed = false;          // this process restored a checkpoint
  int resumed_from_round = -1;   // rounds completed in the restored snapshot
  std::string resumed_path;      // the checkpoint file restored
  int checkpoint_every = 0;      // configured cadence (0 = off)
  std::string checkpoint_dir;
  int checkpoints_written = 0;   // successful writes, whole run
  int checkpoint_failures = 0;   // failed writes, whole run
};

// Execution environment, identical for every cell of a run.
struct RunEnvironment {
  std::uint64_t seed = 0;
  int threads = 1;
  std::string isa;        // tensor::gemm::isa_name()
  std::string build;      // "release" | "debug" (NDEBUG at compile time)
  std::string obs_level;  // resolved obs::level_name
};

class RunManifest {
 public:
  // Captures the wall-clock start time; `bench` names the producing binary.
  explicit RunManifest(std::string bench);

  // All resolved flags, in registration order (util::Flags::resolved()).
  void set_config(std::vector<std::pair<std::string, std::string>> config);
  void set_environment(RunEnvironment env);
  void add_run(RunAggregates aggregates);
  // "ok" | "failed"; anything a crashed run never wrote stays "running".
  void set_outcome(std::string outcome);
  // Engages the "recovery" object in the document.
  void set_recovery(RunRecovery recovery);

  // Serializes the full document (stamps the end time at call time).
  std::string to_json() const;
  // to_json() to `path`; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

  const std::vector<RunAggregates>& runs() const { return runs_; }

  static constexpr const char* kSchema = "fedsu.run_manifest.v1";

 private:
  std::string bench_;
  std::int64_t start_unix_s_ = 0;
  std::string outcome_ = "running";
  RunEnvironment env_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<RunAggregates> runs_;
  bool has_recovery_ = false;
  RunRecovery recovery_;
};

}  // namespace fedsu::obs
