#include "obs/manifest.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace fedsu::obs {

namespace {

std::int64_t now_unix_s() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Negative sentinel ("never reached") serializes as null, like NaN does.
std::string json_optional_positive(double value) {
  return value < 0.0 ? "null" : json_number(value);
}

}  // namespace

RunManifest::RunManifest(std::string bench)
    : bench_(std::move(bench)), start_unix_s_(now_unix_s()) {}

void RunManifest::set_config(
    std::vector<std::pair<std::string, std::string>> config) {
  config_ = std::move(config);
}

void RunManifest::set_environment(RunEnvironment env) { env_ = std::move(env); }

void RunManifest::add_run(RunAggregates aggregates) {
  runs_.push_back(std::move(aggregates));
}

void RunManifest::set_outcome(std::string outcome) {
  outcome_ = std::move(outcome);
}

void RunManifest::set_recovery(RunRecovery recovery) {
  has_recovery_ = true;
  recovery_ = std::move(recovery);
}

std::string RunManifest::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": " << json_quote(kSchema) << ",\n";
  os << "  \"bench\": " << json_quote(bench_) << ",\n";
  os << "  \"start_unix_s\": " << start_unix_s_ << ",\n";
  os << "  \"end_unix_s\": " << now_unix_s() << ",\n";
  os << "  \"outcome\": " << json_quote(outcome_) << ",\n";
  os << "  \"environment\": {\n";
  os << "    \"seed\": " << env_.seed << ",\n";
  os << "    \"threads\": " << env_.threads << ",\n";
  os << "    \"isa\": " << json_quote(env_.isa) << ",\n";
  os << "    \"build\": " << json_quote(env_.build) << ",\n";
  os << "    \"obs_level\": " << json_quote(env_.obs_level) << "\n";
  os << "  },\n";
  os << "  \"config\": {";
  bool first = true;
  for (const auto& [name, value] : config_) {
    os << (first ? "\n" : ",\n") << "    " << json_quote(name) << ": "
       << json_quote(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";
  if (has_recovery_) {
    os << "  \"recovery\": {\"resumed\": "
       << (recovery_.resumed ? "true" : "false");
    if (recovery_.resumed) {
      os << ", \"resumed_from_round\": " << recovery_.resumed_from_round
         << ", \"resumed_path\": " << json_quote(recovery_.resumed_path);
    }
    os << ", \"checkpoint_every\": " << recovery_.checkpoint_every
       << ", \"checkpoint_dir\": " << json_quote(recovery_.checkpoint_dir)
       << ", \"checkpoints_written\": " << recovery_.checkpoints_written
       << ", \"checkpoint_failures\": " << recovery_.checkpoint_failures
       << "},\n";
  }
  os << "  \"runs\": [";
  first = true;
  std::uint64_t total_rounds = 0, total_up = 0, total_down = 0;
  int total_info = 0, total_warning = 0, total_critical = 0;
  for (const auto& run : runs_) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"scheme\": " << json_quote(run.scheme)
       << ", \"setting\": " << json_quote(run.setting)
       << ", \"rounds\": " << run.rounds
       << ", \"sim_time_s\": " << json_number(run.sim_time_s)
       << ", \"wall_seconds\": " << json_number(run.wall_seconds)
       << ", \"total_gigabytes\": " << json_number(run.total_gigabytes)
       << ", \"final_accuracy\": " << json_number(run.final_accuracy)
       << ", \"best_accuracy\": " << json_number(run.best_accuracy)
       << ", \"time_to_target_s\": "
       << json_optional_positive(run.time_to_target_s)
       << ", \"gigabytes_to_target\": "
       << json_optional_positive(run.gigabytes_to_target)
       << ", \"bytes_up\": " << run.bytes_up
       << ", \"bytes_down\": " << run.bytes_down;
    if (run.peak_rss_bytes > 0 || run.heap_live_bytes > 0) {
      os << ", \"memory\": {\"peak_rss_bytes\": " << run.peak_rss_bytes
         << ", \"heap_live_bytes\": " << run.heap_live_bytes << "}";
    }
    os << ", \"faults\": {";
    bool ffirst = true;
    for (const auto& [name, count] : run.fault_totals) {
      os << (ffirst ? "" : ", ") << json_quote(name) << ": " << count;
      ffirst = false;
    }
    os << "}";
    os << ", \"alerts\": {\"info\": " << run.alerts_info
       << ", \"warning\": " << run.alerts_warning
       << ", \"critical\": " << run.alerts_critical << "}}";
    total_rounds += static_cast<std::uint64_t>(run.rounds);
    total_up += run.bytes_up;
    total_down += run.bytes_down;
    total_info += run.alerts_info;
    total_warning += run.alerts_warning;
    total_critical += run.alerts_critical;
  }
  os << (first ? "" : "\n  ") << "],\n";
  os << "  \"totals\": {\"rounds\": " << total_rounds
     << ", \"bytes_up\": " << total_up << ", \"bytes_down\": " << total_down
     << ", \"alerts_info\": " << total_info
     << ", \"alerts_warning\": " << total_warning
     << ", \"alerts_critical\": " << total_critical << "}\n";
  os << "}\n";
  return os.str();
}

void RunManifest::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("RunManifest: cannot open " + path);
  out << to_json();
  if (!out.flush()) {
    throw std::runtime_error("RunManifest: write failed for " + path);
  }
}

}  // namespace fedsu::obs
