#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace fedsu::obs {

std::string json_quote(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out += '"';
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // %.17g round-trips every double; trim to a cleaner form when shorter
  // representations already round-trip.
  char buf[40];
  for (int precision : {6, 10, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

// --- JsonValue -----------------------------------------------------------

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) {
    throw std::runtime_error("JsonValue: not a number");
  }
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) {
    throw std::runtime_error("JsonValue: not a string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::kArray) throw std::runtime_error("JsonValue: not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (type_ != Type::kObject) {
    throw std::runtime_error("JsonValue: not an object");
  }
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& members = as_object();
  const auto it = members.find(key);
  if (it == members.end()) {
    throw std::runtime_error("JsonValue: missing key '" + key + "'");
  }
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

// --- parser --------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json_parse: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n]) ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (surrogate pairs are not needed for our exporters;
          // a lone surrogate is passed through as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue::make_number(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace fedsu::obs
