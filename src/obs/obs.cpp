#include "obs/obs.h"

#include <atomic>
#include <stdexcept>

namespace fedsu::obs {

namespace {
std::atomic<int> g_level{static_cast<int>(Level::kOff)};
}  // namespace

Level level() {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

void set_level(Level level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool metrics_enabled() {
  return g_level.load(std::memory_order_relaxed) >=
         static_cast<int>(Level::kMetrics);
}

bool trace_enabled() {
  return g_level.load(std::memory_order_relaxed) >=
         static_cast<int>(Level::kTrace);
}

Level parse_level(const std::string& text) {
  if (text == "off" || text == "0") return Level::kOff;
  if (text == "metrics" || text == "1") return Level::kMetrics;
  if (text == "trace" || text == "2") return Level::kTrace;
  throw std::invalid_argument(
      "obs level must be off | metrics | trace (or 0 | 1 | 2), got '" + text +
      "'");
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kOff: return "off";
    case Level::kMetrics: return "metrics";
    case Level::kTrace: return "trace";
  }
  return "off";
}

}  // namespace fedsu::obs
