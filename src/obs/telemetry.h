// Structured per-round telemetry: one JSON object per FL round, appended as
// JSONL and flushed per line so a killed run keeps its partial telemetry
// (same durability contract as fl::RoundTrace).
//
// Complements the CSV RoundTrace with the observability fields an analysis
// pipeline needs without re-running: exact bytes on the wire, speculation
// state, fallback synchronizations, and the per-phase wall-time split.
#pragma once

#include <fstream>
#include <functional>
#include <string>
#include <utility>

#include "fl/simulation.h"

namespace fedsu::obs {

class TelemetryWriter {
 public:
  // Opens `path` for truncating write; `protocol` names the scheme under
  // test in every emitted record. Throws std::runtime_error on I/O failure.
  TelemetryWriter(const std::string& path, std::string protocol);

  void append(const fl::RoundRecord& record);

  // Relabels subsequent records; benches that run several schemes through
  // one file switch the label per scheme instead of reopening the file.
  void set_protocol(std::string protocol) { protocol_ = std::move(protocol); }

  // Installable hook for fl::Simulation::set_round_hook.
  std::function<void(const fl::RoundRecord&)> hook();

  int rows_written() const { return rows_; }

  // Serializes one record to its JSONL line (no trailing newline); exposed
  // so tests and the validator share the exact production encoding.
  static std::string to_json_line(const fl::RoundRecord& record,
                                  const std::string& protocol);

 private:
  std::ofstream out_;
  std::string protocol_;
  int rows_ = 0;
};

}  // namespace fedsu::obs
