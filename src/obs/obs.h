// Observability level gate (DESIGN.md §8 "Observability").
//
// Every instrumentation point in the runtime — metric increments, scoped
// spans, telemetry emission — is guarded by a single process-wide level so
// the disabled fast path is one relaxed atomic load and a predictable
// branch: no allocation, no locks, no clock reads. Raising the level never
// changes simulation results (instrumentation only observes; see the
// determinism contract in DESIGN.md §5b).
#pragma once

#include <string>

namespace fedsu::obs {

enum class Level : int {
  kOff = 0,      // no instrumentation work at all (the default)
  kMetrics = 1,  // counters / gauges / histograms / per-round telemetry
  kTrace = 2,    // kMetrics plus scoped-span timeline recording
};

// Current process-wide level (relaxed atomic load).
Level level();
void set_level(Level level);

// Fast-path guards used by instrumentation sites.
bool metrics_enabled();
bool trace_enabled();

// Parses "off" | "metrics" | "trace" (numeric "0" | "1" | "2" also
// accepted); throws std::invalid_argument on anything else so flag typos
// fail loudly.
Level parse_level(const std::string& text);
const char* level_name(Level level);

}  // namespace fedsu::obs
