#include "obs/telemetry.h"

#include <stdexcept>

#include "obs/json.h"

namespace fedsu::obs {

TelemetryWriter::TelemetryWriter(const std::string& path, std::string protocol)
    : out_(path), protocol_(std::move(protocol)) {
  if (!out_) throw std::runtime_error("TelemetryWriter: cannot open " + path);
}

std::string TelemetryWriter::to_json_line(const fl::RoundRecord& record,
                                          const std::string& protocol) {
  std::string line = "{";
  line += "\"round\": " + std::to_string(record.round);
  line += ", \"protocol\": " + json_quote(protocol);
  line += ", \"participants\": " + std::to_string(record.num_participants);
  line += ", \"uploads_lost\": " + std::to_string(record.uploads_lost);
  line += ", \"round_time_s\": " + json_number(record.round_time_s);
  line += ", \"elapsed_time_s\": " + json_number(record.elapsed_time_s);
  line += ", \"train_loss\": " + json_number(record.train_loss);
  line += ", \"test_accuracy\": " +
          (record.test_accuracy
               ? json_number(static_cast<double>(*record.test_accuracy))
               : std::string("null"));
  line += ", \"bytes_up\": " + std::to_string(record.bytes_up);
  line += ", \"bytes_down\": " + std::to_string(record.bytes_down);
  line += ", \"sparsification_ratio\": " +
          json_number(record.sparsification_ratio);
  line += ", \"speculated_fraction\": " +
          json_number(record.speculated_fraction);
  line += ", \"fallback_syncs\": " + std::to_string(record.fallback_syncs);
  line += ", \"wall\": {\"select_s\": " + json_number(record.wall.select_s);
  line += ", \"train_s\": " + json_number(record.wall.train_s);
  line += ", \"sync_s\": " + json_number(record.wall.sync_s);
  line += ", \"timing_s\": " + json_number(record.wall.timing_s);
  line += ", \"eval_s\": " + json_number(record.wall.eval_s);
  line += ", \"total_s\": " + json_number(record.wall.total_s);
  line += "}";
  // Fault tallies ride along only when fault injection was active, so
  // zero-rate runs keep the exact historical line format.
  if (record.faults) {
    const auto& fc = *record.faults;
    line += ", \"faults\": {\"selected\": " + std::to_string(fc.selected);
    line += ", \"crashed\": " + std::to_string(fc.crashed);
    line += ", \"rejoined\": " + std::to_string(fc.rejoined);
    line += ", \"resyncs\": " + std::to_string(fc.resyncs);
    line += ", \"stragglers\": " + std::to_string(fc.stragglers);
    line += ", \"retries\": " + std::to_string(fc.retries);
    line += ", \"corrupt\": " + std::to_string(fc.corrupt);
    line += ", \"deadline_missed\": " + std::to_string(fc.deadline_missed);
    line += ", \"unused\": " + std::to_string(fc.unused);
    line += std::string(", \"quorum_met\": ") +
            (fc.quorum_met ? "true" : "false");
    line += "}";
  }
  // Buffered-async cycle stats ride along only when the async engine ran
  // the round; synchronous runs (and barrier-degenerate async runs, which
  // ARE the synchronous path) keep the historical line format.
  if (record.async) {
    const auto& as = *record.async;
    line += ", \"async\": {\"buffer_k\": " + std::to_string(as.buffer_k);
    line += ", \"consumed\": " + std::to_string(as.consumed);
    line += ", \"inflight\": " + std::to_string(as.inflight);
    line += ", \"fill_time_s\": " + json_number(as.fill_time_s);
    line += ", \"max_staleness\": " + std::to_string(as.max_staleness);
    line += ", \"mean_staleness\": " + json_number(as.mean_staleness);
    line += ", \"weight_sum\": " + json_number(as.weight_sum);
    line += ", \"staleness_hist\": [";
    for (std::size_t s = 0; s < as.staleness_hist.size(); ++s) {
      if (s > 0) line += ", ";
      line += std::to_string(as.staleness_hist[s]);
    }
    line += "]}";
  }
  // Checkpoint-write outcome rides along only on rounds where the periodic
  // checkpoint cadence fired (docs/RECOVERY.md); checkpoint-off runs keep
  // the historical line format.
  if (record.checkpoint) {
    const auto& cp = *record.checkpoint;
    line += std::string(", \"checkpoint\": {\"ok\": ") +
            (cp.ok ? "true" : "false");
    line += ", \"round\": " + std::to_string(cp.round);
    line += ", \"bytes\": " + std::to_string(cp.bytes);
    line += ", \"path\": " + json_quote(cp.path);
    if (!cp.ok) line += ", \"error\": " + json_quote(cp.error);
    line += "}";
  }
  line += "}";
  return line;
}

void TelemetryWriter::append(const fl::RoundRecord& record) {
  out_ << to_json_line(record, protocol_) << '\n';
  // Flushed per record: a crashed long run keeps every completed round.
  if (!out_.flush()) {
    throw std::runtime_error("TelemetryWriter: write failed");
  }
  ++rows_;
}

std::function<void(const fl::RoundRecord&)> TelemetryWriter::hook() {
  return [this](const fl::RoundRecord& record) { append(record); };
}

}  // namespace fedsu::obs
