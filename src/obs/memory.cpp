#include "obs/memory.h"

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/obs.h"

#if defined(__linux__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace fedsu::obs {

namespace {

#if defined(__linux__)
// Parses a "Vm...:  <kB> kB" line from /proc/self/status. Returns 0 when
// the key is missing (e.g. exotic kernels) — callers treat 0 as "unknown".
std::uint64_t read_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') {
      continue;
    }
    unsigned long long value = 0;
    if (std::sscanf(line + key_len + 1, "%llu", &value) == 1) {
      kb = static_cast<std::uint64_t>(value);
    }
    break;
  }
  std::fclose(f);
  return kb;
}
#endif

}  // namespace

MemoryStats sample_memory() {
  MemoryStats stats;
#if defined(__linux__)
  stats.peak_rss_bytes = read_status_kb("VmHWM") * 1024;
  stats.current_rss_bytes = read_status_kb("VmRSS") * 1024;
#endif
#if defined(__linux__) || defined(__APPLE__)
  if (stats.peak_rss_bytes == 0) {
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
      stats.peak_rss_bytes = static_cast<std::uint64_t>(usage.ru_maxrss);
#else
      stats.peak_rss_bytes =
          static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // kB on Linux
#endif
    }
  }
#endif
#if defined(__GLIBC__) && defined(__GLIBC_PREREQ)
#if __GLIBC_PREREQ(2, 33)
  const struct mallinfo2 mi = mallinfo2();
  stats.heap_live_bytes = static_cast<std::uint64_t>(mi.uordblks);
#endif
#endif
  return stats;
}

MemoryStats record_memory_gauges() {
  const MemoryStats stats = sample_memory();
  if (metrics_enabled()) {
    auto& reg = MetricsRegistry::global();
    reg.gauge("obs.mem.peak_rss_bytes")
        .set(static_cast<double>(stats.peak_rss_bytes));
    reg.gauge("obs.mem.current_rss_bytes")
        .set(static_cast<double>(stats.current_rss_bytes));
    reg.gauge("obs.mem.heap_live_bytes")
        .set(static_cast<double>(stats.heap_live_bytes));
  }
  return stats;
}

}  // namespace fedsu::obs
