// Run-health monitoring: an in-process rule engine over the per-round
// record stream (DESIGN.md §12).
//
// The bottom observability layer (metrics / spans / telemetry) records what
// a run did; nothing watched it. HealthMonitor closes that gap: it is fed
// one fl::RoundRecord per round (synchronous) or per aggregation cycle
// (buffered-async) — plus an optional model-state probe — and emits
// severity-graded alerts on the failure modes a FedSU run can silently
// enter: NaN/Inf in the loss or the global update, loss plateau and
// divergence windows, fallback-sync storms and speculated-fraction
// oscillation (the promote/demote flapping the paper's speculation fence
// exists to prevent), straggler drift, staleness blowup in async mode, and
// per-round byte-budget overruns.
//
// Every rule is edge-triggered: one "raised" alert when the condition
// starts, one "cleared" alert when it ends — no per-round spam while a
// condition persists. Alerts go to an optional JSONL file (flushed per
// line, so a killed run keeps its alert history — same durability contract
// as obs::TelemetryWriter) and to `health.*` counters in the global
// MetricsRegistry when metrics are enabled.
//
// Determinism contract (DESIGN.md §5b): the monitor only READS records and
// state; it never touches the simulated clock, the RNG streams, or the
// model, so a monitored run is bitwise identical to an unmonitored one
// (test_obs.cpp: MonitoredRunIsBitwiseIdenticalToUnmonitored).
#pragma once

#include <cstddef>
#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "fl/simulation.h"

namespace fedsu::obs {

enum class AlertSeverity : int { kInfo = 0, kWarning = 1, kCritical = 2 };

// "info" | "warning" | "critical".
const char* severity_name(AlertSeverity severity);
// Parses a severity name; throws std::invalid_argument on anything else.
AlertSeverity parse_severity(const std::string& text);

// Thresholds for every rule. The defaults are calibrated for the repo's
// 10-iteration rounds (noisy losses: plateau/divergence windows are
// several rounds so one bad round never pages). A threshold's rule is
// disabled entirely when its window/limit is <= 0.
struct HealthOptions {
  // Loss plateau: the best finite train loss has not improved by at least
  // plateau_epsilon for plateau_window consecutive aggregating rounds.
  int plateau_window = 12;
  double plateau_epsilon = 1e-3;

  // Loss divergence: finite loss above divergence_factor x best-so-far for
  // divergence_window consecutive aggregating rounds. (A non-finite loss
  // is the separate, immediately-critical non_finite_loss rule.)
  double divergence_factor = 3.0;
  int divergence_window = 3;

  // Fallback-sync storm: fallback_syncs (demoted scalars) above
  // fallback_storm_fraction x model_size for fallback_storm_window
  // consecutive rounds. Needs model_size (set by begin_run); 0 disables.
  double fallback_storm_fraction = 0.05;
  int fallback_storm_window = 3;

  // Speculated-fraction oscillation: >= osc_flips direction reversals with
  // per-step amplitude >= osc_min_delta inside the trailing osc_window
  // rounds — the promote/demote flapping signature.
  double osc_min_delta = 0.05;
  int osc_window = 6;
  int osc_flips = 3;

  // Straggler drift: stragglers / selected over the trailing
  // straggler_window rounds above straggler_fraction (fault runs only).
  double straggler_fraction = 0.5;
  int straggler_window = 5;

  // Async staleness blowup: a consumed update older than staleness_max
  // aggregations.
  int staleness_max = 8;

  // Per-round byte budget over bytes_up + bytes_down, all participants.
  // 0 disables.
  std::size_t byte_budget_per_round = 0;

  // Checkpoint-write failure (docs/RECOVERY.md): a round whose scheduled
  // run-checkpoint write failed (RoundRecord::checkpoint with ok == false).
  // Critical — a run silently losing its recovery frontier is exactly the
  // state this subsystem exists to prevent. true enables (the record field
  // only appears when checkpointing is configured, so the rule is inert on
  // checkpoint-off runs either way).
  bool checkpoint_failures = true;
};

// One edge of one rule. `raised` false means the condition cleared.
struct Alert {
  std::string scheme;
  int round = 0;
  std::string rule;
  AlertSeverity severity = AlertSeverity::kInfo;
  bool raised = true;
  double value = 0.0;      // the measured quantity that crossed
  double threshold = 0.0;  // what it crossed
  std::string message;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthOptions options = {});

  // Opens `path` for truncating JSONL write (one Alert per line, flushed
  // per line). Throws std::runtime_error on I/O failure.
  void open_alerts_file(const std::string& path);

  // Starts a fresh run segment: resets every rule's state (edges must not
  // leak across schemes) and labels subsequent alerts with `scheme`.
  // `model_size` (scalars) anchors the fraction-based storm threshold.
  void begin_run(const std::string& scheme, std::size_t model_size);

  // Feed one completed round (sync) or aggregation cycle (async).
  void observe_round(const fl::RoundRecord& record);

  // Optional model-state probe: scans for NaN/Inf and tracks the L2 norm
  // of the update since the previous probe. Copies O(model) floats, so
  // call it only when monitoring is on; it never mutates the state.
  void observe_model(int round, std::span<const float> state);

  // Installable as (or chained into) fl::Simulation::set_round_hook.
  std::function<void(const fl::RoundRecord&)> hook();

  const std::vector<Alert>& alerts() const { return alerts_; }
  // Raised-edge count per severity, over the monitor's whole lifetime.
  int raised_count(AlertSeverity severity) const;
  // True while no critical rule is currently active.
  bool healthy() const;
  const HealthOptions& options() const { return options_; }

  // One alert as its JSONL line (no trailing newline); shared by tests and
  // the validator so they see the exact production encoding.
  static std::string to_json_line(const Alert& alert);

 private:
  struct Rule {
    bool active = false;
  };

  void emit(int round, const char* rule, AlertSeverity severity, bool raised,
            double value, double threshold, const std::string& message);
  // Raises on false->true, clears on true->false, else does nothing.
  void edge(Rule& rule, bool firing, int round, const char* name,
            AlertSeverity severity, double value, double threshold,
            const std::string& message);

  HealthOptions options_;
  std::ofstream out_;
  bool file_open_ = false;
  std::string scheme_;
  std::size_t model_size_ = 0;
  std::vector<Alert> alerts_;
  int raised_counts_[3] = {0, 0, 0};

  // --- per-run rule state (reset by begin_run) ---
  Rule nonfinite_loss_, nonfinite_model_, plateau_, divergence_, fallback_,
      oscillation_, straggler_, staleness_, byte_budget_, checkpoint_failure_;
  double best_loss_ = 0.0;
  bool has_best_loss_ = false;
  int rounds_since_improvement_ = 0;
  int divergence_streak_ = 0;
  int fallback_streak_ = 0;
  std::vector<double> spec_history_;
  std::vector<std::pair<int, int>> straggler_history_;  // (stragglers, selected)
  std::vector<float> prev_state_;
  bool has_prev_state_ = false;
};

}  // namespace fedsu::obs
