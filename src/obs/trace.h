// Scoped-span tracer: OBS_SPAN("layer.component.phase") records a begin/end
// interval on the calling thread (DESIGN.md §8 "Observability").
//
//   void FedSuManager::synchronize(...) {
//     OBS_SPAN("core.fedsu.sync");
//     ...
//   }
//
// Fast path: when obs::trace_enabled() is false the span constructor is a
// relaxed atomic load and a branch — no clock read, no allocation. When
// enabled, events append to a per-thread buffer (one uncontended mutex lock
// per event, taken only against snapshot readers); span names must be
// string literals (the tracer stores the pointer, never copies).
//
// Exports:
//   * write_chrome_json() — a chrome://tracing / Perfetto "traceEvents"
//     timeline with per-thread attribution (thread-pool workers register
//     names via set_current_thread_name);
//   * aggregate() / table() — per-span-name total wall time and call
//     counts, replacing bespoke Stopwatch bookkeeping in benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace fedsu::obs {

struct SpanEvent {
  const char* name = nullptr;  // static string supplied to OBS_SPAN
  std::uint32_t tid = 0;       // tracer-assigned dense thread id
  std::int32_t depth = 0;      // nesting depth within the thread (0 = root)
  std::int64_t begin_ns = 0;   // steady-clock, process-relative
  std::int64_t end_ns = 0;
};

struct PhaseTotal {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;  // summed span durations (nested spans overlap)
};

class Tracer {
 public:
  // Current steady-clock time relative to tracer epoch, in nanoseconds.
  static std::int64_t now_ns();

  // Appends one completed span for the calling thread.
  void record(const char* name, std::int64_t begin_ns, std::int64_t end_ns);

  // Names the calling thread in timeline exports (e.g. "util.pool.worker-1").
  // Safe to call at any level; cheap enough for thread start-up paths.
  void set_current_thread_name(const std::string& name);

  // All recorded events, merged across threads, ordered by begin time.
  std::vector<SpanEvent> snapshot() const;

  // Drops recorded events (thread registrations and names survive).
  void reset();

  // Events dropped because a thread buffer hit its cap (kMaxEventsPerThread).
  std::uint64_t dropped() const;

  // Per-name aggregation of the current events, sorted by total time desc.
  std::vector<PhaseTotal> aggregate() const;
  // Human-readable per-phase wall-time table of aggregate().
  std::string table() const;

  // chrome://tracing "traceEvents" JSON (complete "X" events in
  // microseconds plus thread_name metadata). Throws on I/O failure.
  void write_chrome_json(const std::string& path) const;
  std::string chrome_json() const;

  static Tracer& global();

  // Per-thread buffers are capped so a forgotten long trace run cannot
  // exhaust memory; overflow is counted, not fatal.
  static constexpr std::size_t kMaxEventsPerThread = 1 << 20;

  // Implementation detail, defined in trace.cpp; public only so the
  // file-local registry there can own the buffers.
  struct ThreadBuffer;

 private:
  ThreadBuffer& buffer_for_current_thread();
};

namespace internal {

// RAII span. Captures the enabled decision at construction so toggling the
// level mid-span cannot produce a torn event.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::int64_t begin_ns_;
  bool active_;
};

}  // namespace internal

#define FEDSU_OBS_CONCAT_INNER(a, b) a##b
#define FEDSU_OBS_CONCAT(a, b) FEDSU_OBS_CONCAT_INNER(a, b)
// `name` must be a string literal (or otherwise outlive the tracer).
#define OBS_SPAN(name) \
  ::fedsu::obs::internal::ScopedSpan FEDSU_OBS_CONCAT(obs_span_, __LINE__)(name)

}  // namespace fedsu::obs
