#include "obs/health.h"

#include <cmath>
#include <stdexcept>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace fedsu::obs {

const char* severity_name(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kInfo:
      return "info";
    case AlertSeverity::kWarning:
      return "warning";
    case AlertSeverity::kCritical:
      return "critical";
  }
  return "unknown";
}

AlertSeverity parse_severity(const std::string& text) {
  if (text == "info") return AlertSeverity::kInfo;
  if (text == "warning") return AlertSeverity::kWarning;
  if (text == "critical") return AlertSeverity::kCritical;
  throw std::invalid_argument("parse_severity: unknown severity '" + text +
                              "' (info | warning | critical)");
}

HealthMonitor::HealthMonitor(HealthOptions options) : options_(options) {}

void HealthMonitor::open_alerts_file(const std::string& path) {
  out_.open(path, std::ios::trunc);
  if (!out_) throw std::runtime_error("HealthMonitor: cannot open " + path);
  file_open_ = true;
}

void HealthMonitor::begin_run(const std::string& scheme,
                              std::size_t model_size) {
  scheme_ = scheme;
  model_size_ = model_size;
  nonfinite_loss_ = nonfinite_model_ = plateau_ = divergence_ = fallback_ =
      oscillation_ = straggler_ = staleness_ = byte_budget_ =
          checkpoint_failure_ = Rule{};
  best_loss_ = 0.0;
  has_best_loss_ = false;
  rounds_since_improvement_ = 0;
  divergence_streak_ = 0;
  fallback_streak_ = 0;
  spec_history_.clear();
  straggler_history_.clear();
  prev_state_.clear();
  has_prev_state_ = false;
}

std::string HealthMonitor::to_json_line(const Alert& alert) {
  std::string line = "{";
  line += "\"scheme\": " + json_quote(alert.scheme);
  line += ", \"round\": " + std::to_string(alert.round);
  line += ", \"rule\": " + json_quote(alert.rule);
  line += ", \"severity\": " + json_quote(severity_name(alert.severity));
  line += std::string(", \"state\": ") +
          (alert.raised ? "\"raised\"" : "\"cleared\"");
  line += ", \"value\": " + json_number(alert.value);
  line += ", \"threshold\": " + json_number(alert.threshold);
  line += ", \"message\": " + json_quote(alert.message);
  line += "}";
  return line;
}

void HealthMonitor::emit(int round, const char* rule, AlertSeverity severity,
                         bool raised, double value, double threshold,
                         const std::string& message) {
  Alert alert;
  alert.scheme = scheme_;
  alert.round = round;
  alert.rule = rule;
  alert.severity = severity;
  alert.raised = raised;
  alert.value = value;
  alert.threshold = threshold;
  alert.message = message;
  if (raised) ++raised_counts_[static_cast<int>(severity)];
  if (file_open_) {
    out_ << to_json_line(alert) << '\n';
    // Flushed per alert: a crashed run keeps what it saw.
    if (!out_.flush()) {
      throw std::runtime_error("HealthMonitor: alert write failed");
    }
  }
  if (metrics_enabled()) {
    auto& reg = MetricsRegistry::global();
    reg.counter(raised ? "health.alerts.raised" : "health.alerts.cleared")
        .add(1);
    if (raised) {
      reg.counter(std::string("health.alerts.") + severity_name(severity))
          .add(1);
    }
  }
  alerts_.push_back(std::move(alert));
}

void HealthMonitor::edge(Rule& rule, bool firing, int round, const char* name,
                         AlertSeverity severity, double value,
                         double threshold, const std::string& message) {
  if (firing == rule.active) return;
  rule.active = firing;
  emit(round, name, severity, firing, value, threshold,
       firing ? message : "condition cleared");
}

void HealthMonitor::observe_round(const fl::RoundRecord& record) {
  const int round = record.round;
  const bool aggregated = record.num_participants > 0;

  // --- non-finite loss (critical; trumps the windowed loss rules) ---
  const bool loss_nonfinite = aggregated && !std::isfinite(record.train_loss);
  edge(nonfinite_loss_, loss_nonfinite, round, "non_finite_loss",
       AlertSeverity::kCritical, record.train_loss, 0.0,
       "train loss is NaN/Inf");

  // --- plateau & divergence over the finite-loss stream ---
  if (aggregated && std::isfinite(record.train_loss)) {
    const double loss = record.train_loss;
    if (!has_best_loss_ || loss < best_loss_ - options_.plateau_epsilon) {
      best_loss_ = has_best_loss_ ? std::min(best_loss_, loss) : loss;
      has_best_loss_ = true;
      rounds_since_improvement_ = 0;
    } else {
      best_loss_ = std::min(best_loss_, loss);
      ++rounds_since_improvement_;
    }
    const bool diverging =
        has_best_loss_ && loss > options_.divergence_factor * best_loss_;
    divergence_streak_ = diverging ? divergence_streak_ + 1 : 0;

    if (options_.plateau_window > 0) {
      edge(plateau_, rounds_since_improvement_ >= options_.plateau_window,
           round, "loss_plateau", AlertSeverity::kWarning,
           static_cast<double>(rounds_since_improvement_),
           static_cast<double>(options_.plateau_window),
           "train loss stopped improving");
    }
    if (options_.divergence_window > 0) {
      edge(divergence_, divergence_streak_ >= options_.divergence_window,
           round, "loss_divergence", AlertSeverity::kCritical, loss,
           options_.divergence_factor * best_loss_,
           "train loss diverged from its best");
    }
  }

  // --- fallback-sync storm (speculation demotion bursts) ---
  if (options_.fallback_storm_window > 0 && model_size_ > 0) {
    const double threshold =
        options_.fallback_storm_fraction * static_cast<double>(model_size_);
    fallback_streak_ = static_cast<double>(record.fallback_syncs) > threshold
                           ? fallback_streak_ + 1
                           : 0;
    edge(fallback_, fallback_streak_ >= options_.fallback_storm_window, round,
         "fallback_storm", AlertSeverity::kWarning,
         static_cast<double>(record.fallback_syncs), threshold,
         "sustained fallback-sync storm (speculation demotions)");
  }

  // --- speculated-fraction oscillation (promote/demote flapping) ---
  if (options_.osc_window > 1) {
    spec_history_.push_back(record.speculated_fraction);
    if (spec_history_.size() >
        static_cast<std::size_t>(options_.osc_window) + 1) {
      spec_history_.erase(spec_history_.begin());
    }
    int flips = 0;
    double prev_delta = 0.0;
    for (std::size_t i = 1; i < spec_history_.size(); ++i) {
      const double delta = spec_history_[i] - spec_history_[i - 1];
      if (std::abs(delta) < options_.osc_min_delta) continue;
      if (prev_delta != 0.0 && (delta < 0.0) != (prev_delta < 0.0)) ++flips;
      prev_delta = delta;
    }
    edge(oscillation_, flips >= options_.osc_flips, round,
         "speculation_oscillation", AlertSeverity::kWarning,
         static_cast<double>(flips), static_cast<double>(options_.osc_flips),
         "speculated fraction is oscillating (promote/demote flapping)");
  }

  // --- straggler drift (fault runs only) ---
  if (options_.straggler_window > 0 && record.faults) {
    straggler_history_.emplace_back(record.faults->stragglers,
                                    record.faults->selected);
    if (straggler_history_.size() >
        static_cast<std::size_t>(options_.straggler_window)) {
      straggler_history_.erase(straggler_history_.begin());
    }
    long long stragglers = 0, selected = 0;
    for (const auto& [s, n] : straggler_history_) {
      stragglers += s;
      selected += n;
    }
    const bool window_full =
        straggler_history_.size() ==
        static_cast<std::size_t>(options_.straggler_window);
    const double fraction =
        selected > 0 ? static_cast<double>(stragglers) /
                           static_cast<double>(selected)
                     : 0.0;
    edge(straggler_, window_full && fraction > options_.straggler_fraction,
         round, "straggler_drift", AlertSeverity::kWarning, fraction,
         options_.straggler_fraction,
         "sustained straggler fraction above threshold");
  }

  // --- async staleness blowup ---
  if (options_.staleness_max > 0 && record.async) {
    edge(staleness_, record.async->max_staleness > options_.staleness_max,
         round, "staleness_blowup", AlertSeverity::kWarning,
         static_cast<double>(record.async->max_staleness),
         static_cast<double>(options_.staleness_max),
         "aggregated an update older than the staleness limit");
  }

  // --- checkpoint-write failure (crash-recovery frontier lost) ---
  if (options_.checkpoint_failures && record.checkpoint) {
    edge(checkpoint_failure_, !record.checkpoint->ok, round,
         "checkpoint_failure", AlertSeverity::kCritical,
         record.checkpoint->ok ? 0.0 : 1.0, 0.0,
         record.checkpoint->ok
             ? "condition cleared"
             : "run-checkpoint write failed: " + record.checkpoint->error);
  }

  // --- per-round byte budget ---
  if (options_.byte_budget_per_round > 0) {
    const double bytes =
        static_cast<double>(record.bytes_up + record.bytes_down);
    edge(byte_budget_, bytes > static_cast<double>(
                                   options_.byte_budget_per_round),
         round, "byte_budget_overrun", AlertSeverity::kWarning, bytes,
         static_cast<double>(options_.byte_budget_per_round),
         "round exceeded its byte budget");
  }
}

void HealthMonitor::observe_model(int round, std::span<const float> state) {
  bool finite = true;
  for (const float v : state) {
    if (!std::isfinite(v)) {
      finite = false;
      break;
    }
  }
  double norm = 0.0;
  if (finite && has_prev_state_ && prev_state_.size() == state.size()) {
    // L2 norm of the update since the previous probe, accumulated in
    // double like every other reduction in the repo.
    for (std::size_t i = 0; i < state.size(); ++i) {
      const double d = static_cast<double>(state[i]) -
                       static_cast<double>(prev_state_[i]);
      norm += d * d;
    }
    norm = std::sqrt(norm);
  }
  edge(nonfinite_model_, !finite || !std::isfinite(norm), round,
       "non_finite_update", AlertSeverity::kCritical, norm, 0.0,
       "global model or update norm is NaN/Inf");
  prev_state_.assign(state.begin(), state.end());
  has_prev_state_ = true;
}

std::function<void(const fl::RoundRecord&)> HealthMonitor::hook() {
  return [this](const fl::RoundRecord& record) { observe_round(record); };
}

int HealthMonitor::raised_count(AlertSeverity severity) const {
  return raised_counts_[static_cast<int>(severity)];
}

bool HealthMonitor::healthy() const {
  return !(nonfinite_loss_.active || nonfinite_model_.active ||
           divergence_.active || checkpoint_failure_.active);
}

}  // namespace fedsu::obs
