// Minimal JSON support for the observability exporters and the telemetry
// validator. Two halves:
//   * writing helpers — string escaping and locale-independent number
//     formatting used by the metrics / trace / telemetry exporters;
//   * a small recursive-descent parser producing a JsonValue tree, enough
//     to validate the exporters' own output (and chrome://tracing files)
//     without a Python or third-party dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fedsu::obs {

// --- writing -------------------------------------------------------------

// Returns `raw` quoted and escaped per RFC 8259 (control chars, quotes,
// backslashes).
std::string json_quote(const std::string& raw);

// Shortest round-trippable formatting; never emits locale commas, and maps
// non-finite values to null (JSON has no NaN/Inf).
std::string json_number(double value);

// --- parsing -------------------------------------------------------------

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  // Object lookup; throws if not an object or the key is absent.
  const JsonValue& at(const std::string& key) const;
  bool has(const std::string& key) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::map<std::string, JsonValue> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses a complete JSON document; throws std::runtime_error with a byte
// offset on malformed input or trailing garbage.
JsonValue json_parse(const std::string& text);

}  // namespace fedsu::obs
