// Process memory sampling for the observability layer (DESIGN.md §13).
//
// Large-cohort simulations are memory-bound before they are compute-bound:
// the scaling work (zero-copy shards, sparse error slabs) is only provable
// with numbers, so this header gives the repo one cheap, dependency-free
// way to read them. Linux first (/proc/self/status VmHWM/VmRSS +
// glibc mallinfo2 for live heap), getrusage as the portable fallback for
// the peak; fields the platform cannot report stay 0 rather than lying.
#pragma once

#include <cstdint>

namespace fedsu::obs {

struct MemoryStats {
  // High-water mark of the resident set (VmHWM / ru_maxrss). Monotone over
  // the process lifetime — per-phase deltas need current_rss/heap_live.
  std::uint64_t peak_rss_bytes = 0;
  // Resident set right now (VmRSS). 0 when /proc is unavailable.
  std::uint64_t current_rss_bytes = 0;
  // Bytes live on the malloc heap right now (mallinfo2 uordblks). 0 when
  // not built against glibc >= 2.33. Unlike RSS this goes DOWN when state
  // is freed, so it is the honest gauge for "what does this phase hold".
  std::uint64_t heap_live_bytes = 0;
};

// Samples the current process. Never throws; unsupported fields are 0.
MemoryStats sample_memory();

// Publishes the sample as obs.mem.* gauges (peak_rss_bytes,
// current_rss_bytes, heap_live_bytes) in the global MetricsRegistry.
// No-op when obs::metrics_enabled() is false. Returns the sample either way.
MemoryStats record_memory_gauges();

}  // namespace fedsu::obs
