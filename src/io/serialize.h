// Minimal binary serialization for checkpoints and protocol snapshots.
//
// Format: little-endian primitives, length-prefixed containers, and a
// caller-supplied magic tag checked on read so mixing snapshot types fails
// loudly instead of producing garbage state.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace fedsu::io {

class BinaryWriter {
 public:
  void write_u8(std::uint8_t v) { write_raw(&v, sizeof(v)); }
  void write_u32(std::uint32_t v) { write_raw(&v, sizeof(v)); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof(v)); }
  void write_i32(std::int32_t v) { write_raw(&v, sizeof(v)); }
  void write_f32(float v) { write_raw(&v, sizeof(v)); }
  void write_f64(double v) { write_raw(&v, sizeof(v)); }
  void write_bool(bool v) { write_u32(v ? 1 : 0); }

  void write_string(const std::string& s);

  template <typename T>
  void write_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_u64(v.size());
    if (!v.empty()) write_raw(v.data(), v.size() * sizeof(T));
  }

  void write_magic(std::uint32_t magic) { write_u32(magic); }

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

  // Writes the buffer to a file; throws on I/O failure.
  void save_to_file(const std::string& path) const;

 private:
  void write_raw(const void* data, std::size_t bytes);
  std::vector<std::uint8_t> buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  static BinaryReader from_file(const std::string& path);

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  float read_f32();
  double read_f64();
  bool read_bool() { return read_u32() != 0; }
  std::string read_string();

  template <typename T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = read_u64();
    if (n * sizeof(T) > remaining()) {
      throw std::runtime_error("BinaryReader: truncated vector");
    }
    std::vector<T> out(static_cast<std::size_t>(n));
    if (n > 0) read_raw(out.data(), out.size() * sizeof(T));
    return out;
  }

  // Reads a u32 and throws unless it matches.
  void expect_magic(std::uint32_t magic, const char* what);

  std::size_t remaining() const { return bytes_.size() - cursor_; }
  bool at_end() const { return remaining() == 0; }

 private:
  void read_raw(void* out, std::size_t bytes);
  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace fedsu::io
