// Training checkpoints: model state + protocol snapshot + round metadata,
// persisted to one file so an FL run can be stopped and resumed.
#pragma once

#include <string>
#include <vector>

#include "compress/protocol.h"

namespace fedsu::io {

struct Checkpoint {
  std::string protocol_name;
  int round = 0;
  double elapsed_time_s = 0.0;
  std::vector<float> model_state;
  std::vector<std::uint8_t> protocol_snapshot;  // may be empty
};

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path);

Checkpoint load_checkpoint(const std::string& path);

// Convenience: captures the protocol's snapshot alongside the given model
// state and metadata.
Checkpoint make_checkpoint(const compress::SyncProtocol& protocol,
                           std::vector<float> model_state, int round,
                           double elapsed_time_s);

}  // namespace fedsu::io
