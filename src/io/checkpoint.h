// Training checkpoints: model state + protocol snapshot + round metadata,
// persisted to one file so an FL run can be stopped and resumed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compress/protocol.h"

namespace fedsu::io {

struct Checkpoint {
  std::string protocol_name;
  int round = 0;
  double elapsed_time_s = 0.0;
  std::vector<float> model_state;
  std::vector<std::uint8_t> protocol_snapshot;  // may be empty
};

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path);

Checkpoint load_checkpoint(const std::string& path);

// Convenience: captures the protocol's snapshot alongside the given model
// state and metadata.
Checkpoint make_checkpoint(const compress::SyncProtocol& protocol,
                           std::vector<float> model_state, int round,
                           double elapsed_time_s);

// Restores `protocol` from `checkpoint`, then re-derives the rejoin stamp
// for every client in `absent_clients` (ids of clients that are down — or
// of unknown continuity — at restore time). A snapshot's stamps describe
// the world *when it was taken*: a client that churned between snapshot and
// restore still has its stale error slab live in the snapshot, and blindly
// trusting it replays stale feedback into every subsequent correction
// (exactly the live rejoin hole docs/FAULT_MODEL.md §4 closed). Callers
// that restore the full churn state alongside the snapshot (the auto-resume
// path, docs/RECOVERY.md) have proven continuity and pass an empty list.
void restore_protocol(compress::SyncProtocol& protocol,
                      const Checkpoint& checkpoint,
                      const std::vector<int>& absent_clients);

// ---------------------------------------------------------------------------
// Run checkpoints (docs/RECOVERY.md): full resume-frontier snapshots written
// periodically by fl::Simulation. This layer owns only the outer framing —
// magic, format version, opaque payload, CRC-32 footer — plus the atomic
// write (tmp file + rename) and latest-file discovery. The payload is
// produced and consumed by Simulation::snapshot_state/restore_state.
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kRunCheckpointMagic = 0xFED5'C4EC;
inline constexpr std::uint32_t kRunCheckpointVersion = 1;

// Atomically writes `payload` as `dir/ckpt-<round>.fedsu` (tmp file in the
// same directory, then std::rename, so a crash mid-write never leaves a
// half-visible checkpoint). Creates `dir` if needed. Returns the final
// path. Throws on I/O failure.
std::string save_run_checkpoint(const std::string& dir, int round,
                                const std::vector<std::uint8_t>& payload);

// Verifies the outer frame (magic, version, length, CRC-32 footer) and
// returns the payload. Any damage — wrong magic, truncation, a flipped
// bit — throws with a diagnostic naming the failure; no partially-valid
// payload is ever returned.
std::vector<std::uint8_t> load_run_checkpoint(const std::string& path);

// Path of the highest-round `ckpt-<round>.fedsu` in `dir`, or "" when the
// directory has none (or does not exist).
std::string find_latest_run_checkpoint(const std::string& dir);

// Retention GC: deletes the oldest-round `ckpt-<round>.fedsu` files in `dir`
// until at most `keep` remain; keep <= 0 keeps everything (the historical
// behaviour). Files that fail to delete are skipped — retention must never
// kill a run, and the next prune retries. Returns the number removed.
std::size_t prune_run_checkpoints(const std::string& dir, int keep);

}  // namespace fedsu::io
