#include "io/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "compress/wire.h"
#include "io/serialize.h"

namespace fedsu::io {

namespace {
constexpr std::uint32_t kCheckpointMagic = 0xC4EC'B01F;
}  // namespace

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path) {
  BinaryWriter writer;
  writer.write_magic(kCheckpointMagic);
  writer.write_string(checkpoint.protocol_name);
  writer.write_i32(checkpoint.round);
  writer.write_f64(checkpoint.elapsed_time_s);
  writer.write_vector(checkpoint.model_state);
  writer.write_vector(checkpoint.protocol_snapshot);
  writer.save_to_file(path);
}

Checkpoint load_checkpoint(const std::string& path) {
  BinaryReader reader = BinaryReader::from_file(path);
  reader.expect_magic(kCheckpointMagic, "checkpoint");
  Checkpoint checkpoint;
  checkpoint.protocol_name = reader.read_string();
  checkpoint.round = reader.read_i32();
  checkpoint.elapsed_time_s = reader.read_f64();
  checkpoint.model_state = reader.read_vector<float>();
  checkpoint.protocol_snapshot = reader.read_vector<std::uint8_t>();
  return checkpoint;
}

Checkpoint make_checkpoint(const compress::SyncProtocol& protocol,
                           std::vector<float> model_state, int round,
                           double elapsed_time_s) {
  Checkpoint checkpoint;
  checkpoint.protocol_name = protocol.name();
  checkpoint.round = round;
  checkpoint.elapsed_time_s = elapsed_time_s;
  checkpoint.model_state = std::move(model_state);
  checkpoint.protocol_snapshot = protocol.snapshot();
  return checkpoint;
}

void restore_protocol(compress::SyncProtocol& protocol,
                      const Checkpoint& checkpoint,
                      const std::vector<int>& absent_clients) {
  if (protocol.name() != checkpoint.protocol_name) {
    throw std::runtime_error("restore_protocol: checkpoint is for '" +
                             checkpoint.protocol_name + "', not '" +
                             protocol.name() + "'");
  }
  protocol.restore(checkpoint.protocol_snapshot);
  // The snapshot's rejoin stamps describe checkpoint time, not restore
  // time: any client that is down (or of unknown continuity) now must be
  // treated as a rejoiner — release its stale error slab and re-stamp it —
  // or its snapshot-era residuals feed every later correction.
  for (const int client : absent_clients) {
    protocol.on_client_rejoin(client);
  }
}

namespace {

std::string checkpoint_filename(int round) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%08d.fedsu", round);
  return name;
}

// Parses the round out of "ckpt-<round>.fedsu"; -1 when `name` is not a
// run-checkpoint filename.
int parse_checkpoint_round(const std::string& name) {
  constexpr const char* kPrefix = "ckpt-";
  constexpr const char* kSuffix = ".fedsu";
  if (name.size() < std::strlen(kPrefix) + std::strlen(kSuffix) + 1) return -1;
  if (name.rfind(kPrefix, 0) != 0) return -1;
  if (name.substr(name.size() - std::strlen(kSuffix)) != kSuffix) return -1;
  const std::string digits = name.substr(
      std::strlen(kPrefix),
      name.size() - std::strlen(kPrefix) - std::strlen(kSuffix));
  if (digits.empty()) return -1;
  int round = 0;
  for (const char ch : digits) {
    if (ch < '0' || ch > '9') return -1;
    round = round * 10 + (ch - '0');
  }
  return round;
}

}  // namespace

std::string save_run_checkpoint(const std::string& dir, int round,
                                const std::vector<std::uint8_t>& payload) {
  if (round < 0) {
    throw std::invalid_argument("save_run_checkpoint: negative round");
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("save_run_checkpoint: cannot create '" + dir +
                             "': " + ec.message());
  }

  BinaryWriter writer;
  writer.write_magic(kRunCheckpointMagic);
  writer.write_u32(kRunCheckpointVersion);
  writer.write_vector(payload);
  // CRC-32 footer over everything above; a flipped bit anywhere in the
  // frame (header, length, or payload) fails verification on load.
  const std::uint32_t crc = compress::wire::crc32(writer.buffer());
  writer.write_u32(crc);

  const fs::path final_path = fs::path(dir) / checkpoint_filename(round);
  const fs::path tmp_path = final_path.string() + ".tmp";
  writer.save_to_file(tmp_path.string());
  // std::rename within one directory is atomic on POSIX: readers see either
  // the old file set or the complete new checkpoint, never a torn write.
  if (std::rename(tmp_path.string().c_str(), final_path.string().c_str()) !=
      0) {
    std::remove(tmp_path.string().c_str());
    throw std::runtime_error("save_run_checkpoint: rename to '" +
                             final_path.string() + "' failed");
  }
  return final_path.string();
}

std::vector<std::uint8_t> load_run_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("run checkpoint '" + path + "': cannot open");
  }
  std::vector<std::uint8_t> frame(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  // Verify the CRC footer over the raw frame before parsing anything: a
  // damaged file must never yield a partially-valid payload.
  if (frame.size() < 3 * sizeof(std::uint32_t)) {
    throw std::runtime_error("run checkpoint '" + path +
                             "': truncated (shorter than the frame header)");
  }
  const std::size_t body = frame.size() - sizeof(std::uint32_t);
  std::uint32_t stored = 0;
  std::memcpy(&stored, frame.data() + body, sizeof(stored));
  const std::uint32_t actual = compress::wire::crc32({frame.data(), body});
  if (stored != actual) {
    throw std::runtime_error(
        "run checkpoint '" + path +
        "': CRC mismatch (file is corrupt or was truncated mid-write)");
  }
  BinaryReader reader(std::move(frame));
  const std::uint32_t magic = reader.read_u32();
  if (magic != kRunCheckpointMagic) {
    throw std::runtime_error("run checkpoint '" + path +
                             "': wrong magic (not a run checkpoint)");
  }
  const std::uint32_t version = reader.read_u32();
  if (version != kRunCheckpointVersion) {
    throw std::runtime_error("run checkpoint '" + path +
                             "': unsupported format version " +
                             std::to_string(version));
  }
  std::vector<std::uint8_t> payload;
  try {
    payload = reader.read_vector<std::uint8_t>();
  } catch (const std::exception& e) {
    throw std::runtime_error("run checkpoint '" + path +
                             "': " + e.what());
  }
  if (reader.remaining() != sizeof(std::uint32_t)) {
    throw std::runtime_error("run checkpoint '" + path +
                             "': trailing bytes after the payload");
  }
  return payload;
}

std::string find_latest_run_checkpoint(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return "";
  int best_round = -1;
  std::string best_path;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const int round = parse_checkpoint_round(entry.path().filename().string());
    if (round > best_round) {
      best_round = round;
      best_path = entry.path().string();
    }
  }
  return best_path;
}

std::size_t prune_run_checkpoints(const std::string& dir, int keep) {
  if (keep <= 0) return 0;
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return 0;
  std::vector<std::pair<int, fs::path>> checkpoints;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const int round = parse_checkpoint_round(entry.path().filename().string());
    if (round >= 0) checkpoints.emplace_back(round, entry.path());
  }
  if (checkpoints.size() <= static_cast<std::size_t>(keep)) return 0;
  std::sort(checkpoints.begin(), checkpoints.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t removed = 0;
  const std::size_t excess = checkpoints.size() - static_cast<std::size_t>(keep);
  for (std::size_t i = 0; i < excess; ++i) {
    if (fs::remove(checkpoints[i].second, ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace fedsu::io
