#include "io/checkpoint.h"

#include "io/serialize.h"

namespace fedsu::io {

namespace {
constexpr std::uint32_t kCheckpointMagic = 0xC4EC'B01F;
}  // namespace

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path) {
  BinaryWriter writer;
  writer.write_magic(kCheckpointMagic);
  writer.write_string(checkpoint.protocol_name);
  writer.write_i32(checkpoint.round);
  writer.write_f64(checkpoint.elapsed_time_s);
  writer.write_vector(checkpoint.model_state);
  writer.write_vector(checkpoint.protocol_snapshot);
  writer.save_to_file(path);
}

Checkpoint load_checkpoint(const std::string& path) {
  BinaryReader reader = BinaryReader::from_file(path);
  reader.expect_magic(kCheckpointMagic, "checkpoint");
  Checkpoint checkpoint;
  checkpoint.protocol_name = reader.read_string();
  checkpoint.round = reader.read_i32();
  checkpoint.elapsed_time_s = reader.read_f64();
  checkpoint.model_state = reader.read_vector<float>();
  checkpoint.protocol_snapshot = reader.read_vector<std::uint8_t>();
  return checkpoint;
}

Checkpoint make_checkpoint(const compress::SyncProtocol& protocol,
                           std::vector<float> model_state, int round,
                           double elapsed_time_s) {
  Checkpoint checkpoint;
  checkpoint.protocol_name = protocol.name();
  checkpoint.round = round;
  checkpoint.elapsed_time_s = elapsed_time_s;
  checkpoint.model_state = std::move(model_state);
  checkpoint.protocol_snapshot = protocol.snapshot();
  return checkpoint;
}

}  // namespace fedsu::io
