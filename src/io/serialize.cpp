#include "io/serialize.h"

#include <fstream>

namespace fedsu::io {

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  write_raw(s.data(), s.size());
}

void BinaryWriter::write_raw(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + bytes);
}

void BinaryWriter::save_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("BinaryWriter: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  if (!out) throw std::runtime_error("BinaryWriter: write failed for " + path);
}

BinaryReader BinaryReader::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("BinaryReader: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("BinaryReader: read failed for " + path);
  return BinaryReader(std::move(bytes));
}

std::uint8_t BinaryReader::read_u8() {
  std::uint8_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}

std::int32_t BinaryReader::read_i32() {
  std::int32_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}

float BinaryReader::read_f32() {
  float v = 0;
  read_raw(&v, sizeof(v));
  return v;
}

double BinaryReader::read_f64() {
  double v = 0;
  read_raw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  if (n > remaining()) throw std::runtime_error("BinaryReader: truncated string");
  std::string s(static_cast<std::size_t>(n), '\0');
  read_raw(s.data(), s.size());
  return s;
}

void BinaryReader::expect_magic(std::uint32_t magic, const char* what) {
  const std::uint32_t got = read_u32();
  if (got != magic) {
    throw std::runtime_error(std::string("BinaryReader: bad magic for ") +
                             what);
  }
}

void BinaryReader::read_raw(void* out, std::size_t bytes) {
  if (bytes > remaining()) {
    throw std::runtime_error("BinaryReader: read past end");
  }
  std::memcpy(out, bytes_.data() + cursor_, bytes);
  cursor_ += bytes;
}

}  // namespace fedsu::io
