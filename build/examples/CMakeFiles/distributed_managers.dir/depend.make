# Empty dependencies file for distributed_managers.
# This may be replaced when dependencies are built.
