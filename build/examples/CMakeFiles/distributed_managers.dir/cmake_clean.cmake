file(REMOVE_RECURSE
  "CMakeFiles/distributed_managers.dir/distributed_managers.cpp.o"
  "CMakeFiles/distributed_managers.dir/distributed_managers.cpp.o.d"
  "distributed_managers"
  "distributed_managers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
