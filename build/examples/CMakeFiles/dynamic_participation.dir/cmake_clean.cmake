file(REMOVE_RECURSE
  "CMakeFiles/dynamic_participation.dir/dynamic_participation.cpp.o"
  "CMakeFiles/dynamic_participation.dir/dynamic_participation.cpp.o.d"
  "dynamic_participation"
  "dynamic_participation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_participation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
