# Empty compiler generated dependencies file for dynamic_participation.
# This may be replaced when dependencies are built.
