# Empty compiler generated dependencies file for noniid_sweep.
# This may be replaced when dependencies are built.
