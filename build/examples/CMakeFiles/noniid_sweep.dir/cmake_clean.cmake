file(REMOVE_RECURSE
  "CMakeFiles/noniid_sweep.dir/noniid_sweep.cpp.o"
  "CMakeFiles/noniid_sweep.dir/noniid_sweep.cpp.o.d"
  "noniid_sweep"
  "noniid_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noniid_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
