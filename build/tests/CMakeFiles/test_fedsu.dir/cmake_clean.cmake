file(REMOVE_RECURSE
  "CMakeFiles/test_fedsu.dir/test_fedsu.cpp.o"
  "CMakeFiles/test_fedsu.dir/test_fedsu.cpp.o.d"
  "test_fedsu"
  "test_fedsu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fedsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
