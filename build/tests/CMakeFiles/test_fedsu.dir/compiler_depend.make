# Empty compiler generated dependencies file for test_fedsu.
# This may be replaced when dependencies are built.
