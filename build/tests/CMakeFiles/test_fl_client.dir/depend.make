# Empty dependencies file for test_fl_client.
# This may be replaced when dependencies are built.
