# Empty dependencies file for test_oscillation.
# This may be replaced when dependencies are built.
