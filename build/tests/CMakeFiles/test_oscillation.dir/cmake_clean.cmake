file(REMOVE_RECURSE
  "CMakeFiles/test_oscillation.dir/test_oscillation.cpp.o"
  "CMakeFiles/test_oscillation.dir/test_oscillation.cpp.o.d"
  "test_oscillation"
  "test_oscillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oscillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
