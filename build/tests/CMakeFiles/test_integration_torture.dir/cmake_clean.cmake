file(REMOVE_RECURSE
  "CMakeFiles/test_integration_torture.dir/test_integration_torture.cpp.o"
  "CMakeFiles/test_integration_torture.dir/test_integration_torture.cpp.o.d"
  "test_integration_torture"
  "test_integration_torture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_torture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
