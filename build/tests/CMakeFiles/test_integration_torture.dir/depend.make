# Empty dependencies file for test_integration_torture.
# This may be replaced when dependencies are built.
