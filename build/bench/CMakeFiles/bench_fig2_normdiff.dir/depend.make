# Empty dependencies file for bench_fig2_normdiff.
# This may be replaced when dependencies are built.
