file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_normdiff.dir/bench_fig2_normdiff.cpp.o"
  "CMakeFiles/bench_fig2_normdiff.dir/bench_fig2_normdiff.cpp.o.d"
  "bench_fig2_normdiff"
  "bench_fig2_normdiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_normdiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
