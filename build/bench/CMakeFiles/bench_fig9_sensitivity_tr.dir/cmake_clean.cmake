file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sensitivity_tr.dir/bench_fig9_sensitivity_tr.cpp.o"
  "CMakeFiles/bench_fig9_sensitivity_tr.dir/bench_fig9_sensitivity_tr.cpp.o.d"
  "bench_fig9_sensitivity_tr"
  "bench_fig9_sensitivity_tr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sensitivity_tr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
