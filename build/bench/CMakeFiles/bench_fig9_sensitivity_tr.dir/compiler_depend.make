# Empty compiler generated dependencies file for bench_fig9_sensitivity_tr.
# This may be replaced when dependencies are built.
