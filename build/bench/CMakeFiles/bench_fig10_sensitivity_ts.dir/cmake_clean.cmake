file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sensitivity_ts.dir/bench_fig10_sensitivity_ts.cpp.o"
  "CMakeFiles/bench_fig10_sensitivity_ts.dir/bench_fig10_sensitivity_ts.cpp.o.d"
  "bench_fig10_sensitivity_ts"
  "bench_fig10_sensitivity_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sensitivity_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
