# Empty dependencies file for bench_fig10_sensitivity_ts.
# This may be replaced when dependencies are built.
