# Empty compiler generated dependencies file for bench_fig6_microscopic.
# This may be replaced when dependencies are built.
