file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_microscopic.dir/bench_fig6_microscopic.cpp.o"
  "CMakeFiles/bench_fig6_microscopic.dir/bench_fig6_microscopic.cpp.o.d"
  "bench_fig6_microscopic"
  "bench_fig6_microscopic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_microscopic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
