file(REMOVE_RECURSE
  "CMakeFiles/bench_bandwidth_sweep.dir/bench_bandwidth_sweep.cpp.o"
  "CMakeFiles/bench_bandwidth_sweep.dir/bench_bandwidth_sweep.cpp.o.d"
  "bench_bandwidth_sweep"
  "bench_bandwidth_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bandwidth_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
