# Empty compiler generated dependencies file for bench_diagnosis_ablation.
# This may be replaced when dependencies are built.
