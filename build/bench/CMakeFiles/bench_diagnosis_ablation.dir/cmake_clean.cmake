file(REMOVE_RECURSE
  "CMakeFiles/bench_diagnosis_ablation.dir/bench_diagnosis_ablation.cpp.o"
  "CMakeFiles/bench_diagnosis_ablation.dir/bench_diagnosis_ablation.cpp.o.d"
  "bench_diagnosis_ablation"
  "bench_diagnosis_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diagnosis_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
