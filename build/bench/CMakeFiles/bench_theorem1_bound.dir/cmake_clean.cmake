file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem1_bound.dir/bench_theorem1_bound.cpp.o"
  "CMakeFiles/bench_theorem1_bound.dir/bench_theorem1_bound.cpp.o.d"
  "bench_theorem1_bound"
  "bench_theorem1_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem1_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
