# Empty compiler generated dependencies file for bench_iterations_ablation.
# This may be replaced when dependencies are built.
