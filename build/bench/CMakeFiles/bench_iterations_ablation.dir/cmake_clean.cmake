file(REMOVE_RECURSE
  "CMakeFiles/bench_iterations_ablation.dir/bench_iterations_ablation.cpp.o"
  "CMakeFiles/bench_iterations_ablation.dir/bench_iterations_ablation.cpp.o.d"
  "bench_iterations_ablation"
  "bench_iterations_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iterations_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
