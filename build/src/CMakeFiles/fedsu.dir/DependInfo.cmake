
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/apf.cpp" "src/CMakeFiles/fedsu.dir/compress/apf.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/compress/apf.cpp.o.d"
  "/root/repo/src/compress/cmfl.cpp" "src/CMakeFiles/fedsu.dir/compress/cmfl.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/compress/cmfl.cpp.o.d"
  "/root/repo/src/compress/fedavg.cpp" "src/CMakeFiles/fedsu.dir/compress/fedavg.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/compress/fedavg.cpp.o.d"
  "/root/repo/src/compress/qsgd.cpp" "src/CMakeFiles/fedsu.dir/compress/qsgd.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/compress/qsgd.cpp.o.d"
  "/root/repo/src/compress/signsgd.cpp" "src/CMakeFiles/fedsu.dir/compress/signsgd.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/compress/signsgd.cpp.o.d"
  "/root/repo/src/compress/topk.cpp" "src/CMakeFiles/fedsu.dir/compress/topk.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/compress/topk.cpp.o.d"
  "/root/repo/src/core/distributed.cpp" "src/CMakeFiles/fedsu.dir/core/distributed.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/core/distributed.cpp.o.d"
  "/root/repo/src/core/fedsu_manager.cpp" "src/CMakeFiles/fedsu.dir/core/fedsu_manager.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/core/fedsu_manager.cpp.o.d"
  "/root/repo/src/core/fedsu_variants.cpp" "src/CMakeFiles/fedsu.dir/core/fedsu_variants.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/core/fedsu_variants.cpp.o.d"
  "/root/repo/src/core/oscillation.cpp" "src/CMakeFiles/fedsu.dir/core/oscillation.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/core/oscillation.cpp.o.d"
  "/root/repo/src/core/regression.cpp" "src/CMakeFiles/fedsu.dir/core/regression.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/core/regression.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "src/CMakeFiles/fedsu.dir/core/theory.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/core/theory.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/fedsu.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/loader.cpp" "src/CMakeFiles/fedsu.dir/data/loader.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/data/loader.cpp.o.d"
  "/root/repo/src/data/partition.cpp" "src/CMakeFiles/fedsu.dir/data/partition.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/data/partition.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/fedsu.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/fl/client.cpp" "src/CMakeFiles/fedsu.dir/fl/client.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/fl/client.cpp.o.d"
  "/root/repo/src/fl/protocol_factory.cpp" "src/CMakeFiles/fedsu.dir/fl/protocol_factory.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/fl/protocol_factory.cpp.o.d"
  "/root/repo/src/fl/simulation.cpp" "src/CMakeFiles/fedsu.dir/fl/simulation.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/fl/simulation.cpp.o.d"
  "/root/repo/src/fl/trace.cpp" "src/CMakeFiles/fedsu.dir/fl/trace.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/fl/trace.cpp.o.d"
  "/root/repo/src/io/checkpoint.cpp" "src/CMakeFiles/fedsu.dir/io/checkpoint.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/io/checkpoint.cpp.o.d"
  "/root/repo/src/io/serialize.cpp" "src/CMakeFiles/fedsu.dir/io/serialize.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/io/serialize.cpp.o.d"
  "/root/repo/src/metrics/convergence.cpp" "src/CMakeFiles/fedsu.dir/metrics/convergence.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/metrics/convergence.cpp.o.d"
  "/root/repo/src/metrics/stats.cpp" "src/CMakeFiles/fedsu.dir/metrics/stats.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/metrics/stats.cpp.o.d"
  "/root/repo/src/net/flow_sim.cpp" "src/CMakeFiles/fedsu.dir/net/flow_sim.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/net/flow_sim.cpp.o.d"
  "/root/repo/src/net/network_model.cpp" "src/CMakeFiles/fedsu.dir/net/network_model.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/net/network_model.cpp.o.d"
  "/root/repo/src/net/round_timeline.cpp" "src/CMakeFiles/fedsu.dir/net/round_timeline.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/net/round_timeline.cpp.o.d"
  "/root/repo/src/nn/activation.cpp" "src/CMakeFiles/fedsu.dir/nn/activation.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/activation.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/CMakeFiles/fedsu.dir/nn/batchnorm.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/blocks.cpp" "src/CMakeFiles/fedsu.dir/nn/blocks.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/blocks.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/CMakeFiles/fedsu.dir/nn/conv2d.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/CMakeFiles/fedsu.dir/nn/dropout.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/dropout.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/fedsu.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/fedsu.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/CMakeFiles/fedsu.dir/nn/model.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/model.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/fedsu.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/CMakeFiles/fedsu.dir/nn/pooling.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/schedule.cpp" "src/CMakeFiles/fedsu.dir/nn/schedule.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/schedule.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/fedsu.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/sequential.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "src/CMakeFiles/fedsu.dir/nn/sgd.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/sgd.cpp.o.d"
  "/root/repo/src/nn/zoo.cpp" "src/CMakeFiles/fedsu.dir/nn/zoo.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/nn/zoo.cpp.o.d"
  "/root/repo/src/tensor/init.cpp" "src/CMakeFiles/fedsu.dir/tensor/init.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/tensor/init.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/fedsu.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/fedsu.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/util/bitset.cpp" "src/CMakeFiles/fedsu.dir/util/bitset.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/util/bitset.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/fedsu.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/CMakeFiles/fedsu.dir/util/flags.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/util/flags.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/fedsu.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/fedsu.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/fedsu.dir/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
