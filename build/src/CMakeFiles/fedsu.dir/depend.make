# Empty dependencies file for fedsu.
# This may be replaced when dependencies are built.
