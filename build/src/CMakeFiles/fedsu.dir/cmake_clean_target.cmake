file(REMOVE_RECURSE
  "libfedsu.a"
)
