#include <gtest/gtest.h>

#include <cmath>

#include "core/fedsu_manager.h"
#include "core/fedsu_variants.h"
#include "util/rng.h"

namespace fedsu::core {
namespace {

using compress::RoundContext;
using compress::SyncResult;

std::vector<std::span<const float>> views(
    const std::vector<std::vector<float>>& states) {
  std::vector<std::span<const float>> v;
  v.reserve(states.size());
  for (const auto& s : states) v.emplace_back(s);
  return v;
}

RoundContext ctx_of(int round, int n) {
  RoundContext ctx;
  ctx.round = round;
  for (int i = 0; i < n; ++i) ctx.participants.push_back(i);
  return ctx;
}

// Drives a protocol with synthetic client behaviour: each round, client i's
// local state is global + true_slope + per-client zero-mean noise.
class TrajectoryDriver {
 public:
  TrajectoryDriver(compress::SyncProtocol& proto, std::vector<float> global,
                   int num_clients, double noise = 0.0,
                   std::uint64_t seed = 19)
      : proto_(proto),
        global_(std::move(global)),
        num_clients_(num_clients),
        noise_(noise),
        rng_(seed) {
    proto_.initialize(global_);
  }

  // Runs one round with the given per-parameter true slopes.
  SyncResult step(const std::vector<float>& slopes) {
    std::vector<std::vector<float>> states(
        static_cast<std::size_t>(num_clients_));
    for (int i = 0; i < num_clients_; ++i) {
      auto& s = states[static_cast<std::size_t>(i)];
      s.resize(global_.size());
      for (std::size_t j = 0; j < global_.size(); ++j) {
        // Noise is zero-mean ACROSS clients so the global mean follows the
        // slope exactly when noise_ == 0 and approximately otherwise.
        s[j] = global_[j] + slopes[j] +
               static_cast<float>(noise_ * rng_.normal());
      }
    }
    SyncResult result = proto_.synchronize(ctx_of(round_++, num_clients_),
                                           views(states));
    global_ = result.new_global;
    return result;
  }

  const std::vector<float>& global() const { return global_; }
  int round() const { return round_; }

 private:
  compress::SyncProtocol& proto_;
  std::vector<float> global_;
  int num_clients_;
  double noise_;
  util::Rng rng_;
  int round_ = 0;
};

FedSuOptions fast_options() {
  FedSuOptions options;
  options.warmup = 3;
  return options;
}

TEST(FedSuManager, LinearParameterBecomesPredictable) {
  FedSuManager manager(2, fast_options());
  TrajectoryDriver driver(manager, {0.0f, 0.0f}, 2);
  const std::vector<float> slopes{0.125f, 0.125f};
  for (int r = 0; r < 6; ++r) driver.step(slopes);
  EXPECT_DOUBLE_EQ(manager.predictable_fraction(), 1.0);
}

TEST(FedSuManager, SpeculativeRoundsShipNoModelBytes) {
  FedSuManager manager(2, fast_options());
  TrajectoryDriver driver(manager, {0.0f}, 2);
  const std::vector<float> slopes{0.25f};
  // Warm up into speculation.
  for (int r = 0; r < 6; ++r) driver.step(slopes);
  ASSERT_DOUBLE_EQ(manager.predictable_fraction(), 1.0);
  // The very next round is inside the no-checking period... but with
  // initial period 1 it expires immediately, costing 1 error scalar. Track
  // a few rounds: bytes must be far below full sync (4 bytes/param/round).
  std::size_t total_up = 0;
  const int horizon = 10;
  for (int r = 0; r < horizon; ++r) total_up += driver.step(slopes).bytes_up[0];
  EXPECT_LT(total_up, static_cast<std::size_t>(horizon) * 4);
}

TEST(FedSuManager, SpeculativeValueFollowsSlope) {
  FedSuManager manager(1, fast_options());
  TrajectoryDriver driver(manager, {1.0f}, 1);
  const std::vector<float> slopes{0.5f};
  float before = 0.0f, after = 0.0f;
  for (int r = 0; r < 8; ++r) {
    before = driver.global()[0];
    driver.step(slopes);
    after = driver.global()[0];
  }
  ASSERT_DOUBLE_EQ(manager.predictable_fraction(), 1.0);
  EXPECT_NEAR(after - before, 0.5f, 1e-5);
}

TEST(FedSuManager, NoCheckPeriodGrowsWhilePatternHolds) {
  FedSuManager manager(1, fast_options());
  TrajectoryDriver driver(manager, {0.0f}, 1);
  const std::vector<float> slopes{0.125f};
  // Run long enough for several successful checks; count rounds that carry
  // error traffic. Periods 1, 2, 3, ... mean check rounds thin out over
  // time: across R rounds, roughly sqrt(2R) checks.
  int check_rounds = 0;
  int spec_rounds = 0;
  for (int r = 0; r < 40; ++r) {
    const auto result = driver.step(slopes);
    if (manager.predictable_fraction() == 1.0) {
      ++spec_rounds;
      if (result.bytes_up[0] > 0) ++check_rounds;
    }
  }
  EXPECT_GT(spec_rounds, 30);
  EXPECT_LT(check_rounds, 12);
  EXPECT_GT(check_rounds, 2);
}

TEST(FedSuManager, BrokenPatternDemotesAndCorrects) {
  FedSuOptions options = fast_options();
  options.t_s = 1.0;
  FedSuManager manager(1, options);
  TrajectoryDriver driver(manager, {0.0f}, 1);
  std::vector<float> slopes{0.125f};
  for (int r = 0; r < 6; ++r) driver.step(slopes);
  ASSERT_DOUBLE_EQ(manager.predictable_fraction(), 1.0);

  bool demoted = false;
  std::vector<SpecEvent> events;
  manager.set_event_hook([&](const SpecEvent& e) { events.push_back(e); });
  // Reverse the trajectory: prediction error per round = -0.4; S after one
  // round = 0.4/0.1 = 4 > T_S at the next check.
  slopes[0] = -0.375f;
  for (int r = 0; r < 6 && !demoted; ++r) {
    driver.step(slopes);
    demoted = manager.predictable_fraction() == 0.0;
  }
  EXPECT_TRUE(demoted);
  ASSERT_FALSE(events.empty());
  EXPECT_FALSE(events.back().start);
  // Correction: after demotion the global must track the true trajectory
  // again within a couple of synced rounds.
  driver.step(slopes);
  const float global_now = driver.global()[0];
  driver.step(slopes);
  EXPECT_NEAR(driver.global()[0] - global_now, -0.375f, 1e-4);
}

TEST(FedSuManager, ByteAccountingMatchesUnpredictableCount) {
  FedSuManager manager(3, fast_options());
  // Two params: one will go linear, one random.
  util::Rng rng(5);
  TrajectoryDriver driver(manager, {0.0f, 0.0f}, 3);
  for (int r = 0; r < 6; ++r) {
    driver.step({0.125f, static_cast<float>(rng.normal())});
  }
  // Param 0 predictable, param 1 not.
  EXPECT_DOUBLE_EQ(manager.predictable_fraction(), 0.5);
  const auto result = driver.step({0.125f, static_cast<float>(rng.normal())});
  // Upload = 1 unpredictable scalar (+1 if the error check expired).
  EXPECT_GE(result.bytes_up[0], 4u);
  EXPECT_LE(result.bytes_up[0], 8u);
  EXPECT_EQ(result.bytes_up.size(), 3u);
  EXPECT_GT(result.scalars_up, 0u);
}

TEST(FedSuManager, SparsificationRatioReflectsMask) {
  FedSuManager manager(1, fast_options());
  std::vector<float> global(10, 0.0f);
  TrajectoryDriver driver(manager, global, 1);
  std::vector<float> slopes(10, 0.0625f);
  for (int r = 0; r < 6; ++r) driver.step(slopes);
  ASSERT_DOUBLE_EQ(manager.predictable_fraction(), 1.0);
  double max_ratio = 0.0;
  for (int r = 0; r < 6; ++r) {
    driver.step(slopes);
    max_ratio = std::max(max_ratio, manager.last_sparsification_ratio());
  }
  EXPECT_GT(max_ratio, 0.85);
}

TEST(FedSuManager, ReplicasStayIdentical) {
  // The correctness precondition of client-side mask maintenance (§V):
  // two managers fed identical global inputs produce identical masks.
  FedSuManager a(2, fast_options());
  FedSuManager b(2, fast_options());
  util::Rng rng(17);
  TrajectoryDriver da(a, {0.0f, 0.0f, 0.0f}, 2, 0.0, 19);
  TrajectoryDriver db(b, {0.0f, 0.0f, 0.0f}, 2, 0.0, 19);
  for (int r = 0; r < 25; ++r) {
    const float wander = static_cast<float>(rng.normal());
    const std::vector<float> slopes{0.125f, wander, (r < 12) ? 0.25f : -0.25f};
    da.step(slopes);
    db.step(slopes);
    ASSERT_EQ(a.predictable_mask(), b.predictable_mask()) << "round " << r;
    ASSERT_EQ(da.global(), db.global()) << "round " << r;
  }
}

TEST(FedSuManager, ClientJoinExtendsAccumulators) {
  FedSuManager manager(2, fast_options());
  std::vector<float> global{0.0f};
  manager.initialize(global);
  EXPECT_THROW(manager.on_client_join(5), std::invalid_argument);
  manager.on_client_join(2);
  // A round with the new client participating must be accepted.
  std::vector<std::vector<float>> states{{0.1f}, {0.1f}, {0.1f}};
  RoundContext ctx;
  ctx.round = 0;
  ctx.participants = {0, 1, 2};
  EXPECT_NO_THROW(manager.synchronize(ctx, views(states)));
}

TEST(FedSuManager, JoinStateBytesCoverMaskAndPeriods) {
  FedSuManager manager(2, fast_options());
  std::vector<float> global(100, 0.0f);
  manager.initialize(global);
  // 100 params: mask ~13 bytes, periods 400, slopes 400.
  EXPECT_GT(manager.join_state_bytes(), 800u);
  EXPECT_LT(manager.join_state_bytes(), 1000u);
}

TEST(FedSuManager, StateBytesScaleLinearly) {
  FedSuManager small(2, fast_options());
  FedSuManager large(2, fast_options());
  std::vector<float> g_small(10, 0.0f), g_large(1000, 0.0f);
  small.initialize(g_small);
  large.initialize(g_large);
  EXPECT_NEAR(static_cast<double>(large.state_bytes()) / small.state_bytes(),
              100.0, 5.0);
}

TEST(FedSuManager, RejectsBadInputs) {
  EXPECT_THROW(FedSuManager(0), std::invalid_argument);
  FedSuOptions bad;
  bad.t_r = 0.0;
  EXPECT_THROW(FedSuManager(1, bad), std::invalid_argument);
  FedSuManager manager(2, fast_options());
  std::vector<float> global{0.0f};
  manager.initialize(global);
  std::vector<std::vector<float>> states{{0.1f, 0.2f}};  // wrong width
  RoundContext ctx = ctx_of(0, 1);
  EXPECT_THROW(manager.synchronize(ctx, views(states)), std::invalid_argument);
  RoundContext bad_ctx = ctx_of(0, 2);
  std::vector<std::vector<float>> one{{0.1f}};
  EXPECT_THROW(manager.synchronize(bad_ctx, views(one)), std::invalid_argument);
  RoundContext oob = ctx_of(0, 1);
  oob.participants[0] = 7;
  EXPECT_THROW(manager.synchronize(oob, views(one)), std::out_of_range);
}

TEST(FedSuManager, EventHookSeesStartAndEnd) {
  FedSuManager manager(1, fast_options());
  std::vector<SpecEvent> events;
  manager.set_event_hook([&](const SpecEvent& e) { events.push_back(e); });
  TrajectoryDriver driver(manager, {0.0f}, 1);
  for (int r = 0; r < 6; ++r) driver.step({0.125f});
  for (int r = 0; r < 6; ++r) driver.step({-0.5f});
  ASSERT_GE(events.size(), 2u);
  EXPECT_TRUE(events.front().start);
  bool saw_end = false;
  for (const auto& e : events) saw_end |= !e.start;
  EXPECT_TRUE(saw_end);
}

TEST(FedSuManager, LinearRoundsCounterTracksSpeculation) {
  FedSuManager manager(1, fast_options());
  TrajectoryDriver driver(manager, {0.0f, 0.0f}, 1);
  util::Rng rng(23);
  for (int r = 0; r < 20; ++r) {
    driver.step({0.125f, static_cast<float>(rng.normal())});
  }
  EXPECT_GT(manager.linear_rounds()[0], 8);
  // A random walk can dip under T_R by chance for a round or two before the
  // error feedback ejects it; it must stay far below the linear parameter.
  EXPECT_LE(manager.linear_rounds()[1], 3);
  EXPECT_EQ(manager.rounds_seen(), 20);
}

TEST(FedSuV1, FixedPeriodExpiresWithoutErrorTraffic) {
  FedSuV1Options options;
  options.fixed_period = 5;
  options.warmup = 3;
  FedSuV1 proto(options);
  TrajectoryDriver driver(proto, {0.0f}, 1);
  const std::vector<float> slopes{0.125f};
  // Promote.
  int promote_round = -1;
  for (int r = 0; r < 10 && promote_round < 0; ++r) {
    driver.step(slopes);
    if (proto.predictable_fraction() == 1.0) promote_round = r;
  }
  ASSERT_GE(promote_round, 0);
  // During speculation: exactly zero bytes (no error aggregation in v1).
  int zero_byte_rounds = 0;
  for (int r = 0; r < 5; ++r) {
    const auto result = driver.step(slopes);
    if (result.bytes_up[0] == 0) ++zero_byte_rounds;
  }
  EXPECT_GE(zero_byte_rounds, 4);  // period 5, expiry round syncs again
  // After expiry the parameter returns to regular updating.
  EXPECT_DOUBLE_EQ(proto.predictable_fraction(), 0.0);
}

TEST(FedSuV1, NoCorrectionMeansDriftWhenPatternBreaks) {
  FedSuV1Options options;
  options.fixed_period = 8;
  FedSuV1 proto(options);
  TrajectoryDriver driver(proto, {0.0f}, 1);
  std::vector<float> slopes{0.125f};
  for (int r = 0; r < 6; ++r) driver.step(slopes);
  ASSERT_DOUBLE_EQ(proto.predictable_fraction(), 1.0);
  // Trajectory reverses; v1 keeps applying +0.1 for the full period.
  slopes[0] = -0.125f;
  float drift_peak = 0.0f;
  float true_value = driver.global()[0];
  for (int r = 0; r < 8; ++r) {
    driver.step(slopes);
    true_value += slopes[0];
    drift_peak = std::max(drift_peak,
                          std::fabs(driver.global()[0] - true_value));
  }
  EXPECT_GT(drift_peak, 0.5f);  // ~0.2 drift per round, uncorrected
}

TEST(FedSuV2, EntryRateMatchesProbability) {
  FedSuV2Options options;
  options.enter_probability = 0.3;
  options.fixed_period = 1000;  // effectively never release
  FedSuV2 proto(options);
  std::vector<float> global(2000, 0.0f);
  TrajectoryDriver driver(proto, global, 1);
  std::vector<float> slopes(2000, 0.1f);
  driver.step(slopes);  // primes prev update; no entries yet
  driver.step(slopes);  // ~30% enter here
  EXPECT_NEAR(proto.predictable_fraction(), 0.3, 0.05);
}

TEST(FedSuV2, ZeroProbabilityNeverSpeculates) {
  FedSuV2Options options;
  options.enter_probability = 0.0;
  FedSuV2 proto(options);
  TrajectoryDriver driver(proto, {0.0f, 0.0f}, 1);
  for (int r = 0; r < 10; ++r) driver.step({0.1f, 0.1f});
  EXPECT_DOUBLE_EQ(proto.predictable_fraction(), 0.0);
}

TEST(FedSuVariants, RejectBadOptions) {
  FedSuV1Options v1;
  v1.fixed_period = 0;
  EXPECT_THROW(FedSuV1{v1}, std::invalid_argument);
  FedSuV2Options v2;
  v2.enter_probability = 2.0;
  EXPECT_THROW(FedSuV2{v2}, std::invalid_argument);
}

// Property sweep over T_S: tighter thresholds demote earlier (or equally)
// when the pattern breaks.
class FedSuTsSweep : public ::testing::TestWithParam<double> {};

TEST_P(FedSuTsSweep, TighterThresholdDemotesSooner) {
  FedSuOptions options = fast_options();
  options.t_s = GetParam();
  FedSuManager manager(1, options);
  TrajectoryDriver driver(manager, {0.0f}, 1);
  std::vector<float> slopes{0.125f};
  for (int r = 0; r < 6; ++r) driver.step(slopes);
  if (manager.predictable_fraction() < 1.0) GTEST_SKIP();
  slopes[0] = 0.0f;  // pattern becomes stagnation: error 0.1/round
  int rounds_to_demote = 0;
  for (int r = 0; r < 60 && manager.predictable_fraction() > 0.0; ++r) {
    driver.step(slopes);
    ++rounds_to_demote;
  }
  if (GetParam() <= 1.0) {
    EXPECT_LE(rounds_to_demote, 5);
  } else {
    EXPECT_GT(rounds_to_demote, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FedSuTsSweep,
                         ::testing::Values(0.1, 1.0, 10.0));

}  // namespace
}  // namespace fedsu::core
