#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tensor/vectorized.h"
#include "util/rng.h"

namespace fedsu::tensor {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ShapeDataMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f, 3.0f}), std::invalid_argument);
}

TEST(Tensor, NegativeDimThrows) {
  EXPECT_THROW(Tensor({2, -1}), std::invalid_argument);
}

TEST(Tensor, At2dRowMajor) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at(0, 0), 0.0f);
  EXPECT_EQ(t.at(0, 2), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 2), 5.0f);
}

TEST(Tensor, At4dNchw) {
  Tensor t({2, 2, 2, 2});
  t.at(1, 1, 1, 1) = 9.0f;
  EXPECT_EQ(t[15], 9.0f);
  t.at(0, 1, 0, 1) = 4.0f;
  EXPECT_EQ(t[5], 4.0f);
}

TEST(Tensor, ReshapedKeepsData) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t[2], 2.5f);
  t.zero();
  EXPECT_EQ(t[0], 0.0f);
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor({2, 3, 4}).shape_string(), "[2, 3, 4]");
}

TEST(Ops, AddSubMulScale) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {4, 5, 6});
  const Tensor s = add(a, b);
  EXPECT_EQ(s[0], 5.0f);
  const Tensor d = sub(b, a);
  EXPECT_EQ(d[2], 3.0f);
  const Tensor m = mul(a, b);
  EXPECT_EQ(m[1], 10.0f);
  const Tensor sc = scale(a, 2.0f);
  EXPECT_EQ(sc[2], 6.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(add_inplace(a, b), std::invalid_argument);
}

TEST(Ops, AxpyAccumulates) {
  Tensor y({2}, {1, 1});
  Tensor x({2}, {2, 3});
  axpy(y, 0.5f, x);
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 2.5f);
}

TEST(Ops, MatmulKnownResult) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulVariantsConsistent) {
  util::Rng rng(5);
  Tensor a({4, 3});
  Tensor b({4, 5});
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(rng.normal());
  // a^T * b via matmul_tn must equal transposing manually.
  const Tensor c = matmul_tn(a, b);  // [3, 5]
  Tensor at({3, 4});
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  }
  const Tensor ref = matmul(at, b);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4);

  // a * b2^T via matmul_nt.
  Tensor b2({5, 3});
  for (std::size_t i = 0; i < b2.size(); ++i) {
    b2[i] = static_cast<float>(rng.normal());
  }
  const Tensor c2 = matmul_nt(a.reshaped({4, 3}), b2);  // [4, 5]
  Tensor b2t({3, 5});
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 3; ++j) b2t.at(j, i) = b2.at(i, j);
  }
  const Tensor ref2 = matmul(a, b2t);
  for (std::size_t i = 0; i < c2.size(); ++i) EXPECT_NEAR(c2[i], ref2[i], 1e-4);
}

TEST(Ops, MatmulShapeChecks) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({4, 2})), std::invalid_argument);
  EXPECT_THROW(matmul_tn(Tensor({2, 3}), Tensor({3, 2})), std::invalid_argument);
  EXPECT_THROW(matmul_nt(Tensor({2, 3}), Tensor({2, 4})), std::invalid_argument);
}

TEST(Ops, Reductions) {
  Tensor a({4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(sum(a), -2.0f);
  EXPECT_FLOAT_EQ(mean(a), -0.5f);
  EXPECT_FLOAT_EQ(max_value(a), 3.0f);
  EXPECT_FLOAT_EQ(min_value(a), -4.0f);
  EXPECT_FLOAT_EQ(l2_norm(a), std::sqrt(30.0f));
  EXPECT_EQ(argmax(a.data(), a.size()), 2u);
}

TEST(Ops, VectorHelpers) {
  std::vector<float> a{1, 2, 3};
  std::vector<float> b{4, 5, 6};
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
  const auto d = vec_sub(b, a);
  EXPECT_FLOAT_EQ(d[0], 3.0f);
  EXPECT_FLOAT_EQ(vec_l2_diff(a, b), std::sqrt(27.0f));
  vec_axpy(a, 2.0f, b);
  EXPECT_FLOAT_EQ(a[2], 15.0f);
  std::vector<float> bad{1.0f};
  EXPECT_THROW(dot(a, bad), std::invalid_argument);
}

TEST(Tensor, ResizeReusesCapacityAndZeroFillsGrowth) {
  Tensor t({4, 8});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = 1.0f;
  const float* big = t.data();
  // Shrink: same buffer, surviving elements keep their values.
  t.resize({2, 8});
  EXPECT_EQ(t.data(), big);
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t[0], 1.0f);
  // Grow back within capacity: still the same buffer, new tail is zero.
  t.resize({4, 8});
  EXPECT_EQ(t.data(), big);
  EXPECT_EQ(t[31], 0.0f);
}

// The inline kernels in tensor/vectorized.h are the implementation behind
// the ops above; exercise them directly, including unaligned lengths that
// force scalar epilogues, and the double-accumulator reductions.
TEST(Vectorized, ElementwiseKernels) {
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                        std::size_t{1000}, std::size_t{1003}}) {
    util::Rng rng(n);
    std::vector<float> y(n), x(n), expected(n);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
      x[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    std::vector<float> work = y;
    for (std::size_t i = 0; i < n; ++i) expected[i] = y[i] + 3.5f * x[i];
    vec::axpy(work.data(), 3.5f, x.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_FLOAT_EQ(work[i], expected[i]);

    work = y;
    vec::add(work.data(), x.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_FLOAT_EQ(work[i], y[i] + x[i]);

    work = y;
    vec::sub(work.data(), x.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_FLOAT_EQ(work[i], y[i] - x[i]);

    work = y;
    vec::mul(work.data(), x.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_FLOAT_EQ(work[i], y[i] * x[i]);

    work = y;
    vec::scale(work.data(), -0.25f, n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_FLOAT_EQ(work[i], -0.25f * y[i]);

    std::vector<float> out(n);
    vec::diff(out.data(), y.data(), x.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_FLOAT_EQ(out[i], y[i] - x[i]);

    vec::fill(work.data(), 7.0f, n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(work[i], 7.0f);
  }
}

TEST(Vectorized, ReductionsUseDoubleAccumulation) {
  // 1e8 + many small values: a float accumulator would drop them entirely;
  // the double accumulator must not.
  std::vector<float> a(1001, 1.0f);
  a[0] = 1e8f;
  EXPECT_DOUBLE_EQ(vec::sum(a.data(), a.size()), 1e8 + 1000.0);
  const std::vector<float> ones(1001, 1.0f);
  EXPECT_DOUBLE_EQ(vec::dot(a.data(), ones.data(), a.size()), 1e8 + 1000.0);
  EXPECT_DOUBLE_EQ(vec::l2_sq(ones.data(), ones.size()), 1001.0);
  std::vector<float> b(1001, 0.0f);
  EXPECT_DOUBLE_EQ(vec::l2_diff_sq(ones.data(), b.data(), ones.size()), 1001.0);
}

// IEEE semantics through the kernels: a zero operand against Inf/NaN must
// propagate NaN, which the old `if (av == 0.0f) continue;` matmul shortcut
// silently suppressed (0 * Inf was skipped instead of producing NaN).
TEST(Ops, MatmulPropagatesNanFromZeroTimesInf) {
  Tensor a({1, 2}, {0.0f, 1.0f});
  Tensor b({2, 1}, {std::numeric_limits<float>::infinity(), 2.0f});
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c[0]));
}

TEST(Init, KaimingVarianceMatchesFanIn) {
  util::Rng rng(3);
  Tensor t({200, 50});
  kaiming_normal(t, 50, rng);
  double sq = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sq += static_cast<double>(t[i]) * t[i];
  }
  const double var = sq / static_cast<double>(t.size());
  EXPECT_NEAR(var, 2.0 / 50.0, 0.004);
}

TEST(Init, XavierWithinBound) {
  util::Rng rng(4);
  Tensor t({64, 64});
  xavier_uniform(t, 64, 64, rng);
  const double bound = std::sqrt(6.0 / 128.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::fabs(t[i]), bound + 1e-6);
  }
}

TEST(Init, RejectsBadFan) {
  util::Rng rng(5);
  Tensor t({4});
  EXPECT_THROW(kaiming_normal(t, 0, rng), std::invalid_argument);
  EXPECT_THROW(xavier_uniform(t, 0, 4, rng), std::invalid_argument);
}

}  // namespace
}  // namespace fedsu::tensor
