#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <cstdint>

#include "util/csv.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/scratch_arena.h"
#include "util/stopwatch.h"

namespace fedsu::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(10);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GammaMeanMatchesShape) {
  Rng rng(11);
  for (double shape : {0.5, 1.0, 3.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.gamma(shape);
    EXPECT_NEAR(sum / n, shape, 0.1 * shape + 0.03) << "shape=" << shape;
  }
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(12);
  for (double alpha : {0.1, 1.0, 10.0}) {
    const auto v = rng.dirichlet(alpha, 10);
    ASSERT_EQ(v.size(), 10u);
    double sum = 0.0;
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletConcentrationControlsSkew) {
  Rng rng(13);
  // Small alpha -> spiky mixtures; large alpha -> flat mixtures.
  double max_small = 0.0, max_large = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto s = rng.dirichlet(0.05, 10);
    const auto l = rng.dirichlet(100.0, 10);
    max_small += *std::max_element(s.begin(), s.end());
    max_large += *std::max_element(l.begin(), l.end());
  }
  EXPECT_GT(max_small / 200, 0.7);
  EXPECT_LT(max_large / 200, 0.2);
}

TEST(Rng, PermutationIsBijective) {
  Rng rng(14);
  const auto perm = rng.permutation(257);
  std::vector<bool> seen(257, false);
  for (auto i : perm) {
    ASSERT_LT(i, 257u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Rng, ForkStreamsAreIndependentAndStable) {
  Rng parent(99);
  Rng c1 = parent.fork(0);
  Rng c2 = parent.fork(1);
  Rng c1_again = Rng(99).fork(0);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, BernoulliRate) {
  Rng rng(22);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Flags, ParsesAllTypes) {
  Flags flags;
  flags.add_int("rounds", 10, "rounds")
      .add_double("lr", 0.1, "learning rate")
      .add_string("model", "cnn", "arch")
      .add_bool("verbose", false, "verbosity");
  const char* argv[] = {"prog", "--rounds", "25",      "--lr=0.5",
                        "--model", "mlp",    "--verbose"};
  ASSERT_TRUE(flags.parse(7, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("rounds"), 25);
  EXPECT_DOUBLE_EQ(flags.get_double("lr"), 0.5);
  EXPECT_EQ(flags.get_string("model"), "mlp");
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Flags, DefaultsSurviveEmptyArgv) {
  Flags flags;
  flags.add_int("n", 3, "n");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("n"), 3);
}

TEST(Flags, UnknownFlagThrows) {
  Flags flags;
  flags.add_int("n", 3, "n");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(flags.parse(3, const_cast<char**>(argv)), std::runtime_error);
}

TEST(Flags, BadValueThrows) {
  Flags flags;
  flags.add_int("n", 3, "n");
  const char* argv[] = {"prog", "--n", "notanint"};
  EXPECT_THROW(flags.parse(3, const_cast<char**>(argv)), std::runtime_error);
}

TEST(Flags, HelpReturnsFalse) {
  Flags flags;
  flags.add_int("n", 3, "n");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(Csv, WritesAndEscapes) {
  const std::string path = ::testing::TempDir() + "/fedsu_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a", "b,c", "d\"e"});
    csv.write_row({CsvWriter::field(1.5), CsvWriter::field(7LL)});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1.5,7");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

TEST(Logging, LevelGatesOutput) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  LOG_INFO() << "should be dropped";  // just exercising the path
  set_log_level(old);
  SUCCEED();
}

// Concurrent writers must never tear a line: each captured stdout line is a
// complete `[INFO file:line] t<thread> i<iter>` record, and every message
// arrives exactly once.
TEST(Logging, ConcurrentWritersDoNotTearLines) {
  constexpr int kThreads = 4;
  constexpr int kLines = 50;
  testing::internal::CaptureStdout();
  {
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([t] {
        for (int i = 0; i < kLines; ++i) {
          LOG_INFO() << "t" << t << " i" << i;
        }
      });
    }
    for (auto& w : writers) w.join();
  }
  const std::string captured = testing::internal::GetCapturedStdout();

  std::set<std::string> seen;
  std::istringstream lines(captured);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    // Prefix formatted before the payload, all flushed as one fputs.
    EXPECT_EQ(line.rfind("[INFO ", 0), std::size_t{0}) << "torn line: " << line;
    const std::size_t payload = line.find("] ");
    ASSERT_NE(payload, std::string::npos) << "torn line: " << line;
    EXPECT_TRUE(seen.insert(line.substr(payload + 2)).second)
        << "duplicate payload: " << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads * kLines));
}

TEST(Stopwatch, ElapsedIsMonotonicNonNegative) {
  Stopwatch sw;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = sw.elapsed_seconds();
    EXPECT_GE(now, prev);  // steady_clock: readings never go backwards
    prev = now;
  }
}

TEST(Stopwatch, LapsPartitionElapsedTime) {
  Stopwatch sw;
  double lap_sum = 0.0;
  for (int i = 0; i < 5; ++i) {
    volatile double sink = 0.0;
    for (int k = 0; k < 10000; ++k) sink = sink + std::sqrt(double(k));
    const double lap = sw.lap();
    EXPECT_GE(lap, 0.0);
    lap_sum += lap;
  }
  // The laps are consecutive disjoint intervals starting at construction,
  // so their sum can never exceed the total elapsed time.
  EXPECT_LE(lap_sum, sw.elapsed_seconds());
  EXPECT_GT(lap_sum, 0.0);
}

TEST(Stopwatch, ResetRestartsLapMarker) {
  Stopwatch sw;
  (void)sw.lap();
  sw.reset();
  const double lap = sw.lap();
  EXPECT_GE(lap, 0.0);
  EXPECT_LE(lap, sw.elapsed_seconds() + 1e-9);
}

TEST(CsvWriter, FlushMakesRowsVisibleBeforeDestruction) {
  const std::string path = ::testing::TempDir() + "/fedsu_csv_flush_test.csv";
  CsvWriter csv(path);
  csv.write_row({"a", "b"});
  csv.write_row({"1", "2"});
  csv.flush();
  // Read back while the writer is still alive: the rows must be on disk.
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

// Flipping the level while other threads log is race-free (the level is
// atomic); this is primarily a TSan target.
TEST(Logging, LevelFlipDuringConcurrentLoggingIsSafe) {
  const LogLevel old = log_level();
  testing::internal::CaptureStdout();
  std::thread flipper([] {
    for (int i = 0; i < 200; ++i) {
      set_log_level(i % 2 == 0 ? LogLevel::kError : LogLevel::kInfo);
    }
  });
  std::thread writer([] {
    for (int i = 0; i < 200; ++i) LOG_INFO() << "ping " << i;
  });
  flipper.join();
  writer.join();
  testing::internal::GetCapturedStdout();
  set_log_level(old);
  SUCCEED();
}

TEST(ScratchArena, ReturnsAlignedDistinctBuffers) {
  ScratchArena arena;
  ScratchArena::Frame frame(arena);
  float* a = arena.floats(100);
  float* b = arena.floats(1);
  float* c = arena.floats(0);  // zero-count still yields a valid pointer
  EXPECT_NE(a, nullptr);
  EXPECT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  // Buffers in the same frame never overlap.
  EXPECT_GE(b, a + 100);
  a[99] = 1.0f;
  b[0] = 2.0f;
  EXPECT_EQ(a[99], 1.0f);
}

TEST(ScratchArena, FrameRewindReusesSpaceWithoutGrowth) {
  ScratchArena arena;
  float* first = nullptr;
  {
    ScratchArena::Frame frame(arena);
    first = arena.floats(512);
  }
  const std::size_t grown = arena.grow_count();
  for (int repeat = 0; repeat < 100; ++repeat) {
    ScratchArena::Frame frame(arena);
    // Same request pattern lands on the same memory, allocation-free.
    EXPECT_EQ(arena.floats(512), first);
  }
  EXPECT_EQ(arena.grow_count(), grown);
}

TEST(ScratchArena, NestedFramesRestoreLifo) {
  ScratchArena arena;
  ScratchArena::Frame outer(arena);
  float* outer_buf = arena.floats(64);
  outer_buf[0] = 42.0f;
  float* inner_buf = nullptr;
  {
    ScratchArena::Frame inner(arena);
    inner_buf = arena.floats(64);
    EXPECT_GE(inner_buf, outer_buf + 64);  // outer allocation untouched
  }
  // After the inner frame pops, its space is handed out again...
  EXPECT_EQ(arena.floats(64), inner_buf);
  // ...and the outer allocation survived both the frame and the reuse.
  EXPECT_EQ(outer_buf[0], 42.0f);
}

TEST(ScratchArena, GrowsAcrossBlocksAndRetainsCapacity) {
  ScratchArena arena;
  {
    ScratchArena::Frame frame(arena);
    // Force several growths: each request exceeds everything so far.
    arena.floats(1 << 14);
    arena.floats(1 << 16);
    arena.floats(1 << 18);
  }
  const std::size_t capacity = arena.capacity_bytes();
  const std::size_t grown = arena.grow_count();
  EXPECT_GE(capacity, (std::size_t{1} << 18) * sizeof(float));
  {
    ScratchArena::Frame frame(arena);
    // Repeating the peak pattern fits in retained capacity.
    arena.floats(1 << 14);
    arena.floats(1 << 16);
    arena.floats(1 << 18);
  }
  EXPECT_EQ(arena.capacity_bytes(), capacity);
  EXPECT_EQ(arena.grow_count(), grown);
}

TEST(ScratchArena, LocalIsPerThread) {
  ScratchArena* main_arena = &ScratchArena::local();
  EXPECT_EQ(main_arena, &ScratchArena::local());
  ScratchArena* other = nullptr;
  std::thread t([&] { other = &ScratchArena::local(); });
  t.join();
  EXPECT_NE(other, nullptr);
  EXPECT_NE(other, main_arena);
}

}  // namespace
}  // namespace fedsu::util
