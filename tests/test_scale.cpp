// Scaling-subsystem tests (DESIGN.md §13): the fixed-shape blocked
// reduction, zero-copy dataset views, the sparse per-client error store,
// and the §5b thread-count-invariance contract at a 128-client cohort —
// synchronous and buffered-async.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/distributed.h"
#include "core/fedsu_manager.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "io/serialize.h"
#include "nn/zoo.h"
#include "util/reduce.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedsu {
namespace {

std::vector<std::span<const float>> views(
    const std::vector<std::vector<float>>& states) {
  std::vector<std::span<const float>> v;
  v.reserve(states.size());
  for (const auto& s : states) v.emplace_back(s);
  return v;
}

std::vector<std::vector<float>> random_states(std::size_t n, std::size_t p,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> states(n);
  for (auto& s : states) {
    s.resize(p);
    for (auto& v : s) v = static_cast<float>(rng.normal());
  }
  return states;
}

// --- util/reduce: the fixed block shape ----------------------------------

TEST(Reduce, SingleBlockMatchesSerialChain) {
  // n <= kReduceClientBlock must reproduce the historical serial fold
  // bit for bit — that is what keeps the checked-in 8-client baselines
  // valid (util/reduce.h).
  const std::size_t n = util::kReduceClientBlock;
  const std::size_t p = 17;
  const auto states = random_states(n, p, 7);
  std::vector<double> sums(p, 0.0);
  util::column_sums(views(states), sums, &util::ThreadPool::global());
  std::vector<float> means(p, 0.0f);
  util::column_means(views(states), means, &util::ThreadPool::global());
  for (std::size_t j = 0; j < p; ++j) {
    double serial = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      serial += static_cast<double>(states[i][j]);
    }
    ASSERT_EQ(sums[j], serial) << "column " << j;
    ASSERT_EQ(means[j], static_cast<float>(serial * (1.0 / n)))
        << "column " << j;
  }
}

TEST(Reduce, BitwiseInvariantAcrossThreadCounts) {
  // The §5b extension: for ANY cohort size the result is a function of
  // (n, p) alone, never of the worker count.
  const std::size_t n = 3 * util::kReduceClientBlock + 5;  // multi-block
  const std::size_t p = 41;
  const auto states = random_states(n, p, 11);
  std::vector<float> reference;
  for (const int threads : {1, 4, 8}) {
    util::ThreadPool::set_global_threads(threads);
    std::vector<float> means(p, 0.0f);
    util::column_means(views(states), means, &util::ThreadPool::global());
    if (reference.empty()) {
      reference = means;
    } else {
      ASSERT_EQ(means, reference) << "threads=" << threads;
    }
  }
  util::ThreadPool::set_global_threads(1);
}

TEST(Reduce, BlockedSumMatchesColumnShape) {
  // blocked_sum over a gathered column must equal column_sums over the
  // same values laid out as width-1 rows: pass 2 of FedSuManager relies on
  // the two walking the identical block tree.
  const std::size_t n = 2 * util::kReduceClientBlock + 9;
  util::Rng rng(13);
  std::vector<float> column(n);
  for (auto& v : column) v = static_cast<float>(rng.normal());
  std::vector<std::span<const float>> rows;
  for (const float& v : column) rows.emplace_back(&v, 1);
  std::vector<double> sum(1, 0.0);
  util::column_sums(rows, sum, &util::ThreadPool::global());
  EXPECT_EQ(util::blocked_sum(column), sum[0]);
}

// --- data: zero-copy views -----------------------------------------------

TEST(DatasetView, GatherBitIdenticalToSubsetCopy) {
  data::SyntheticSpec spec;
  spec.train_count = 120;
  spec.test_count = 10;
  spec.image_size = 6;
  const auto data = data::generate_synthetic(spec);
  const auto parent = std::make_shared<const data::Dataset>(data.train);
  data::PartitionOptions part;
  part.num_clients = 5;
  auto shards = data::dirichlet_partition(*parent, part);

  for (const auto& rows : shards) {
    const data::DatasetView view(parent, rows);
    const data::Dataset copy = parent->subset(rows);
    ASSERT_EQ(view.size(), copy.size());
    // Same batch through both paths: the bytes must match exactly.
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < view.size(); i += 2) indices.push_back(i);
    tensor::Tensor view_batch, copy_batch;
    std::vector<int> view_labels, copy_labels;
    view.gather(indices, view_batch, view_labels);
    copy.gather(indices, copy_batch, copy_labels);
    ASSERT_EQ(view_labels, copy_labels);
    ASSERT_EQ(view_batch.size(), copy_batch.size());
    ASSERT_EQ(std::memcmp(view_batch.data(), copy_batch.data(),
                          view_batch.size() * sizeof(float)),
              0);
  }
}

TEST(DatasetView, ClientTrainsIdenticallyThroughViewAndCopy) {
  data::SyntheticSpec spec;
  spec.train_count = 80;
  spec.test_count = 10;
  spec.image_size = 8;
  const auto data = data::generate_synthetic(spec);
  const auto parent = std::make_shared<const data::Dataset>(data.train);
  std::vector<std::size_t> rows;
  for (std::size_t i = 3; i < 60; i += 2) rows.push_back(i);

  fl::Client view_client(0, data::DatasetView(parent, rows), 8, util::Rng(4));
  fl::Client copy_client(0, parent->subset(rows), 8, util::Rng(4));

  nn::ModelSpec mspec;
  mspec.arch = "mlp";
  mspec.image_size = 8;
  mspec.hidden = 12;
  nn::Model model_a = nn::build_model(mspec, util::Rng(21));
  nn::Model model_b = nn::build_model(mspec, util::Rng(21));

  fl::LocalTrainOptions local;
  local.iterations = 6;
  local.batch_size = 8;
  local.learning_rate = 0.05f;
  const float loss_a = view_client.train_round(model_a, local);
  const float loss_b = copy_client.train_round(model_b, local);
  EXPECT_EQ(loss_a, loss_b);
  EXPECT_EQ(model_a.state_vector(), model_b.state_vector());
}

// --- core: the sparse error store ----------------------------------------

TEST(SparseErrorStore, LazyAllocationAndRelease) {
  core::SparseErrorStore store;
  store.reset(4, 6);
  EXPECT_EQ(store.allocated_slabs(), 0u);
  EXPECT_EQ(store.value(2, 3), 0.0f);

  float* slab = store.ensure(2);
  ASSERT_NE(slab, nullptr);
  slab[3] = 1.5f;
  EXPECT_EQ(store.allocated_slabs(), 1u);
  EXPECT_EQ(store.value(2, 3), 1.5f);
  EXPECT_EQ(store.resident_bytes(), 6 * sizeof(float));

  store.clear_param(3);  // only allocated slabs are touched
  EXPECT_EQ(store.value(2, 3), 0.0f);

  store.release(2);
  EXPECT_EQ(store.allocated_slabs(), 0u);
  EXPECT_EQ(store.slab(2), nullptr);

  store.add_client();
  EXPECT_EQ(store.num_clients(), 5);
  EXPECT_EQ(store.value(4, 0), 0.0f);
}

TEST(SparseErrorStore, SerializeRoundTrip) {
  core::SparseErrorStore store;
  store.reset(5, 3);
  store.ensure(1)[0] = -2.0f;
  store.ensure(4)[2] = 0.25f;

  io::BinaryWriter writer;
  store.serialize(writer);
  io::BinaryReader reader(writer.buffer());
  core::SparseErrorStore restored;
  restored.deserialize(reader, 5, 3);

  EXPECT_EQ(restored.allocated_slabs(), 2u);
  for (int c = 0; c < 5; ++c) {
    for (std::size_t j = 0; j < 3; ++j) {
      ASSERT_EQ(restored.value(c, j), store.value(c, j))
          << "client " << c << " param " << j;
    }
  }
  // Unallocated clients stay unallocated after the trip.
  EXPECT_EQ(restored.slab(0), nullptr);
  EXPECT_EQ(restored.slab(2), nullptr);
}

// Drives a manager until error slabs exist, then checks the snapshot
// carries them and a rejoin releases them.
core::FedSuManager warmed_manager(int clients, int rounds, std::size_t p) {
  core::FedSuOptions options;
  options.warmup = 3;
  core::FedSuManager manager(clients, options);
  std::vector<float> global(p, 0.0f);
  manager.initialize(global);
  util::Rng rng(17);
  std::vector<float> state = global;
  for (int r = 0; r < rounds; ++r) {
    compress::RoundContext ctx;
    ctx.round = r;
    std::vector<std::vector<float>> locals(clients);
    for (int i = 0; i < clients; ++i) {
      locals[i].resize(p);
      for (std::size_t j = 0; j < p; ++j) {
        // Even params drift exactly linearly until round 6 (promoted),
        // then pick up small client-skewed noise: speculation now mispredicts
        // slightly, so the error slabs actually allocate. Odd params stay
        // noisy and unpredictable throughout.
        float drift;
        if (j % 2 == 0) {
          drift = r < 6 ? 0.125f
                        : 0.125f + static_cast<float>(0.02 * rng.normal() +
                                                      0.005 * (i + 1));
        } else {
          drift = static_cast<float>(0.1 * rng.normal() + 0.01 * i);
        }
        locals[i][j] = state[j] + drift;
      }
      ctx.participants.push_back(i);
    }
    state = manager.synchronize(ctx, views(locals)).new_global;
  }
  return manager;
}

TEST(SparseErrorStore, SnapshotRestoresSlabsExactly) {
  core::FedSuManager original = warmed_manager(3, 12, 8);
  ASSERT_GT(original.error_store().allocated_slabs(), 0u)
      << "driver failed to accumulate any error";

  const auto snapshot = original.snapshot();
  core::FedSuManager restored(3);
  std::vector<float> dummy(8, 0.0f);
  restored.initialize(dummy);
  restored.restore(snapshot);

  const auto& a = original.error_store();
  const auto& b = restored.error_store();
  ASSERT_EQ(b.allocated_slabs(), a.allocated_slabs());
  for (int c = 0; c < 3; ++c) {
    ASSERT_EQ(b.slab(c) == nullptr, a.slab(c) == nullptr) << "client " << c;
    for (std::size_t j = 0; j < 8; ++j) {
      ASSERT_EQ(b.value(c, j), a.value(c, j))
          << "client " << c << " param " << j;
    }
  }
}

TEST(SparseErrorStore, RejoinReleasesTheSlab) {
  core::FedSuManager manager = warmed_manager(3, 12, 8);
  const std::size_t before = manager.error_store().allocated_slabs();
  ASSERT_GT(before, 0u);
  int victim = -1;
  for (int c = 0; c < 3; ++c) {
    if (manager.error_store().slab(c) != nullptr) victim = c;
  }
  manager.on_client_rejoin(victim);
  EXPECT_EQ(manager.error_store().allocated_slabs(), before - 1);
  EXPECT_EQ(manager.error_store().slab(victim), nullptr);
}

// --- distributed parity past one reduction block -------------------------

TEST(Distributed, MatchesCentralizedBeyondOneBlock) {
  // 40 clients > kReduceClientBlock: the server's multi-block tree must
  // still mirror the centralized manager exactly (§5b extension).
  const std::size_t p = 12;
  const int clients = 40;
  static_assert(40 > static_cast<int>(util::kReduceClientBlock));
  core::FedSuOptions options;
  options.warmup = 3;

  core::FedSuManager centralized(clients, options);
  std::vector<float> global(p, 0.0f);
  centralized.initialize(global);
  core::FedSuServer server;
  std::vector<core::FedSuClientManager> managers;
  for (int i = 0; i < clients; ++i) {
    managers.emplace_back(p, options);
    managers.back().initialize(global);
  }

  util::Rng rng(29);
  std::vector<float> central_state = global;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::vector<float>> locals(clients);
    for (int i = 0; i < clients; ++i) {
      locals[i].resize(p);
      for (std::size_t j = 0; j < p; ++j) {
        const float drift = (j % 3 == 0)
                                ? 0.125f
                                : static_cast<float>(0.2 * rng.normal());
        locals[i][j] = central_state[j] + drift +
                       static_cast<float>(0.01 * (i % 5));
      }
    }

    compress::RoundContext ctx;
    ctx.round = round;
    for (int i = 0; i < clients; ++i) ctx.participants.push_back(i);
    const auto central_result = centralized.synchronize(ctx, views(locals));

    std::vector<core::FedSuUpload> uploads;
    for (int i = 0; i < clients; ++i) {
      uploads.push_back(managers[i].begin_sync(locals[i]));
    }
    const core::FedSuDownload download = server.aggregate(uploads);
    for (int i = 0; i < clients; ++i) {
      ASSERT_EQ(managers[i].finish_sync(download), central_result.new_global)
          << "client " << i << " round " << round;
    }
    central_state = central_result.new_global;
  }
}

// --- fl: §5b at cohort scale ---------------------------------------------

fl::SimulationOptions cohort_options(int clients, int threads, bool async) {
  fl::SimulationOptions options;
  options.model.arch = "mlp";
  options.model.image_size = 8;
  options.model.hidden = 10;
  options.dataset.image_size = 8;
  options.dataset.train_count = 4 * clients;
  options.dataset.test_count = 60;
  options.num_clients = clients;
  options.participation_fraction = 0.5;
  options.local.iterations = 2;
  options.local.batch_size = 4;
  options.local.learning_rate = 0.05f;
  options.eval_every = 0;
  options.threads = threads;
  options.async.enabled = async;
  return options;
}

void expect_thread_invariance(bool async) {
  std::vector<float> reference;
  std::uint64_t reference_bytes = 0;
  for (const int threads : {1, 4, 8}) {
    util::ThreadPool::set_global_threads(threads);
    fl::ProtocolConfig pc;
    pc.name = "fedsu";
    pc.num_clients = 128;
    fl::Simulation sim(cohort_options(128, threads, async),
                       fl::make_protocol(pc));
    std::uint64_t bytes = 0;
    for (int r = 0; r < 4; ++r) {
      const auto record = sim.step();
      bytes += record.bytes_up + record.bytes_down;
    }
    if (reference.empty()) {
      reference = sim.global_state();
      reference_bytes = bytes;
    } else {
      ASSERT_EQ(sim.global_state(), reference) << "threads=" << threads;
      ASSERT_EQ(bytes, reference_bytes) << "threads=" << threads;
    }
  }
  util::ThreadPool::set_global_threads(1);
}

TEST(Simulation, Cohort128BitwiseIdenticalAcrossThreadCountsSync) {
  expect_thread_invariance(/*async=*/false);
}

TEST(Simulation, Cohort128BitwiseIdenticalAcrossThreadCountsAsync) {
  expect_thread_invariance(/*async=*/true);
}

}  // namespace
}  // namespace fedsu
