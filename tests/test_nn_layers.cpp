#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/blocks.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace fedsu::nn {
namespace {

using fedsu::testing::check_gradients;
using fedsu::testing::random_tensor;

TEST(Linear, ForwardShapeAndBias) {
  util::Rng rng(1);
  Linear layer(4, 3, rng);
  const tensor::Tensor x = random_tensor({5, 4}, rng);
  const tensor::Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{5, 3}));
}

TEST(Linear, RejectsWrongInputWidth) {
  util::Rng rng(1);
  Linear layer(4, 3, rng);
  EXPECT_THROW(layer.forward(tensor::Tensor({2, 5}), true),
               std::invalid_argument);
}

TEST(Linear, GradCheck) {
  util::Rng rng(2);
  Linear layer(6, 4, rng);
  check_gradients(layer, random_tensor({3, 6}, rng), rng);
}

TEST(Linear, GradCheckNoBias) {
  util::Rng rng(3);
  Linear layer(5, 2, rng, /*bias=*/false);
  std::vector<Param*> params;
  layer.collect_params(params);
  EXPECT_EQ(params.size(), 1u);
  check_gradients(layer, random_tensor({2, 5}, rng), rng);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  tensor::Tensor x({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  const tensor::Tensor y = relu.forward(x, true);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
}

TEST(ReLU, GradCheck) {
  util::Rng rng(4);
  ReLU relu;
  // Shift inputs away from 0 to avoid the kink in finite differences.
  tensor::Tensor x = random_tensor({3, 7}, rng);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x[i]) < 0.1f) x[i] += 0.3f;
  }
  check_gradients(relu, x, rng);
}

TEST(Tanh, GradCheck) {
  util::Rng rng(5);
  Tanh tanh_layer;
  check_gradients(tanh_layer, random_tensor({2, 6}, rng), rng);
}

TEST(Flatten, RoundTripsShape) {
  util::Rng rng(6);
  Flatten flatten;
  const tensor::Tensor x = random_tensor({2, 3, 4, 4}, rng);
  const tensor::Tensor y = flatten.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 48}));
  const tensor::Tensor dx = flatten.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Conv2d, OutputShape) {
  util::Rng rng(7);
  Conv2d conv(3, 8, 5, rng, /*stride=*/1, /*padding=*/0);
  const tensor::Tensor x = random_tensor({2, 3, 12, 12}, rng);
  const tensor::Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 8, 8, 8}));
}

TEST(Conv2d, PaddedStridedShape) {
  util::Rng rng(8);
  Conv2d conv(2, 4, 3, rng, /*stride=*/2, /*padding=*/1);
  const tensor::Tensor x = random_tensor({1, 2, 9, 9}, rng);
  const tensor::Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 4, 5, 5}));
}

TEST(Conv2d, GradCheckPlain) {
  util::Rng rng(9);
  Conv2d conv(2, 3, 3, rng);
  check_gradients(conv, random_tensor({2, 2, 6, 6}, rng), rng);
}

TEST(Conv2d, GradCheckPaddedStrided) {
  util::Rng rng(10);
  Conv2d conv(2, 3, 3, rng, /*stride=*/2, /*padding=*/1);
  check_gradients(conv, random_tensor({2, 2, 7, 7}, rng), rng);
}

TEST(Conv2d, GradCheckNoBias) {
  util::Rng rng(11);
  Conv2d conv(1, 2, 5, rng, 1, 0, /*bias=*/false);
  check_gradients(conv, random_tensor({1, 1, 8, 8}, rng), rng);
}

TEST(Conv2d, MatchesManualConvolution) {
  util::Rng rng(12);
  Conv2d conv(1, 1, 3, rng, 1, 0, /*bias=*/false);
  std::vector<Param*> params;
  conv.collect_params(params);
  // Identity-ish kernel: 1 at center.
  params[0]->value.fill(0.0f);
  params[0]->value[4] = 1.0f;
  const tensor::Tensor x = random_tensor({1, 1, 5, 5}, rng);
  const tensor::Tensor y = conv.forward(x, true);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(y.at(0, 0, r, c), x.at(0, 0, r + 1, c + 1));
    }
  }
}

TEST(MaxPool2d, ForwardSelectsMax) {
  MaxPool2d pool(2);
  tensor::Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  const tensor::Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  tensor::Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  (void)pool.forward(x, true);
  tensor::Tensor g({1, 1, 1, 1}, {2.0f});
  const tensor::Tensor dx = pool.backward(g);
  EXPECT_FLOAT_EQ(dx[1], 2.0f);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
}

TEST(MaxPool2d, GradCheck) {
  util::Rng rng(13);
  MaxPool2d pool(2);
  check_gradients(pool, random_tensor({2, 3, 6, 6}, rng), rng);
}

TEST(AvgPool2d, ForwardAverages) {
  AvgPool2d pool(2);
  tensor::Tensor x({1, 1, 2, 2}, {1, 5, 3, 3});
  const tensor::Tensor y = pool.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(AvgPool2d, GradCheck) {
  util::Rng rng(14);
  AvgPool2d pool(2);
  check_gradients(pool, random_tensor({1, 2, 4, 4}, rng), rng);
}

TEST(GlobalAvgPool, ShapeAndGradCheck) {
  util::Rng rng(15);
  GlobalAvgPool pool;
  const tensor::Tensor x = random_tensor({2, 3, 4, 5}, rng);
  const tensor::Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 3}));
  GlobalAvgPool pool2;
  check_gradients(pool2, random_tensor({2, 3, 4, 4}, rng), rng);
}

TEST(BatchNorm2d, NormalizesTrainingBatch) {
  BatchNorm2d bn(2);
  util::Rng rng(16);
  const tensor::Tensor x = random_tensor({4, 2, 5, 5}, rng, 3.0f);
  const tensor::Tensor y = bn.forward(x, true);
  // Per channel: mean ~0, var ~1.
  for (int c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    int count = 0;
    for (int n = 0; n < 4; ++n) {
      for (int r = 0; r < 5; ++r) {
        for (int col = 0; col < 5; ++col) {
          const double v = y.at(n, c, r, col);
          sum += v;
          sq += v * v;
          ++count;
        }
      }
    }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sq / count, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  util::Rng rng(17);
  // Enough training passes for the EMA running stats to converge.
  for (int i = 0; i < 80; ++i) {
    tensor::Tensor x = random_tensor({8, 1, 3, 3}, rng);
    for (std::size_t j = 0; j < x.size(); ++j) x[j] = 2.0f * x[j] + 5.0f;
    (void)bn.forward(x, true);
  }
  // Eval on a constant input: output should be ~(input - 5) / 2.
  tensor::Tensor x = tensor::Tensor::full({1, 1, 3, 3}, 7.0f);
  const tensor::Tensor y = bn.forward(x, false);
  EXPECT_NEAR(y[0], 1.0f, 0.2f);
}

TEST(BatchNorm2d, GradCheck) {
  util::Rng rng(18);
  BatchNorm2d bn(3);
  check_gradients(bn, random_tensor({4, 3, 3, 3}, rng), rng);
}

TEST(BatchNorm2d, BuffersMarkedNonTrainable) {
  BatchNorm2d bn(4);
  std::vector<Param*> params;
  bn.collect_params(params);
  ASSERT_EQ(params.size(), 4u);
  EXPECT_TRUE(params[0]->trainable);   // gamma
  EXPECT_TRUE(params[1]->trainable);   // beta
  EXPECT_FALSE(params[2]->trainable);  // running mean
  EXPECT_FALSE(params[3]->trainable);  // running var
}

TEST(ResidualBlock, IdentityShapePreserved) {
  util::Rng rng(19);
  ResidualBlock block(4, 4, 1, rng);
  const tensor::Tensor x = random_tensor({2, 4, 6, 6}, rng);
  EXPECT_EQ(block.forward(x, true).shape(), x.shape());
}

TEST(ResidualBlock, ProjectionChangesShape) {
  util::Rng rng(20);
  ResidualBlock block(4, 8, 2, rng);
  const tensor::Tensor x = random_tensor({2, 4, 6, 6}, rng);
  const tensor::Tensor y = block.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 8, 3, 3}));
}

TEST(ResidualBlock, GradCheckIdentity) {
  util::Rng rng(21);
  ResidualBlock block(3, 3, 1, rng);
  // 10% median tolerance: the residual sum feeds an un-normalized ReLU, so
  // directional probes cross kinks more often than in the projection case.
  fedsu::testing::check_gradients_directional(
      block, random_tensor({3, 3, 4, 4}, rng), rng, 9, 0.10);
}

TEST(ResidualBlock, GradCheckProjection) {
  util::Rng rng(22);
  ResidualBlock block(2, 4, 2, rng);
  fedsu::testing::check_gradients_directional(
      block, random_tensor({3, 2, 4, 4}, rng), rng);
}

TEST(DenseLayer, ConcatenatesChannels) {
  util::Rng rng(23);
  DenseLayer layer(3, 2, rng);
  const tensor::Tensor x = random_tensor({2, 3, 5, 5}, rng);
  const tensor::Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 5, 5, 5}));
  // The first 3 channels pass through unchanged.
  for (int n = 0; n < 2; ++n) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(y.at(n, c, 2, 2), x.at(n, c, 2, 2));
    }
  }
}

TEST(DenseLayer, GradCheck) {
  util::Rng rng(24);
  DenseLayer layer(2, 2, rng);
  fedsu::testing::check_gradients_directional(
      layer, random_tensor({2, 2, 4, 4}, rng), rng);
}

TEST(TransitionLayer, HalvesResolution) {
  util::Rng rng(25);
  TransitionLayer layer(6, 3, rng);
  const tensor::Tensor x = random_tensor({2, 6, 8, 8}, rng);
  const tensor::Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 3, 4, 4}));
}

TEST(TransitionLayer, GradCheck) {
  util::Rng rng(26);
  TransitionLayer layer(4, 2, rng);
  fedsu::testing::check_gradients_directional(
      layer, random_tensor({2, 4, 4, 4}, rng), rng);
}

TEST(Sequential, ChainsAndCollects) {
  util::Rng rng(27);
  Sequential seq;
  seq.add(std::make_unique<Linear>(8, 6, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(6, 3, rng));
  const tensor::Tensor x = random_tensor({2, 8}, rng);
  EXPECT_EQ(seq.forward(x, true).shape(), (std::vector<int>{2, 3}));
  std::vector<Param*> params;
  seq.collect_params(params);
  EXPECT_EQ(params.size(), 4u);
  EXPECT_THROW(seq.add(nullptr), std::invalid_argument);
}

TEST(Sequential, GradCheck) {
  util::Rng rng(28);
  Sequential seq;
  seq.add(std::make_unique<Linear>(5, 4, rng))
      .add(std::make_unique<Tanh>())
      .add(std::make_unique<Linear>(4, 2, rng));
  check_gradients(seq, random_tensor({3, 5}, rng), rng);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  tensor::Tensor logits({2, 4});
  const float l = loss.forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.0f), 1e-5);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  util::Rng rng(29);
  SoftmaxCrossEntropy loss;
  tensor::Tensor logits = random_tensor({3, 5}, rng);
  const std::vector<int> labels{1, 4, 0};
  (void)loss.forward(logits, labels);
  const tensor::Tensor grad = loss.backward();
  const double eps = 1e-3;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    SoftmaxCrossEntropy probe;
    const float saved = logits[i];
    logits[i] = saved + static_cast<float>(eps);
    const double plus = probe.forward(logits, labels);
    logits[i] = saved - static_cast<float>(eps);
    const double minus = probe.forward(logits, labels);
    logits[i] = saved;
    EXPECT_NEAR(grad[i], (plus - minus) / (2 * eps), 1e-3);
  }
}

TEST(SoftmaxCrossEntropy, ProbabilitiesSumToOne) {
  util::Rng rng(30);
  SoftmaxCrossEntropy loss;
  tensor::Tensor logits = random_tensor({4, 6}, rng, 5.0f);
  (void)loss.forward(logits, {0, 1, 2, 3});
  const tensor::Tensor& probs = loss.probabilities();
  for (int i = 0; i < 4; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 6; ++j) sum += probs.at(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  SoftmaxCrossEntropy loss;
  tensor::Tensor logits({1, 3});
  EXPECT_THROW(loss.forward(logits, {3}), std::invalid_argument);
  EXPECT_THROW(loss.forward(logits, {-1}), std::invalid_argument);
  EXPECT_THROW(loss.forward(logits, {0, 1}), std::invalid_argument);
}

TEST(Dropout, EvalIsIdentity) {
  Dropout drop(0.5f, util::Rng(1));
  util::Rng rng(2);
  const tensor::Tensor x = random_tensor({3, 5}, rng);
  const tensor::Tensor y = drop.forward(x, /*train=*/false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainDropsAndRescales) {
  Dropout drop(0.5f, util::Rng(3));
  tensor::Tensor x = tensor::Tensor::full({1, 1000}, 1.0f);
  const tensor::Tensor y = drop.forward(x, /*train=*/true);
  int zeros = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // inverted-dropout rescale 1/(1-p)
      sum += y[i];
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.07);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.15);  // expectation preserved
}

TEST(Dropout, BackwardMatchesKeepMask) {
  Dropout drop(0.3f, util::Rng(4));
  util::Rng rng(5);
  tensor::Tensor x = random_tensor({2, 50}, rng);
  const tensor::Tensor y = drop.forward(x, /*train=*/true);
  tensor::Tensor g = tensor::Tensor::full({2, 50}, 1.0f);
  const tensor::Tensor dx = drop.backward(g);
  const float scale = 1.0f / 0.7f;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f && x[i] != 0.0f) {
      EXPECT_EQ(dx[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(dx[i], scale);
    }
  }
}

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(Dropout(1.0f, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f, util::Rng(1)), std::invalid_argument);
}

TEST(Accuracy, CountsArgmaxMatches) {
  tensor::Tensor logits({2, 3}, {0.1f, 0.9f, 0.0f, 0.8f, 0.1f, 0.1f});
  EXPECT_FLOAT_EQ(accuracy(logits, {1, 0}), 1.0f);
  EXPECT_FLOAT_EQ(accuracy(logits, {0, 0}), 0.5f);
}

}  // namespace
}  // namespace fedsu::nn
