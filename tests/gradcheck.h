// Numerical gradient checking for nn::Module implementations.
//
// Checks both dL/dinput and dL/dparams of a module against central finite
// differences, with L = sum(w .* output) for a fixed random weighting w
// (so dL/doutput = w is exact).
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "nn/module.h"
#include "util/rng.h"

namespace fedsu::testing {

struct GradCheckOptions {
  double epsilon = 1e-3;
  double rel_tolerance = 2e-2;
  double abs_tolerance = 2e-3;
  // Check at most this many coordinates per tensor (sampled) to keep the
  // O(n) finite differencing affordable for conv layers.
  std::size_t max_coords = 64;
};

inline double loss_of(nn::Module& module, const tensor::Tensor& input,
                      const tensor::Tensor& weights) {
  const tensor::Tensor out = module.forward(input, /*train=*/true);
  EXPECT_EQ(out.size(), weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    acc += static_cast<double>(out[i]) * weights[i];
  }
  return acc;
}

// Runs forward once to size the output weighting, then compares analytic
// and numeric gradients.
inline void check_gradients(nn::Module& module, tensor::Tensor input,
                            util::Rng& rng, GradCheckOptions options = {}) {
  tensor::Tensor probe = module.forward(input, /*train=*/true);
  tensor::Tensor weights(probe.shape());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<float>(rng.normal());
  }

  // Analytic gradients.
  std::vector<nn::Param*> params;
  module.collect_params(params);
  nn::zero_grads(params);
  (void)module.forward(input, /*train=*/true);
  const tensor::Tensor dinput = module.backward(weights);

  auto compare = [&](double analytic, double numeric, const char* what,
                     std::size_t coord) {
    const double denom =
        std::max({std::fabs(analytic), std::fabs(numeric), 1e-8});
    const double rel = std::fabs(analytic - numeric) / denom;
    const double abs_err = std::fabs(analytic - numeric);
    EXPECT_TRUE(rel < options.rel_tolerance || abs_err < options.abs_tolerance)
        << what << "[" << coord << "]: analytic=" << analytic
        << " numeric=" << numeric;
  };

  // Input gradient.
  {
    const std::size_t stride =
        std::max<std::size_t>(1, input.size() / options.max_coords);
    for (std::size_t i = 0; i < input.size(); i += stride) {
      const float saved = input[i];
      input[i] = saved + static_cast<float>(options.epsilon);
      const double plus = loss_of(module, input, weights);
      input[i] = saved - static_cast<float>(options.epsilon);
      const double minus = loss_of(module, input, weights);
      input[i] = saved;
      const double numeric = (plus - minus) / (2.0 * options.epsilon);
      compare(dinput[i], numeric, "dinput", i);
    }
  }

  // Parameter gradients (trainable only; buffers have no gradient).
  for (nn::Param* p : params) {
    if (!p->trainable) continue;
    const std::size_t stride =
        std::max<std::size_t>(1, p->value.size() / options.max_coords);
    for (std::size_t i = 0; i < p->value.size(); i += stride) {
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(options.epsilon);
      const double plus = loss_of(module, input, weights);
      p->value[i] = saved - static_cast<float>(options.epsilon);
      const double minus = loss_of(module, input, weights);
      p->value[i] = saved;
      const double numeric = (plus - minus) / (2.0 * options.epsilon);
      compare(p->grad[i], numeric, p->name.c_str(), i);
    }
  }
}

// Directional-derivative gradient check for composite modules (residual /
// dense blocks). Per-coordinate finite differences through BatchNorm + ReLU
// chains drown in fp32 roundoff and kink crossings; a random-direction
// derivative aggregates over every coordinate, so the signal is O(sqrt(P))
// stronger while kink contributions stay O(epsilon). The median over several
// directions is asserted to be accurate.
inline void check_gradients_directional(nn::Module& module,
                                        tensor::Tensor input, util::Rng& rng,
                                        int directions = 9,
                                        double tolerance = 0.05,
                                        double epsilon = 1e-3) {
  tensor::Tensor probe = module.forward(input, /*train=*/true);
  tensor::Tensor weights(probe.shape());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<float>(rng.normal());
  }
  std::vector<nn::Param*> params;
  module.collect_params(params);

  std::vector<double> errors;
  for (int d = 0; d < directions; ++d) {
    // One joint random direction over the input and all trainable params.
    tensor::Tensor v_input(input.shape());
    for (std::size_t i = 0; i < v_input.size(); ++i) {
      v_input[i] = static_cast<float>(rng.normal());
    }
    std::vector<tensor::Tensor> v_params;
    for (nn::Param* p : params) {
      tensor::Tensor v(p->value.shape());
      if (p->trainable) {
        for (std::size_t i = 0; i < v.size(); ++i) {
          v[i] = static_cast<float>(rng.normal());
        }
      }
      v_params.push_back(std::move(v));
    }

    // Analytic directional derivative.
    nn::zero_grads(params);
    (void)module.forward(input, /*train=*/true);
    const tensor::Tensor dinput = module.backward(weights);
    double analytic = 0.0;
    for (std::size_t i = 0; i < input.size(); ++i) {
      analytic += static_cast<double>(dinput[i]) * v_input[i];
    }
    for (std::size_t k = 0; k < params.size(); ++k) {
      for (std::size_t i = 0; i < params[k]->grad.size(); ++i) {
        analytic += static_cast<double>(params[k]->grad[i]) * v_params[k][i];
      }
    }

    // Numeric: perturb everything along the direction.
    auto shift = [&](double scale) {
      for (std::size_t i = 0; i < input.size(); ++i) {
        input[i] += static_cast<float>(scale * epsilon) * v_input[i];
      }
      for (std::size_t k = 0; k < params.size(); ++k) {
        for (std::size_t i = 0; i < params[k]->value.size(); ++i) {
          params[k]->value[i] +=
              static_cast<float>(scale * epsilon) * v_params[k][i];
        }
      }
    };
    shift(+1.0);
    const double plus = loss_of(module, input, weights);
    shift(-2.0);
    const double minus = loss_of(module, input, weights);
    shift(+1.0);  // restore
    const double numeric = (plus - minus) / (2.0 * epsilon);
    const double denom = std::max({std::fabs(analytic), std::fabs(numeric), 1e-6});
    errors.push_back(std::fabs(analytic - numeric) / denom);
  }
  std::sort(errors.begin(), errors.end());
  EXPECT_LT(errors[errors.size() / 2], tolerance)
      << "median directional-derivative error too large";
}

inline tensor::Tensor random_tensor(std::vector<int> shape, util::Rng& rng,
                                    float scale = 1.0f) {
  tensor::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = scale * static_cast<float>(rng.normal());
  }
  return t;
}

}  // namespace fedsu::testing
