// Parameterized property sweeps across module configuration spaces —
// shapes, client counts, and protocol names that unit tests cover only
// pointwise.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "fl/protocol_factory.h"
#include "gradcheck.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedsu {
namespace {

// --- Conv2d configuration sweep: forward shape algebra + gradients hold
// for every (kernel, stride, padding) combination. ---
using ConvParam = std::tuple<int, int, int>;  // kernel, stride, padding

class ConvSweep : public ::testing::TestWithParam<ConvParam> {};

TEST_P(ConvSweep, ShapeAlgebraAndGradients) {
  const auto [kernel, stride, padding] = GetParam();
  util::Rng rng(100 + kernel * 9 + stride * 3 + padding);
  nn::Conv2d conv(2, 3, kernel, rng, stride, padding);
  const int h = 9, w = 9;
  const int oh = (h + 2 * padding - kernel) / stride + 1;
  if (oh <= 0) GTEST_SKIP();
  const tensor::Tensor x = testing::random_tensor({2, 2, h, w}, rng);
  const tensor::Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.dim(2), oh);
  EXPECT_EQ(y.dim(3), oh);
  testing::GradCheckOptions options;
  options.max_coords = 24;
  testing::check_gradients(conv, x, rng, options);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConvSweep,
    ::testing::Values(ConvParam{1, 1, 0}, ConvParam{3, 1, 0},
                      ConvParam{3, 1, 1}, ConvParam{3, 2, 1},
                      ConvParam{5, 1, 2}, ConvParam{5, 2, 0},
                      ConvParam{7, 3, 3}));

// --- MaxPool kernel sweep ---
class PoolSweep : public ::testing::TestWithParam<int> {};

TEST_P(PoolSweep, GradientsHold) {
  const int kernel = GetParam();
  util::Rng rng(200 + kernel);
  nn::MaxPool2d pool(kernel);
  testing::check_gradients(pool, testing::random_tensor({1, 2, 8, 8}, rng),
                           rng);
}

INSTANTIATE_TEST_SUITE_P(Kernels, PoolSweep, ::testing::Values(1, 2, 4));

// --- Linear layer dimension sweep ---
using LinearParam = std::tuple<int, int, int>;  // in, out, batch

class LinearSweep : public ::testing::TestWithParam<LinearParam> {};

TEST_P(LinearSweep, GradientsHold) {
  const auto [in, out, batch] = GetParam();
  util::Rng rng(300 + in + out * 7 + batch);
  nn::Linear layer(in, out, rng);
  testing::check_gradients(layer, testing::random_tensor({batch, in}, rng),
                           rng);
}

INSTANTIATE_TEST_SUITE_P(Dims, LinearSweep,
                         ::testing::Values(LinearParam{1, 1, 1},
                                           LinearParam{1, 8, 3},
                                           LinearParam{16, 1, 2},
                                           LinearParam{9, 5, 7}));

// --- Protocol x client-count sweep: every protocol survives 10 rounds on
// any population and preserves state dimension and determinism. ---
using ProtocolParam = std::tuple<std::string, int>;

class ProtocolSweep : public ::testing::TestWithParam<ProtocolParam> {};

TEST_P(ProtocolSweep, RunsAndIsDeterministic) {
  const auto [name, clients] = GetParam();
  auto run_once = [&, name = name, clients = clients]() {
    fl::ProtocolConfig config;
    config.name = name;
    config.num_clients = clients;
    auto proto = fl::make_protocol(config);
    std::vector<float> global(24, 0.0f);
    proto->initialize(global);
    util::Rng rng(17);
    std::vector<float> base(24, 0.0f);
    for (int round = 0; round < 10; ++round) {
      std::vector<std::vector<float>> states;
      compress::RoundContext ctx;
      ctx.round = round;
      for (int i = 0; i < clients; ++i) {
        ctx.participants.push_back(i);
        std::vector<float> s(24);
        for (std::size_t j = 0; j < s.size(); ++j) {
          s[j] = base[j] + 0.1f + static_cast<float>(0.02 * rng.normal());
        }
        states.push_back(std::move(s));
      }
      std::vector<std::span<const float>> views(states.begin(), states.end());
      auto result = proto->synchronize(ctx, views);
      EXPECT_EQ(result.new_global.size(), 24u);
      base = std::move(result.new_global);
    }
    return base;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b) << name << " is not deterministic";
  for (float v : a) EXPECT_TRUE(std::isfinite(v)) << name;
}

INSTANTIATE_TEST_SUITE_P(
    All, ProtocolSweep,
    ::testing::Combine(::testing::Values("fedavg", "cmfl", "apf", "fedsu",
                                         "fedsu-v1", "fedsu-v2", "topk",
                                         "qsgd", "signsgd"),
                       ::testing::Values(1, 3, 8)),
    [](const ::testing::TestParamInfo<ProtocolParam>& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::to_string(std::get<1>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- Model zoo sweep: every architecture builds, runs forward + backward
// and round-trips its state vector at several input geometries. ---
using ZooParam = std::tuple<std::string, int, int>;  // arch, image, channels

class ZooSweep : public ::testing::TestWithParam<ZooParam> {};

TEST_P(ZooSweep, BuildTrainStepRoundTrip) {
  auto [arch, image, channels] = GetParam();
  nn::ModelSpec spec;
  spec.arch = arch;
  spec.image_size = image;
  spec.in_channels = channels;
  spec.num_classes = 7;
  nn::Model model = nn::build_model(spec, util::Rng(55));
  tensor::Tensor x({2, channels, image, image});
  util::Rng rng(56);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  const tensor::Tensor logits = model.forward(x, true);
  ASSERT_EQ(logits.shape(), (std::vector<int>{2, 7}));
  // Backward runs and produces grads of matching shapes.
  tensor::Tensor g(logits.shape());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = static_cast<float>(rng.normal());
  }
  model.zero_grads();
  (void)model.backward(g);
  for (const nn::Param* p : model.parameters()) {
    ASSERT_TRUE(p->grad.same_shape(p->value)) << p->name;
  }
  // Flat state round-trip.
  auto state = model.state_vector();
  for (auto& v : state) v *= 0.5f;
  model.load_state_vector(state);
  EXPECT_EQ(model.state_vector(), state);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ZooSweep,
    ::testing::Values(ZooParam{"cnn", 20, 1}, ZooParam{"cnn", 28, 3},
                      ZooParam{"resnet", 12, 1}, ZooParam{"resnet", 16, 3},
                      ZooParam{"densenet", 16, 1}, ZooParam{"densenet", 20, 3},
                      ZooParam{"mlp", 8, 2}, ZooParam{"logistic", 6, 1}),
    [](const ::testing::TestParamInfo<ZooParam>& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param)) + "x" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace fedsu
