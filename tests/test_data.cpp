#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/loader.h"
#include "data/partition.h"
#include "data/synthetic.h"

namespace fedsu::data {
namespace {

TEST(Dataset, BasicAccessors) {
  tensor::Tensor images({4, 1, 2, 2});
  Dataset ds(std::move(images), {0, 1, 2, 1});
  EXPECT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds.num_classes(), 3);
  EXPECT_EQ(ds.channels(), 1);
  const auto hist = ds.class_histogram();
  EXPECT_EQ(hist[1], 2);
}

TEST(Dataset, RejectsMismatchedLabels) {
  tensor::Tensor images({4, 1, 2, 2});
  EXPECT_THROW(Dataset(std::move(images), {0, 1}), std::invalid_argument);
}

TEST(Dataset, RejectsNegativeLabel) {
  tensor::Tensor images({1, 1, 2, 2});
  EXPECT_THROW(Dataset(std::move(images), {-2}), std::invalid_argument);
}

TEST(Dataset, GatherCopiesSamples) {
  tensor::Tensor images({3, 1, 1, 2});
  for (std::size_t i = 0; i < images.size(); ++i) {
    images[i] = static_cast<float>(i);
  }
  Dataset ds(std::move(images), {0, 1, 2});
  tensor::Tensor batch;
  std::vector<int> labels;
  ds.gather({2, 0}, batch, labels);
  EXPECT_EQ(batch.shape(), (std::vector<int>{2, 1, 1, 2}));
  EXPECT_FLOAT_EQ(batch[0], 4.0f);
  EXPECT_FLOAT_EQ(batch[2], 0.0f);
  EXPECT_EQ(labels, (std::vector<int>{2, 0}));
  EXPECT_THROW(ds.gather({5}, batch, labels), std::out_of_range);
}

TEST(Dataset, SubsetPreservesContent) {
  tensor::Tensor images({3, 1, 1, 1}, {10, 20, 30});
  Dataset ds(std::move(images), {0, 1, 2});
  const Dataset sub = ds.subset({1, 2});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_FLOAT_EQ(sub.images()[0], 20.0f);
  EXPECT_EQ(sub.labels()[1], 2);
}

TEST(Synthetic, PresetsMatchPaperDatasets) {
  EXPECT_EQ(synthetic_preset("emnist").channels, 1);
  EXPECT_EQ(synthetic_preset("emnist").image_size, 28);
  EXPECT_EQ(synthetic_preset("cifar").channels, 3);
  EXPECT_EQ(synthetic_preset("cifar").image_size, 32);
  EXPECT_THROW(synthetic_preset("svhn"), std::invalid_argument);
}

TEST(Synthetic, GeneratesRequestedCounts) {
  SyntheticSpec spec;
  spec.train_count = 100;
  spec.test_count = 40;
  spec.image_size = 8;
  const auto data = generate_synthetic(spec);
  EXPECT_EQ(data.train.size(), 100u);
  EXPECT_EQ(data.test.size(), 40u);
  EXPECT_EQ(data.train.height(), 8);
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.train_count = 50;
  spec.test_count = 10;
  spec.image_size = 6;
  const auto a = generate_synthetic(spec);
  const auto b = generate_synthetic(spec);
  EXPECT_EQ(a.train.images().vec(), b.train.images().vec());
  EXPECT_EQ(a.train.labels(), b.train.labels());
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec a_spec, b_spec;
  a_spec.train_count = b_spec.train_count = 50;
  a_spec.test_count = b_spec.test_count = 10;
  a_spec.image_size = b_spec.image_size = 6;
  b_spec.seed = a_spec.seed + 1;
  const auto a = generate_synthetic(a_spec);
  const auto b = generate_synthetic(b_spec);
  EXPECT_NE(a.train.images().vec(), b.train.images().vec());
}

TEST(Synthetic, AllClassesPresent) {
  SyntheticSpec spec;
  spec.train_count = 500;
  spec.test_count = 100;
  spec.image_size = 6;
  const auto data = generate_synthetic(spec);
  const auto hist = data.train.class_histogram();
  EXPECT_EQ(hist.size(), 10u);
  for (int count : hist) EXPECT_GT(count, 10);
}

TEST(Synthetic, ClassesAreSeparable) {
  // Nearest-prototype classification on noiseless means should beat chance
  // by a wide margin; verify via per-class image means being distinct.
  SyntheticSpec spec;
  spec.train_count = 800;
  spec.test_count = 10;
  spec.image_size = 8;
  spec.num_classes = 4;
  const auto data = generate_synthetic(spec);
  const std::size_t dim = 64;
  std::vector<std::vector<double>> mean(4, std::vector<double>(dim, 0.0));
  std::vector<int> count(4, 0);
  for (std::size_t i = 0; i < data.train.size(); ++i) {
    const int y = data.train.labels()[i];
    ++count[y];
    for (std::size_t d = 0; d < dim; ++d) {
      mean[y][d] += data.train.images()[i * dim + d];
    }
  }
  for (int c = 0; c < 4; ++c) {
    for (auto& v : mean[c]) v /= count[c];
  }
  // Distinct prototypes: pairwise distance well above zero.
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      double d2 = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        d2 += (mean[a][d] - mean[b][d]) * (mean[a][d] - mean[b][d]);
      }
      EXPECT_GT(std::sqrt(d2), 1.0) << "classes " << a << "," << b;
    }
  }
}

TEST(Synthetic, RejectsBadSpec) {
  SyntheticSpec spec;
  spec.num_classes = 1;
  EXPECT_THROW(generate_synthetic(spec), std::invalid_argument);
}

TEST(Partition, DirichletCoversAllSamplesOnce) {
  SyntheticSpec spec;
  spec.train_count = 300;
  spec.test_count = 10;
  spec.image_size = 4;
  const auto data = generate_synthetic(spec);
  PartitionOptions options;
  options.num_clients = 6;
  const auto shards = dirichlet_partition(data.train, options);
  ASSERT_EQ(shards.size(), 6u);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& shard : shards) {
    EXPECT_GE(shard.size(), static_cast<std::size_t>(options.min_samples));
    total += shard.size();
    seen.insert(shard.begin(), shard.end());
  }
  EXPECT_EQ(total, data.train.size());
  EXPECT_EQ(seen.size(), data.train.size());
}

TEST(Partition, SmallAlphaIsMoreSkewedThanLarge) {
  SyntheticSpec spec;
  spec.train_count = 1000;
  spec.test_count = 10;
  spec.image_size = 4;
  const auto data = generate_synthetic(spec);

  auto label_entropy = [&](const std::vector<std::vector<std::size_t>>& shards) {
    double total_entropy = 0.0;
    for (const auto& shard : shards) {
      std::vector<int> hist(10, 0);
      for (auto idx : shard) ++hist[data.train.labels()[idx]];
      double h = 0.0;
      for (int c : hist) {
        if (c == 0) continue;
        const double p = static_cast<double>(c) / shard.size();
        h -= p * std::log(p);
      }
      total_entropy += h;
    }
    return total_entropy / shards.size();
  };

  PartitionOptions skewed;
  skewed.num_clients = 8;
  skewed.alpha = 0.1;
  PartitionOptions flat;
  flat.num_clients = 8;
  flat.alpha = 100.0;
  EXPECT_LT(label_entropy(dirichlet_partition(data.train, skewed)),
            label_entropy(dirichlet_partition(data.train, flat)) - 0.2);
}

TEST(Partition, IidSplitsEvenly) {
  SyntheticSpec spec;
  spec.train_count = 100;
  spec.test_count = 10;
  spec.image_size = 4;
  const auto data = generate_synthetic(spec);
  const auto shards = iid_partition(data.train, 4, 9);
  for (const auto& shard : shards) EXPECT_EQ(shard.size(), 25u);
}

TEST(Partition, RejectsTooManyClients) {
  SyntheticSpec spec;
  spec.train_count = 10;
  spec.test_count = 5;
  spec.image_size = 4;
  const auto data = generate_synthetic(spec);
  PartitionOptions options;
  options.num_clients = 100;
  EXPECT_THROW(dirichlet_partition(data.train, options), std::invalid_argument);
}

TEST(Loader, BatchesHaveRequestedSize) {
  SyntheticSpec spec;
  spec.train_count = 64;
  spec.test_count = 10;
  spec.image_size = 4;
  const auto data = generate_synthetic(spec);
  const DatasetView view = DatasetView::own(data.train);
  BatchLoader loader(view, 16, util::Rng(1));
  tensor::Tensor batch;
  std::vector<int> labels;
  loader.next(batch, labels);
  EXPECT_EQ(batch.dim(0), 16);
  EXPECT_EQ(labels.size(), 16u);
}

TEST(Loader, EpochCoversEverySample) {
  SyntheticSpec spec;
  spec.train_count = 30;
  spec.test_count = 10;
  spec.image_size = 4;
  const auto data = generate_synthetic(spec);
  const DatasetView view = DatasetView::own(data.train);
  BatchLoader loader(view, 7, util::Rng(2));
  tensor::Tensor batch;
  std::vector<int> labels;
  std::multiset<float> seen;
  int fetched = 0;
  while (fetched < 30) {
    loader.next(batch, labels);
    fetched += batch.dim(0);
    for (int i = 0; i < batch.dim(0); ++i) {
      seen.insert(batch[static_cast<std::size_t>(i) * 16]);  // first pixel id
    }
  }
  EXPECT_EQ(fetched, 30);  // 7+7+7+7+2: partial tail batch
  EXPECT_EQ(loader.epochs_completed(), 0u);
  loader.next(batch, labels);  // wraps into epoch 2
  EXPECT_EQ(loader.epochs_completed(), 1u);
}

TEST(Loader, RejectsBadArguments) {
  SyntheticSpec spec;
  spec.train_count = 10;
  spec.test_count = 5;
  spec.image_size = 4;
  const auto data = generate_synthetic(spec);
  const DatasetView view = DatasetView::own(data.train);
  EXPECT_THROW(BatchLoader(view, 0, util::Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace fedsu::data
